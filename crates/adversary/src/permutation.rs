//! Order-preserving maps on element supports.
//!
//! §5.2: a permutation `σ` on `[N]` is *order-preserving for `S ⊆ [N]`*
//! when it is monotone on `S`. Such a `σ` is determined (as far as the
//! induced dataset permutation is concerned) by its image set `σ(S)`: the
//! `r`-th smallest element of `S` maps to the `r`-th smallest element of
//! the image. Lemma 5.6 counts them: there are exactly `C(N, |S|)` distinct
//! induced inputs.

use rand::Rng;

/// A monotone bijection from a sorted source set onto a sorted image set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderPreservingMap {
    source: Vec<u64>,
    image: Vec<u64>,
}

impl OrderPreservingMap {
    /// Builds the map sending the `r`-th smallest of `source` to the `r`-th
    /// smallest of `image`.
    ///
    /// # Panics
    ///
    /// Panics if the sets differ in size or contain duplicates.
    pub fn new(mut source: Vec<u64>, mut image: Vec<u64>) -> Self {
        source.sort_unstable();
        image.sort_unstable();
        assert_eq!(source.len(), image.len(), "source/image size mismatch");
        assert!(
            source.windows(2).all(|w| w[0] < w[1]),
            "source contains duplicates"
        );
        assert!(
            image.windows(2).all(|w| w[0] < w[1]),
            "image contains duplicates"
        );
        Self { source, image }
    }

    /// The identity map on a set.
    pub fn identity(mut set: Vec<u64>) -> Self {
        set.sort_unstable();
        Self {
            source: set.clone(),
            image: set,
        }
    }

    /// Maps a source element; `None` when `elem ∉ source`.
    pub fn apply(&self, elem: u64) -> Option<u64> {
        self.source.binary_search(&elem).ok().map(|k| self.image[k])
    }

    /// Maps an image element back; `None` when `elem ∉ image`.
    pub fn invert(&self, elem: u64) -> Option<u64> {
        self.image.binary_search(&elem).ok().map(|k| self.source[k])
    }

    /// The (sorted) source set.
    pub fn source(&self) -> &[u64] {
        &self.source
    }

    /// The (sorted) image set.
    pub fn image(&self) -> &[u64] {
        &self.image
    }

    /// Number of mapped elements `|S|`.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// True for the empty map.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// Uniformly samples an image set of size `|source|` in `0..universe`
    /// and returns the induced order-preserving map.
    pub fn sample_image(source: Vec<u64>, universe: u64, rng: &mut impl Rng) -> Self {
        let m = source.len();
        assert!(
            (m as u64) <= universe,
            "support larger than universe: {m} > {universe}"
        );
        // Floyd's algorithm for a uniform m-subset of 0..universe.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (universe - m as u64)..universe {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        Self::new(source, chosen.into_iter().collect())
    }

    /// Enumerates **all** `C(universe, |source|)` order-preserving maps for
    /// a source set (small universes only — the caller should check
    /// [`dqs_math::binomial`] first).
    pub fn enumerate_all(source: Vec<u64>, universe: u64) -> Vec<Self> {
        let m = source.len();
        let mut out = Vec::new();
        let mut current: Vec<u64> = Vec::with_capacity(m);
        fn recurse(
            universe: u64,
            m: usize,
            start: u64,
            current: &mut Vec<u64>,
            source: &[u64],
            out: &mut Vec<OrderPreservingMap>,
        ) {
            if current.len() == m {
                out.push(OrderPreservingMap::new(source.to_vec(), current.clone()));
                return;
            }
            let remaining = (m - current.len()) as u64;
            for v in start..=(universe - remaining) {
                current.push(v);
                recurse(universe, m, v + 1, current, source, out);
                current.pop();
            }
        }
        if m == 0 {
            return vec![Self::identity(vec![])];
        }
        recurse(universe, m, 0, &mut current, &source, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_math::binomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn apply_preserves_order() {
        let m = OrderPreservingMap::new(vec![2, 5, 9], vec![0, 7, 8]);
        assert_eq!(m.apply(2), Some(0));
        assert_eq!(m.apply(5), Some(7));
        assert_eq!(m.apply(9), Some(8));
        assert_eq!(m.apply(3), None);
    }

    #[test]
    fn invert_round_trips() {
        let m = OrderPreservingMap::new(vec![1, 4], vec![3, 9]);
        for e in [1u64, 4] {
            assert_eq!(m.invert(m.apply(e).unwrap()), Some(e));
        }
        assert_eq!(m.invert(5), None);
    }

    #[test]
    fn identity_maps_to_self() {
        let m = OrderPreservingMap::identity(vec![7, 3]);
        assert_eq!(m.apply(3), Some(3));
        assert_eq!(m.apply(7), Some(7));
    }

    #[test]
    fn enumeration_matches_lemma_5_6_count() {
        // Lemma 5.6: the number of distinct induced inputs is C(N, m).
        for (n, src) in [(5u64, vec![0u64, 1]), (6, vec![1, 3, 4]), (4, vec![2])] {
            let all = OrderPreservingMap::enumerate_all(src.clone(), n);
            let expected = binomial(n, src.len() as u64).unwrap() as usize;
            assert_eq!(all.len(), expected, "N={n}, m={}", src.len());
            // all images distinct
            let mut images: Vec<_> = all.iter().map(|m| m.image().to_vec()).collect();
            images.sort();
            images.dedup();
            assert_eq!(images.len(), expected);
        }
    }

    #[test]
    fn sampled_maps_are_valid_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let m = OrderPreservingMap::sample_image(vec![0, 1], 5, &mut rng);
            assert_eq!(m.len(), 2);
            assert!(m.image().iter().all(|&e| e < 5));
            seen.insert(m.image().to_vec());
        }
        // C(5,2) = 10 possible images; 200 draws should hit all of them
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn empty_map() {
        let m = OrderPreservingMap::identity(vec![]);
        assert!(m.is_empty());
        assert_eq!(OrderPreservingMap::enumerate_all(vec![], 4).len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_source_rejected() {
        let _ = OrderPreservingMap::new(vec![1, 1], vec![0, 2]);
    }
}
