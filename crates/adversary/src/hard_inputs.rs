//! Hard-input families (Definitions 5.4 / 5.5, Lemma 5.6).
//!
//! Fix a machine `k` and a base input `T` satisfying the *hard input
//! condition*: `M_k ≥ α·M`, `M_k/m_k ≥ β·κ_k`, and
//! `max_{i,j≠k} c_ij + max_i c_ik ≤ ν`. The family `𝒯` consists of all
//! inputs obtained by relabeling machine `k`'s support through an
//! order-preserving permutation; the coordinator cannot tell family members
//! apart without querying machine `k`, which is the engine of the lower
//! bound.

use crate::permutation::OrderPreservingMap;
use dqs_db::{DistributedDataset, Multiset};
use dqs_math::binomial;
use rand::Rng;

/// A hard-input family `𝒯` for a distinguished machine.
#[derive(Debug, Clone)]
pub struct HardInputFamily {
    base: DistributedDataset,
    machine: usize,
    /// `α` such that `M_k ≥ α·M` (computed from the base input).
    pub alpha: f64,
    /// `β` such that `M_k/m_k ≥ β·κ_k` (computed from the base input).
    pub beta: f64,
}

impl HardInputFamily {
    /// Wraps a base input, checking the hard-input condition (Eq. 8) and
    /// recording the realized constants `α`, `β`.
    ///
    /// # Panics
    ///
    /// Panics when machine `k`'s shard is empty or the capacity headroom
    /// condition `max_{i,j≠k} c_ij + max_i c_ik ≤ ν` fails (relabelings
    /// could then overflow `ν`).
    pub fn new(base: DistributedDataset, machine: usize) -> Self {
        let shard = &base.shards()[machine];
        assert!(
            !shard.is_empty(),
            "hard inputs need a non-empty distinguished shard"
        );
        let m_k = shard.cardinality() as f64;
        let m_total = base.total_count() as f64;
        let support = shard.support_size() as f64;
        let kappa_k = shard.max_multiplicity() as f64;
        let alpha = m_k / m_total;
        let beta = (m_k / support) / kappa_k;
        // capacity headroom: a relabeled element could land on the heaviest
        // element of the other machines.
        let max_other: u64 = (0..base.universe())
            .map(|i| {
                (0..base.num_machines())
                    .filter(|&j| j != machine)
                    .map(|j| base.multiplicity(i, j))
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        assert!(
            max_other + shard.max_multiplicity() <= base.capacity(),
            "capacity headroom violated: {} + {} > ν = {}",
            max_other,
            shard.max_multiplicity(),
            base.capacity()
        );
        Self {
            base,
            machine,
            alpha,
            beta,
        }
    }

    /// The canonical hard input used in the proof of Theorem 5.1: all data
    /// on machine `k` — `support` distinct elements `{0, …, support−1}`,
    /// each with multiplicity `mult` — and every other machine empty
    /// (`α = β = 1`).
    pub fn canonical(
        universe: u64,
        machines: usize,
        k: usize,
        support: u64,
        mult: u64,
        capacity: u64,
    ) -> Self {
        assert!(k < machines);
        assert!(mult >= 1 && mult <= capacity);
        assert!(support >= 1 && support <= universe);
        let mut shards = vec![Multiset::new(); machines];
        shards[k] = Multiset::from_counts((0..support).map(|i| (i, mult)));
        let base = DistributedDataset::new(universe, capacity, shards)
            // lint: allow(panic): the asserts above pin mult ≤ capacity and
            // support ≤ universe, which is exactly what `new` validates.
            .expect("canonical hard input is valid");
        Self::new(base, k)
    }

    /// The base input `T`.
    pub fn base(&self) -> &DistributedDataset {
        &self.base
    }

    /// The distinguished machine `k`.
    pub fn machine(&self) -> usize {
        self.machine
    }

    /// `m_k` — the support size being relabeled.
    pub fn support_size(&self) -> u64 {
        self.base.shards()[self.machine].support_size() as u64
    }

    /// `M_k` — cardinality of the distinguished shard.
    pub fn shard_cardinality(&self) -> u64 {
        self.base.shards()[self.machine].cardinality()
    }

    /// `|𝒯| = C(N, m_k)` (Lemma 5.6); `None` on u128 overflow.
    pub fn family_size(&self) -> Option<u128> {
        binomial(self.base.universe(), self.support_size())
    }

    /// The input `T̃` with machine `k`'s data erased — the hybrid-argument
    /// reference whose oracle is the identity on machine `k`.
    pub fn erased(&self) -> DistributedDataset {
        self.base.with_shard_replaced(self.machine, Multiset::new())
    }

    /// Materializes the family member `σ̃^k(T)` for an order-preserving map
    /// with the given (sorted) image set.
    pub fn instance(&self, map: &OrderPreservingMap) -> DistributedDataset {
        let shard = &self.base.shards()[self.machine];
        assert_eq!(
            map.source(),
            shard.support().collect::<Vec<_>>(),
            "map source must equal the shard support"
        );
        // lint: allow(panic): the assert_eq above guarantees every shard
        // element is in the map's source set.
        let relabeled = shard.relabel(|e| map.apply(e).expect("support element"));
        self.base.with_shard_replaced(self.machine, relabeled)
    }

    /// Uniformly samples a family member (with its map).
    pub fn sample(&self, rng: &mut impl Rng) -> (OrderPreservingMap, DistributedDataset) {
        let source: Vec<u64> = self.base.shards()[self.machine].support().collect();
        let map = OrderPreservingMap::sample_image(source, self.base.universe(), rng);
        let ds = self.instance(&map);
        (map, ds)
    }

    /// Enumerates the whole family (small `N` only).
    pub fn enumerate(&self) -> Vec<DistributedDataset> {
        let source: Vec<u64> = self.base.shards()[self.machine].support().collect();
        OrderPreservingMap::enumerate_all(source, self.base.universe())
            .iter()
            .map(|m| self.instance(m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> HardInputFamily {
        HardInputFamily::canonical(6, 3, 1, 2, 3, 6)
    }

    #[test]
    fn canonical_constants_are_one() {
        let f = family();
        assert_eq!(f.alpha, 1.0);
        assert_eq!(f.beta, 1.0);
        assert_eq!(f.support_size(), 2);
        assert_eq!(f.shard_cardinality(), 6);
    }

    #[test]
    fn family_size_matches_lemma_5_6() {
        let f = family();
        assert_eq!(f.family_size(), Some(15)); // C(6,2)
        let members = f.enumerate();
        assert_eq!(members.len(), 15);
        // all members are pairwise distinct datasets
        let mut keys: Vec<String> = members.iter().map(|d| format!("{d:?}")).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 15);
    }

    #[test]
    fn instances_preserve_shape_invariants() {
        let f = family();
        for ds in f.enumerate() {
            let shard = &ds.shards()[1];
            assert_eq!(shard.support_size(), 2);
            assert_eq!(shard.cardinality(), 6);
            assert_eq!(shard.max_multiplicity(), 3);
            // other machines untouched (empty)
            assert!(ds.shards()[0].is_empty());
            assert!(ds.shards()[2].is_empty());
        }
    }

    #[test]
    fn erased_input_has_empty_distinguished_shard() {
        let f = family();
        let erased = f.erased();
        assert!(erased.shards()[1].is_empty());
    }

    #[test]
    fn sampling_yields_family_members() {
        use rand::SeedableRng;
        let f = family();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let all = f.enumerate();
        for _ in 0..20 {
            let (_, ds) = f.sample(&mut rng);
            assert!(all.contains(&ds), "sampled dataset not in enumeration");
        }
    }

    #[test]
    fn non_canonical_base_with_other_machines() {
        // machine 0 holds unrelated data; hard input condition must hold.
        let base = DistributedDataset::new(
            8,
            5,
            vec![
                Multiset::from_counts([(7, 2)]),
                Multiset::from_counts([(0, 3), (1, 3)]),
            ],
        )
        .unwrap();
        let f = HardInputFamily::new(base, 1);
        assert!(f.alpha > 0.7); // 6/8
        assert_eq!(f.beta, 1.0);
        // a relabeling may stack onto element 7: 2 + 3 = 5 ≤ ν ✓
        let map = OrderPreservingMap::new(vec![0, 1], vec![5, 7]);
        let inst = f.instance(&map);
        assert_eq!(inst.total_multiplicity(7), 5);
        assert!(inst.params().realized_capacity <= inst.capacity());
    }

    #[test]
    #[should_panic(expected = "capacity headroom")]
    fn headroom_violation_rejected() {
        let base = DistributedDataset::new(
            8,
            4,
            vec![
                Multiset::from_counts([(7, 2)]),
                Multiset::from_counts([(0, 3), (1, 3)]),
            ],
        )
        .unwrap();
        let _ = HardInputFamily::new(base, 1);
    }
}
