//! The hybrid-argument potential function, executed on the simulator.
//!
//! For a hard-input family `𝒯` for machine `k`, the paper studies
//!
//! ```text
//! D_t = E_{T∈𝒯} ‖ |ψ_t^T⟩ − |ψ_t⟩ ‖²                (Eq. 11)
//! ```
//!
//! where `|ψ_t^T⟩` is the coordinator state after `t` queries to machine
//! `k` when running on input `T`, and `|ψ_t⟩` is the state of the *same
//! circuit* run with machine `k` erased (its oracle is then the identity).
//! Obliviousness matters here: the circuit — AA schedule, rotation angles,
//! reflections — is fixed by the **public** parameters `(N, ν, M, n)`,
//! which every family member shares, so the runs differ *only* in `O_k`.
//!
//! Lemma 5.8 caps `D_t ≤ 4(m_k/N)·t²`; Lemma 5.7 forces
//! `D_{t_k} ≥ M_k/2M` for exact algorithms. Together they yield
//! `t_k = Ω(√(κ_k N/M))`. [`SequentialHybrid::run`] measures the trace for
//! the sequential model, [`ParallelHybrid::run`] for the parallel model
//! (Lemmas 5.9/5.10).
//!
//! The sweep over family members is embarrassingly parallel — each member's
//! circuit run is independent — and is executed with rayon. Per-member
//! distance vectors are folded into the [`Welford`] accumulators in member
//! order afterwards, so every trace is bit-identical to the serial sweep
//! regardless of `RAYON_NUM_THREADS`.

use crate::bounds::{growth_envelope, success_floor};
use crate::hard_inputs::HardInputFamily;
use dqs_core::amplify::AaPlan;
use dqs_core::{DistributingOperator, ParallelLayout, SequentialLayout};
use dqs_db::{DistributedDataset, OracleSet, QueryLedger};
use dqs_math::{Complex64, Welford};
use dqs_sim::{QuantumState, SparseState, StateTable};
use rand::Rng;
use rayon::prelude::*;

/// Which query model a hybrid experiment instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryModel {
    /// Sequential `O_j` queries; `t` counts queries to machine `k`.
    Sequential,
    /// Composite parallel rounds; `t` counts rounds.
    Parallel,
}

/// The measured potential function trace.
#[derive(Debug, Clone)]
pub struct PotentialTrace {
    /// Which model produced this trace.
    pub model: QueryModel,
    /// `D_t` for `t = 0, 1, …, t_k` (index = query count to machine `k`).
    pub d: Vec<f64>,
    /// Standard error of each `D_t` estimate across family members
    /// (`None` at `t = 0` and when only one member was used). Exact when
    /// the family was fully enumerated — then this is the family's true
    /// spread, not sampling noise.
    pub std_err: Vec<Option<f64>>,
    /// Family members averaged over (enumerated or sampled).
    pub members: usize,
    /// `m_k` — the distinguished support size.
    pub support_size: u64,
    /// `N`.
    pub universe: u64,
    /// `M_k`.
    pub shard_cardinality: u64,
    /// `M`.
    pub total_count: u64,
}

impl PotentialTrace {
    /// `t_k` — the total number of instrumented queries.
    pub fn queries(&self) -> u64 {
        (self.d.len() - 1) as u64
    }

    /// The final value `D_{t_k}`.
    pub fn final_potential(&self) -> f64 {
        // lint: allow(panic): `d` is seeded with the t = 0 entry at
        // construction and only ever grows.
        *self.d.last().expect("trace has at least t = 0")
    }

    /// Lemma 5.8/5.10 envelope at each `t`.
    pub fn envelope(&self) -> Vec<f64> {
        (0..self.d.len())
            .map(|t| growth_envelope(self.support_size, self.universe, t as u64))
            .collect()
    }

    /// Indices `t` where the measured `D_t` exceeds the envelope beyond
    /// numerical tolerance (must be empty — this *is* Lemma 5.8).
    pub fn envelope_violations(&self) -> Vec<usize> {
        self.d
            .iter()
            .zip(self.envelope())
            .enumerate()
            .filter(|(_, (&d, e))| d > e + 1e-9)
            .map(|(t, _)| t)
            .collect()
    }

    /// Lemma 5.7's floor `M_k/2M` for exact algorithms.
    pub fn floor(&self) -> f64 {
        success_floor(self.shard_cardinality, self.total_count)
    }

    /// True when the final potential clears the success floor (must hold
    /// because the instrumented algorithm is exact).
    pub fn clears_floor(&self) -> bool {
        self.final_potential() >= self.floor() - 1e-9
    }
}

/// Hybrid experiment for the sequential model.
#[derive(Debug, Clone)]
pub struct SequentialHybrid<'a> {
    family: &'a HardInputFamily,
}

impl<'a> SequentialHybrid<'a> {
    /// Creates the experiment.
    pub fn new(family: &'a HardInputFamily) -> Self {
        Self { family }
    }

    /// Runs the experiment, enumerating the family when it has at most
    /// `max_members` members and Monte-Carlo sampling `max_members` inputs
    /// otherwise. Uses the zero-error schedule for the base parameters.
    pub fn run(&self, max_members: usize, rng: &mut impl Rng) -> PotentialTrace {
        let plan = AaPlan::for_success_probability(
            self.family.base().params().initial_success_probability(),
        );
        self.run_with_plan(&plan, max_members, rng)
    }

    /// Like [`Self::run`], but instrumenting an arbitrary (still oblivious)
    /// amplitude-amplification schedule — e.g. a *plain* Grover plan whose
    /// output is inexact, which exercises Lemma 5.7's `ε > 0` regime.
    pub fn run_with_plan(
        &self,
        plan: &AaPlan,
        max_members: usize,
        rng: &mut impl Rng,
    ) -> PotentialTrace {
        let base = self.family.base();
        let k = self.family.machine();
        let plan = *plan;
        let layout = SequentialLayout::for_dataset(base);

        let erased_snaps = seq_snapshots(&self.family.erased(), &layout, &plan, k);
        let members = family_members(self.family, max_members, rng);
        // Each member's circuit run is independent (Eq. 11 averages over the
        // family), so simulate members in parallel; the per-step distances
        // are then folded into the Welford accumulators in member order,
        // giving bit-identical statistics to the serial sweep.
        let per_member: Vec<Vec<f64>> = members
            .par_iter()
            .map(|ds| {
                let snaps = seq_snapshots(ds, &layout, &plan, k);
                assert_eq!(snaps.len(), erased_snaps.len(), "oblivious schedule drift");
                snaps
                    .iter()
                    .zip(&erased_snaps)
                    .map(|(a, b)| a.distance_sqr(b))
                    .collect()
            })
            .collect();
        let mut acc = vec![Welford::new(); erased_snaps.len()];
        for dists in &per_member {
            for (slot, &v) in acc.iter_mut().zip(dists) {
                slot.push(v);
            }
        }
        let mut d = vec![0.0];
        let mut std_err = vec![None];
        d.extend(acc.iter().map(Welford::mean));
        std_err.extend(acc.iter().map(Welford::std_err));
        PotentialTrace {
            model: QueryModel::Sequential,
            d,
            std_err,
            members: members.len(),
            support_size: self.family.support_size(),
            universe: base.universe(),
            shard_cardinality: self.family.shard_cardinality(),
            total_count: base.total_count(),
        }
    }
}

/// Hybrid experiment for the parallel model (Lemmas 5.9 / 5.10).
#[derive(Debug, Clone)]
pub struct ParallelHybrid<'a> {
    family: &'a HardInputFamily,
}

impl<'a> ParallelHybrid<'a> {
    /// Creates the experiment.
    pub fn new(family: &'a HardInputFamily) -> Self {
        Self { family }
    }

    /// Runs the experiment (see [`SequentialHybrid::run`]).
    pub fn run(&self, max_members: usize, rng: &mut impl Rng) -> PotentialTrace {
        let base = self.family.base();
        let plan = AaPlan::for_success_probability(base.params().initial_success_probability());
        let layout = ParallelLayout::for_dataset(base);

        let erased_snaps = par_snapshots(&self.family.erased(), &layout, &plan);
        let members = family_members(self.family, max_members, rng);
        // Same member-parallel sweep as the sequential hybrid: simulate in
        // parallel, accumulate in member order for bit-identical statistics.
        let per_member: Vec<Vec<f64>> = members
            .par_iter()
            .map(|ds| {
                let snaps = par_snapshots(ds, &layout, &plan);
                assert_eq!(snaps.len(), erased_snaps.len(), "oblivious schedule drift");
                snaps
                    .iter()
                    .zip(&erased_snaps)
                    .map(|(a, b)| a.distance_sqr(b))
                    .collect()
            })
            .collect();
        let mut acc = vec![Welford::new(); erased_snaps.len()];
        for dists in &per_member {
            for (slot, &v) in acc.iter_mut().zip(dists) {
                slot.push(v);
            }
        }
        let mut d = vec![0.0];
        let mut std_err = vec![None];
        d.extend(acc.iter().map(Welford::mean));
        std_err.extend(acc.iter().map(Welford::std_err));
        PotentialTrace {
            model: QueryModel::Parallel,
            d,
            std_err,
            members: members.len(),
            support_size: self.family.support_size(),
            universe: base.universe(),
            shard_cardinality: self.family.shard_cardinality(),
            total_count: base.total_count(),
        }
    }
}

fn family_members(
    family: &HardInputFamily,
    max_members: usize,
    rng: &mut impl Rng,
) -> Vec<DistributedDataset> {
    match family.family_size() {
        Some(size) if size <= max_members as u128 => family.enumerate(),
        _ => (0..max_members).map(|_| family.sample(rng).1).collect(),
    }
}

/// Runs the sequential circuit fixed by `plan` with oracles over `ds`,
/// snapshotting after every query to machine `k`.
fn seq_snapshots(
    ds: &DistributedDataset,
    layout: &SequentialLayout,
    plan: &AaPlan,
    k: usize,
) -> Vec<StateTable> {
    let ledger = QueryLedger::new(ds.num_machines());
    let oracles = OracleSet::new(ds, &ledger);
    let d = DistributingOperator::new(ds.capacity());
    let anchor = uniform_anchor(&layout.layout, layout.elem);
    let mut snaps: Vec<StateTable> = Vec::new();

    let mut state = SparseState::from_basis(layout.layout.clone(), &[0, 0, 0]);
    state.apply_register_unitary(layout.elem, &dqs_sim::gates::dft(ds.universe()));

    {
        let mut observe = |j: usize, s: &SparseState| {
            if j == k {
                snaps.push(s.to_table());
            }
        };
        d.apply_sequential_observed(&oracles, &mut state, layout, false, &mut observe);
        dqs_core::amplify::execute_plan(&mut state, plan, &anchor, layout.flag, |s, inv| {
            d.apply_sequential_observed(&oracles, s, layout, inv, &mut observe)
        });
    }
    snaps
}

/// Runs the parallel circuit fixed by `plan` with oracles over `ds`,
/// snapshotting after every composite round.
fn par_snapshots(
    ds: &DistributedDataset,
    layout: &ParallelLayout,
    plan: &AaPlan,
) -> Vec<StateTable> {
    let ledger = QueryLedger::new(ds.num_machines());
    let oracles = OracleSet::new(ds, &ledger);
    let d = DistributingOperator::new(ds.capacity());
    let anchor = uniform_anchor(&layout.layout, layout.elem);
    let mut snaps: Vec<StateTable> = Vec::new();

    let mut state = SparseState::from_basis(layout.layout.clone(), &layout.layout.zero_basis());
    state.apply_register_unitary(layout.elem, &dqs_sim::gates::dft(ds.universe()));

    {
        let mut observe = |s: &SparseState| snaps.push(s.to_table());
        d.apply_parallel_observed(&oracles, &mut state, layout, false, &mut observe);
        dqs_core::amplify::execute_plan(&mut state, plan, &anchor, layout.flag, |s, inv| {
            d.apply_parallel_observed(&oracles, s, layout, inv, &mut observe)
        });
    }
    snaps
}

fn uniform_anchor(layout: &dqs_sim::Layout, elem: usize) -> StateTable {
    let n = layout.dim(elem);
    let amp = Complex64::from_real(1.0 / (n as f64).sqrt());
    let entries = (0..n)
        .map(|i| {
            let mut b = layout.zero_basis();
            b[elem] = i;
            (b.into_boxed_slice(), amp)
        })
        .collect();
    StateTable::new(layout.clone(), entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_family() -> HardInputFamily {
        // N = 8, n = 2, all data on machine 1: 2 elements × multiplicity 2,
        // ν = 4 → a = 4/32 = 1/8.
        HardInputFamily::canonical(8, 2, 1, 2, 2, 4)
    }

    #[test]
    fn sequential_trace_respects_lemma_5_8_envelope() {
        let f = small_family();
        let mut rng = StdRng::seed_from_u64(1);
        let trace = SequentialHybrid::new(&f).run(64, &mut rng);
        assert_eq!(trace.members, 28, "C(8,2) enumerated");
        assert!(
            trace.envelope_violations().is_empty(),
            "D_t must sit below 4(m_k/N)t²: {:?} vs {:?}",
            trace.d,
            trace.envelope()
        );
        // D grows: final strictly positive
        assert!(trace.final_potential() > 0.0);
    }

    #[test]
    fn sequential_trace_clears_lemma_5_7_floor() {
        let f = small_family();
        let mut rng = StdRng::seed_from_u64(2);
        let trace = SequentialHybrid::new(&f).run(64, &mut rng);
        assert!(
            trace.clears_floor(),
            "exact sampler must separate from the erased run: D = {} < floor = {}",
            trace.final_potential(),
            trace.floor()
        );
    }

    #[test]
    fn potential_is_monotone_from_zero() {
        let f = small_family();
        let mut rng = StdRng::seed_from_u64(3);
        let trace = SequentialHybrid::new(&f).run(64, &mut rng);
        assert_eq!(trace.d[0], 0.0);
        // not necessarily monotone in general, but must start at 0 and the
        // max must exceed the floor
        let max = trace.d.iter().cloned().fold(0.0, f64::max);
        assert!(max >= trace.floor());
    }

    #[test]
    fn query_count_matches_schedule() {
        let f = small_family();
        let mut rng = StdRng::seed_from_u64(4);
        let trace = SequentialHybrid::new(&f).run(16, &mut rng);
        let plan = AaPlan::for_success_probability(f.base().params().initial_success_probability());
        // machine k is queried twice per D application
        assert_eq!(trace.queries(), 2 * (2 * plan.total_iterations() + 1));
    }

    #[test]
    fn parallel_trace_respects_envelope_and_floor() {
        let f = small_family();
        let mut rng = StdRng::seed_from_u64(5);
        let trace = ParallelHybrid::new(&f).run(32, &mut rng);
        assert_eq!(trace.model, QueryModel::Parallel);
        assert!(
            trace.envelope_violations().is_empty(),
            "parallel D_t exceeds Lemma 5.10 envelope"
        );
        assert!(trace.clears_floor());
        let plan = AaPlan::for_success_probability(f.base().params().initial_success_probability());
        assert_eq!(trace.queries(), 4 * (2 * plan.total_iterations() + 1));
    }

    #[test]
    fn monte_carlo_sampling_close_to_enumeration() {
        let f = small_family();
        let exact = SequentialHybrid::new(&f).run(1000, &mut StdRng::seed_from_u64(6));
        assert_eq!(exact.members, 28);
        let mc = SequentialHybrid::new(&f).run(20, &mut StdRng::seed_from_u64(7));
        assert_eq!(mc.members, 20);
        let (e, m) = (exact.final_potential(), mc.final_potential());
        assert!(
            (e - m).abs() / e < 0.35,
            "MC estimate {m} too far from exact {e}"
        );
    }
}
