//! Closed-form bound curves from §5.
//!
//! These are the envelopes the measured potential function is checked
//! against, and the query lower bounds the measured algorithm costs are
//! compared with in Experiment E12.

use dqs_db::Params;

/// Lemma 5.8 (and 5.10): after `t` queries to machine `k`,
/// `D_t ≤ 4·(m_k/N)·t²`.
pub fn growth_envelope(support_size: u64, universe: u64, t: u64) -> f64 {
    4.0 * (support_size as f64 / universe as f64) * (t as f64) * (t as f64)
}

/// Lemma 5.7's floor for **exact** algorithms (`ε = 0`, hence `E_{t_k} = 0`
/// and `D_{t_k} ≥ F_{t_k} ≥ M_k/2M`).
pub fn success_floor(shard_cardinality: u64, total_count: u64) -> f64 {
    shard_cardinality as f64 / (2.0 * total_count as f64)
}

/// Lemma 5.7's floor for algorithms with fidelity `F = (1−ε)²`:
/// `D_{t_k} ≥ (√(M_k/2M) − √(2ε))²` (clamped at 0 when the fidelity is too
/// low for the bound to bite). The exact case `ε = 0` reduces to
/// [`success_floor`].
pub fn success_floor_eps(shard_cardinality: u64, total_count: u64, epsilon: f64) -> f64 {
    let root = success_floor(shard_cardinality, total_count).sqrt() - (2.0 * epsilon).sqrt();
    if root > 0.0 {
        root * root
    } else {
        0.0
    }
}

/// Theorem 5.1: `Σ_j √(κ_j·N/M)` — the sequential query lower bound up to
/// a universal constant.
pub fn sequential_query_lower_bound(params: &Params) -> f64 {
    params
        .machine_capacities
        .iter()
        .map(|&k| (k as f64 * params.universe as f64 / params.total_count as f64).sqrt())
        .sum()
}

/// Theorem 5.2: `max_j √(κ_j·N/M)` — the parallel round lower bound up to a
/// universal constant.
pub fn parallel_query_lower_bound(params: &Params) -> f64 {
    params
        .machine_capacities
        .iter()
        .map(|&k| (k as f64 * params.universe as f64 / params.total_count as f64).sqrt())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::{DistributedDataset, Multiset};
    use dqs_math::approx::approx_eq;

    #[test]
    fn envelope_is_quadratic() {
        assert_eq!(growth_envelope(2, 8, 0), 0.0);
        assert!(approx_eq(growth_envelope(2, 8, 1), 1.0));
        assert!(approx_eq(growth_envelope(2, 8, 3), 9.0));
    }

    #[test]
    fn floor_is_half_mass_fraction() {
        assert!(approx_eq(success_floor(6, 12), 0.25));
        assert!(approx_eq(success_floor(12, 12), 0.5));
    }

    #[test]
    fn eps_floor_interpolates() {
        // ε = 0 recovers the exact floor
        assert!(approx_eq(success_floor_eps(6, 12, 0.0), 0.25));
        // growing ε weakens the floor monotonically
        let mut last = success_floor_eps(6, 12, 0.0);
        for k in 1..10 {
            let f = success_floor_eps(6, 12, k as f64 * 0.01);
            assert!(f <= last + 1e-12);
            last = f;
        }
        // huge ε clamps at zero
        assert_eq!(success_floor_eps(6, 12, 1.0), 0.0);
    }

    #[test]
    fn lower_bounds_sum_vs_max() {
        let ds = DistributedDataset::new(
            16,
            8,
            vec![
                Multiset::from_counts([(0, 4)]),
                Multiset::from_counts([(1, 1)]),
            ],
        )
        .unwrap();
        let p = ds.params();
        let seq = sequential_query_lower_bound(&p);
        let par = parallel_query_lower_bound(&p);
        // κ = (4, 1), N = 16, M = 5
        let t0 = (4.0f64 * 16.0 / 5.0).sqrt();
        let t1 = (1.0f64 * 16.0 / 5.0).sqrt();
        assert!(approx_eq(seq, t0 + t1));
        assert!(approx_eq(par, t0));
        assert!(seq >= par);
    }

    #[test]
    fn homogeneous_machines_reduce_to_paper_theorem_1_1() {
        // κ_j = ν for all j → sequential Ω(n√(νN/M)), parallel Ω(√(νN/M)).
        let shards = vec![
            Multiset::from_counts([(0, 2)]),
            Multiset::from_counts([(1, 2)]),
            Multiset::from_counts([(2, 2)]),
        ];
        let ds = DistributedDataset::new(32, 2, shards).unwrap();
        let p = ds.params();
        let per = (2.0f64 * 32.0 / 6.0).sqrt();
        assert!(approx_eq(sequential_query_lower_bound(&p), 3.0 * per));
        assert!(approx_eq(parallel_query_lower_bound(&p), per));
    }
}
