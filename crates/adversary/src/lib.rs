//! # dqs-adversary
//!
//! Numeric machinery for the paper's lower bounds (§5): the hybrid/adversary
//! argument à la Zalka, executed on the real simulator.
//!
//! * [`permutation`] — order-preserving maps `σ` and the image-set
//!   combinatorics behind Lemma 5.6.
//! * [`hard_inputs`] — the hard-input families `𝒯 = {σ̃^k(T)}` of
//!   Definitions 5.4/5.5, with enumeration (small `N`) and uniform sampling
//!   (large `N`).
//! * [`hybrid`] — runs the sampling algorithm on an input `T` and on the
//!   machine-`k`-erased input `T̃`, snapshotting the coordinator state after
//!   each query to machine `k`, and estimates the potential function
//!   `D_t = E_{T∈𝒯} ‖|ψ_t^T⟩ − |ψ_t⟩‖²` (Eq. 11).
//! * [`bounds`] — the closed-form envelopes: Lemma 5.8's growth cap
//!   `D_t ≤ 4(m_k/N)t²`, Lemma 5.7's success floor `D_{t_k} ≥ M_k/2M` (for
//!   exact algorithms), and the query lower bounds of Theorems 5.1/5.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod hard_inputs;
pub mod hybrid;
pub mod permutation;

pub use bounds::{
    growth_envelope, parallel_query_lower_bound, sequential_query_lower_bound, success_floor,
    success_floor_eps,
};
pub use hard_inputs::HardInputFamily;
pub use hybrid::{ParallelHybrid, PotentialTrace, QueryModel, SequentialHybrid};
pub use permutation::OrderPreservingMap;
