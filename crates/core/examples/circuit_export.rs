//! Exports the compiled sampler circuits as shape listings, before and
//! after the peephole optimizer — a quick way to *see* the compiled-operator
//! layer: the `2n`-query oracle cascades collapse to single `FO[...]` fused
//! passes while the per-machine query tags (the paper's cost metric) are
//! carried along unchanged.
//!
//! Run with: `cargo run -p dqs-core --example circuit_export`

use dqs_core::{compile_parallel, compile_sequential};
use dqs_db::{DistributedDataset, Multiset};

fn main() {
    let dataset = DistributedDataset::new(
        8,
        4,
        vec![
            Multiset::from_counts([(0, 2), (1, 1)]),
            Multiset::from_counts([(1, 1), (6, 3)]),
        ],
    )
    .expect("valid demo dataset");
    let n = dataset.num_machines();

    let seq = compile_sequential(&dataset);
    let seq_opt = seq.optimize();
    println!("== sequential sampler (raw, {} instructions) ==", seq.len());
    println!("{}", seq.shape());
    println!(
        "\n== sequential sampler (optimized, {} instructions) ==",
        seq_opt.len()
    );
    println!("{}", seq_opt.shape());
    assert_eq!(
        seq.oracle_queries(n),
        seq_opt.oracle_queries(n),
        "optimization must not perturb query accounting"
    );
    println!(
        "\nper-machine queries (invariant): {:?}",
        seq_opt.oracle_queries(n)
    );

    let par = compile_parallel(&dataset);
    let par_opt = par.optimize();
    println!("\n== parallel sampler (raw, {} instructions) ==", par.len());
    println!("{}", par.shape());
    println!(
        "\n== parallel sampler (optimized, {} instructions) ==",
        par_opt.len()
    );
    println!("{}", par_opt.shape());
    assert_eq!(par.parallel_rounds(), par_opt.parallel_rounds());
    println!(
        "\ncomposite rounds (invariant): {}",
        par_opt.parallel_rounds()
    );
}
