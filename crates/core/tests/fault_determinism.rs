//! Property-based checks for the fault-injection layer's replay contract:
//! on *random* datasets and *random* seeded fault plans,
//!
//! 1. a degraded run is bit-for-bit deterministic — replaying the same
//!    `(dataset, plan, policy)` reproduces the identical state table,
//!    ledger snapshot, dead set, and retry/backoff accounting;
//! 2. the sparse and dense backends agree on every observable (ledger,
//!    breaker decisions, fidelities, output distribution);
//! 3. a zero-fault plan is indistinguishable from the faultless samplers —
//!    identical state tables *and* identical ledger snapshots, sequential
//!    and parallel alike.

use dqs_core::{
    parallel_sample, parallel_sample_degraded, sequential_sample, sequential_sample_degraded,
    DegradedRun, RetryPolicy,
};
use dqs_db::{DistributedDataset, FaultPlan, FaultRates, Multiset};
use dqs_sim::{DenseState, QuantumState, SparseState};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// A random dataset: `universe ∈ [2,8]`, `ν ∈ [1,4]`, `1..=3` machines,
/// nonempty (same shape as the fused-equivalence suite).
fn dataset_strategy() -> impl Strategy<Value = DistributedDataset> {
    (2u64..=8, 1u64..=4, 1usize..=3)
        .prop_flat_map(|(universe, capacity, machines)| {
            let counts = proptest::collection::vec(
                proptest::collection::vec(0..=capacity, universe as usize),
                machines,
            );
            (Just(universe), Just(capacity), counts)
        })
        .prop_map(|(universe, capacity, mut counts)| {
            for i in 0..universe as usize {
                let mut running = 0;
                for shard in counts.iter_mut() {
                    shard[i] = shard[i].min(capacity - running);
                    running += shard[i];
                }
            }
            if counts.iter().all(|shard| shard.iter().all(|&c| c == 0)) {
                counts[0][0] = 1;
            }
            let shards = counts
                .into_iter()
                .map(|per_elem| {
                    Multiset::from_counts(
                        per_elem
                            .into_iter()
                            .enumerate()
                            .filter(|(_, c)| *c > 0)
                            .map(|(i, c)| (i as u64, c)),
                    )
                })
                .collect();
            DistributedDataset::new(universe, capacity, shards).expect("valid random dataset")
        })
}

/// Flattens a run into its comparable observables (the state is compared
/// separately, bit-exactly or by distance depending on the claim).
fn observables<S: QuantumState, L>(
    run: &DegradedRun<S, L>,
) -> (Vec<u64>, u64, u64, Vec<usize>, Vec<usize>, u64, u64) {
    (
        run.queries.per_machine.clone(),
        run.queries.parallel_rounds,
        run.restarts,
        run.survivors.clone(),
        run.dead.clone(),
        run.total_retries,
        run.backoff_ticks,
    )
}

fn ok<T>(r: Result<T, dqs_core::SampleError>) -> Result<T, TestCaseError> {
    r.map_err(|e| TestCaseError::fail(format!("unexpected sampling error: {e}")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn degraded_runs_replay_bit_identically_and_backends_agree(
        ds in dataset_strategy(),
        seed in 0u64..512,
        rate_permille in 0u64..=400,
    ) {
        let rate = rate_permille as f64 / 1000.0;
        // Onsets inside the window machines are actually queried in, so
        // the generated faults are non-vacuous.
        let rates = FaultRates::uniform(rate, 16);
        let plan = FaultPlan::seeded(ds.num_machines(), seed, &rates);
        // Seeded generation itself must be deterministic.
        prop_assert_eq!(&plan, &FaultPlan::seeded(ds.num_machines(), seed, &rates));
        let policy = RetryPolicy::default();

        let a = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy);
        let b = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy);
        let c = sequential_sample_degraded::<DenseState>(&ds, &plan, &policy);
        match (a, b, c) {
            (Ok(a), Ok(b), Ok(c)) => {
                // Replay: bit-identical state and accounting.
                prop_assert_eq!(a.state.to_table(), b.state.to_table());
                prop_assert_eq!(observables(&a), observables(&b));
                // Backends: identical accounting, same state up to
                // float-roundoff-free equality of the table distance.
                prop_assert_eq!(observables(&a), observables(&c));
                prop_assert!(
                    a.state.to_table().distance_sqr(&c.state.to_table()) < 1e-18,
                    "sparse and dense degraded states diverged"
                );
                prop_assert!((a.fidelity_bound - c.fidelity_bound).abs() < 1e-12);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&a.fidelity_bound));
                // The run state stays a unit vector whatever the faults did.
                prop_assert!((a.state.norm() - 1.0).abs() < 1e-9);
            }
            (Err(a), Err(b), Err(c)) => {
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(&a, &c);
            }
            _ => prop_assert!(false, "replays/backends disagreed on run outcome"),
        }
    }

    #[test]
    fn parallel_degraded_runs_replay_bit_identically(
        ds in dataset_strategy(),
        seed in 0u64..512,
        rate_permille in 0u64..=400,
    ) {
        let rate = rate_permille as f64 / 1000.0;
        let plan = FaultPlan::seeded(ds.num_machines(), seed, &FaultRates::uniform(rate, 16));
        let policy = RetryPolicy::default();
        let a = parallel_sample_degraded::<SparseState>(&ds, &plan, &policy);
        let b = parallel_sample_degraded::<SparseState>(&ds, &plan, &policy);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.state.to_table(), b.state.to_table());
                prop_assert_eq!(observables(&a), observables(&b));
                // Parallel charging is rounds-only: the per-machine
                // sequential counters must stay untouched.
                prop_assert_eq!(a.queries.total_sequential(), 0);
            }
            (Err(a), Err(b)) => prop_assert_eq!(&a, &b),
            _ => prop_assert!(false, "parallel replay diverged"),
        }
    }

    #[test]
    fn zero_fault_plan_is_indistinguishable_from_faultless(
        ds in dataset_strategy(),
    ) {
        let plan = FaultPlan::none(ds.num_machines());
        prop_assert!(plan.is_fault_free());
        let policy = RetryPolicy::default();

        let deg = ok(sequential_sample_degraded::<SparseState>(&ds, &plan, &policy))?;
        let base = ok(sequential_sample::<SparseState>(&ds))?;
        prop_assert_eq!(deg.state.to_table(), base.state.to_table());
        prop_assert_eq!(&deg.queries, &base.queries);
        prop_assert_eq!(deg.restarts, 1);
        prop_assert_eq!(deg.total_retries, 0);
        prop_assert_eq!(deg.fidelity_bound, 1.0);

        let degp = ok(parallel_sample_degraded::<SparseState>(&ds, &plan, &policy))?;
        let basep = ok(parallel_sample::<SparseState>(&ds))?;
        prop_assert_eq!(degp.state.to_table(), basep.state.to_table());
        prop_assert_eq!(&degp.queries, &basep.queries);
    }
}
