//! Property-based and integration checks for the fused distributing-operator
//! kernel: on *random* datasets (and random update logs) the single-pass
//! fused realization must be **bit-identical** to the literal Lemma 4.2
//! cascade on every backend — dense, packed sparse, and the boxed-slice
//! sparse fallback — and full fused runs must produce the same ledger
//! snapshots and exact cost-model match the gate-by-gate runs do.

use dqs_core::{sequential_sample_with_realization, DistributingOperator, SequentialLayout};
use dqs_db::{DistributedDataset, Multiset, OracleSet, QueryLedger, UpdateLog, UpdateOp};
use dqs_sim::{gates, DenseState, QuantumState, SparseState};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Boolean strategy (the offline proptest stub has no `proptest::bool`).
fn any_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|x| x == 1)
}

/// A random dataset: `universe ∈ [2,8]`, `ν ∈ [1,4]`, `1..=3` machines,
/// every per-machine multiplicity in `0..=ν`, at least one record overall.
fn dataset_strategy() -> impl Strategy<Value = DistributedDataset> {
    (2u64..=8, 1u64..=4, 1usize..=3)
        .prop_flat_map(|(universe, capacity, machines)| {
            let counts = proptest::collection::vec(
                proptest::collection::vec(0..=capacity, universe as usize),
                machines,
            );
            (Just(universe), Just(capacity), counts)
        })
        .prop_map(|(universe, capacity, mut counts)| {
            // `ν` bounds the per-element total `Σ_j c_ij`: clamp machine by
            // machine so each element's running total never exceeds it.
            for i in 0..universe as usize {
                let mut running = 0;
                for shard in counts.iter_mut() {
                    shard[i] = shard[i].min(capacity - running);
                    running += shard[i];
                }
            }
            // Guarantee a nonempty dataset (safe: everything is zero here).
            if counts.iter().all(|shard| shard.iter().all(|&c| c == 0)) {
                counts[0][0] = 1;
            }
            let shards = counts
                .into_iter()
                .map(|per_elem| {
                    Multiset::from_counts(
                        per_elem
                            .into_iter()
                            .enumerate()
                            .filter(|(_, c)| *c > 0)
                            .map(|(i, c)| (i as u64, c)),
                    )
                })
                .collect();
            DistributedDataset::new(universe, capacity, shards).expect("valid random dataset")
        })
}

/// Raw update requests; [`build_log`] drops the ones that would push a
/// multiplicity outside `0..=ν`.
fn updates_strategy() -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
    proptest::collection::vec((0usize..3, 0u64..8, any_bool()), 0..8)
}

/// Filters raw `(machine, element, is_insert)` requests into a valid
/// [`UpdateLog`] for `ds`: a per-machine count can never go negative and the
/// per-element **total** `Σ_j c_ij` can never exceed `ν`.
fn build_log(ds: &DistributedDataset, raw: &[(usize, u64, bool)]) -> UpdateLog {
    let mut log = UpdateLog::new();
    let mut eff: Vec<Vec<u64>> = (0..ds.num_machines())
        .map(|j| (0..ds.universe()).map(|i| ds.multiplicity(i, j)).collect())
        .collect();
    let mut totals: Vec<u64> = (0..ds.universe())
        .map(|i| ds.total_multiplicity(i))
        .collect();
    for &(machine, element, is_insert) in raw {
        let (j, i) = (machine % ds.num_machines(), element % ds.universe());
        if is_insert && totals[i as usize] < ds.capacity() {
            eff[j][i as usize] += 1;
            totals[i as usize] += 1;
            log.push(UpdateOp::insert(j, i));
        } else if !is_insert && eff[j][i as usize] > 0 {
            eff[j][i as usize] -= 1;
            totals[i as usize] -= 1;
            log.push(UpdateOp::delete(j, i));
        }
    }
    log
}

/// A state with nontrivial amplitudes on every register: uniform element
/// register, split flag, element-dependent phases.
fn prepped<S: QuantumState>(layout: &SequentialLayout, universe: u64) -> S {
    let mut s = S::from_basis(layout.layout.clone(), &[0, 0, 0]);
    s.apply_register_unitary(layout.elem, &gates::dft(universe));
    s.apply_register_unitary(layout.flag, &gates::dft(2));
    s.apply_phase(|b| dqs_math::Complex64::cis(0.29 * b[layout.elem] as f64));
    s
}

/// Applies `D` (or `D†`) fused and gate-by-gate on one backend and asserts
/// bit-identical output tables and equal ledger snapshots.
fn check_backend<S: QuantumState>(
    ds: &DistributedDataset,
    log: Option<&UpdateLog>,
    inverse: bool,
    mk: impl Fn(&SequentialLayout) -> S,
) -> Result<(), TestCaseError> {
    let layout = SequentialLayout::for_dataset(ds);
    let mut runs = Vec::new();
    for fused in [true, false] {
        let d = DistributingOperator::with_fused(ds.capacity(), fused);
        let ledger = QueryLedger::new(ds.num_machines());
        let oracles = match log {
            Some(l) => OracleSet::with_updates(ds, &ledger, l),
            None => OracleSet::new(ds, &ledger),
        };
        let mut state = mk(&layout);
        d.apply_sequential(&oracles, &mut state, &layout, inverse);
        runs.push((state.to_table(), ledger.snapshot()));
    }
    let (fused_t, fused_q) = &runs[0];
    let (gbg_t, gbg_q) = &runs[1];
    prop_assert_eq!(
        fused_t.distance_sqr(gbg_t),
        0.0,
        "fused vs gate-by-gate must be bit-identical (inverse={})",
        inverse
    );
    prop_assert_eq!(fused_q, gbg_q, "ledgers must match");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_matches_cascade_on_random_datasets(
        ds in dataset_strategy(),
        inverse in any_bool(),
    ) {
        let n = ds.universe();
        check_backend(&ds, None, inverse, |l| prepped::<DenseState>(l, n))?;
        check_backend(&ds, None, inverse, |l| prepped::<SparseState>(l, n))?;
        check_backend(&ds, None, inverse, |l| {
            // Boxed-slice fallback representation of the sparse backend.
            let mut s = SparseState::from_basis_fallback(l.layout.clone(), &[0, 0, 0]);
            assert!(!s.is_packed());
            s.apply_register_unitary(l.elem, &gates::dft(n));
            s.apply_register_unitary(l.flag, &gates::dft(2));
            s.apply_phase(|b| dqs_math::Complex64::cis(0.29 * b[l.elem] as f64));
            s
        })?;
    }

    #[test]
    fn fused_matches_cascade_under_random_update_logs(
        ds in dataset_strategy(),
        raw in updates_strategy(),
        inverse in any_bool(),
    ) {
        let log = build_log(&ds, &raw);
        let n = ds.universe();
        check_backend(&ds, Some(&log), inverse, |l| prepped::<DenseState>(l, n))?;
        check_backend(&ds, Some(&log), inverse, |l| prepped::<SparseState>(l, n))?;
    }
}

/// Full end-to-end runs: the fused fast path must reproduce the
/// gate-by-gate run's ledger snapshot exactly, keep fidelity 1, and keep
/// the closed-form cost model exact (the E13 predictor's foundation).
#[test]
fn fused_run_ledger_and_cost_model_match_gate_by_gate() {
    let grid: &[(u64, u64, usize)] = &[(8, 4, 2), (16, 8, 3), (32, 6, 1)];
    for &(universe, total, machines) in grid {
        let ds = dqs_workloads::WorkloadSpec::small_uniform(universe, total, machines, 7).build();
        let fused =
            sequential_sample_with_realization::<SparseState>(&ds, true).expect("faultless run");
        let gbg =
            sequential_sample_with_realization::<SparseState>(&ds, false).expect("faultless run");
        assert_eq!(
            fused.queries, gbg.queries,
            "ledger snapshots diverged at N={universe} n={machines}"
        );
        assert_eq!(
            fused.queries.total_sequential(),
            fused.cost.sequential_queries,
            "fused run broke the exact cost predictor at N={universe} n={machines}"
        );
        assert!(fused.fidelity > 1.0 - 1e-9);
        assert!(gbg.fidelity > 1.0 - 1e-9);
        assert_eq!(
            fused.state.to_table().distance_sqr(&gbg.state.to_table()),
            0.0,
            "end-to-end outputs must be bit-identical"
        );
    }
}
