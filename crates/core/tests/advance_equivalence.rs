//! Property-based checks for incremental artifact recompilation
//! (DESIGN.md §15): on *random* datasets and *random* update logs,
//! [`CompiledArtifacts::advance`] must be **bit-identical** to a
//! from-scratch rebuild — count tables, total tables, anchor states, and
//! the optimized programs' action on every backend (dense, packed sparse,
//! boxed-slice sparse fallback) — and a snapshot-pinned reader must stay
//! bit-identical to a pre-write solo run no matter how many versions the
//! writer advances past it.

use dqs_core::{
    replay_sequential_run, sequential_sample, sequential_sample_cached, ArtifactCache,
    CompiledArtifacts, DatasetSnapshot,
};
use dqs_db::{DistributedDataset, Multiset, UpdateLog, UpdateOp};
use dqs_sim::{DenseState, Program, QuantumState, SparseState};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Boolean strategy (the offline proptest stub has no `proptest::bool`).
fn any_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|x| x == 1)
}

/// A random dataset: `universe ∈ [2,8]`, `ν ∈ [1,4]`, `1..=3` machines,
/// every per-machine multiplicity in `0..=ν`, at least one record overall.
fn dataset_strategy() -> impl Strategy<Value = DistributedDataset> {
    (2u64..=8, 1u64..=4, 1usize..=3)
        .prop_flat_map(|(universe, capacity, machines)| {
            let counts = proptest::collection::vec(
                proptest::collection::vec(0..=capacity, universe as usize),
                machines,
            );
            (Just(universe), Just(capacity), counts)
        })
        .prop_map(|(universe, capacity, mut counts)| {
            // `ν` bounds the per-element total `Σ_j c_ij`: clamp machine by
            // machine so each element's running total never exceeds it.
            for i in 0..universe as usize {
                let mut running = 0;
                for shard in counts.iter_mut() {
                    shard[i] = shard[i].min(capacity - running);
                    running += shard[i];
                }
            }
            // Guarantee a nonempty dataset (safe: everything is zero here).
            if counts.iter().all(|shard| shard.iter().all(|&c| c == 0)) {
                counts[0][0] = 1;
            }
            let shards = counts
                .into_iter()
                .map(|per_elem| {
                    Multiset::from_counts(
                        per_elem
                            .into_iter()
                            .enumerate()
                            .filter(|(_, c)| *c > 0)
                            .map(|(i, c)| (i as u64, c)),
                    )
                })
                .collect();
            DistributedDataset::new(universe, capacity, shards).expect("valid random dataset")
        })
}

/// Raw update requests; [`build_log`] drops the ones that would push a
/// multiplicity outside `0..=ν`.
fn updates_strategy() -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
    proptest::collection::vec((0usize..3, 0u64..8, any_bool()), 0..8)
}

/// Filters raw `(machine, element, is_insert)` requests into a valid
/// [`UpdateLog`] for `ds` — plus a guaranteed-alive floor: the log never
/// deletes the last record (advance targets must stay nonempty).
fn build_log(ds: &DistributedDataset, raw: &[(usize, u64, bool)]) -> UpdateLog {
    let mut log = UpdateLog::new();
    let mut eff: Vec<Vec<u64>> = (0..ds.num_machines())
        .map(|j| (0..ds.universe()).map(|i| ds.multiplicity(i, j)).collect())
        .collect();
    let mut totals: Vec<u64> = (0..ds.universe())
        .map(|i| ds.total_multiplicity(i))
        .collect();
    let mut alive: u64 = totals.iter().sum();
    for &(machine, element, is_insert) in raw {
        let (j, i) = (machine % ds.num_machines(), element % ds.universe());
        if is_insert && totals[i as usize] < ds.capacity() {
            eff[j][i as usize] += 1;
            totals[i as usize] += 1;
            alive += 1;
            log.push(UpdateOp::insert(j, i));
        } else if !is_insert && eff[j][i as usize] > 0 && alive > 1 {
            eff[j][i as usize] -= 1;
            totals[i as usize] -= 1;
            alive -= 1;
            log.push(UpdateOp::delete(j, i));
        }
    }
    log
}

/// Asserts two programs act bit-identically on all three backends,
/// starting from the all-zeros basis state of their (shared-shape) layout.
fn assert_programs_equivalent(a: &Program, b: &Program) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape(), "program shapes diverged");
    let zeros = a.layout().zero_basis();
    let dense_a = a.run_from_basis::<DenseState>(&zeros).to_table();
    let dense_b = b.run_from_basis::<DenseState>(&zeros).to_table();
    prop_assert_eq!(dense_a.distance_sqr(&dense_b), 0.0, "dense backend");
    let sparse_a = a.run_from_basis::<SparseState>(&zeros).to_table();
    let sparse_b = b.run_from_basis::<SparseState>(&zeros).to_table();
    prop_assert_eq!(sparse_a.distance_sqr(&sparse_b), 0.0, "packed sparse");
    let mut fb_a = SparseState::from_basis_fallback(a.layout().clone(), &zeros);
    prop_assert!(!fb_a.is_packed());
    a.run(&mut fb_a);
    let mut fb_b = SparseState::from_basis_fallback(b.layout().clone(), &zeros);
    b.run(&mut fb_b);
    prop_assert_eq!(
        fb_a.to_table().distance_sqr(&fb_b.to_table()),
        0.0,
        "boxed-slice sparse fallback"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `advance` over a random log ≡ rebuild from scratch: count tables,
    /// total table, anchors, and both optimized programs, across backends.
    #[test]
    fn advance_is_bit_identical_to_rebuild(
        ds in dataset_strategy(),
        raw in updates_strategy(),
    ) {
        let log = build_log(&ds, &raw);
        let snap = DatasetSnapshot::new(ds);
        let parent = CompiledArtifacts::build(&snap);
        let next = snap.with_updates(&log);
        let advanced = parent.advance(&log, &next).expect("direct successor");
        let rebuilt = CompiledArtifacts::build(&next);

        prop_assert_eq!(advanced.version(), rebuilt.version());
        prop_assert_eq!(
            advanced.total_table().as_slice(),
            rebuilt.total_table().as_slice(),
            "total tables diverged"
        );
        for (j, (a, r)) in advanced
            .machine_tables()
            .iter()
            .zip(rebuilt.machine_tables())
            .enumerate()
        {
            prop_assert_eq!(a.as_slice(), r.as_slice(), "machine {} table", j);
        }
        prop_assert_eq!(
            advanced
                .sequential_anchor()
                .distance_sqr(rebuilt.sequential_anchor()),
            0.0,
            "sequential anchors diverged"
        );
        prop_assert_eq!(
            advanced
                .parallel_anchor()
                .distance_sqr(rebuilt.parallel_anchor()),
            0.0,
            "parallel anchors diverged"
        );
        assert_programs_equivalent(
            advanced.sequential_program(),
            rebuilt.sequential_program(),
        )?;
        assert_programs_equivalent(
            advanced.parallel_program(),
            rebuilt.parallel_program(),
        )?;
    }

    /// Chained derives through the cache stay bit-identical to rebuilds:
    /// version `k` patched from `k-1` equals a cold compile of version `k`.
    #[test]
    fn chained_cache_derives_match_cold_compiles(
        ds in dataset_strategy(),
        raw1 in updates_strategy(),
        raw2 in updates_strategy(),
    ) {
        let cache = ArtifactCache::new();
        let v0 = DatasetSnapshot::new(ds);
        cache.artifacts(&v0);
        let log1 = build_log(v0.dataset(), &raw1);
        let v1 = v0.with_updates(&log1);
        let log2 = build_log(v1.dataset(), &raw2);
        let v2 = v1.with_updates(&log2);
        for snap in [&v1, &v2] {
            let derived = cache.artifacts(snap);
            let cold = CompiledArtifacts::build(snap);
            prop_assert_eq!(
                derived.total_table().as_slice(),
                cold.total_table().as_slice()
            );
            for (d, c) in derived.machine_tables().iter().zip(cold.machine_tables()) {
                prop_assert_eq!(d.as_slice(), c.as_slice());
            }
        }
        prop_assert_eq!(cache.stats().derives, 2, "both versions derived");
        prop_assert_eq!(cache.stats().misses, 1, "only version 0 cold");
    }

    /// A reader pinned at version 0 stays bit-identical to a pre-write solo
    /// run while a writer advances versions through the same cache.
    #[test]
    fn pinned_readers_match_pre_write_solo_runs(
        ds in dataset_strategy(),
        raw1 in updates_strategy(),
        raw2 in updates_strategy(),
    ) {
        let solo = sequential_sample::<SparseState>(&ds).expect("faultless");
        let cache = ArtifactCache::new();
        let pinned = DatasetSnapshot::new(ds);
        cache.artifacts(&pinned);
        // Writer lands two versions through the same cache.
        let log1 = build_log(pinned.dataset(), &raw1);
        let v1 = pinned.with_updates(&log1);
        cache.artifacts(&v1);
        let log2 = build_log(v1.dataset(), &raw2);
        let v2 = v1.with_updates(&log2);
        cache.artifacts(&v2);
        // Reader resolves its pinned snapshot (possibly recompiling after
        // eviction) and must reproduce the pre-write run bit-for-bit.
        let arts = cache.artifacts(&pinned);
        let template =
            sequential_sample_cached::<SparseState>(&arts).expect("faultless");
        let run = replay_sequential_run(pinned.dataset(), &template);
        prop_assert_eq!(
            run.state.to_table().distance_sqr(&solo.state.to_table()),
            0.0,
            "pinned reader diverged from the pre-write solo run"
        );
        prop_assert_eq!(&run.queries, &solo.queries);
        prop_assert_eq!(run.fidelity.to_bits(), solo.fidelity.to_bits());
    }
}
