//! Batched-sampler equivalence suite.
//!
//! The batched entry points (`sequential_sample_batch`,
//! `parallel_sample_batch`, `estimate_total_count_batch`) promise that a
//! batch of `B` tenants is indistinguishable from `B` solo runs on every
//! observable axis: the output states (bitwise), the per-tenant ledger
//! snapshots, **and** the full observability event stream. This suite pins
//! all three, plus a genuine multi-member [`dqs_sim::Program::run_batch`]
//! drive of the compiled sampler circuit.

use dqs_core::{
    compile_sequential_optimized, estimate_total_count, estimate_total_count_batch,
    parallel_sample, parallel_sample_batch, sequential_sample, sequential_sample_batch,
};
use dqs_db::{DistributedDataset, Multiset};
use dqs_math::Complex64;
use dqs_obs::Recorder;
use dqs_sim::{BatchedState, DenseState, QuantumState, SparseState};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> DistributedDataset {
    DistributedDataset::new(
        8,
        4,
        vec![
            Multiset::from_counts([(0, 2), (1, 1), (5, 1)]),
            Multiset::from_counts([(1, 1), (6, 3)]),
        ],
    )
    .unwrap()
}

/// Runs `f` under a fresh recorder and returns `(recorder, f's output)`.
fn recorded<T>(f: impl FnOnce() -> T) -> (Recorder, T) {
    let rec = Recorder::new();
    let out = dqs_obs::with_recorder(&rec, f);
    (rec, out)
}

#[test]
fn sequential_batch_event_stream_matches_b_solo_runs() {
    let ds = dataset();
    let b = 4;
    let (rec_batch, batch) =
        recorded(|| sequential_sample_batch::<SparseState>(&ds, b).expect("faultless batch"));
    let (rec_solo, solos) = recorded(|| {
        (0..b)
            .map(|_| sequential_sample::<SparseState>(&ds).expect("faultless run"))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        rec_batch.events(),
        rec_solo.events(),
        "batched replay changed the event stream"
    );
    assert_eq!(rec_batch.counters(), rec_solo.counters());
    for (run, solo) in batch.iter().zip(&solos) {
        assert_eq!(
            run.state.to_table().distance_sqr(&solo.state.to_table()),
            0.0
        );
        assert_eq!(run.queries, solo.queries);
        assert_eq!(run.fidelity.to_bits(), solo.fidelity.to_bits());
    }
}

#[test]
fn parallel_batch_event_stream_matches_b_solo_runs() {
    let ds = dataset();
    let b = 3;
    let (rec_batch, batch) =
        recorded(|| parallel_sample_batch::<SparseState>(&ds, b).expect("faultless batch"));
    let (rec_solo, solos) = recorded(|| {
        (0..b)
            .map(|_| parallel_sample::<SparseState>(&ds).expect("faultless run"))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        rec_batch.events(),
        rec_solo.events(),
        "batched replay changed the event stream"
    );
    assert_eq!(rec_batch.counters(), rec_solo.counters());
    for (run, solo) in batch.iter().zip(&solos) {
        assert_eq!(
            run.state.to_table().distance_sqr(&solo.state.to_table()),
            0.0
        );
        assert_eq!(run.queries, solo.queries);
        assert_eq!(run.fidelity.to_bits(), solo.fidelity.to_bits());
    }
}

#[test]
fn estimation_batch_event_stream_matches_b_solo_runs() {
    let ds = dataset();
    let seeds = [11u64, 12, 13];
    let shots = 64;
    let (rec_batch, batch) = recorded(|| {
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        estimate_total_count_batch(&ds, shots, &mut rngs).expect("plenty of shots")
    });
    let (rec_solo, solos) = recorded(|| {
        seeds
            .iter()
            .map(|&s| {
                let mut rng = StdRng::seed_from_u64(s);
                estimate_total_count(&ds, shots, &mut rng).expect("plenty of shots")
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(
        rec_batch.events(),
        rec_solo.events(),
        "batched estimation changed the event stream"
    );
    assert_eq!(rec_batch.counters(), rec_solo.counters());
    for (run, solo) in batch.iter().zip(&solos) {
        assert_eq!(run.estimated_a.to_bits(), solo.estimated_a.to_bits());
        assert_eq!(
            run.estimated_total.to_bits(),
            solo.estimated_total.to_bits()
        );
        assert_eq!(run.queries, solo.queries);
    }
}

/// The compiled sampler circuit, driven through [`BatchedState`] with `B`
/// genuinely distinct members (per-member phase ramps): batched execution
/// must be bit-identical to running each member through [`Program::run`]
/// solo, on both backends.
///
/// [`Program::run`]: dqs_sim::Program::run
#[test]
fn compiled_circuit_run_batch_matches_solo_runs() {
    let ds = dataset();
    let program = compile_sequential_optimized(&ds);
    let b = 5;

    fn member<S: QuantumState>(layout: dqs_sim::Layout, seed: u64) -> S {
        let mut s = S::from_basis(layout, &[0, 0, 0]);
        s.apply_phase(|basis| Complex64::cis(0.003 * ((seed * 11 + 1) * (basis[0] + 1)) as f64));
        s
    }

    fn check<S: QuantumState>(program: &dqs_sim::Program, b: u64) {
        let mut batch = BatchedState::new(
            (0..b)
                .map(|seed| member::<S>(program.layout().clone(), seed))
                .collect(),
        );
        batch.run(program);
        for (seed, got) in batch.states().iter().enumerate() {
            let mut want = member::<S>(program.layout().clone(), seed as u64);
            program.run(&mut want);
            assert_eq!(
                got.to_table().distance_sqr(&want.to_table()),
                0.0,
                "batch member {seed} diverged from its solo compiled run"
            );
        }
    }

    check::<SparseState>(&program, b);
    check::<DenseState>(&program, b);
}
