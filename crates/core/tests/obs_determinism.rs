//! Observability determinism suite.
//!
//! The event stream is part of the reproducibility contract: events carry
//! only static names and integers (timings and float metrics are aggregated
//! *outside* the stream), so on identical seeds and datasets the stream
//! must be **bit-identical** across simulator backends — and installing a
//! recorder must never change what a sampler computes.

use dqs_core::{
    estimate_total_count, parallel_sample, sequential_sample_degraded,
    sequential_sample_with_realization, RetryPolicy,
};
use dqs_db::{DistributedDataset, FaultPlan, FaultRates, Multiset};
use dqs_obs::Recorder;
use dqs_sim::{DenseState, QuantumState, SparseState};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Boolean strategy (the offline proptest stub has no `proptest::bool`).
fn any_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|x| x == 1)
}

/// A random dataset: `universe ∈ [2,8]`, `ν ∈ [1,4]`, `1..=3` machines —
/// small enough that the dense backend stays cheap.
fn dataset_strategy() -> impl Strategy<Value = DistributedDataset> {
    (2u64..=8, 1u64..=4, 1usize..=3)
        .prop_flat_map(|(universe, capacity, machines)| {
            let counts = proptest::collection::vec(
                proptest::collection::vec(0..=capacity, universe as usize),
                machines,
            );
            (Just(universe), Just(capacity), counts)
        })
        .prop_map(|(universe, capacity, mut counts)| {
            // Clamp per-element totals to `ν` machine by machine.
            for i in 0..universe as usize {
                let mut running = 0;
                for shard in counts.iter_mut() {
                    shard[i] = shard[i].min(capacity - running);
                    running += shard[i];
                }
            }
            if counts.iter().all(|shard| shard.iter().all(|&c| c == 0)) {
                counts[0][0] = 1;
            }
            let shards = counts
                .into_iter()
                .map(|per_elem| {
                    Multiset::from_counts(
                        per_elem
                            .into_iter()
                            .enumerate()
                            .filter(|(_, c)| *c > 0)
                            .map(|(i, c)| (i as u64, c)),
                    )
                })
                .collect();
            DistributedDataset::new(universe, capacity, shards).expect("valid random dataset")
        })
}

/// Runs `f` under a fresh recorder and returns `(recorder, f's output)`.
fn recorded<T>(f: impl FnOnce() -> T) -> (Recorder, T) {
    let rec = Recorder::new();
    let out = dqs_obs::with_recorder(&rec, f);
    (rec, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse and dense backends walk the exact same circuit, so the
    /// deterministic event stream (spans, counters, gauges — no timings)
    /// must be bit-identical between them, fused or gate-by-gate.
    #[test]
    fn sequential_event_stream_identical_across_backends(
        ds in dataset_strategy(),
        fused in any_bool(),
    ) {
        let (rec_sparse, _) = recorded(|| {
            sequential_sample_with_realization::<SparseState>(&ds, fused).expect("faultless run")
        });
        let (rec_dense, _) = recorded(|| {
            sequential_sample_with_realization::<DenseState>(&ds, fused).expect("faultless run")
        });
        prop_assert_eq!(rec_sparse.events(), rec_dense.events(), "backend changed the stream");
        prop_assert_eq!(rec_sparse.counters(), rec_dense.counters());
    }

    #[test]
    fn parallel_event_stream_identical_across_backends(ds in dataset_strategy()) {
        let (rec_sparse, _) = recorded(|| parallel_sample::<SparseState>(&ds).expect("faultless run"));
        let (rec_dense, _) = recorded(|| parallel_sample::<DenseState>(&ds).expect("faultless run"));
        prop_assert_eq!(rec_sparse.events(), rec_dense.events(), "backend changed the stream");
        prop_assert_eq!(rec_sparse.counters(), rec_dense.counters());
    }

    /// A recorder is an observer, not a participant: running with one
    /// installed must leave the sampler's outputs bit-identical to running
    /// without. (This is the zero-cost-when-disabled claim's semantic
    /// half — the disabled path is also a single relaxed atomic load.)
    #[test]
    fn recorder_does_not_perturb_sequential_outputs(
        ds in dataset_strategy(),
        fused in any_bool(),
    ) {
        let bare = sequential_sample_with_realization::<SparseState>(&ds, fused)
            .expect("faultless run");
        let (_rec, observed) = recorded(|| {
            sequential_sample_with_realization::<SparseState>(&ds, fused).expect("faultless run")
        });
        prop_assert_eq!(
            bare.state.to_table().distance_sqr(&observed.state.to_table()),
            0.0,
            "recorder changed the output state"
        );
        prop_assert_eq!(bare.queries, observed.queries, "recorder changed the ledger");
        prop_assert_eq!(bare.fidelity.to_bits(), observed.fidelity.to_bits());
    }

    #[test]
    fn recorder_does_not_perturb_parallel_outputs(ds in dataset_strategy()) {
        let bare = parallel_sample::<SparseState>(&ds).expect("faultless run");
        let (_rec, observed) = recorded(|| parallel_sample::<SparseState>(&ds).expect("faultless run"));
        prop_assert_eq!(
            bare.state.to_table().distance_sqr(&observed.state.to_table()),
            0.0,
            "recorder changed the output state"
        );
        prop_assert_eq!(bare.queries, observed.queries, "recorder changed the ledger");
        prop_assert_eq!(bare.fidelity.to_bits(), observed.fidelity.to_bits());
    }

    /// Degraded runs replay identically: same dataset, fault plan and
    /// policy → same event stream on repeat, and the recorder leaves the
    /// run's observable results untouched.
    #[test]
    fn degraded_runs_replay_identically(ds in dataset_strategy(), seed in 0u64..32) {
        let machines = ds.num_machines();
        let horizon = (ds.universe() / machines as u64).max(1);
        let plan = FaultPlan::seeded(machines, seed, &FaultRates::uniform(0.25, horizon));
        let policy = RetryPolicy::default();

        let run = |()| sequential_sample_degraded::<SparseState>(&ds, &plan, &policy);
        let bare = run(());
        let (rec_a, obs_a) = recorded(|| run(()));
        let (rec_b, obs_b) = recorded(|| run(()));
        prop_assert_eq!(rec_a.events(), rec_b.events(), "degraded replay diverged");
        prop_assert_eq!(rec_a.counters(), rec_b.counters());
        match (bare, obs_a, obs_b) {
            (Ok(x), Ok(y), Ok(_)) => {
                prop_assert_eq!(x.restarts, y.restarts);
                prop_assert_eq!(x.dead, y.dead);
                prop_assert_eq!(x.queries, y.queries, "recorder changed the ledger");
                prop_assert_eq!(x.fidelity_vs_target.to_bits(), y.fidelity_vs_target.to_bits());
            }
            (Err(x), Err(y), Err(_)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "recorder flipped the run's outcome"),
        }
    }

    /// Every instrumented sampler's oracle counters must reconcile exactly
    /// with its `QueryLedger` snapshot — checked here explicitly through
    /// `LedgerProbe` (the in-sampler `debug_check` already panics on drift
    /// in debug builds; this keeps the invariant enforced in release test
    /// runs too).
    #[test]
    fn obs_counters_reconcile_with_ledger(
        ds in dataset_strategy(),
        fused in any_bool(),
    ) {
        let machines = ds.num_machines();
        let rec = Recorder::new();
        dqs_obs::with_recorder(&rec, || {
            let probe = dqs_obs::LedgerProbe::begin(&rec, machines);
            let run = sequential_sample_with_realization::<SparseState>(&ds, fused)
                .expect("faultless run");
            probe
                .reconcile(&rec, &run.queries.per_machine, run.queries.parallel_rounds)
                .expect("sequential counters drifted from the ledger");

            let probe = dqs_obs::LedgerProbe::begin(&rec, machines);
            let run = parallel_sample::<SparseState>(&ds).expect("faultless run");
            probe
                .reconcile(&rec, &run.queries.per_machine, run.queries.parallel_rounds)
                .expect("parallel counters drifted from the ledger");

            let probe = dqs_obs::LedgerProbe::begin(&rec, machines);
            let mut rng = StdRng::seed_from_u64(5);
            let run = estimate_total_count(&ds, 20, &mut rng);
            let queries = match &run {
                Ok(r) => r.queries.clone(),
                // All-flag-1 estimates still charge their shots.
                Err(_) => return,
            };
            probe
                .reconcile(&rec, &queries.per_machine, queries.parallel_rounds)
                .expect("estimation counters drifted from the ledger");
        });
    }

    /// Degraded runs reconcile too — the retry/fault path charges the same
    /// ledger the probe compares against, across every restart.
    #[test]
    fn degraded_counters_reconcile_with_ledger(ds in dataset_strategy(), seed in 0u64..16) {
        let machines = ds.num_machines();
        let horizon = (ds.universe() / machines as u64).max(1);
        let plan = FaultPlan::seeded(machines, seed, &FaultRates::uniform(0.2, horizon));
        let rec = Recorder::new();
        dqs_obs::with_recorder(&rec, || {
            let probe = dqs_obs::LedgerProbe::begin(&rec, machines);
            if let Ok(run) =
                sequential_sample_degraded::<SparseState>(&ds, &plan, &RetryPolicy::default())
            {
                probe
                    .reconcile(&rec, &run.queries.per_machine, run.queries.parallel_rounds)
                    .expect("degraded counters drifted from the ledger");
            }
        });
    }
}
