//! Register layouts for the two query models (§3).
//!
//! **Sequential model** — the coordinator state is
//! `Σ_i α_i |i⟩|s_i⟩|w_i⟩` (three registers: element, count, flag).
//!
//! **Parallel model** — the coordinator additionally holds, for each machine
//! `j`, an ancilla triple `(i_j, s_j, b_j)` that is sent to machine `j`
//! during a round (Lemma 4.4's implementation of `D`). The joint dimension
//! is astronomically large, which is precisely why the sparse backend
//! exists; this module only records *which register is which*.

use dqs_db::{DistributedDataset, OracleRegisters, ParallelRegisters};
use dqs_math::Complex64;
use dqs_sim::{Layout, StateTable};
use std::sync::{Arc, OnceLock};

/// Builds the uniform anchor `|π⟩ ⊗ |0…0⟩` over `layout` — the pivot of the
/// `S_π` reflection — with the element register at `elem`.
fn build_uniform_anchor(layout: &Layout, elem: usize) -> StateTable {
    let n = layout.dim(elem);
    let amp = Complex64::from_real(1.0 / (n as f64).sqrt());
    let entries = (0..n)
        .map(|i| {
            let mut b = layout.zero_basis();
            b[elem] = i;
            (b.into_boxed_slice(), amp)
        })
        .collect();
    StateTable::new(layout.clone(), entries)
}

/// The three-register layout of the sequential model and the indices of its
/// registers.
#[derive(Debug, Clone)]
pub struct SequentialLayout {
    /// The underlying simulator layout.
    pub layout: Layout,
    /// Element register (`N`-dimensional).
    pub elem: usize,
    /// Count register (`ν+1`-dimensional).
    pub count: usize,
    /// Flag register (the `w_i ∈ {0,1}` ancilla of §3).
    pub flag: usize,
    /// Lazily built, shared uniform-anchor table (clones share the cache,
    /// so every `S_π` reflection in a run reuses one allocation).
    anchor: Arc<OnceLock<StateTable>>,
}

impl SequentialLayout {
    /// Builds the layout for a dataset (universe `N`, capacity `ν`).
    pub fn for_dataset(ds: &DistributedDataset) -> Self {
        Self::new(ds.universe(), ds.capacity())
    }

    /// Builds the layout from raw parameters.
    pub fn new(universe: u64, capacity: u64) -> Self {
        let layout = Layout::builder()
            .register("elem", universe)
            .register("count", capacity + 1)
            .register("flag", 2)
            .build();
        Self {
            layout,
            elem: 0,
            count: 1,
            flag: 2,
            anchor: Arc::new(OnceLock::new()),
        }
    }

    /// The `(elem, count)` pair the sequential oracle acts on.
    pub fn oracle_registers(&self) -> OracleRegisters {
        OracleRegisters {
            elem: self.elem,
            count: self.count,
        }
    }

    /// The uniform anchor `|π,0,0⟩` the `S_π` reflection pivots on, built
    /// once per layout (first call) and shared across runs and clones.
    pub fn uniform_anchor(&self) -> &StateTable {
        self.anchor
            .get_or_init(|| build_uniform_anchor(&self.layout, self.elem))
    }
}

/// The `3 + 3n`-register layout of the parallel model.
#[derive(Debug, Clone)]
pub struct ParallelLayout {
    /// The underlying simulator layout.
    pub layout: Layout,
    /// Element register.
    pub elem: usize,
    /// Count register.
    pub count: usize,
    /// Flag register.
    pub flag: usize,
    /// Per-machine ancilla element registers (`i_j`).
    pub anc_elem: Vec<usize>,
    /// Per-machine ancilla count registers (`s_j`).
    pub anc_count: Vec<usize>,
    /// Per-machine ancilla control flags (`b_j`).
    pub anc_flag: Vec<usize>,
    /// Lazily built, shared uniform-anchor table (see [`SequentialLayout`]).
    anchor: Arc<OnceLock<StateTable>>,
}

impl ParallelLayout {
    /// Builds the layout for a dataset.
    pub fn for_dataset(ds: &DistributedDataset) -> Self {
        Self::new(ds.universe(), ds.capacity(), ds.num_machines())
    }

    /// Builds the layout from raw parameters.
    pub fn new(universe: u64, capacity: u64, machines: usize) -> Self {
        assert!(machines > 0, "parallel layout needs at least one machine");
        let mut b = Layout::builder()
            .register("elem", universe)
            .register("count", capacity + 1)
            .register("flag", 2);
        let mut anc_elem = Vec::with_capacity(machines);
        let mut anc_count = Vec::with_capacity(machines);
        let mut anc_flag = Vec::with_capacity(machines);
        let mut next = 3usize;
        for j in 0..machines {
            b = b
                .register(format!("i{j}"), universe)
                .register(format!("s{j}"), capacity + 1)
                .register(format!("b{j}"), 2);
            anc_elem.push(next);
            anc_count.push(next + 1);
            anc_flag.push(next + 2);
            next += 3;
        }
        Self {
            layout: b.build(),
            elem: 0,
            count: 1,
            flag: 2,
            anc_elem,
            anc_count,
            anc_flag,
            anchor: Arc::new(OnceLock::new()),
        }
    }

    /// The uniform anchor `|π⟩ ⊗ |0…0⟩` (all counts, flags, and ancillas
    /// zero), built once per layout and shared across runs and clones.
    pub fn uniform_anchor(&self) -> &StateTable {
        self.anchor
            .get_or_init(|| build_uniform_anchor(&self.layout, self.elem))
    }

    /// The per-machine register triples the composite parallel oracle acts on.
    pub fn parallel_registers(&self) -> ParallelRegisters {
        ParallelRegisters {
            elem: self.anc_elem.clone(),
            count: self.anc_count.clone(),
            flag: self.anc_flag.clone(),
        }
    }

    /// Number of machines this layout serves.
    pub fn machines(&self) -> usize {
        self.anc_elem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::Multiset;

    fn ds() -> DistributedDataset {
        DistributedDataset::new(
            8,
            3,
            vec![
                Multiset::from_counts([(0, 1)]),
                Multiset::from_counts([(5, 2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sequential_layout_shape() {
        let sl = SequentialLayout::for_dataset(&ds());
        assert_eq!(sl.layout.num_registers(), 3);
        assert_eq!(sl.layout.dim(sl.elem), 8);
        assert_eq!(sl.layout.dim(sl.count), 4);
        assert_eq!(sl.layout.dim(sl.flag), 2);
        let regs = sl.oracle_registers();
        assert_eq!(regs.elem, 0);
        assert_eq!(regs.count, 1);
    }

    #[test]
    fn parallel_layout_shape() {
        let pl = ParallelLayout::for_dataset(&ds());
        assert_eq!(pl.machines(), 2);
        assert_eq!(pl.layout.num_registers(), 9);
        // ancilla dims mirror the primary registers
        for j in 0..2 {
            assert_eq!(pl.layout.dim(pl.anc_elem[j]), 8);
            assert_eq!(pl.layout.dim(pl.anc_count[j]), 4);
            assert_eq!(pl.layout.dim(pl.anc_flag[j]), 2);
        }
        let pregs = pl.parallel_registers();
        assert_eq!(pregs.machines(), 2);
        assert_eq!(pregs.elem, vec![3, 6]);
        assert_eq!(pregs.count, vec![4, 7]);
        assert_eq!(pregs.flag, vec![5, 8]);
    }

    #[test]
    fn register_names_are_addressable() {
        let pl = ParallelLayout::new(4, 2, 3);
        assert_eq!(pl.layout.find("elem"), Some(0));
        assert_eq!(pl.layout.find("i2"), Some(9));
        assert_eq!(pl.layout.find("b0"), Some(5));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = ParallelLayout::new(4, 2, 0);
    }

    #[test]
    fn uniform_anchor_is_built_once_and_shared_across_clones() {
        let sl = SequentialLayout::for_dataset(&ds());
        let clone = sl.clone();
        let a = sl.uniform_anchor() as *const _;
        assert!(std::ptr::eq(a, sl.uniform_anchor()), "second call reuses");
        assert!(std::ptr::eq(a, clone.uniform_anchor()), "clones share");
        // And it is the exact |π⟩⊗|0…0⟩ table.
        let t = sl.uniform_anchor();
        assert_eq!(t.iter().count(), 8);
        for (b, amp) in t.iter() {
            assert_eq!(b[sl.count], 0);
            assert_eq!(b[sl.flag], 0);
            assert!((amp.re - 1.0 / 8f64.sqrt()).abs() < 1e-15);
        }
    }

    #[test]
    fn parallel_uniform_anchor_zeroes_ancillas() {
        let pl = ParallelLayout::for_dataset(&ds());
        let t = pl.uniform_anchor();
        assert_eq!(t.iter().count(), 8);
        for (b, _) in t.iter() {
            for j in 0..pl.machines() {
                assert_eq!(b[pl.anc_elem[j]], 0);
                assert_eq!(b[pl.anc_count[j]], 0);
                assert_eq!(b[pl.anc_flag[j]], 0);
            }
        }
    }
}
