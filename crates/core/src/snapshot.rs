//! Immutable, versioned dataset snapshots for reentrant sampling.
//!
//! Every sampler entry point in this crate runs against a `&`-shared
//! [`DistributedDataset`]; what was missing for a long-running service is a
//! way to (a) share one dataset across many concurrent requests without
//! cloning it per call and (b) give compiled artifacts (layouts, count
//! tables, optimized programs) a cache key that goes stale exactly when the
//! data changes. A [`DatasetSnapshot`] is that handle: an `Arc` to an
//! immutable dataset plus a monotonically increasing version number.
//!
//! Versions only move forward through [`DatasetSnapshot::with_updates`] —
//! applying a [`UpdateLog`] produces a *new* snapshot at `version + 1` and
//! leaves the original untouched, so in-flight requests holding the old
//! snapshot keep bit-identical semantics while new requests see the update.

use dqs_db::{DistributedDataset, UpdateLog};
use std::sync::Arc;

/// An immutable dataset plus the version number used to key compiled
/// artifacts. Cloning is cheap (one `Arc` bump).
#[derive(Debug, Clone)]
pub struct DatasetSnapshot {
    dataset: Arc<DistributedDataset>,
    version: u64,
}

impl DatasetSnapshot {
    /// Wraps a dataset as version 0.
    pub fn new(dataset: DistributedDataset) -> Self {
        Self {
            dataset: Arc::new(dataset),
            version: 0,
        }
    }

    /// The snapshot's version: 0 for a fresh snapshot, incremented by one
    /// for every [`Self::with_updates`] application.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Borrows the underlying dataset.
    pub fn dataset(&self) -> &DistributedDataset {
        &self.dataset
    }

    /// The shared handle to the underlying dataset, for callers that need
    /// to hold the data beyond the snapshot's lifetime.
    pub fn dataset_arc(&self) -> &Arc<DistributedDataset> {
        &self.dataset
    }

    /// Applies an update log, producing the successor snapshot at
    /// `version + 1`. The receiver is unchanged — readers of the old
    /// version keep a consistent view.
    pub fn with_updates(&self, updates: &UpdateLog) -> Self {
        Self {
            dataset: Arc::new(updates.apply_to(&self.dataset)),
            version: self.version + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::{Multiset, UpdateOp};

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            8,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (6, 3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn updates_bump_the_version_and_leave_the_original_intact() {
        let snap = DatasetSnapshot::new(dataset());
        assert_eq!(snap.version(), 0);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        let next = snap.with_updates(&log);
        assert_eq!(next.version(), 1);
        assert_eq!(snap.dataset().multiplicity(3, 0), 0);
        assert_eq!(next.dataset().multiplicity(3, 0), 1);
        let third = next.with_updates(&log);
        assert_eq!(third.version(), 2);
        assert_eq!(third.dataset().multiplicity(3, 0), 2);
    }

    #[test]
    fn clones_share_the_dataset() {
        let snap = DatasetSnapshot::new(dataset());
        let clone = snap.clone();
        assert!(Arc::ptr_eq(snap.dataset_arc(), clone.dataset_arc()));
    }
}
