//! Immutable, versioned dataset snapshots for reentrant sampling.
//!
//! Every sampler entry point in this crate runs against a `&`-shared
//! [`DistributedDataset`]; what was missing for a long-running service is a
//! way to (a) share one dataset across many concurrent requests without
//! cloning it per call and (b) give compiled artifacts (layouts, count
//! tables, optimized programs) a cache key that goes stale exactly when the
//! data changes. A [`DatasetSnapshot`] is that handle: an `Arc` to an
//! immutable dataset plus a monotonically increasing version number.
//!
//! Versions only move forward through [`DatasetSnapshot::with_updates`] —
//! applying a [`UpdateLog`] produces a *new* snapshot at `version + 1` and
//! leaves the original untouched, so in-flight requests holding the old
//! snapshot keep bit-identical semantics while new requests see the update.
//! The underlying shards are copy-on-write, so successive versions share
//! every per-machine segment the update did not touch (DESIGN.md §15).
//!
//! A derived snapshot also remembers its [`Lineage`] — the parent dataset,
//! the parent version, and the update log that separates them. The artifact
//! cache uses this to *patch* the parent's compiled artifacts forward
//! ([`crate::CompiledArtifacts::advance`]) instead of rebuilding from
//! scratch.

use dqs_db::{DistributedDataset, UpdateError, UpdateLog};
use std::sync::Arc;

/// How a snapshot version was produced from its predecessor: the parent
/// dataset handle, the parent's version number, and the update log applied
/// to it. Held behind an `Arc` so snapshot clones stay one-pointer cheap.
#[derive(Debug)]
pub struct Lineage {
    /// The dataset the updates were applied to.
    pub parent: Arc<DistributedDataset>,
    /// The version the updates were applied to (`child version - 1`).
    pub parent_version: u64,
    /// The updates separating parent from child.
    pub updates: UpdateLog,
}

/// An immutable dataset plus the version number used to key compiled
/// artifacts. Cloning is cheap (one `Arc` bump).
#[derive(Debug, Clone)]
pub struct DatasetSnapshot {
    dataset: Arc<DistributedDataset>,
    version: u64,
    lineage: Option<Arc<Lineage>>,
}

impl DatasetSnapshot {
    /// Wraps a dataset as version 0.
    pub fn new(dataset: DistributedDataset) -> Self {
        Self {
            dataset: Arc::new(dataset),
            version: 0,
            lineage: None,
        }
    }

    /// The snapshot's version: 0 for a fresh snapshot, incremented by one
    /// for every [`Self::with_updates`] application.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Borrows the underlying dataset.
    pub fn dataset(&self) -> &DistributedDataset {
        &self.dataset
    }

    /// The shared handle to the underlying dataset, for callers that need
    /// to hold the data beyond the snapshot's lifetime.
    pub fn dataset_arc(&self) -> &Arc<DistributedDataset> {
        &self.dataset
    }

    /// How this snapshot was derived from its predecessor, if it was
    /// produced by [`Self::with_updates`] (fresh version-0 snapshots have
    /// no lineage).
    pub fn lineage(&self) -> Option<&Lineage> {
        self.lineage.as_deref()
    }

    /// Applies an update log, producing the successor snapshot at
    /// `version + 1`. The receiver is unchanged — readers of the old
    /// version keep a consistent view.
    ///
    /// # Panics
    ///
    /// Panics if the log cannot apply (see [`UpdateLog::apply_to`]). Use
    /// [`Self::try_with_updates`] on untrusted update streams.
    pub fn with_updates(&self, updates: &UpdateLog) -> Self {
        self.try_with_updates(updates)
            // lint: allow(panic): documented contract, delegating to the
            // panicking `UpdateLog::apply_to` semantics.
            .expect("updated dataset must stay valid")
    }

    /// Applies an update log, producing the successor snapshot at
    /// `version + 1`, or a typed error when the log is inconsistent with
    /// the current data (negative counts, capacity violations, unknown
    /// machines). The receiver is unchanged in both cases.
    pub fn try_with_updates(&self, updates: &UpdateLog) -> Result<Self, UpdateError> {
        let next = updates.try_apply_to(&self.dataset)?;
        Ok(Self {
            dataset: Arc::new(next),
            version: self.version + 1,
            lineage: Some(Arc::new(Lineage {
                parent: Arc::clone(&self.dataset),
                parent_version: self.version,
                updates: updates.clone(),
            })),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::{Multiset, UpdateOp};

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            8,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (6, 3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn updates_bump_the_version_and_leave_the_original_intact() {
        let snap = DatasetSnapshot::new(dataset());
        assert_eq!(snap.version(), 0);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        let next = snap.with_updates(&log);
        assert_eq!(next.version(), 1);
        assert_eq!(snap.dataset().multiplicity(3, 0), 0);
        assert_eq!(next.dataset().multiplicity(3, 0), 1);
        let third = next.with_updates(&log);
        assert_eq!(third.version(), 2);
        assert_eq!(third.dataset().multiplicity(3, 0), 2);
    }

    #[test]
    fn clones_share_the_dataset() {
        let snap = DatasetSnapshot::new(dataset());
        let clone = snap.clone();
        assert!(Arc::ptr_eq(snap.dataset_arc(), clone.dataset_arc()));
    }

    #[test]
    fn lineage_records_the_parent_and_log() {
        let snap = DatasetSnapshot::new(dataset());
        assert!(snap.lineage().is_none());
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        let next = snap.with_updates(&log);
        let lineage = next.lineage().expect("derived snapshot has lineage");
        assert!(Arc::ptr_eq(&lineage.parent, snap.dataset_arc()));
        assert_eq!(lineage.parent_version, 0);
        assert_eq!(lineage.updates.ops(), log.ops());
    }

    #[test]
    fn successive_versions_share_untouched_shards() {
        let snap = DatasetSnapshot::new(dataset());
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        let next = snap.with_updates(&log);
        assert!(next.dataset().shards()[1].shares_storage_with(&snap.dataset().shards()[1]));
        assert!(!next.dataset().shards()[0].shares_storage_with(&snap.dataset().shards()[0]));
    }

    #[test]
    fn try_with_updates_surfaces_typed_errors() {
        let snap = DatasetSnapshot::new(dataset());
        let mut log = UpdateLog::new();
        log.push(UpdateOp::delete(0, 7)); // element 7 absent on machine 0
        let err = snap.try_with_updates(&log).unwrap_err();
        assert!(matches!(err, UpdateError::NegativeMultiplicity { .. }));
        assert_eq!(snap.version(), 0, "receiver unchanged on error");
    }
}
