//! The distributing operator `D` — Eq. (5) and Lemmas 4.2 / 4.4.
//!
//! `D|i,0⟩ = √(c_i/ν)|i,0⟩ + √((ν−c_i)/ν)|i,1⟩` concentrates exactly the
//! per-element probability mass `c_i/ν` on the flag-0 branch, so that
//! `D|π,0⟩ = √(M/νN)|ψ,0⟩ + √(1−M/νN)|ψ⊥,1⟩` (Eq. 7) and amplitude
//! amplification can finish the job.
//!
//! `D` is the only input-dependent operator in the algorithm, and the paper
//! shows it is realizable from the counting oracles alone:
//!
//! * **sequentially** (Lemma 4.2, `2n` queries):
//!   `O_1 … O_n`, then the input-independent rotation `𝒰`, then
//!   `O_n† … O_1†`;
//! * **in parallel** (Lemma 4.4, 4 rounds): copy `i` into all ancilla
//!   element registers with flags raised, one composite round `O`,
//!   accumulate the per-machine answers `c_{i1}, …, c_{in}` into the main
//!   count register, one round `O†` to uncompute, drop the ancillas, apply
//!   `𝒰`, and uncompute the count the same way.
//!
//! ## Fused fast path
//!
//! Simulated gate by gate, each sequential `D` costs `2n+1` passes over the
//! state's support even though its *net* action on a basis state is just a
//! flag rotation: the cascade adds `c_i` to the count, `𝒰` rotates the flag
//! by `u_gate(s + c_i)`, and the inverse cascade subtracts `c_i` back out.
//! The default **fused** realization therefore applies the whole of `D`
//! (or `D†`) as a **single** conditioned-unitary pass —
//! `u_gate((s + c_i) mod (ν+1))` on the flag, keyed by `(elem, count)` —
//! while charging the ledger the very same `2n` queries (4 rounds in the
//! parallel model): the paper's cost metric counts oracle applications,
//! and those are charged semantically, not per simulator pass. The
//! amplitude arithmetic is bit-identical because the same 2×2 rotation
//! multiplies the same amplitude pairs. [`DistributingOperator::gate_by_gate`]
//! pins the literal cascade for equivalence tests, and the `*_observed`
//! instrumentation variants always stay gate by gate — the lower-bound
//! hybrid needs a snapshot after every individual query.

use crate::layouts::{ParallelLayout, SequentialLayout};
use dqs_db::OracleSet;
use dqs_math::MatC;
use dqs_sim::gates::ry_by_cos_sin;
use dqs_sim::QuantumState;

/// Applies `D` (or `D†`) over either query model.
#[derive(Debug, Clone, Copy)]
pub struct DistributingOperator {
    /// The capacity `ν` whose square root sets the rotation angles of `𝒰`.
    pub capacity: u64,
    /// Whether `apply_sequential`/`apply_parallel` use the fused single-pass
    /// realization (default) or the literal oracle cascade.
    fused: bool,
}

impl DistributingOperator {
    /// Creates the operator for capacity `ν > 0`, using the fused
    /// single-pass realization.
    pub fn new(capacity: u64) -> Self {
        Self::with_fused(capacity, true)
    }

    /// Creates the operator pinned to the literal gate-by-gate cascade
    /// (Lemma 4.2 / 4.4 verbatim) — `2n+1` support passes per sequential
    /// application. Exists so tests and benches can pin fused against
    /// unfused; both charge identical queries.
    pub fn gate_by_gate(capacity: u64) -> Self {
        Self::with_fused(capacity, false)
    }

    /// Creates the operator with an explicit realization choice.
    pub fn with_fused(capacity: u64, fused: bool) -> Self {
        assert!(capacity > 0, "capacity ν must be positive");
        Self { capacity, fused }
    }

    /// True when this operator uses the fused single-pass realization.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// The input-independent rotation `𝒰` of Eq. (6), as a 2×2 matrix on the
    /// flag register given the current count-register value `c`:
    /// `𝒰|c,0⟩ = √(c/ν)|c,0⟩ + √((ν−c)/ν)|c,1⟩`. Crate-visible so the
    /// degraded sampler can rebuild the fused `D` from faulty answers.
    pub(crate) fn u_gate(&self, count: u64) -> MatC {
        let nu = self.capacity as f64;
        debug_assert!(count <= self.capacity, "count exceeds capacity");
        let cos = (count as f64 / nu).sqrt();
        let sin = ((self.capacity - count) as f64 / nu).sqrt();
        ry_by_cos_sin(cos, sin)
    }

    /// Applies `𝒰` (or `𝒰†`) on `flag`, conditioned on `count`.
    fn apply_u<S: QuantumState>(
        &self,
        state: &mut S,
        count_reg: usize,
        flag_reg: usize,
        inverse: bool,
    ) {
        state.apply_conditioned_unitary(flag_reg, |basis| {
            let u = self.u_gate(basis[count_reg]);
            if inverse {
                u.adjoint()
            } else {
                u
            }
        });
    }

    /// Sequential realization (Lemma 4.2): costs exactly `2n` queries,
    /// charged to the ledger behind `oracles`.
    ///
    /// Since the oracles all commute (they are additions on the same count
    /// register controlled on the same element register),
    /// `D = B·𝒰·A` with `A = O_n…O_1` and `B = A†`, hence `D† = B·𝒰†·A` —
    /// the inverse only inverts the middle rotation.
    pub fn apply_sequential<S: QuantumState>(
        &self,
        oracles: &OracleSet<'_>,
        state: &mut S,
        regs: &SequentialLayout,
        inverse: bool,
    ) {
        if self.fused {
            self.apply_fused(
                oracles,
                state,
                (regs.elem, regs.count, regs.flag),
                inverse,
                || {
                    // Forward and inverse cascade: n queries each, per machine.
                    oracles.charge_all_sequential();
                    oracles.charge_all_sequential();
                },
            );
            return;
        }
        let oracle_regs = regs.oracle_registers();
        oracles.apply_all_sequential(state, oracle_regs, false);
        self.apply_u(state, regs.count, regs.flag, inverse);
        oracles.apply_all_sequential(state, oracle_regs, true);
    }

    /// The fused single-pass realization of `D`/`D†`: charges queries via
    /// `charge`, then applies the net flag rotation
    /// `u_gate((s + c_i) mod (ν+1))` in one conditioned-unitary pass.
    fn apply_fused<S: QuantumState>(
        &self,
        oracles: &OracleSet<'_>,
        state: &mut S,
        (elem, count, flag): (usize, usize, usize),
        inverse: bool,
        charge: impl FnOnce(),
    ) {
        charge();
        let modulus = self.capacity + 1;
        // lint: allow(charge-conservation): the caller-supplied `charge`
        // closure (invoked unconditionally above) bills this table read; the
        // fused form exists precisely so charge and read stay one unit.
        let totals = oracles.total_table();
        state.apply_conditioned_unitary(flag, |b| {
            let c = (b[count] + totals[b[elem] as usize] % modulus) % modulus;
            let u = self.u_gate(c);
            if inverse {
                u.adjoint()
            } else {
                u
            }
        });
    }

    /// Like [`Self::apply_sequential`], but invokes `on_query(machine,
    /// state)` immediately **after** every individual oracle application.
    /// This is the instrumentation hook the lower-bound hybrid argument
    /// (dqs-adversary) uses to snapshot `|ψ_t^T⟩` after each query to the
    /// distinguished machine `k`; queries are charged identically to the
    /// unobserved variant.
    pub fn apply_sequential_observed<S: QuantumState>(
        &self,
        oracles: &OracleSet<'_>,
        state: &mut S,
        regs: &SequentialLayout,
        inverse: bool,
        mut on_query: impl FnMut(usize, &S),
    ) {
        let oracle_regs = regs.oracle_registers();
        let n = oracles.dataset().num_machines();
        for j in 0..n {
            oracles.apply_oj(state, j, oracle_regs, false);
            on_query(j, state);
        }
        self.apply_u(state, regs.count, regs.flag, inverse);
        for j in (0..n).rev() {
            oracles.apply_oj(state, j, oracle_regs, true);
            on_query(j, state);
        }
    }

    /// Parallel realization (Lemma 4.4): costs exactly 4 composite rounds.
    pub fn apply_parallel<S: QuantumState>(
        &self,
        oracles: &OracleSet<'_>,
        state: &mut S,
        regs: &ParallelLayout,
        inverse: bool,
    ) {
        if self.fused {
            // The fused form is valid exactly on the clean-ancilla subspace
            // the gate-by-gate broadcast also insists on.
            #[cfg(debug_assertions)]
            {
                let (anc_elem, anc_count, anc_flag) = (
                    regs.anc_elem.clone(),
                    regs.anc_count.clone(),
                    regs.anc_flag.clone(),
                );
                let n = regs.machines();
                state.apply_permutation(|b| {
                    for j in 0..n {
                        debug_assert_eq!(b[anc_elem[j]], 0, "ancilla element must be clean");
                        debug_assert_eq!(b[anc_count[j]], 0, "ancilla count must be clean");
                        debug_assert_eq!(b[anc_flag[j]], 0, "ancilla flag must be lowered");
                    }
                });
            }
            self.apply_fused(
                oracles,
                state,
                (regs.elem, regs.count, regs.flag),
                inverse,
                || {
                    // Lemma 4.4: two composite rounds per count load/unload.
                    for _ in 0..4 {
                        oracles.charge_parallel_round();
                    }
                },
            );
            return;
        }
        self.apply_parallel_observed(oracles, state, regs, inverse, |_| {});
    }

    /// Like [`Self::apply_parallel`], but invokes `on_round(state)` after
    /// every composite oracle round — the parallel-model instrumentation
    /// hook for the hybrid argument (Lemmas 5.9/5.10).
    pub fn apply_parallel_observed<S: QuantumState>(
        &self,
        oracles: &OracleSet<'_>,
        state: &mut S,
        regs: &ParallelLayout,
        inverse: bool,
        mut on_round: impl FnMut(&S),
    ) {
        self.load_count_parallel(oracles, state, regs, false, &mut on_round);
        self.apply_u(state, regs.count, regs.flag, inverse);
        self.load_count_parallel(oracles, state, regs, true, &mut on_round);
    }

    /// The first step of Lemma 4.4 — `|i,0⟩ ↦ |i,c_i⟩` — using 2 composite
    /// rounds (or its inverse `|i,c_i⟩ ↦ |i,0⟩`, also 2 rounds).
    fn load_count_parallel<S: QuantumState>(
        &self,
        oracles: &OracleSet<'_>,
        state: &mut S,
        regs: &ParallelLayout,
        uncompute: bool,
        on_round: &mut impl FnMut(&S),
    ) {
        let n = regs.machines();
        let modulus = self.capacity + 1;
        let pregs = regs.parallel_registers();
        let (elem, count) = (regs.elem, regs.count);
        let (anc_elem, anc_count, anc_flag) = (
            regs.anc_elem.clone(),
            regs.anc_count.clone(),
            regs.anc_flag.clone(),
        );

        // |i,·,0ⁿ,0ⁿ,0ⁿ⟩ → |i,·,iⁿ,0ⁿ,1ⁿ⟩ : broadcast the element and raise
        // all control flags (input-independent, no queries).
        let broadcast = |state: &mut S| {
            state.apply_permutation(|b| {
                let i = b[elem];
                for j in 0..n {
                    debug_assert_eq!(b[anc_elem[j]], 0, "ancilla element must be clean");
                    b[anc_elem[j]] = i;
                    b[anc_flag[j]] ^= 1;
                }
            });
        };
        // Inverse of broadcast: subtract the element value back out.
        let unbroadcast = |state: &mut S| {
            state.apply_permutation(|b| {
                let i = b[elem];
                for j in 0..n {
                    debug_assert_eq!(b[anc_elem[j]], i, "ancilla element out of sync");
                    b[anc_elem[j]] = 0;
                    b[anc_flag[j]] ^= 1;
                }
            });
        };
        // Fold the per-machine answers into the main count register:
        // s ↦ s ± Σ_j s_j (mod ν+1).
        let fold = |state: &mut S, subtract: bool| {
            state.apply_permutation(|b| {
                let mut total = 0u64;
                for j in 0..n {
                    total = (total + b[anc_count[j]]) % modulus;
                }
                let add = if subtract {
                    (modulus - total) % modulus
                } else {
                    total
                };
                b[count] = (b[count] + add) % modulus;
            });
        };

        broadcast(state);
        oracles.apply_parallel_round(state, &pregs, false);
        on_round(state);
        fold(state, uncompute);
        oracles.apply_parallel_round(state, &pregs, true);
        on_round(state);
        unbroadcast(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::{DistributedDataset, Multiset, QueryLedger};
    use dqs_math::approx::approx_eq;
    use dqs_sim::{DenseState, SparseState, StateTable};

    fn dataset() -> DistributedDataset {
        // c = (2, 2, 0, 3) over N = 4, two machines, ν = 4
        DistributedDataset::new(
            4,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (3, 3)]),
            ],
        )
        .unwrap()
    }

    fn eq7_expected(ds: &DistributedDataset, sl: &SequentialLayout) -> StateTable {
        // D|π,0,0⟩ = (1/√N) Σ_i (√(c_i/ν)|i,0,0⟩ + √((ν−c_i)/ν)|i,0,1⟩)
        let nu = ds.capacity() as f64;
        let n = ds.universe() as f64;
        let mut entries = Vec::new();
        for i in 0..ds.universe() {
            let c = ds.total_multiplicity(i) as f64;
            entries.push((
                vec![i, 0, 0].into_boxed_slice(),
                dqs_math::Complex64::from_real((c / nu / n).sqrt()),
            ));
            entries.push((
                vec![i, 0, 1].into_boxed_slice(),
                dqs_math::Complex64::from_real(((nu - c) / nu / n).sqrt()),
            ));
        }
        StateTable::new(sl.layout.clone(), entries)
    }

    #[test]
    fn sequential_d_realizes_eq_5_on_basis_states() {
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let d = DistributingOperator::new(ds.capacity());
        for i in 0..4u64 {
            let mut s = SparseState::from_basis(sl.layout.clone(), &[i, 0, 0]);
            d.apply_sequential(&oracles, &mut s, &sl, false);
            let c = ds.total_multiplicity(i) as f64;
            let nu = ds.capacity() as f64;
            assert!(
                approx_eq(s.amplitude(&[i, 0, 0]).re, (c / nu).sqrt()),
                "elem {i}"
            );
            assert!(approx_eq(
                s.amplitude(&[i, 0, 1]).re,
                ((nu - c) / nu).sqrt()
            ));
            // count register fully uncomputed
            assert!(approx_eq(s.norm(), 1.0));
            assert_eq!(s.support_len(), if c == 0.0 || c == nu { 1 } else { 2 });
        }
    }

    #[test]
    fn sequential_d_costs_exactly_2n_queries() {
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let d = DistributingOperator::new(ds.capacity());
        let mut s = SparseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
        d.apply_sequential(&oracles, &mut s, &sl, false);
        assert_eq!(ledger.total_sequential(), 2 * ds.num_machines() as u64);
        d.apply_sequential(&oracles, &mut s, &sl, true);
        assert_eq!(ledger.total_sequential(), 4 * ds.num_machines() as u64);
    }

    #[test]
    fn sequential_d_on_uniform_matches_eq_7() {
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let d = DistributingOperator::new(ds.capacity());
        let mut s = SparseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
        s.apply_register_unitary(sl.elem, &dqs_sim::gates::dft(ds.universe()));
        d.apply_sequential(&oracles, &mut s, &sl, false);
        let expected = eq7_expected(&ds, &sl);
        assert!(s.to_table().distance_sqr(&expected) < 1e-18);
        // success amplitude on the flag-0 branch is √(M/νN)
        let p0: f64 = s.register_probabilities(sl.flag)[0];
        assert!(approx_eq(p0, 7.0 / 16.0));
    }

    #[test]
    fn sequential_d_inverse_is_inverse() {
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let d = DistributingOperator::new(ds.capacity());
        let mut s = SparseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
        s.apply_register_unitary(sl.elem, &dqs_sim::gates::dft(ds.universe()));
        let before = s.to_table();
        d.apply_sequential(&oracles, &mut s, &sl, false);
        d.apply_sequential(&oracles, &mut s, &sl, true);
        assert!(s.to_table().distance_sqr(&before) < 1e-18);
    }

    #[test]
    fn parallel_d_matches_sequential_d() {
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let pl = ParallelLayout::for_dataset(&ds);
        let d = DistributingOperator::new(ds.capacity());

        for i in 0..4u64 {
            // sequential reference
            let ledger_s = QueryLedger::new(2);
            let oracles_s = OracleSet::new(&ds, &ledger_s);
            let mut seq = SparseState::from_basis(sl.layout.clone(), &[i, 0, 0]);
            d.apply_sequential(&oracles_s, &mut seq, &sl, false);

            // parallel run
            let ledger_p = QueryLedger::new(2);
            let oracles_p = OracleSet::new(&ds, &ledger_p);
            let mut zero = pl.layout.zero_basis();
            zero[pl.elem] = i;
            let mut par = SparseState::from_basis(pl.layout.clone(), &zero);
            d.apply_parallel(&oracles_p, &mut par, &pl, false);

            // compare on the (elem, count, flag) registers; ancillas must be 0
            let table = par.to_table();
            for (b, amp) in table.iter() {
                for j in 0..pl.machines() {
                    assert_eq!(b[pl.anc_elem[j]], 0, "ancilla elem not uncomputed");
                    assert_eq!(b[pl.anc_count[j]], 0, "ancilla count not uncomputed");
                    assert_eq!(b[pl.anc_flag[j]], 0, "ancilla flag not lowered");
                }
                let seq_amp = seq.amplitude(&[b[pl.elem], b[pl.count], b[pl.flag]]);
                assert!((amp - seq_amp).abs() < 1e-9);
            }
            assert_eq!(ledger_p.parallel_rounds(), 4, "Lemma 4.4: 4 rounds per D");
            assert_eq!(ledger_p.total_sequential(), 0);
        }
    }

    #[test]
    fn parallel_d_inverse_round_trips() {
        let ds = dataset();
        let pl = ParallelLayout::for_dataset(&ds);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let d = DistributingOperator::new(ds.capacity());
        let mut s = SparseState::from_basis(pl.layout.clone(), &pl.layout.zero_basis());
        s.apply_register_unitary(pl.elem, &dqs_sim::gates::dft(ds.universe()));
        let before = s.to_table();
        d.apply_parallel(&oracles, &mut s, &pl, false);
        d.apply_parallel(&oracles, &mut s, &pl, true);
        assert!(s.to_table().distance_sqr(&before) < 1e-18);
        assert_eq!(ledger.parallel_rounds(), 8);
    }

    #[test]
    fn dense_and_sparse_agree_on_d() {
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let d = DistributingOperator::new(ds.capacity());

        let ledger_a = QueryLedger::new(2);
        let oracles_a = OracleSet::new(&ds, &ledger_a);
        let mut dense = DenseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
        dense.apply_register_unitary(sl.elem, &dqs_sim::gates::dft(4));
        d.apply_sequential(&oracles_a, &mut dense, &sl, false);

        let ledger_b = QueryLedger::new(2);
        let oracles_b = OracleSet::new(&ds, &ledger_b);
        let mut sparse = SparseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
        sparse.apply_register_unitary(sl.elem, &dqs_sim::gates::dft(4));
        d.apply_sequential(&oracles_b, &mut sparse, &sl, false);

        assert!(dense.to_table().distance_sqr(&sparse.to_table()) < 1e-18);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = DistributingOperator::new(0);
    }

    #[test]
    fn constructor_flags_pin_realization() {
        assert!(DistributingOperator::new(4).is_fused());
        assert!(!DistributingOperator::gate_by_gate(4).is_fused());
        assert!(DistributingOperator::with_fused(4, true).is_fused());
    }

    #[test]
    fn fused_sequential_matches_gate_by_gate_bit_for_bit() {
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let fused = DistributingOperator::new(ds.capacity());
        let unfused = DistributingOperator::gate_by_gate(ds.capacity());

        for inverse in [false, true] {
            let ledger_f = QueryLedger::new(2);
            let oracles_f = OracleSet::new(&ds, &ledger_f);
            let mut a = SparseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
            a.apply_register_unitary(sl.elem, &dqs_sim::gates::dft(4));
            a.apply_register_unitary(sl.flag, &dqs_sim::gates::dft(2));
            fused.apply_sequential(&oracles_f, &mut a, &sl, inverse);

            let ledger_g = QueryLedger::new(2);
            let oracles_g = OracleSet::new(&ds, &ledger_g);
            let mut b = SparseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
            b.apply_register_unitary(sl.elem, &dqs_sim::gates::dft(4));
            b.apply_register_unitary(sl.flag, &dqs_sim::gates::dft(2));
            unfused.apply_sequential(&oracles_g, &mut b, &sl, inverse);

            // Same rotation on the same amplitude pairs ⇒ exactly equal.
            assert_eq!(a.to_table().distance_sqr(&b.to_table()), 0.0);
            // Query accounting is the reproduced quantity: identical snapshots.
            assert_eq!(ledger_f.snapshot(), ledger_g.snapshot());
        }
    }

    #[test]
    fn fused_parallel_matches_gate_by_gate_and_charges_4_rounds() {
        let ds = dataset();
        let pl = ParallelLayout::for_dataset(&ds);
        let fused = DistributingOperator::new(ds.capacity());
        let unfused = DistributingOperator::gate_by_gate(ds.capacity());

        let ledger_f = QueryLedger::new(2);
        let oracles_f = OracleSet::new(&ds, &ledger_f);
        let mut a = SparseState::from_basis(pl.layout.clone(), &pl.layout.zero_basis());
        a.apply_register_unitary(pl.elem, &dqs_sim::gates::dft(4));
        fused.apply_parallel(&oracles_f, &mut a, &pl, false);

        let ledger_g = QueryLedger::new(2);
        let oracles_g = OracleSet::new(&ds, &ledger_g);
        let mut b = SparseState::from_basis(pl.layout.clone(), &pl.layout.zero_basis());
        b.apply_register_unitary(pl.elem, &dqs_sim::gates::dft(4));
        unfused.apply_parallel(&oracles_g, &mut b, &pl, false);

        assert_eq!(a.to_table().distance_sqr(&b.to_table()), 0.0);
        assert_eq!(ledger_f.parallel_rounds(), 4);
        assert_eq!(ledger_f.snapshot(), ledger_g.snapshot());
    }

    #[test]
    fn fused_composes_update_log() {
        use dqs_db::{UpdateLog, UpdateOp};
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 2));
        log.push(UpdateOp::delete(1, 3));

        let fused = DistributingOperator::new(ds.capacity());
        let unfused = DistributingOperator::gate_by_gate(ds.capacity());

        let ledger_f = QueryLedger::new(2);
        let oracles_f = OracleSet::with_updates(&ds, &ledger_f, &log);
        let mut a = SparseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
        a.apply_register_unitary(sl.elem, &dqs_sim::gates::dft(4));
        fused.apply_sequential(&oracles_f, &mut a, &sl, false);

        let ledger_g = QueryLedger::new(2);
        let oracles_g = OracleSet::with_updates(&ds, &ledger_g, &log);
        let mut b = SparseState::from_basis(sl.layout.clone(), &[0, 0, 0]);
        b.apply_register_unitary(sl.elem, &dqs_sim::gates::dft(4));
        unfused.apply_sequential(&oracles_g, &mut b, &sl, false);

        assert_eq!(a.to_table().distance_sqr(&b.to_table()), 0.0);
        assert_eq!(ledger_f.snapshot(), ledger_g.snapshot());
    }

    #[test]
    fn observed_variant_stays_gate_by_gate_even_when_fused() {
        // The hybrid argument needs a snapshot after every individual query;
        // the observed entry point must keep issuing 2n callbacks regardless
        // of the realization flag.
        let ds = dataset();
        let sl = SequentialLayout::for_dataset(&ds);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let d = DistributingOperator::new(ds.capacity());
        let mut s = SparseState::from_basis(sl.layout.clone(), &[1, 0, 0]);
        let mut calls = 0usize;
        d.apply_sequential_observed(&oracles, &mut s, &sl, false, |_, _| calls += 1);
        assert_eq!(calls, 2 * ds.num_machines());
        assert_eq!(ledger.total_sequential(), 2 * ds.num_machines() as u64);
    }
}
