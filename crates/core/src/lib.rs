//! # dqs-core
//!
//! The paper's primary contribution, executable: distributed quantum
//! sampling via local Grover oracles.
//!
//! * [`layouts`] — the register layouts of §3 (sequential: element, count,
//!   flag; parallel: those plus `3n` ancilla registers).
//! * [`distributing`] — the distributing operator `D` of Eq. (5), realized
//!   with `2n` sequential queries (Lemma 4.2) or 4 parallel rounds
//!   (Lemma 4.4).
//! * [`amplify`] — zero-error amplitude amplification
//!   (Brassard–Høyer–Mosca–Tapp, Theorem 4), including the exact
//!   final-rotation phase solve, so the output state is `|ψ⟩` with fidelity
//!   1 — not 1−ε.
//! * [`sequential`] / [`parallel`] — the end-to-end samplers of
//!   Theorems 4.3 and 4.5, generic over the simulator backend, plus
//!   batched multi-tenant variants (`*_sample_batch`) that bill every
//!   tenant the full query cost while amortizing the circuit evolution
//!   across the batch.
//! * [`cost`] — closed-form query-count predictors matching the ledger
//!   exactly, plus the `Θ(n√(νN/M))` / `Θ(√(νN/M))` theory envelopes.
//! * [`circuit`] — compiles both samplers to the data-driven
//!   [`dqs_sim::Program`] IR: statically costed, exactly invertible, with
//!   structural obliviousness checks.
//! * [`estimate`] — extension: estimate `M` through the oracle interface
//!   (the paper assumes it public) and sample adaptively.
//! * [`degraded`] — extension: run either sampler against a
//!   [`dqs_db::FaultPlan`] with bounded retries, deterministic backoff, a
//!   per-machine circuit breaker, and graceful degradation to the
//!   surviving machines with an exact fidelity lower bound.
//! * [`error`] — the crate-level [`SampleError`] returned by every
//!   sampling entry point.
//! * [`snapshot`] / [`artifacts`] — immutable versioned dataset handles and
//!   the version-keyed compiled-artifact cache that make the samplers
//!   reentrant for long-running services (`dqs-serve`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplify;
pub mod artifacts;
pub mod circuit;
pub mod cost;
pub mod degraded;
pub mod distributing;
pub mod error;
pub mod estimate;
pub mod layouts;
pub mod parallel;
pub mod sequential;
pub mod snapshot;

pub use amplify::{try_execute_plan, walk_plan_queries, AaPlan, FinalRotation};
pub use artifacts::{ArtifactCache, CacheStats, CompiledArtifacts};
pub use circuit::{
    compile_distributing, compile_distributing_with_tables, compile_parallel,
    compile_parallel_optimized, compile_parallel_with_tables, compile_sequential,
    compile_sequential_optimized, compile_sequential_with_tables, machine_count_tables,
};
pub use cost::{parallel_cost, sequential_cost, CostModel};
pub use degraded::{
    estimate_total_count_degraded, estimate_total_count_degraded_cached, parallel_sample_degraded,
    parallel_sample_degraded_cached, parallel_sample_degraded_cached_spec,
    parallel_sample_degraded_spec, replay_parallel_degraded_run, replay_sequential_degraded_run,
    sequential_sample_degraded, sequential_sample_degraded_cached,
    sequential_sample_degraded_cached_spec, sequential_sample_degraded_spec, DegradedEstimationRun,
    DegradedPartial, DegradedRun, DegradedSpec, RetryPolicy, RetrySession,
};
pub use distributing::DistributingOperator;
pub use error::SampleError;
pub use estimate::{
    estimate_flag_probabilities, estimate_total_count, estimate_total_count_batch,
    replay_estimate_run, sequential_sample_adaptive, AdaptiveRun, EstimationRun,
};
pub use layouts::{ParallelLayout, SequentialLayout};
pub use parallel::{
    parallel_sample, parallel_sample_batch, parallel_sample_cached, replay_parallel_run,
    ParallelRun,
};
pub use sequential::{
    replay_sequential_run, sequential_sample, sequential_sample_batch, sequential_sample_cached,
    sequential_sample_with_realization, sequential_sample_with_updates, SequentialRun,
};
pub use snapshot::{DatasetSnapshot, Lineage};
