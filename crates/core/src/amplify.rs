//! Zero-error amplitude amplification (Brassard–Høyer–Mosca–Tapp,
//! Theorem 4), as used by Theorems 4.3 / 4.5 of the paper.
//!
//! Given a state-preparation operator `A` with known success amplitude
//! `sin θ = √a` on a flagged "good" subspace, applying
//! `Q(φ,ϕ) = −A S₀(ϕ) A† S_χ(φ)` exactly `⌊m̃⌋` times with phases `(π,π)`
//! and then **once** with solved phases `(φ*, ϕ*)` lands exactly on the
//! good state — fidelity 1, not `1 − ε`. The final phases satisfy
//! (paper, citing BHMT Eq. 12):
//!
//! ```text
//! cot((2⌊m̃⌋+1)θ) = e^{iφ} · sin(2θ) · (−cos(2θ) + i·cot(ϕ/2))⁻¹ .
//! ```
//!
//! [`AaPlan::for_success_probability`] computes `θ`, `⌊m̃⌋` and solves that
//! equation in closed form; [`AaPlan::simulate_two_level`] runs the exact
//! 2-dimensional invariant-subspace dynamics so the solver is verifiable
//! without any oracle machinery, and the sampler crates drive the very same
//! plan through the full circuit.

use dqs_math::{Complex64, MatC};
use dqs_sim::{QuantumState, StateTable};

/// The solved phases for the final generalized Grover iteration, or the
/// degenerate case where `⌊m̃⌋` plain iterations already land exactly on the
/// good state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FinalRotation {
    /// Apply one more `Q(φ, ϕ)` with these phases.
    Phases {
        /// The `S_χ` phase `φ`.
        varphi: f64,
        /// The `S₀`/`S_π` phase `ϕ`.
        phi: f64,
    },
    /// `(2⌊m̃⌋+1)θ = π/2` exactly — no correction needed.
    None,
}

/// A fully-determined amplitude-amplification schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AaPlan {
    /// Initial success probability `a = sin²θ` (for the sampler,
    /// `a = M/(νN)`, Eq. 7 — known to the coordinator in advance).
    pub success_probability: f64,
    /// `θ = arcsin √a`.
    pub theta: f64,
    /// `⌊m̃⌋` with `m̃ = π/(4θ) − 1/2` — the number of plain `Q(π,π)`
    /// iterations.
    pub full_iterations: u64,
    /// The exact final rotation.
    pub final_rotation: FinalRotation,
}

impl AaPlan {
    /// Builds the schedule for a known success probability `a ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `a` is outside `(0, 1]` (with `a = M/(νN)` this cannot
    /// happen for a valid dataset since `ν·N ≥ Σ_i c_i = M`).
    pub fn for_success_probability(a: f64) -> Self {
        assert!(
            a > 0.0 && a <= 1.0 + 1e-12,
            "success probability must lie in (0,1], got {a}"
        );
        let a = a.min(1.0);
        let theta = a.sqrt().asin();
        let m_tilde = std::f64::consts::PI / (4.0 * theta) - 0.5;
        let m = m_tilde.max(0.0).floor() as u64;
        let final_rotation = Self::solve_final_rotation(theta, m);
        Self {
            success_probability: a,
            theta,
            full_iterations: m,
            final_rotation,
        }
    }

    /// Total `Q` applications (plain plus the corrected one, when present).
    pub fn total_iterations(&self) -> u64 {
        self.full_iterations
            + match self.final_rotation {
                FinalRotation::Phases { .. } => 1,
                FinalRotation::None => 0,
            }
    }

    /// Solves the BHMT phase-matching equation. With
    /// `L := cot((2m+1)θ)` the modulus condition gives
    /// `cot²(ϕ/2) = (sin(2θ)/L)² − cos²(2θ)` (non-negative because
    /// `(2m+1)θ ≥ π/2 − 2θ` implies `L ≤ tan(2θ)`), and the argument
    /// condition then fixes `e^{iφ} = L·(−cos 2θ + i·cot(ϕ/2))/sin 2θ`.
    fn solve_final_rotation(theta: f64, m: u64) -> FinalRotation {
        let angle = (2 * m + 1) as f64 * theta;
        let l = angle.cos() / angle.sin(); // cot((2m+1)θ)
        if l.abs() < 1e-12 {
            // Already exactly on the good state.
            return FinalRotation::None;
        }
        let s2 = (2.0 * theta).sin();
        let c2 = (2.0 * theta).cos();
        let cot_half_phi_sqr = (s2 / l).powi(2) - c2 * c2;
        assert!(
            cot_half_phi_sqr > -1e-9,
            "phase equation unsolvable: (2m+1)θ outside [π/2 − 2θ, π/2]?"
        );
        let cot_half_phi = cot_half_phi_sqr.max(0.0).sqrt();
        // ϕ = 2·arccot(cot(ϕ/2)); atan2 handles cot(ϕ/2) = 0 → ϕ = π.
        let phi = 2.0 * f64::atan2(1.0, cot_half_phi);
        let rhs = Complex64::new(-c2, cot_half_phi) * (l / s2);
        debug_assert!(
            (rhs.abs() - 1.0).abs() < 1e-9,
            "solved e^(i φ) is not unit modulus: {rhs}"
        );
        FinalRotation::Phases {
            varphi: rhs.arg(),
            phi,
        }
    }

    /// Runs the exact dynamics of the 2-dimensional invariant subspace
    /// `{|good⟩, |bad⟩}` and returns the final state `(α_good, α_bad)`.
    ///
    /// In this basis `A|0⟩ = (sin θ, cos θ)`,
    /// `S_χ(φ) = diag(e^{iφ}, 1)` and
    /// `A S₀(ϕ) A† = I + (e^{iϕ}−1)|A0⟩⟨A0|`; this mirrors exactly what the
    /// full samplers apply, so it validates the phase solve in isolation.
    pub fn simulate_two_level(&self) -> (Complex64, Complex64) {
        let theta = self.theta;
        let a0 = [
            Complex64::from_real(theta.sin()),
            Complex64::from_real(theta.cos()),
        ];
        let q = |varphi: f64, phi: f64| -> MatC {
            // S_χ(φ)
            let s_chi = MatC::from_rows(
                2,
                2,
                vec![
                    Complex64::cis(varphi),
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ONE,
                ],
            );
            // I + (e^{iϕ}−1)|a0⟩⟨a0|
            let coef = Complex64::cis(phi) - Complex64::ONE;
            let mut refl = MatC::identity(2);
            for r in 0..2 {
                for c in 0..2 {
                    refl[(r, c)] += coef * a0[r] * a0[c].conj();
                }
            }
            (refl * s_chi).scaled(-Complex64::ONE)
        };
        let mut v = vec![a0[0], a0[1]];
        let pi = std::f64::consts::PI;
        for _ in 0..self.full_iterations {
            v = q(pi, pi).mul_vec(&v);
        }
        if let FinalRotation::Phases { varphi, phi } = self.final_rotation {
            v = q(varphi, phi).mul_vec(&v);
        }
        (v[0], v[1])
    }
}

/// Drives a full amplitude-amplification schedule on a simulator state.
///
/// * `state` must already hold `A|0⟩` (for the samplers: `D|π,0,0⟩`).
/// * `apply_d(state, inverse)` applies the input-dependent operator `D`/`D†`
///   — the only place oracle queries happen.
/// * `anchor` is `|π, 0…⟩` (the pre-`D` prepared state), the axis of the
///   `S_π(ϕ)` reflection.
/// * `flag_reg` is the register whose value 0 marks "good" states for
///   `S_χ(φ)`.
///
/// Each `Q(φ,ϕ) = −D S_π(ϕ) D† S_χ(φ)` therefore costs two `D`
/// applications; the query ledger behind `apply_d` observes exactly
/// `2·total_iterations() + 1` of them including the initial `D` applied by
/// the caller.
pub fn execute_plan<S: QuantumState>(
    state: &mut S,
    plan: &AaPlan,
    anchor: &StateTable,
    flag_reg: usize,
    mut apply_d: impl FnMut(&mut S, bool),
) {
    let result: Result<(), std::convert::Infallible> =
        try_execute_plan(state, plan, anchor, flag_reg, |s, inv| {
            apply_d(s, inv);
            Ok(())
        });
    let Ok(()) = result;
}

/// Fallible variant of [`execute_plan`] for oracles that can fail (the
/// fault-injection layer): the schedule aborts at the first `Err` from
/// `apply_d`, leaving the state mid-iteration — callers are expected to
/// discard it and restart (every query issued so far stays charged on the
/// ledger behind `apply_d`).
pub fn try_execute_plan<S: QuantumState, E>(
    state: &mut S,
    plan: &AaPlan,
    anchor: &StateTable,
    flag_reg: usize,
    mut apply_d: impl FnMut(&mut S, bool) -> Result<(), E>,
) -> Result<(), E> {
    let pi = std::f64::consts::PI;
    let mut q = |state: &mut S, varphi: f64, phi: f64| -> Result<(), E> {
        dqs_obs::counter(dqs_obs::names::AA_ITERATION, 1);
        // rightmost factor first: S_χ(φ)
        state.apply_phase(|b| {
            if b[flag_reg] == 0 {
                Complex64::cis(varphi)
            } else {
                Complex64::ONE
            }
        });
        apply_d(state, true)?;
        state.apply_rank_one_phase(anchor, phi);
        apply_d(state, false)?;
        state.scale(-Complex64::ONE);
        Ok(())
    };
    for _ in 0..plan.full_iterations {
        q(state, pi, pi)?;
    }
    if let FinalRotation::Phases { varphi, phi } = plan.final_rotation {
        q(state, varphi, phi)?;
    }
    Ok(())
}

/// Walks the *query schedule* of [`try_execute_plan`] without touching any
/// state: per iteration it emits the same `aa.iteration` counter and calls
/// `apply_d(true)` then `apply_d(false)`, aborting at the first `Err`
/// exactly where the real execution would. Degraded-run replays use this
/// to re-issue every oracle probe (and re-emit every event) of a template
/// run while skipping the simulator work. Must stay in lockstep with
/// [`try_execute_plan`]'s call order.
pub fn walk_plan_queries<E>(
    plan: &AaPlan,
    mut apply_d: impl FnMut(bool) -> Result<(), E>,
) -> Result<(), E> {
    let mut q = |_varphi: f64, _phi: f64| -> Result<(), E> {
        dqs_obs::counter(dqs_obs::names::AA_ITERATION, 1);
        apply_d(true)?;
        apply_d(false)
    };
    let pi = std::f64::consts::PI;
    for _ in 0..plan.full_iterations {
        q(pi, pi)?;
    }
    if let FinalRotation::Phases { varphi, phi } = plan.final_rotation {
        q(varphi, phi)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_math::approx::approx_eq;

    #[test]
    fn plan_for_full_probability_is_trivial() {
        let plan = AaPlan::for_success_probability(1.0);
        assert_eq!(plan.full_iterations, 0);
        assert_eq!(plan.final_rotation, FinalRotation::None);
        assert!(approx_eq(plan.theta, std::f64::consts::FRAC_PI_2));
    }

    #[test]
    fn quarter_probability_is_single_grover_step() {
        // a = 1/4 → θ = π/6 and one Grover step lands exactly on the good
        // state. Depending on floating-point rounding of m̃ = 1.0 the plan is
        // either one plain iteration (m = 1, no correction) or a corrected
        // final iteration (m = 0) whose solved phases degenerate to (π, π) —
        // both are a single exact step.
        let plan = AaPlan::for_success_probability(0.25);
        assert_eq!(plan.total_iterations(), 1);
        if let FinalRotation::Phases { varphi, phi } = plan.final_rotation {
            let pi = std::f64::consts::PI;
            assert!((varphi.abs() - pi).abs() < 1e-6, "varphi = {varphi}");
            assert!((phi - pi).abs() < 1e-6, "phi = {phi}");
        }
        let (good, bad) = plan.simulate_two_level();
        assert!(bad.abs() < 1e-9);
        assert!(approx_eq(good.abs(), 1.0));
    }

    #[test]
    fn iteration_count_scales_as_inverse_sqrt() {
        let q1 = AaPlan::for_success_probability(1e-2).total_iterations() as f64;
        let q2 = AaPlan::for_success_probability(1e-4).total_iterations() as f64;
        let ratio = q2 / q1;
        assert!((ratio - 10.0).abs() < 1.0, "expected ~10x, got {ratio}");
    }

    #[test]
    fn two_level_simulation_reaches_fidelity_one() {
        // Sweep awkward probabilities — including ones where plain Grover
        // would badly overshoot — and confirm the exact landing.
        for &a in &[
            0.9, 0.7, 0.51, 0.5, 0.3333, 0.25, 0.2, 0.1, 0.05, 0.01, 0.004, 1e-3, 2.7e-4, 1e-5,
        ] {
            let plan = AaPlan::for_success_probability(a);
            let (good, bad) = plan.simulate_two_level();
            assert!(
                bad.abs() < 1e-9,
                "a = {a}: residual bad amplitude {}",
                bad.abs()
            );
            assert!(approx_eq(good.abs(), 1.0), "a = {a}");
        }
    }

    #[test]
    fn plain_grover_overshoots_where_zero_error_does_not() {
        // For a = 0.15, (2⌊m̃⌋+1)θ ≠ π/2, so ⌊m̃⌋ plain iterations plus one
        // more *plain* iteration misses; the corrected rotation hits exactly.
        let a = 0.15;
        let plan = AaPlan::for_success_probability(a);
        assert!(matches!(plan.final_rotation, FinalRotation::Phases { .. }));
        // plain variant: pretend the final rotation were (π, π) too
        let plain = AaPlan {
            final_rotation: FinalRotation::None,
            full_iterations: plan.full_iterations + 1,
            ..plan
        };
        let (good_plain, _) = plain.simulate_two_level();
        assert!(
            good_plain.abs() < 1.0 - 1e-6,
            "plain Grover should not be exact here: |good| = {}",
            good_plain.abs()
        );
        let (good_exact, bad_exact) = plan.simulate_two_level();
        assert!(approx_eq(good_exact.abs(), 1.0));
        assert!(bad_exact.abs() < 1e-9);
    }

    #[test]
    fn monotone_iterations_in_shrinking_probability() {
        let mut last = 0u64;
        for k in 1..=6 {
            let a = 10f64.powi(-k);
            let it = AaPlan::for_success_probability(a).total_iterations();
            assert!(it >= last, "iterations must not decrease as a shrinks");
            last = it;
        }
    }

    #[test]
    fn theoretical_iteration_formula() {
        let a = 1e-4;
        let plan = AaPlan::for_success_probability(a);
        let theta = a.sqrt().asin();
        let expected = (std::f64::consts::PI / (4.0 * theta) - 0.5).floor() as u64;
        assert_eq!(plan.full_iterations, expected);
    }

    #[test]
    #[should_panic(expected = "success probability")]
    fn zero_probability_rejected() {
        let _ = AaPlan::for_success_probability(0.0);
    }

    #[test]
    #[should_panic(expected = "success probability")]
    fn above_one_rejected() {
        let _ = AaPlan::for_success_probability(1.5);
    }
}
