//! The parallel-query sampling algorithm (Theorem 4.5).
//!
//! Identical amplitude-amplification schedule to the sequential algorithm —
//! only the realization of `D` changes: Lemma 4.4 implements it with 4
//! composite parallel rounds regardless of `n`, so the round complexity is
//! `O(√(νN/M))` with no factor of `n`.

use crate::amplify::{execute_plan, AaPlan};
use crate::cost::{cost_model, CostModel};
use crate::distributing::DistributingOperator;
use crate::error::SampleError;
use crate::layouts::ParallelLayout;
use dqs_db::{DistributedDataset, LedgerSnapshot, OracleSet, QueryLedger};
use dqs_sim::{QuantumState, StateTable};

/// The result of one parallel sampling run.
#[derive(Debug, Clone)]
pub struct ParallelRun<S> {
    /// The final coordinator state (should equal `|ψ,0,0,0…⟩`).
    pub state: S,
    /// Register layout used (`3 + 3n` registers).
    pub layout: ParallelLayout,
    /// The amplitude-amplification schedule that was executed.
    pub plan: AaPlan,
    /// Exact query counts observed on the ledger.
    pub queries: LedgerSnapshot,
    /// Predicted costs.
    pub cost: CostModel,
    /// Fidelity of the output against the true sampling state.
    pub fidelity: f64,
    /// The ground-truth target.
    pub target: StateTable,
}

/// Runs Theorem 4.5's algorithm.
///
/// The faultless oracles cannot fail on a valid dataset; the `Result`
/// keeps the signature uniform with [`crate::degraded`].
pub fn parallel_sample<S: QuantumState>(
    dataset: &DistributedDataset,
) -> Result<ParallelRun<S>, SampleError> {
    let layout = ParallelLayout::for_dataset(dataset);
    parallel_sample_with_layout(dataset, layout)
}

/// [`parallel_sample`] against pre-compiled shared artifacts (see
/// [`crate::sequential_sample_cached`]): the `3 + 3n`-register layout and
/// its cached `|π⟩` anchor come from the bundle. Bit-identical to
/// [`parallel_sample`] in state, ledger and obs stream.
pub fn parallel_sample_cached<S: QuantumState>(
    artifacts: &crate::artifacts::CompiledArtifacts,
) -> Result<ParallelRun<S>, SampleError> {
    parallel_sample_with_layout(artifacts.dataset(), artifacts.parallel_layout().clone())
}

/// The shared run body; the layout is caller-supplied for reentrancy.
fn parallel_sample_with_layout<S: QuantumState>(
    dataset: &DistributedDataset,
    layout: ParallelLayout,
) -> Result<ParallelRun<S>, SampleError> {
    let run_span = dqs_obs::span(dqs_obs::names::SPAN_PARALLEL);
    let probe = dqs_obs::begin_probe(dataset.num_machines());
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);

    let prepare_span = dqs_obs::span(dqs_obs::names::PHASE_PREPARE);
    let params = dataset.params();
    let plan = AaPlan::for_success_probability(params.initial_success_probability());
    dqs_obs::gauge(
        dqs_obs::names::AA_PLAN_ITERATIONS,
        plan.total_iterations() as i64,
    );
    let d = DistributingOperator::new(dataset.capacity());

    // Compiled prep: `F|0⟩ = |π⟩` is exactly the cached anchor table.
    let anchor = layout.uniform_anchor();
    let mut state = S::from_table(anchor);
    drop(prepare_span);

    {
        let _d_span = dqs_obs::span(dqs_obs::names::PHASE_INITIAL_D);
        d.apply_parallel(&oracles, &mut state, &layout, false);
    }
    {
        let _aa_span = dqs_obs::span(dqs_obs::names::PHASE_AMPLIFY);
        execute_plan(&mut state, &plan, anchor, layout.flag, |s, inv| {
            d.apply_parallel(&oracles, s, &layout, inv)
        });
    }

    let verify_span = dqs_obs::span(dqs_obs::names::PHASE_VERIFY);
    let target = dataset.target_state(&layout.layout, layout.elem);
    let fidelity = state.fidelity_with_table(&target);
    dqs_obs::float_metric("parallel.fidelity", fidelity);
    drop(verify_span);

    let queries = ledger.snapshot();
    dqs_obs::debug_check(&probe, &queries.per_machine, queries.parallel_rounds);
    drop(run_span);
    Ok(ParallelRun {
        state,
        layout,
        plan,
        queries,
        cost: cost_model(&params),
        fidelity,
        target,
    })
}

/// Runs Theorem 4.5's algorithm for a batch of `B ≥ 1` tenants over the
/// same static dataset, paying the circuit evolution once per batch.
///
/// Same contract as [`crate::sequential_sample_batch`]: the parallel
/// sampler is deterministic and oblivious, so member 0 executes the real
/// circuit and members `1..B` replay its ledger rounds and observability
/// events call-for-call on fresh ledgers. Every tenant is billed the full
/// `4(2k+1)` parallel rounds of Lemma 4.4 and the results are bit-identical
/// to `B` solo [`parallel_sample`] calls.
pub fn parallel_sample_batch<S: QuantumState>(
    dataset: &DistributedDataset,
    batch: usize,
) -> Result<Vec<ParallelRun<S>>, SampleError> {
    if batch == 0 {
        return Err(SampleError::EmptyBatch);
    }
    let mut runs = Vec::with_capacity(batch);
    runs.push(parallel_sample::<S>(dataset)?);
    for _ in 1..batch {
        let replayed = replay_parallel_run(dataset, &runs[0]);
        runs.push(replayed);
    }
    Ok(runs)
}

/// Charges and instruments one tenant's parallel run without re-evolving
/// the state. Mirrors [`parallel_sample`] event for event: each fused
/// `D`/`D†` application costs 4 composite parallel rounds (Lemma 4.4), and
/// each `Q` iteration applies `D` twice.
///
/// Public so coalescing services (`dqs-serve`) can fan a template run out
/// to every batched request under per-request recorders; the body makes no
/// internal rayon calls.
pub fn replay_parallel_run<S: QuantumState>(
    dataset: &DistributedDataset,
    template: &ParallelRun<S>,
) -> ParallelRun<S> {
    let run_span = dqs_obs::span(dqs_obs::names::SPAN_PARALLEL);
    let probe = dqs_obs::begin_probe(dataset.num_machines());
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);

    {
        let _prepare_span = dqs_obs::span(dqs_obs::names::PHASE_PREPARE);
        dqs_obs::gauge(
            dqs_obs::names::AA_PLAN_ITERATIONS,
            template.plan.total_iterations() as i64,
        );
    }
    {
        let _d_span = dqs_obs::span(dqs_obs::names::PHASE_INITIAL_D);
        for _ in 0..4 {
            oracles.charge_parallel_round();
        }
    }
    {
        let _aa_span = dqs_obs::span(dqs_obs::names::PHASE_AMPLIFY);
        for _ in 0..template.plan.total_iterations() {
            dqs_obs::counter(dqs_obs::names::AA_ITERATION, 1);
            for _ in 0..8 {
                oracles.charge_parallel_round();
            }
        }
    }
    {
        let _verify_span = dqs_obs::span(dqs_obs::names::PHASE_VERIFY);
        dqs_obs::float_metric("parallel.fidelity", template.fidelity);
    }

    let queries = ledger.snapshot();
    dqs_obs::debug_check(&probe, &queries.per_machine, queries.parallel_rounds);
    drop(run_span);
    ParallelRun {
        state: template.state.clone(),
        layout: template.layout.clone(),
        plan: template.plan,
        queries,
        cost: template.cost,
        fidelity: template.fidelity,
        target: template.target.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sequential_sample;
    use dqs_db::Multiset;
    use dqs_math::approx::approx_eq;
    use dqs_sim::SparseState;

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            8,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1), (5, 1)]),
                Multiset::from_counts([(1, 1), (6, 3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_output_is_exact() {
        let run = parallel_sample::<SparseState>(&dataset()).expect("faultless run");
        assert!(run.fidelity > 1.0 - 1e-9, "fidelity {}", run.fidelity);
        assert!(approx_eq(run.state.norm(), 1.0));
    }

    #[test]
    fn round_count_matches_cost_model_and_is_n_free() {
        let run = parallel_sample::<SparseState>(&dataset()).expect("faultless run");
        assert_eq!(run.queries.parallel_rounds, run.cost.parallel_rounds);
        assert_eq!(run.queries.total_sequential(), 0);
        assert_eq!(
            run.queries.parallel_rounds,
            4 * (2 * run.plan.total_iterations() + 1)
        );
    }

    #[test]
    fn parallel_and_sequential_produce_the_same_distribution() {
        let ds = dataset();
        let par = parallel_sample::<SparseState>(&ds).expect("faultless run");
        let seq = sequential_sample::<SparseState>(&ds).expect("faultless run");
        let p_par = par.state.register_probabilities(par.layout.elem);
        let p_seq = seq.state.register_probabilities(seq.layout.elem);
        for i in 0..ds.universe() as usize {
            assert!(approx_eq(p_par[i], p_seq[i]), "element {i}");
        }
    }

    #[test]
    fn ancillas_end_clean() {
        let run = parallel_sample::<SparseState>(&dataset()).expect("faultless run");
        for (b, _) in run.state.to_table().iter() {
            for j in 0..run.layout.machines() {
                assert_eq!(b[run.layout.anc_elem[j]], 0);
                assert_eq!(b[run.layout.anc_count[j]], 0);
                assert_eq!(b[run.layout.anc_flag[j]], 0);
            }
        }
    }

    #[test]
    fn batched_parallel_runs_match_a_solo_run_exactly() {
        let ds = dataset();
        let solo = parallel_sample::<SparseState>(&ds).expect("faultless run");
        let batch = parallel_sample_batch::<SparseState>(&ds, 3).expect("faultless batch");
        assert_eq!(batch.len(), 3);
        for run in &batch {
            assert_eq!(
                run.state.to_table().distance_sqr(&solo.state.to_table()),
                0.0
            );
            assert_eq!(run.queries, solo.queries);
            assert_eq!(run.queries.total_sequential(), 0);
            assert_eq!(
                run.queries.parallel_rounds,
                4 * (2 * run.plan.total_iterations() + 1)
            );
        }
        assert!(matches!(
            parallel_sample_batch::<SparseState>(&ds, 0),
            Err(SampleError::EmptyBatch)
        ));
    }

    #[test]
    fn rounds_do_not_grow_with_machines() {
        // Same global data, split over 1 vs 4 machines: identical rounds.
        let whole = Multiset::from_counts([(0, 2), (3, 1), (9, 1)]);
        let ds1 = DistributedDataset::new(16, 4, vec![whole.clone()]).unwrap();
        let shards4 = vec![
            Multiset::from_counts([(0, 2)]),
            Multiset::from_counts([(3, 1)]),
            Multiset::from_counts([(9, 1)]),
            Multiset::new(),
        ];
        let ds4 = DistributedDataset::new(16, 4, shards4).unwrap();
        let r1 = parallel_sample::<SparseState>(&ds1).expect("faultless run");
        let r4 = parallel_sample::<SparseState>(&ds4).expect("faultless run");
        assert_eq!(r1.queries.parallel_rounds, r4.queries.parallel_rounds);
        assert!(r4.fidelity > 1.0 - 1e-9);
    }
}
