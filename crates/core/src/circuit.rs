//! Compiling Theorem 4.3's sampler to the [`dqs_sim::Program`] IR.
//!
//! [`compile_sequential`] emits the *entire* sequential sampling circuit —
//! state preparation, every oracle call, the distributing rotation, and the
//! amplitude-amplification phases — as data. This gives structural
//! (compile-time) versions of properties the runtime tests check
//! behaviorally:
//!
//! * the static per-machine query count equals the ledger's;
//! * two inputs with equal public parameters compile to programs with
//!   identical [`dqs_sim::Program::shape`]s (the oblivious model,
//!   literally);
//! * the circuit is exactly invertible (`p⁻¹ ∘ p = I`).

use crate::amplify::{AaPlan, FinalRotation};
use crate::layouts::{ParallelLayout, SequentialLayout};
use dqs_db::DistributedDataset;
use dqs_sim::gates::{dft, ry_by_cos_sin};
use dqs_sim::{Instruction, Program};
use std::sync::Arc;

/// Builds the per-machine count tables `c_{ij}` (indexed
/// `[machine][element]`) that every compiled `OracleAdd` shares. This is
/// the single construction site for the tables both [`compile_sequential`]
/// and [`compile_parallel`] consume; services cache the result per dataset
/// version in [`crate::artifacts::CompiledArtifacts`] so repeated compiles
/// share one build.
pub fn machine_count_tables(dataset: &DistributedDataset) -> Vec<Arc<Vec<u64>>> {
    (0..dataset.num_machines())
        .map(|j| {
            Arc::new(
                (0..dataset.universe())
                    .map(|i| dataset.multiplicity(i, j))
                    .collect::<Vec<u64>>(),
            )
        })
        .collect()
}

/// Compiles the full sequential sampling circuit for a dataset.
///
/// Running the returned program from the all-zeros basis state produces
/// exactly `|ψ, 0, 0⟩`.
pub fn compile_sequential(dataset: &DistributedDataset) -> Program {
    let layout = SequentialLayout::for_dataset(dataset);
    let tables = machine_count_tables(dataset);
    compile_sequential_with_tables(dataset, &layout, &tables)
}

/// [`compile_sequential`] against a caller-supplied layout and shared count
/// tables — the reentrant compile path: nothing is rebuilt per call.
pub fn compile_sequential_with_tables(
    dataset: &DistributedDataset,
    layout: &SequentialLayout,
    tables: &[Arc<Vec<u64>>],
) -> Program {
    let plan = AaPlan::for_success_probability(dataset.params().initial_success_probability());
    let mut p = Program::new(layout.layout.clone());

    // |0⟩ → |π⟩ on the element register.
    p.push(Instruction::RegisterUnitary {
        target: layout.elem,
        matrix: dft(dataset.universe()),
    });

    let d_program = compile_distributing_with_tables(dataset, layout, false, tables);
    let d_dagger = compile_distributing_with_tables(dataset, layout, true, tables);
    let anchor = layout.uniform_anchor();
    let pi = std::f64::consts::PI;

    // A|0⟩ = D|π,0,0⟩.
    p = p.then(&d_program);

    // Q(φ,ϕ) = −D S_π(ϕ) D† S_χ(φ), rightmost factor first.
    let push_q = |p: Program, varphi: f64, phi: f64| -> Program {
        let mut p = p;
        p.push(Instruction::PhaseIfZero {
            reg: layout.flag,
            phi: varphi,
        });
        let mut p = p.then(&d_dagger);
        p.push(Instruction::RankOnePhase {
            anchor: anchor.clone(),
            phi,
        });
        let mut p = p.then(&d_program);
        p.push(Instruction::GlobalPhase { phi: pi });
        p
    };

    for _ in 0..plan.full_iterations {
        p = push_q(p, pi, pi);
    }
    if let FinalRotation::Phases { varphi, phi } = plan.final_rotation {
        p = push_q(p, varphi, phi);
    }
    p
}

/// [`compile_sequential`] followed by [`dqs_sim::Program::optimize`]: the
/// same action and the same static query accounting, but each `2n`-query
/// oracle cascade runs as a single fused support pass. This is the program
/// the samplers and the `circuit_export` example execute.
pub fn compile_sequential_optimized(dataset: &DistributedDataset) -> Program {
    compile_sequential(dataset).optimize()
}

/// [`compile_parallel`] followed by [`dqs_sim::Program::optimize`]; the
/// composite-round structure (and so the round accounting) is untouched —
/// only the broadcast sandwich around `𝒰` cancels.
pub fn compile_parallel_optimized(dataset: &DistributedDataset) -> Program {
    compile_parallel(dataset).optimize()
}

/// Compiles the distributing operator `D` (Lemma 4.2) — or `D†` — as
/// `O_1 … O_n · 𝒰^{(†)} · O_n† … O_1†`.
pub fn compile_distributing(
    dataset: &DistributedDataset,
    layout: &SequentialLayout,
    inverse: bool,
) -> Program {
    let tables = machine_count_tables(dataset);
    compile_distributing_with_tables(dataset, layout, inverse, &tables)
}

/// [`compile_distributing`] against shared count tables, so `D` and `D†`
/// (and every batch member compiled after them) reuse one table build.
pub fn compile_distributing_with_tables(
    dataset: &DistributedDataset,
    layout: &SequentialLayout,
    inverse: bool,
    tables: &[Arc<Vec<u64>>],
) -> Program {
    let nu = dataset.capacity();
    let modulus = nu + 1;
    let mut p = Program::new(layout.layout.clone());

    for (j, table) in tables.iter().enumerate() {
        p.push(Instruction::OracleAdd {
            machine: j,
            elem: layout.elem,
            count: layout.count,
            table: table.clone(),
            modulus,
            inverse: false,
        });
    }

    // 𝒰 keyed by the count register value c: |0⟩ ↦ √(c/ν)|0⟩ + √(1−c/ν)|1⟩.
    let matrices = (0..modulus)
        .map(|c| {
            let cos = (c as f64 / nu as f64).sqrt();
            let sin = ((nu - c.min(nu)) as f64 / nu as f64).sqrt();
            let u = ry_by_cos_sin(cos, sin);
            if inverse {
                u.adjoint()
            } else {
                u
            }
        })
        .collect();
    p.push(Instruction::UnitaryByRegister {
        target: layout.flag,
        by: layout.count,
        matrices,
    });

    for (j, table) in tables.iter().enumerate().rev() {
        p.push(Instruction::OracleAdd {
            machine: j,
            elem: layout.elem,
            count: layout.count,
            table: table.clone(),
            modulus,
            inverse: true,
        });
    }
    p
}

/// Compiles the full **parallel** sampling circuit (Theorem 4.5) for a
/// dataset, using the extended IR's broadcast / composite-round / fold
/// instructions. Running it from all-zeros produces `|ψ, 0, 0, 0…⟩`;
/// [`dqs_sim::Program::parallel_rounds`] gives the static round count.
pub fn compile_parallel(dataset: &DistributedDataset) -> Program {
    let layout = ParallelLayout::for_dataset(dataset);
    let tables = machine_count_tables(dataset);
    compile_parallel_with_tables(dataset, &layout, &tables)
}

/// [`compile_parallel`] against a caller-supplied layout and shared count
/// tables — the reentrant compile path for the parallel model.
pub fn compile_parallel_with_tables(
    dataset: &DistributedDataset,
    layout: &ParallelLayout,
    tables: &[Arc<Vec<u64>>],
) -> Program {
    let plan = AaPlan::for_success_probability(dataset.params().initial_success_probability());
    let nu = dataset.capacity();
    let modulus = nu + 1;

    // Lemma 4.4's |i,s⟩ ↦ |i, s ± c_i⟩ block: broadcast, O, fold, O†, uncopy.
    let load_count = |subtract: bool| -> Program {
        let mut p = Program::new(layout.layout.clone());
        p.push(Instruction::Broadcast {
            src: layout.elem,
            dsts: layout.anc_elem.clone(),
            flags: layout.anc_flag.clone(),
            undo: false,
        });
        p.push(Instruction::ParallelOracleRound {
            elem: layout.anc_elem.clone(),
            count: layout.anc_count.clone(),
            flag: layout.anc_flag.clone(),
            tables: tables.to_vec(),
            modulus,
            inverse: false,
        });
        p.push(Instruction::FoldCounts {
            srcs: layout.anc_count.clone(),
            dst: layout.count,
            modulus,
            subtract,
        });
        p.push(Instruction::ParallelOracleRound {
            elem: layout.anc_elem.clone(),
            count: layout.anc_count.clone(),
            flag: layout.anc_flag.clone(),
            tables: tables.to_vec(),
            modulus,
            inverse: true,
        });
        p.push(Instruction::Broadcast {
            src: layout.elem,
            dsts: layout.anc_elem.clone(),
            flags: layout.anc_flag.clone(),
            undo: true,
        });
        p
    };

    let u_matrices = |inverse: bool| -> Vec<dqs_math::MatC> {
        (0..modulus)
            .map(|c| {
                let cos = (c as f64 / nu as f64).sqrt();
                let sin = ((nu - c.min(nu)) as f64 / nu as f64).sqrt();
                let u = ry_by_cos_sin(cos, sin);
                if inverse {
                    u.adjoint()
                } else {
                    u
                }
            })
            .collect()
    };
    let distributing = |inverse: bool| -> Program {
        let mut p = load_count(false);
        p.push(Instruction::UnitaryByRegister {
            target: layout.flag,
            by: layout.count,
            matrices: u_matrices(inverse),
        });
        p.then(&load_count(true))
    };
    let d_program = distributing(false);
    let d_dagger = distributing(true);

    let anchor = layout.uniform_anchor();

    let mut p = Program::new(layout.layout.clone());
    p.push(Instruction::RegisterUnitary {
        target: layout.elem,
        matrix: dft(dataset.universe()),
    });
    p = p.then(&d_program);
    let pi = std::f64::consts::PI;
    let push_q = |p: Program, varphi: f64, phi: f64| -> Program {
        let mut p = p;
        p.push(Instruction::PhaseIfZero {
            reg: layout.flag,
            phi: varphi,
        });
        let mut p = p.then(&d_dagger);
        p.push(Instruction::RankOnePhase {
            anchor: anchor.clone(),
            phi,
        });
        let mut p = p.then(&d_program);
        p.push(Instruction::GlobalPhase { phi: pi });
        p
    };
    for _ in 0..plan.full_iterations {
        p = push_q(p, pi, pi);
    }
    if let FinalRotation::Phases { varphi, phi } = plan.final_rotation {
        p = push_q(p, varphi, phi);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sequential_sample;
    use dqs_db::Multiset;
    use dqs_sim::{QuantumState, SparseState};

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            8,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (6, 3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn compiled_program_matches_interpreter() {
        let ds = dataset();
        let program = compile_sequential(&ds);
        let compiled: SparseState = program.run_from_basis(&[0, 0, 0]);
        let interpreted = sequential_sample::<SparseState>(&ds).expect("faultless run");
        // Global phase may differ (−1 per iteration is tracked as e^{iπ});
        // compare via fidelity, which is phase-blind.
        let f = compiled.to_table().fidelity(&interpreted.state.to_table());
        assert!(f > 1.0 - 1e-9, "fidelity {f}");
        assert!(compiled.fidelity_with_table(&interpreted.target) > 1.0 - 1e-9);
    }

    #[test]
    fn static_query_count_matches_ledger() {
        let ds = dataset();
        let program = compile_sequential(&ds);
        let run = sequential_sample::<SparseState>(&ds).expect("faultless run");
        assert_eq!(
            program.oracle_queries(ds.num_machines()),
            run.queries.per_machine
        );
    }

    #[test]
    fn compiled_circuit_is_invertible() {
        let ds = dataset();
        let program = compile_sequential(&ds);
        let mut s: SparseState = program.run_from_basis(&[0, 0, 0]);
        program.inverse().run(&mut s);
        assert!(
            (s.amplitude(&[0, 0, 0]).abs() - 1.0).abs() < 1e-9,
            "p⁻¹∘p must return to |0,0,0⟩"
        );
    }

    #[test]
    fn obliviousness_is_structural() {
        // Two datasets with equal (N, M, ν, n) → identical program shapes.
        let a = dataset();
        let b = DistributedDataset::new(
            8,
            4,
            vec![
                Multiset::from_counts([(4, 3)]),
                Multiset::from_counts([(2, 2), (3, 1), (5, 1)]),
            ],
        )
        .unwrap();
        assert_eq!(a.params().total_count, b.params().total_count);
        let pa = compile_sequential(&a);
        let pb = compile_sequential(&b);
        assert_eq!(pa.shape(), pb.shape(), "oblivious circuits differ in shape");
        // but the underlying data differs, so the outputs differ
        let sa: SparseState = pa.run_from_basis(&[0, 0, 0]);
        let sb: SparseState = pb.run_from_basis(&[0, 0, 0]);
        assert!(sa.to_table().fidelity(&sb.to_table()) < 0.999);
    }

    #[test]
    fn compiled_parallel_program_matches_interpreter() {
        let ds = dataset();
        let program = compile_parallel(&ds);
        let layout = crate::layouts::ParallelLayout::for_dataset(&ds);
        let compiled: SparseState = program.run_from_basis(&layout.layout.zero_basis());
        let interpreted =
            crate::parallel::parallel_sample::<SparseState>(&ds).expect("faultless run");
        let f = compiled.to_table().fidelity(&interpreted.state.to_table());
        assert!(f > 1.0 - 1e-9, "fidelity {f}");
        assert_eq!(
            program.parallel_rounds(),
            interpreted.queries.parallel_rounds,
            "static and dynamic round accounting must agree"
        );
    }

    #[test]
    fn compiled_parallel_is_invertible() {
        let ds = dataset();
        let program = compile_parallel(&ds);
        let layout = crate::layouts::ParallelLayout::for_dataset(&ds);
        let zero = layout.layout.zero_basis();
        let mut s: SparseState = program.run_from_basis(&zero);
        program.inverse().run(&mut s);
        assert!((s.amplitude(&zero).abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distributing_subprogram_costs_2n() {
        let ds = dataset();
        let layout = SequentialLayout::for_dataset(&ds);
        let d = compile_distributing(&ds, &layout, false);
        assert_eq!(d.oracle_queries(2), vec![2, 2]);
    }

    #[test]
    fn optimized_sequential_preserves_action_queries_and_shrinks() {
        let ds = dataset();
        let raw = compile_sequential(&ds);
        let opt = compile_sequential_optimized(&ds);
        // Oracle fusion only composes permutations: output is exactly equal.
        let a: SparseState = raw.run_from_basis(&[0, 0, 0]);
        let b: SparseState = opt.run_from_basis(&[0, 0, 0]);
        assert_eq!(a.to_table().distance_sqr(&b.to_table()), 0.0);
        // Query accounting is invariant under optimization.
        assert_eq!(
            raw.oracle_queries(ds.num_machines()),
            opt.oracle_queries(ds.num_machines())
        );
        assert!(
            opt.len() < raw.len(),
            "optimizer must shrink the program ({} !< {})",
            opt.len(),
            raw.len()
        );
    }

    #[test]
    fn optimized_parallel_preserves_action_and_rounds() {
        let ds = dataset();
        let layout = crate::layouts::ParallelLayout::for_dataset(&ds);
        let raw = compile_parallel(&ds);
        let opt = compile_parallel_optimized(&ds);
        let zero = layout.layout.zero_basis();
        let a: SparseState = raw.run_from_basis(&zero);
        let b: SparseState = opt.run_from_basis(&zero);
        assert_eq!(a.to_table().distance_sqr(&b.to_table()), 0.0);
        assert_eq!(raw.parallel_rounds(), opt.parallel_rounds());
        assert!(opt.len() < raw.len());
    }

    #[test]
    fn optimized_circuits_stay_oblivious() {
        let a = dataset();
        let b = DistributedDataset::new(
            8,
            4,
            vec![
                Multiset::from_counts([(4, 3)]),
                Multiset::from_counts([(2, 2), (3, 1), (5, 1)]),
            ],
        )
        .unwrap();
        assert_eq!(
            compile_sequential_optimized(&a).shape(),
            compile_sequential_optimized(&b).shape(),
            "optimization must preserve structural obliviousness"
        );
    }
}
