//! The sequential-query sampling algorithm (Theorem 4.3).
//!
//! Pipeline: prepare `|π,0,0⟩` (uniform element register), apply `D` once,
//! then run zero-error amplitude amplification with
//! `Q(φ,ϕ) = −D S_π(ϕ) D† S_χ(φ)` where each `D`/`D†` costs `2n` sequential
//! oracle queries (Lemma 4.2). The output is **exactly**
//! `|ψ⟩ = (1/√M) Σ_i √c_i |i⟩` on the element register with count and flag
//! uncomputed to zero.

use crate::amplify::{execute_plan, AaPlan};
use crate::cost::{cost_model, CostModel};
use crate::distributing::DistributingOperator;
use crate::error::SampleError;
use crate::layouts::SequentialLayout;
use dqs_db::{DistributedDataset, LedgerSnapshot, OracleSet, QueryLedger, UpdateLog};
use dqs_sim::{QuantumState, StateTable};

/// The result of one sequential sampling run.
#[derive(Debug, Clone)]
pub struct SequentialRun<S> {
    /// The final coordinator state (should equal `|ψ,0,0⟩`).
    pub state: S,
    /// Register layout used.
    pub layout: SequentialLayout,
    /// The amplitude-amplification schedule that was executed.
    pub plan: AaPlan,
    /// Exact query counts observed on the ledger.
    pub queries: LedgerSnapshot,
    /// Predicted costs (must match `queries` exactly; asserted in tests).
    pub cost: CostModel,
    /// Fidelity of the output against the true sampling state.
    pub fidelity: f64,
    /// The ground-truth target `|ψ,0,0⟩`.
    pub target: StateTable,
}

/// Runs Theorem 4.3's algorithm over a static dataset.
///
/// The faultless oracles cannot fail on a valid dataset, so the `Err` arm
/// is unreachable here — the `Result` keeps the signature uniform with the
/// fault-injecting [`crate::degraded`] entry points.
pub fn sequential_sample<S: QuantumState>(
    dataset: &DistributedDataset,
) -> Result<SequentialRun<S>, SampleError> {
    sequential_sample_with_realization(dataset, true)
}

/// Like [`sequential_sample`], but with an explicit distributing-operator
/// realization: `fused = true` is the default single-pass fast path,
/// `fused = false` pins the literal Lemma 4.2 cascade. The two must produce
/// identical ledgers and fidelity-1 outputs; benches and integration tests
/// compare them head-to-head.
pub fn sequential_sample_with_realization<S: QuantumState>(
    dataset: &DistributedDataset,
    fused: bool,
) -> Result<SequentialRun<S>, SampleError> {
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);
    let layout = SequentialLayout::for_dataset(dataset);
    run_with_oracles(dataset, &oracles, &ledger, None, fused, layout)
}

/// [`sequential_sample`] against pre-compiled shared artifacts: the layout
/// (and through it the cached `|π⟩` anchor) comes from the bundle instead
/// of being rebuilt per call, so concurrent requests against one dataset
/// version share every compile-time input. Ledger charges, obs events and
/// the output state are bit-identical to [`sequential_sample`].
pub fn sequential_sample_cached<S: QuantumState>(
    artifacts: &crate::artifacts::CompiledArtifacts,
) -> Result<SequentialRun<S>, SampleError> {
    let dataset = artifacts.dataset();
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);
    let layout = artifacts.sequential_layout().clone();
    run_with_oracles(dataset, &oracles, &ledger, None, true, layout)
}

/// Runs the algorithm against a dataset with a dynamic-update log composed
/// onto the oracles (§3's `U`/`U†` mechanism). The target state is that of
/// the *updated* data.
pub fn sequential_sample_with_updates<S: QuantumState>(
    dataset: &DistributedDataset,
    updates: &UpdateLog,
) -> Result<SequentialRun<S>, SampleError> {
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::with_updates(dataset, &ledger, updates);
    let layout = SequentialLayout::for_dataset(dataset);
    run_with_oracles(dataset, &oracles, &ledger, Some(updates), true, layout)
}

/// The shared run body. The layout is caller-supplied (reentrancy: cached
/// layouts share their `|π⟩` anchor across calls through the layout's
/// internal `Arc<OnceLock<…>>`); everything else borrows the dataset.
fn run_with_oracles<S: QuantumState>(
    dataset: &DistributedDataset,
    oracles: &OracleSet<'_>,
    ledger: &QueryLedger,
    updates: Option<&UpdateLog>,
    fused: bool,
    layout: SequentialLayout,
) -> Result<SequentialRun<S>, SampleError> {
    let run_span = dqs_obs::span(dqs_obs::names::SPAN_SEQUENTIAL);
    let probe = dqs_obs::begin_probe(dataset.num_machines());

    let prepare_span = dqs_obs::span(dqs_obs::names::PHASE_PREPARE);
    let effective = match updates {
        Some(log) => log.apply_to(dataset),
        None => dataset.clone(),
    };
    let params = effective.params();
    let plan = AaPlan::for_success_probability(params.initial_success_probability());
    dqs_obs::gauge(
        dqs_obs::names::AA_PLAN_ITERATIONS,
        plan.total_iterations() as i64,
    );
    let d = DistributingOperator::with_fused(dataset.capacity(), fused);

    // |0,0,0⟩ → |π,0,0⟩. `F|0⟩ = |π⟩` has a closed form — the cached
    // uniform-anchor table — so load it directly instead of building and
    // applying the `N × N` DFT matrix (which dominated end-to-end time).
    let anchor = layout.uniform_anchor();
    let mut state = S::from_table(anchor);
    drop(prepare_span);

    // A|0⟩ = D|π,0,0⟩, then amplify.
    {
        let _d_span = dqs_obs::span(dqs_obs::names::PHASE_INITIAL_D);
        d.apply_sequential(oracles, &mut state, &layout, false);
    }
    {
        let _aa_span = dqs_obs::span(dqs_obs::names::PHASE_AMPLIFY);
        execute_plan(&mut state, &plan, anchor, layout.flag, |s, inv| {
            d.apply_sequential(oracles, s, &layout, inv)
        });
    }

    let verify_span = dqs_obs::span(dqs_obs::names::PHASE_VERIFY);
    let target = effective.target_state(&layout.layout, layout.elem);
    let fidelity = state.fidelity_with_table(&target);
    dqs_obs::float_metric("sequential.fidelity", fidelity);
    drop(verify_span);

    let queries = ledger.snapshot();
    dqs_obs::debug_check(&probe, &queries.per_machine, queries.parallel_rounds);
    drop(run_span);
    Ok(SequentialRun {
        state,
        layout,
        plan,
        queries,
        cost: cost_model(&params),
        fidelity,
        target,
    })
}

/// Runs Theorem 4.3's algorithm for a batch of `B ≥ 1` tenants over the
/// same static dataset, paying the circuit evolution once per batch.
///
/// The sequential sampler is deterministic and *oblivious*: the gate
/// sequence, the query schedule and the final state depend only on the
/// dataset, never on per-tenant randomness. Member 0 therefore executes the
/// real circuit (bit-identical to [`sequential_sample`] by construction),
/// and members `1..B` replay the same ledger charges and observability
/// events call-for-call against their own fresh ledgers — every tenant is
/// billed the full Theorem 4.3 query cost and emits the same event stream,
/// while the `O(√(νN/M) · support)` state evolution is amortized across the
/// batch. The batch-equivalence tests pin state, ledger *and*
/// obs-event-stream equality against `B` solo runs.
pub fn sequential_sample_batch<S: QuantumState>(
    dataset: &DistributedDataset,
    batch: usize,
) -> Result<Vec<SequentialRun<S>>, SampleError> {
    if batch == 0 {
        return Err(SampleError::EmptyBatch);
    }
    let mut runs = Vec::with_capacity(batch);
    runs.push(sequential_sample::<S>(dataset)?);
    for _ in 1..batch {
        let replayed = replay_sequential_run(dataset, &runs[0]);
        runs.push(replayed);
    }
    Ok(runs)
}

/// Charges and instruments one tenant's run without re-evolving the state.
///
/// Mirrors `run_with_oracles` (fused realization, no updates) event for
/// event: the span structure, the plan gauge, the `AA_ITERATION` counters,
/// the per-`D` oracle charges (`2n` sequential queries each) and the
/// fidelity metric all land in the same order on a fresh ledger/probe, so
/// the resulting snapshot and recorder stream are indistinguishable from a
/// solo run's. The state itself is cloned from the template — legitimate
/// because the circuit is deterministic and oblivious to the tenant.
///
/// Public so coalescing services (`dqs-serve`) can fan a template run out
/// to every batched request under per-request recorders; the body makes no
/// internal rayon calls, so replays are safe to run on worker threads with
/// thread-local recorder stacks.
pub fn replay_sequential_run<S: QuantumState>(
    dataset: &DistributedDataset,
    template: &SequentialRun<S>,
) -> SequentialRun<S> {
    let run_span = dqs_obs::span(dqs_obs::names::SPAN_SEQUENTIAL);
    let probe = dqs_obs::begin_probe(dataset.num_machines());
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);

    {
        let _prepare_span = dqs_obs::span(dqs_obs::names::PHASE_PREPARE);
        dqs_obs::gauge(
            dqs_obs::names::AA_PLAN_ITERATIONS,
            template.plan.total_iterations() as i64,
        );
    }
    {
        // The initial `D` — one fused apply = two sequential charge rounds.
        let _d_span = dqs_obs::span(dqs_obs::names::PHASE_INITIAL_D);
        oracles.charge_all_sequential();
        oracles.charge_all_sequential();
    }
    {
        // Each `Q` = S_χ · D† · S_π · D, i.e. two fused applies.
        let _aa_span = dqs_obs::span(dqs_obs::names::PHASE_AMPLIFY);
        for _ in 0..template.plan.total_iterations() {
            dqs_obs::counter(dqs_obs::names::AA_ITERATION, 1);
            for _ in 0..4 {
                oracles.charge_all_sequential();
            }
        }
    }
    {
        let _verify_span = dqs_obs::span(dqs_obs::names::PHASE_VERIFY);
        dqs_obs::float_metric("sequential.fidelity", template.fidelity);
    }

    let queries = ledger.snapshot();
    dqs_obs::debug_check(&probe, &queries.per_machine, queries.parallel_rounds);
    drop(run_span);
    SequentialRun {
        state: template.state.clone(),
        layout: template.layout.clone(),
        plan: template.plan,
        queries,
        cost: template.cost,
        fidelity: template.fidelity,
        target: template.target.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::{Multiset, UpdateOp};
    use dqs_math::approx::approx_eq;
    use dqs_sim::{DenseState, SparseState};

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            8,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1), (5, 1)]),
                Multiset::from_counts([(1, 1), (6, 3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn output_state_is_exact_sampling_state() {
        let run = sequential_sample::<SparseState>(&dataset()).expect("faultless run");
        assert!(
            run.fidelity > 1.0 - 1e-9,
            "zero-error AA must land exactly: fidelity {}",
            run.fidelity
        );
        assert!(approx_eq(run.state.norm(), 1.0));
    }

    #[test]
    fn query_count_matches_cost_model_exactly() {
        let run = sequential_sample::<SparseState>(&dataset()).expect("faultless run");
        assert_eq!(run.queries.total_sequential(), run.cost.sequential_queries);
        assert_eq!(run.queries.parallel_rounds, 0);
        // every machine is queried equally often (obliviousness)
        let per = &run.queries.per_machine;
        assert!(per.iter().all(|&t| t == per[0]));
    }

    #[test]
    fn dense_and_sparse_backends_agree() {
        let ds = dataset();
        let a = sequential_sample::<SparseState>(&ds).expect("faultless run");
        let b = sequential_sample::<DenseState>(&ds).expect("faultless run");
        assert!(a.state.to_table().distance_sqr(&b.state.to_table()) < 1e-15);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn output_marginal_matches_frequencies() {
        let ds = dataset();
        let run = sequential_sample::<SparseState>(&ds).expect("faultless run");
        let probs = run.state.register_probabilities(run.layout.elem);
        let m_total = ds.total_count() as f64;
        for i in 0..ds.universe() {
            let expect = ds.total_multiplicity(i) as f64 / m_total;
            assert!(
                approx_eq(probs[i as usize], expect),
                "element {i}: {} vs {expect}",
                probs[i as usize]
            );
        }
    }

    #[test]
    fn single_machine_reduces_to_centralized_sampling() {
        let ds =
            DistributedDataset::new(16, 2, vec![Multiset::from_counts([(0, 1), (7, 2), (9, 1)])])
                .unwrap();
        let run = sequential_sample::<SparseState>(&ds).expect("faultless run");
        assert!(run.fidelity > 1.0 - 1e-9);
        assert_eq!(run.queries.per_machine.len(), 1);
    }

    #[test]
    fn updates_are_reflected_in_output() {
        let ds = dataset();
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3)); // brand-new element 3
        log.push(UpdateOp::delete(1, 6)); // 6: 3 → 2
        let run = sequential_sample_with_updates::<SparseState>(&ds, &log).expect("faultless run");
        assert!(run.fidelity > 1.0 - 1e-9);
        // the target itself is the updated distribution
        let updated = log.apply_to(&ds);
        let probs = run.state.register_probabilities(run.layout.elem);
        assert!(approx_eq(probs[3], 1.0 / updated.total_count() as f64));
    }

    #[test]
    fn full_support_uniform_dataset_is_cheap() {
        // c_i = ν for all i → a = 1 → zero iterations, only the initial D.
        let n_machines = 2usize;
        let shards: Vec<Multiset> = (0..n_machines)
            .map(|_| Multiset::from_counts((0..4u64).map(|i| (i, 1))))
            .collect();
        let ds = DistributedDataset::new(4, 2, shards).unwrap();
        let run = sequential_sample::<SparseState>(&ds).expect("faultless run");
        assert_eq!(run.plan.total_iterations(), 0);
        assert_eq!(run.queries.total_sequential(), 2 * n_machines as u64);
        assert!(run.fidelity > 1.0 - 1e-9);
    }

    #[test]
    fn batched_runs_match_a_solo_run_exactly() {
        let ds = dataset();
        let solo = sequential_sample::<SparseState>(&ds).expect("faultless run");
        let batch = sequential_sample_batch::<SparseState>(&ds, 3).expect("faultless batch");
        assert_eq!(batch.len(), 3);
        for run in &batch {
            assert_eq!(
                run.state.to_table().distance_sqr(&solo.state.to_table()),
                0.0,
                "batch member state must be bit-identical to a solo run"
            );
            assert_eq!(run.queries, solo.queries);
            assert_eq!(run.cost, solo.cost);
            assert_eq!(run.fidelity, solo.fidelity);
            assert_eq!(run.target.distance_sqr(&solo.target), 0.0);
        }
    }

    #[test]
    fn empty_batch_is_rejected() {
        assert!(matches!(
            sequential_sample_batch::<SparseState>(&dataset(), 0),
            Err(SampleError::EmptyBatch)
        ));
    }

    #[test]
    fn measurement_sampling_follows_data_frequencies() {
        use rand::SeedableRng;
        let ds = dataset();
        let run = sequential_sample::<SparseState>(&ds).expect("faultless run");
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let trials = 4000usize;
        let mut hits = vec![0usize; ds.universe() as usize];
        for _ in 0..trials {
            let b = run.state.sample(&mut rng);
            hits[b[run.layout.elem] as usize] += 1;
        }
        let m_total = ds.total_count() as f64;
        for i in 0..ds.universe() {
            let expect = ds.total_multiplicity(i) as f64 / m_total;
            let got = hits[i as usize] as f64 / trials as f64;
            assert!(
                (got - expect).abs() < 0.04,
                "element {i}: empirical {got} vs {expect}"
            );
        }
    }
}
