//! Closed-form query-cost predictors.
//!
//! Because every oracle application flows through the [`dqs_db::QueryLedger`],
//! the measured counts are *exact*, and so are these predictors — the test
//! suite asserts ledger == prediction, which pins the constant factors the
//! asymptotic statements hide:
//!
//! * sequential: `D` costs `2n` queries (Lemma 4.2); each `Q` uses `D` and
//!   `D†`; plus the initial `D` → total `2n·(2·iterations + 1)`;
//! * parallel: `D` costs 4 rounds (Lemma 4.4) → total `4·(2·iterations + 1)`.

use crate::amplify::AaPlan;
use dqs_db::Params;

/// Exact and asymptotic query costs for one dataset instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Number of machines `n`.
    pub machines: u64,
    /// Amplitude-amplification iterations (plain + corrected).
    pub iterations: u64,
    /// Exact sequential queries the sampler will issue.
    pub sequential_queries: u64,
    /// Exact parallel rounds the sampler will issue.
    pub parallel_rounds: u64,
    /// The theory envelope `√(νN/M)` (per-machine scale).
    pub theory_scale: f64,
}

/// Builds the cost model for a parameter set.
pub fn cost_model(params: &Params) -> CostModel {
    let plan = AaPlan::for_success_probability(params.initial_success_probability());
    let iterations = plan.total_iterations();
    let n = params.machines as u64;
    CostModel {
        machines: n,
        iterations,
        sequential_queries: sequential_cost(n, iterations),
        parallel_rounds: parallel_cost(iterations),
        theory_scale: params.sqrt_vn_over_m(),
    }
}

/// Exact sequential query count: one initial `D` plus `D, D†` per iteration,
/// each costing `2n`.
pub fn sequential_cost(machines: u64, iterations: u64) -> u64 {
    2 * machines * (2 * iterations + 1)
}

/// Exact parallel round count: one initial `D` plus `D, D†` per iteration,
/// each costing 4 rounds.
pub fn parallel_cost(iterations: u64) -> u64 {
    4 * (2 * iterations + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::{DistributedDataset, Multiset};

    fn params_for(universe: u64, capacity: u64, shards: Vec<Multiset>) -> Params {
        DistributedDataset::new(universe, capacity, shards)
            .unwrap()
            .params()
    }

    #[test]
    fn cost_formulas() {
        assert_eq!(sequential_cost(3, 0), 6); // just the initial D
        assert_eq!(sequential_cost(3, 2), 30); // 2n·(2·2+1)
        assert_eq!(parallel_cost(0), 4);
        assert_eq!(parallel_cost(5), 44);
    }

    #[test]
    fn model_is_consistent_with_plan() {
        let p = params_for(
            16,
            4,
            vec![
                Multiset::from_counts([(0, 1), (3, 2)]),
                Multiset::from_counts([(9, 1)]),
            ],
        );
        let m = cost_model(&p);
        assert_eq!(m.machines, 2);
        assert_eq!(m.sequential_queries, sequential_cost(2, m.iterations));
        assert_eq!(m.parallel_rounds, parallel_cost(m.iterations));
        assert!(m.theory_scale > 0.0);
    }

    #[test]
    fn iterations_track_theory_scale() {
        // Same density, growing N: iterations ≈ (π/4)·√(νN/M).
        for exp in 3..8u32 {
            let n_universe = 1u64 << exp;
            let shard = Multiset::from_counts([(0u64, 2u64), (1, 2)]);
            let p = params_for(n_universe, 4, vec![shard]);
            let m = cost_model(&p);
            let predicted = std::f64::consts::FRAC_PI_4 * m.theory_scale;
            let err = (m.iterations as f64 - predicted).abs();
            assert!(
                err <= 1.5,
                "N = {n_universe}: iterations {} vs π/4·scale {predicted}",
                m.iterations
            );
        }
    }

    #[test]
    fn sequential_is_n_times_parallel_asymptotically() {
        let p = params_for(
            64,
            8,
            vec![
                Multiset::from_counts([(0, 2)]),
                Multiset::from_counts([(1, 2)]),
                Multiset::from_counts([(2, 2)]),
            ],
        );
        let m = cost_model(&p);
        // seq/par = 2n(2it+1) / 4(2it+1) = n/2 exactly.
        assert_eq!(
            m.sequential_queries as f64 / m.parallel_rounds as f64,
            m.machines as f64 / 2.0
        );
    }
}
