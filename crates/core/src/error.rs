//! The crate-level error type for fallible sampling entry points.
//!
//! The faultless algorithms of Theorems 4.3/4.5 cannot fail on a valid
//! dataset, but the public entry points return `Result` uniformly so the
//! fault-injecting and estimating variants compose without `unwrap` walls
//! at call sites.

use crate::degraded::DegradedPartial;
use dqs_db::OracleError;
use std::fmt;

/// Everything that can go wrong in a sampling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleError {
    /// The oracle layer failed and the retry policy could not absorb it
    /// (only reachable through the fault-injecting entry points).
    Oracle(OracleError),
    /// Degraded mode: every machine is dead, or the survivors hold no data
    /// (`M_surv = 0`) — there is nothing left to sample.
    NoSurvivingData {
        /// The machines the circuit breaker declared dead.
        dead: Vec<usize>,
    },
    /// Estimation: every shot measured flag 1, so `M̂ = 0` and no
    /// amplification schedule exists. Retry with a larger shot budget.
    NoFlagZeroOutcomes {
        /// How many shots were spent.
        shots: u64,
    },
    /// Estimation was asked to run with zero shots.
    InvalidShotBudget,
    /// A batched entry point was asked to run with zero batch members
    /// (no tenants / no seeds — there is nothing to execute).
    EmptyBatch,
    /// Degraded mode: the deterministic attempt-count deadline tripped at
    /// a restart boundary before an attempt completed. The partial run —
    /// exact charges, breaker state, and the survivor-set fidelity bound —
    /// rides along: degradation is never free, and the bound never needed
    /// the circuit to finish.
    DeadlineExceeded {
        /// Everything the aborted run had established when it gave up.
        partial: Box<DegradedPartial>,
    },
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Oracle(e) => write!(f, "oracle failure: {e}"),
            SampleError::NoSurvivingData { dead } => {
                write!(f, "no surviving data (dead machines: {dead:?})")
            }
            SampleError::NoFlagZeroOutcomes { shots } => {
                write!(
                    f,
                    "no flag-0 outcomes in {shots} shots; increase the shot budget"
                )
            }
            SampleError::InvalidShotBudget => write!(f, "shot budget must be positive"),
            SampleError::EmptyBatch => {
                write!(f, "batch must contain at least one member")
            }
            SampleError::DeadlineExceeded { partial } => write!(
                f,
                "deadline exceeded after {} charged attempts ({} restarts); \
                 fidelity bound {} still holds over survivors {:?}",
                partial.queries.total_sequential() + partial.queries.parallel_rounds,
                partial.restarts,
                partial.fidelity_bound(),
                partial.survivors,
            ),
        }
    }
}

impl std::error::Error for SampleError {}

impl From<OracleError> for SampleError {
    fn from(e: OracleError) -> Self {
        SampleError::Oracle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SampleError::NoSurvivingData { dead: vec![0, 2] };
        assert!(e.to_string().contains("[0, 2]"));
        assert!(SampleError::InvalidShotBudget
            .to_string()
            .contains("positive"));
        assert!(SampleError::EmptyBatch
            .to_string()
            .contains("at least one member"));
        let o = SampleError::from(OracleError::MachineUnavailable {
            machine: 1,
            attempt: 7,
            permanent: true,
        });
        assert!(o.to_string().contains("machine 1"));
        let d = SampleError::DeadlineExceeded {
            partial: Box::new(DegradedPartial::new(
                dqs_db::LedgerSnapshot {
                    per_machine: vec![3, 1],
                    parallel_rounds: 0,
                },
                1,
                vec![0],
                vec![1],
                0,
                0,
                0.75,
            )),
        };
        let msg = d.to_string();
        assert!(msg.contains("deadline exceeded after 4 charged attempts"));
        assert!(msg.contains("0.75"));
    }
}
