//! Extension: estimating the total count `M` through the oracle interface.
//!
//! The paper's algorithms assume the coordinator knows `M = Σ_i c_i`
//! (Table 1 treats it as public). When it is *not* known, the coordinator
//! can estimate the distributing operator's success probability
//! `a = M/(νN)` by preparing `D|π,0⟩` and measuring the flag register:
//! the flag reads 0 with probability exactly `a` (Eq. 7). Each shot costs
//! one `D` application — `2n` sequential queries — so estimating `a` to
//! relative error `δ` costs `O(n/(aδ²))` queries (a Bernoulli tail bound;
//! quantum amplitude estimation would improve this to `O(n/(√a·δ))` and is
//! noted as further work in DESIGN.md).
//!
//! [`sequential_sample_adaptive`] then runs amplitude amplification with
//! the *estimated* angle: the schedule length and the final rotation both
//! inherit the estimation error, so the output fidelity degrades gracefully
//! with shot count — quantified by Experiment E14.

use crate::amplify::{execute_plan, AaPlan};
use crate::distributing::DistributingOperator;
use crate::error::SampleError;
use crate::layouts::SequentialLayout;
use dqs_db::{DistributedDataset, LedgerSnapshot, OracleSet, QueryLedger};
use dqs_sim::{measure_register, sample_outcome, QuantumState, SparseState};
use rand::Rng;

/// Result of estimating `M` by flag sampling.
#[derive(Debug, Clone)]
pub struct EstimationRun {
    /// Estimated total count `M̂ = â·νN`.
    pub estimated_total: f64,
    /// Estimated success probability `â`.
    pub estimated_a: f64,
    /// Number of preparation-and-measure shots.
    pub shots: u64,
    /// Exact queries spent (`2n` per shot).
    pub queries: LedgerSnapshot,
}

/// Estimates `M` with `shots` prepare-measure rounds.
///
/// # Errors
///
/// [`SampleError::InvalidShotBudget`] for `shots == 0`, and
/// [`SampleError::NoFlagZeroOutcomes`] when every shot lands on flag 1
/// (all-empty estimate) — with `shots ≳ 3νN/M` the latter has vanishing
/// probability; retry with more shots.
pub fn estimate_total_count(
    dataset: &DistributedDataset,
    shots: u64,
    rng: &mut impl Rng,
) -> Result<EstimationRun, SampleError> {
    if shots == 0 {
        return Err(SampleError::InvalidShotBudget);
    }
    let _run_span = dqs_obs::span(dqs_obs::names::SPAN_ESTIMATE);
    let probe = dqs_obs::begin_probe(dataset.num_machines());
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);
    let layout = SequentialLayout::for_dataset(dataset);
    let d = DistributingOperator::new(dataset.capacity());

    let mut zeros = 0u64;
    for _ in 0..shots {
        dqs_obs::counter(dqs_obs::names::ESTIMATE_SHOT, 1);
        // Compiled prep: load the cached `|π,0,0⟩` table (built once per
        // layout — especially important here, once per shot).
        let mut state = SparseState::from_table(layout.uniform_anchor());
        d.apply_sequential(&oracles, &mut state, &layout, false);
        let (flag, _) = measure_register(&mut state, layout.flag, rng);
        zeros += u64::from(flag == 0);
    }
    dqs_obs::gauge(dqs_obs::names::ESTIMATE_ZEROS, zeros as i64);
    let queries = ledger.snapshot();
    dqs_obs::debug_check(&probe, &queries.per_machine, queries.parallel_rounds);
    if zeros == 0 {
        return Err(SampleError::NoFlagZeroOutcomes { shots });
    }
    let a_hat = zeros as f64 / shots as f64;
    Ok(EstimationRun {
        estimated_total: a_hat * dataset.capacity() as f64 * dataset.universe() as f64,
        estimated_a: a_hat,
        shots,
        queries,
    })
}

/// Estimates `M` for a batch of tenants, one independent RNG per tenant,
/// sharing the prepared probe state across the whole batch.
///
/// The measured state `D|π,0,0⟩` depends only on the dataset — the per-shot
/// randomness enters purely at measurement time. The first shot of the
/// first tenant therefore prepares the state through the real instrumented
/// path and snapshots its flag-register outcome distribution; every other
/// shot in the batch charges its `2n` queries and draws the outcome
/// directly from that table via [`dqs_sim::sample_outcome`], which consumes
/// exactly the randomness [`dqs_sim::measure_register`] would. No state is
/// cloned or evolved per shot — the replay shots are allocation-free (the
/// gate bench asserts this through `dqs_sim::alloc_stats`) — yet each
/// tenant's ledger, event stream and estimate are bit-identical to a solo
/// [`estimate_total_count`] call with the same RNG.
///
/// # Errors
///
/// [`SampleError::InvalidShotBudget`] for `shots == 0`,
/// [`SampleError::EmptyBatch`] when `rngs` is empty, and the first
/// [`SampleError::NoFlagZeroOutcomes`] encountered aborts the batch (solo
/// runs for the earlier tenants are unaffected — their results are simply
/// discarded with the failed batch).
pub fn estimate_total_count_batch<R: Rng>(
    dataset: &DistributedDataset,
    shots: u64,
    rngs: &mut [R],
) -> Result<Vec<EstimationRun>, SampleError> {
    if shots == 0 {
        return Err(SampleError::InvalidShotBudget);
    }
    if rngs.is_empty() {
        return Err(SampleError::EmptyBatch);
    }
    let layout = SequentialLayout::for_dataset(dataset);
    let d = DistributingOperator::new(dataset.capacity());
    // Flag-register Born distribution of the post-`D` probe state, built
    // once on the first shot (through the real instrumented path) and
    // sampled from for every later shot in the batch.
    let mut flag_probs: Option<Vec<f64>> = None;

    let mut runs = Vec::with_capacity(rngs.len());
    for rng in rngs.iter_mut() {
        let _run_span = dqs_obs::span(dqs_obs::names::SPAN_ESTIMATE);
        let probe = dqs_obs::begin_probe(dataset.num_machines());
        let ledger = QueryLedger::new(dataset.num_machines());
        let oracles = OracleSet::new(dataset, &ledger);

        let mut zeros = 0u64;
        for _ in 0..shots {
            dqs_obs::counter(dqs_obs::names::ESTIMATE_SHOT, 1);
            let flag = if let Some(probs) = flag_probs.as_ref() {
                // Shared evolution: the shot is still billed its full `2n`
                // queries (forward + inverse cascade) on this tenant's
                // ledger, but the measurement replays against the shared
                // probability table — no clone, no support pass.
                oracles.charge_all_sequential();
                oracles.charge_all_sequential();
                sample_outcome(probs, rng)
            } else {
                let mut s = SparseState::from_table(layout.uniform_anchor());
                d.apply_sequential(&oracles, &mut s, &layout, false);
                let probs = s.register_probabilities(layout.flag);
                let (flag, _) = measure_register(&mut s, layout.flag, rng);
                flag_probs = Some(probs);
                flag
            };
            zeros += u64::from(flag == 0);
        }
        dqs_obs::gauge(dqs_obs::names::ESTIMATE_ZEROS, zeros as i64);
        let queries = ledger.snapshot();
        dqs_obs::debug_check(&probe, &queries.per_machine, queries.parallel_rounds);
        if zeros == 0 {
            return Err(SampleError::NoFlagZeroOutcomes { shots });
        }
        let a_hat = zeros as f64 / shots as f64;
        runs.push(EstimationRun {
            estimated_total: a_hat * dataset.capacity() as f64 * dataset.universe() as f64,
            estimated_a: a_hat,
            shots,
            queries,
        });
    }
    Ok(runs)
}

/// Computes the flag-register Born distribution of the probe state
/// `D|π,0,0⟩` — the dataset-only template input to
/// [`replay_estimate_run`]. The `2n` preparation queries are charged to a
/// throwaway ledger: this is template work a coalescing service performs
/// once per group, outside any per-request recorder, before fanning the
/// measurement replays out to its members. (If a recorder *is* ambient on
/// the calling thread it will observe the preparation's oracle events, as
/// it would for any instrumented call.)
pub fn estimate_flag_probabilities(
    dataset: &DistributedDataset,
    layout: &SequentialLayout,
) -> Vec<f64> {
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);
    let d = DistributingOperator::new(dataset.capacity());
    let mut s = SparseState::from_table(layout.uniform_anchor());
    d.apply_sequential(&oracles, &mut s, layout, false);
    s.register_probabilities(layout.flag)
}

/// Replays one tenant's estimation run against a precomputed flag
/// distribution (from [`estimate_flag_probabilities`]), without evolving
/// any quantum state.
///
/// Mirrors [`estimate_total_count`] bit for bit: the span structure, the
/// per-shot `ESTIMATE_SHOT` counter and `2n`-query charges, the
/// `ESTIMATE_ZEROS` gauge, the ledger snapshot, and — because
/// [`dqs_sim::sample_outcome`] consumes exactly the randomness
/// [`dqs_sim::measure_register`] would — the sampled outcomes themselves.
/// The body makes no internal rayon calls, so services may run replays on
/// worker threads under per-request recorders.
///
/// # Errors
///
/// Same contract as [`estimate_total_count`]:
/// [`SampleError::InvalidShotBudget`] for `shots == 0` and
/// [`SampleError::NoFlagZeroOutcomes`] when every shot lands on flag 1.
pub fn replay_estimate_run(
    dataset: &DistributedDataset,
    flag_probs: &[f64],
    shots: u64,
    rng: &mut impl Rng,
) -> Result<EstimationRun, SampleError> {
    if shots == 0 {
        return Err(SampleError::InvalidShotBudget);
    }
    let _run_span = dqs_obs::span(dqs_obs::names::SPAN_ESTIMATE);
    let probe = dqs_obs::begin_probe(dataset.num_machines());
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);
    let mut zeros = 0u64;
    for _ in 0..shots {
        dqs_obs::counter(dqs_obs::names::ESTIMATE_SHOT, 1);
        oracles.charge_all_sequential();
        oracles.charge_all_sequential();
        let flag = sample_outcome(flag_probs, rng);
        zeros += u64::from(flag == 0);
    }
    dqs_obs::gauge(dqs_obs::names::ESTIMATE_ZEROS, zeros as i64);
    let queries = ledger.snapshot();
    dqs_obs::debug_check(&probe, &queries.per_machine, queries.parallel_rounds);
    if zeros == 0 {
        return Err(SampleError::NoFlagZeroOutcomes { shots });
    }
    let a_hat = zeros as f64 / shots as f64;
    Ok(EstimationRun {
        estimated_total: a_hat * dataset.capacity() as f64 * dataset.universe() as f64,
        estimated_a: a_hat,
        shots,
        queries,
    })
}

/// Result of the adaptive (estimated-`M`) sampler.
#[derive(Debug, Clone)]
pub struct AdaptiveRun {
    /// The estimation phase.
    pub estimation: EstimationRun,
    /// The AA schedule derived from the estimate.
    pub plan: AaPlan,
    /// Queries spent by the sampling phase alone.
    pub sampling_queries: LedgerSnapshot,
    /// Fidelity of the output against the true `|ψ⟩` — below 1 by the
    /// estimation error, converging to 1 as shots grow.
    pub fidelity: f64,
}

/// Samples with an estimated `M`: estimation phase, then Theorem 4.3's
/// circuit driven by the estimated angle.
pub fn sequential_sample_adaptive(
    dataset: &DistributedDataset,
    shots: u64,
    rng: &mut impl Rng,
) -> Result<AdaptiveRun, SampleError> {
    let _run_span = dqs_obs::span(dqs_obs::names::SPAN_ADAPTIVE);
    let estimation = estimate_total_count(dataset, shots, rng)?;
    let plan = AaPlan::for_success_probability(estimation.estimated_a.clamp(1e-12, 1.0));
    dqs_obs::gauge(
        dqs_obs::names::AA_PLAN_ITERATIONS,
        plan.total_iterations() as i64,
    );

    // Sampling phase on its own ledger: a fresh probe keeps the estimation
    // phase's (already reconciled) charges out of this comparison.
    let probe = dqs_obs::begin_probe(dataset.num_machines());
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);
    let layout = SequentialLayout::for_dataset(dataset);
    let d = DistributingOperator::new(dataset.capacity());

    let anchor = layout.uniform_anchor();
    let mut state = SparseState::from_table(anchor);
    {
        let _d_span = dqs_obs::span(dqs_obs::names::PHASE_INITIAL_D);
        d.apply_sequential(&oracles, &mut state, &layout, false);
    }
    {
        let _aa_span = dqs_obs::span(dqs_obs::names::PHASE_AMPLIFY);
        execute_plan(&mut state, &plan, anchor, layout.flag, |s, inv| {
            d.apply_sequential(&oracles, s, &layout, inv)
        });
    }

    let target = dataset.target_state(&layout.layout, layout.elem);
    let fidelity = state.fidelity_with_table(&target);
    dqs_obs::float_metric("adaptive.fidelity", fidelity);
    let sampling_queries = ledger.snapshot();
    dqs_obs::debug_check(
        &probe,
        &sampling_queries.per_machine,
        sampling_queries.parallel_rounds,
    );
    Ok(AdaptiveRun {
        estimation,
        plan,
        sampling_queries,
        fidelity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::Multiset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> DistributedDataset {
        // a = 24/(4·16) = 0.375 — comfortably measurable
        DistributedDataset::new(
            16,
            4,
            vec![
                Multiset::from_counts([(0, 3), (1, 2), (2, 3)]),
                Multiset::from_counts([(3, 4), (4, 4), (5, 4), (6, 4)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn estimate_converges_to_true_total() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let run = estimate_total_count(&ds, 4000, &mut rng).expect("plenty of shots");
        let rel = (run.estimated_total - ds.total_count() as f64).abs() / ds.total_count() as f64;
        assert!(rel < 0.08, "relative error {rel} after 4000 shots");
    }

    #[test]
    fn estimation_query_cost_is_2n_per_shot() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let run = estimate_total_count(&ds, 50, &mut rng).expect("plenty of shots");
        assert_eq!(
            run.queries.total_sequential(),
            50 * 2 * ds.num_machines() as u64
        );
    }

    #[test]
    fn adaptive_sampler_fidelity_improves_with_shots() {
        let ds = dataset();
        let mut f_small = 0.0;
        let mut f_large = 0.0;
        // average a few trials to damp the estimator's randomness
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            f_small += sequential_sample_adaptive(&ds, 30, &mut rng)
                .expect("a = 0.375 shows up within 30 shots")
                .fidelity;
            let mut rng = StdRng::seed_from_u64(100 + seed);
            f_large += sequential_sample_adaptive(&ds, 3000, &mut rng)
                .expect("plenty of shots")
                .fidelity;
        }
        f_small /= 5.0;
        f_large /= 5.0;
        assert!(
            f_large >= f_small - 0.02,
            "more shots should not hurt: {f_small} vs {f_large}"
        );
        assert!(
            f_large > 0.99,
            "well-estimated sampler near-exact: {f_large}"
        );
    }

    #[test]
    fn exact_knowledge_recovers_exact_sampling() {
        // With â == a, adaptive == exact. Simulate by feeding the plan the
        // true probability through a huge shot count upper-bounding drift.
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(9);
        let run = sequential_sample_adaptive(&ds, 20_000, &mut rng).expect("plenty of shots");
        assert!(run.fidelity > 0.999, "fidelity {}", run.fidelity);
    }

    #[test]
    fn shot_budget_errors_are_typed() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let err = estimate_total_count(&ds, 0, &mut rng).unwrap_err();
        assert_eq!(err, SampleError::InvalidShotBudget);
        assert_eq!(
            sequential_sample_adaptive(&ds, 0, &mut rng).unwrap_err(),
            SampleError::InvalidShotBudget
        );
    }

    #[test]
    fn batched_estimation_matches_solo_runs_bitwise() {
        let ds = dataset();
        let mut rngs: Vec<StdRng> = (0..3u64).map(|s| StdRng::seed_from_u64(10 + s)).collect();
        let batch = estimate_total_count_batch(&ds, 200, &mut rngs).expect("plenty of shots");
        assert_eq!(batch.len(), 3);
        for (i, run) in batch.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(10 + i as u64);
            let solo = estimate_total_count(&ds, 200, &mut rng).expect("plenty of shots");
            assert_eq!(run.estimated_a, solo.estimated_a);
            assert_eq!(run.estimated_total, solo.estimated_total);
            assert_eq!(run.shots, solo.shots);
            assert_eq!(run.queries, solo.queries);
        }
    }

    #[test]
    fn replayed_estimation_matches_solo_bitwise() {
        let ds = dataset();
        let layout = SequentialLayout::for_dataset(&ds);
        let probs = estimate_flag_probabilities(&ds, &layout);
        for seed in 0..4u64 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let solo = estimate_total_count(&ds, 150, &mut rng_a).expect("plenty of shots");
            let replay = replay_estimate_run(&ds, &probs, 150, &mut rng_b).expect("plenty");
            assert_eq!(replay.estimated_a, solo.estimated_a);
            assert_eq!(replay.estimated_total, solo.estimated_total);
            assert_eq!(replay.shots, solo.shots);
            assert_eq!(replay.queries, solo.queries);
        }
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            replay_estimate_run(&ds, &probs, 0, &mut rng).unwrap_err(),
            SampleError::InvalidShotBudget
        );
    }

    #[test]
    fn batched_estimation_rejects_bad_inputs() {
        let ds = dataset();
        let mut rngs: Vec<StdRng> = vec![StdRng::seed_from_u64(1)];
        assert_eq!(
            estimate_total_count_batch(&ds, 0, &mut rngs).unwrap_err(),
            SampleError::InvalidShotBudget
        );
        let mut none: Vec<StdRng> = vec![];
        assert_eq!(
            estimate_total_count_batch(&ds, 5, &mut none).unwrap_err(),
            SampleError::EmptyBatch
        );
    }

    #[test]
    fn starved_estimate_is_a_typed_error() {
        // a = 1/(64·64) = 2.4e-4 — a single shot essentially always reads
        // flag 1, so the estimator must report the failure, not panic.
        let ds = DistributedDataset::new(64, 64, vec![Multiset::from_counts([(0, 1)])]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let err = estimate_total_count(&ds, 1, &mut rng).unwrap_err();
        assert_eq!(err, SampleError::NoFlagZeroOutcomes { shots: 1 });
    }
}
