//! Versioned compiled-artifact cache for reentrant sampling services.
//!
//! Compiling a sampling circuit touches three kinds of pure, reusable
//! artifacts that were historically rebuilt on every call:
//!
//! * the register **layouts** (whose `uniform_anchor` state table — the
//!   `F|0⟩ = |π⟩` preparation — is the expensive part, cached in an
//!   `Arc<OnceLock<…>>` shared by clones);
//! * the per-machine **count tables** `c_{ij}` used by every `OracleAdd`
//!   (and the fused per-element **total-count table** `Σ_j c_{ij}`);
//! * the **optimized programs** from [`crate::circuit`].
//!
//! [`CompiledArtifacts`] bundles all of them for one dataset version;
//! [`ArtifactCache`] keys bundles by [`DatasetSnapshot::version`] and
//! retires stale versions as updates land. Everything here is
//! deterministic: no clocks, no randomized containers — eviction is purely
//! version-ordered (keep the newest [`ArtifactCache::KEEP`] versions), and
//! hit/miss accounting is exact.

use crate::circuit::{
    compile_parallel_with_tables, compile_sequential_with_tables, machine_count_tables,
};
use crate::layouts::{ParallelLayout, SequentialLayout};
use crate::snapshot::DatasetSnapshot;
use dqs_db::DistributedDataset;
use dqs_sim::{Program, StateTable};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Every pure compile-time artifact for one dataset version.
///
/// Layouts and count tables are built eagerly (they are cheap relative to a
/// single sampling run and every consumer needs them); the optimized
/// programs are built lazily on first use because the estimate-only service
/// path never executes them.
#[derive(Debug)]
pub struct CompiledArtifacts {
    version: u64,
    dataset: Arc<DistributedDataset>,
    seq_layout: SequentialLayout,
    par_layout: ParallelLayout,
    machine_tables: Vec<Arc<Vec<u64>>>,
    total_table: Arc<Vec<u64>>,
    seq_program: OnceLock<Arc<Program>>,
    par_program: OnceLock<Arc<Program>>,
}

impl CompiledArtifacts {
    /// Compiles the eager artifacts for a snapshot.
    pub fn build(snapshot: &DatasetSnapshot) -> Self {
        let dataset = snapshot.dataset();
        let machine_tables = machine_count_tables(dataset);
        let total_table = Arc::new(dataset.total_count_table());
        Self {
            version: snapshot.version(),
            dataset: snapshot.dataset_arc().clone(),
            seq_layout: SequentialLayout::for_dataset(dataset),
            par_layout: ParallelLayout::for_dataset(dataset),
            machine_tables,
            total_table,
            seq_program: OnceLock::new(),
            par_program: OnceLock::new(),
        }
    }

    /// The dataset version these artifacts were compiled from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The dataset these artifacts were compiled from.
    pub fn dataset(&self) -> &DistributedDataset {
        &self.dataset
    }

    /// The shared handle to the compiled-from dataset.
    pub fn dataset_arc(&self) -> &Arc<DistributedDataset> {
        &self.dataset
    }

    /// The sequential register layout. Clones share the cached
    /// `uniform_anchor` state table with this bundle.
    pub fn sequential_layout(&self) -> &SequentialLayout {
        &self.seq_layout
    }

    /// The parallel register layout (anchor shared as above).
    pub fn parallel_layout(&self) -> &ParallelLayout {
        &self.par_layout
    }

    /// The `|π⟩` anchor state for the sequential layout, built at most once
    /// per dataset version no matter how many requests run against it.
    pub fn sequential_anchor(&self) -> &StateTable {
        self.seq_layout.uniform_anchor()
    }

    /// The `|π⟩` anchor state for the parallel layout.
    pub fn parallel_anchor(&self) -> &StateTable {
        self.par_layout.uniform_anchor()
    }

    /// The per-machine count tables `c_{ij}`, indexed `[machine][element]`,
    /// shared by every compiled `OracleAdd` instruction.
    pub fn machine_tables(&self) -> &[Arc<Vec<u64>>] {
        &self.machine_tables
    }

    /// The fused per-element total-count table `Σ_j c_{ij}`.
    pub fn total_table(&self) -> &Arc<Vec<u64>> {
        &self.total_table
    }

    /// The optimized sequential sampling program, compiled on first use
    /// from the shared count tables.
    pub fn sequential_program(&self) -> &Arc<Program> {
        self.seq_program.get_or_init(|| {
            Arc::new(
                compile_sequential_with_tables(
                    &self.dataset,
                    &self.seq_layout,
                    &self.machine_tables,
                )
                .optimize(),
            )
        })
    }

    /// The optimized parallel sampling program, compiled on first use.
    pub fn parallel_program(&self) -> &Arc<Program> {
        self.par_program.get_or_init(|| {
            Arc::new(
                compile_parallel_with_tables(&self.dataset, &self.par_layout, &self.machine_tables)
                    .optimize(),
            )
        })
    }
}

/// Exact hit/miss/occupancy accounting for an [`ArtifactCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from an existing bundle.
    pub hits: u64,
    /// Lookups that compiled a fresh bundle.
    pub misses: u64,
    /// Versions currently resident.
    pub entries: usize,
}

/// A deterministic, version-keyed cache of [`CompiledArtifacts`].
///
/// Lookup is by [`DatasetSnapshot::version`] with an `Arc` identity check
/// on the dataset, so a bundle can never serve a snapshot it was not
/// compiled from — a version collision across snapshot lineages recompiles
/// (and recounts as a miss) instead of returning stale tables. Eviction
/// keeps the [`Self::KEEP`] newest versions: the live one plus one
/// predecessor for requests still draining against the pre-update snapshot.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    entries: Mutex<BTreeMap<u64, Arc<CompiledArtifacts>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// Number of newest dataset versions retained.
    pub const KEEP: usize = 2;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifact bundle for `snapshot`, compiling and caching it
    /// on first sight of the snapshot's version.
    pub fn artifacts(&self, snapshot: &DatasetSnapshot) -> Arc<CompiledArtifacts> {
        let mut entries = self.entries.lock();
        if let Some(found) = entries.get(&snapshot.version()) {
            if Arc::ptr_eq(found.dataset_arc(), snapshot.dataset_arc()) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return found.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(CompiledArtifacts::build(snapshot));
        entries.insert(snapshot.version(), built.clone());
        while entries.len() > Self::KEEP {
            entries.pop_first();
        }
        built
    }

    /// Current hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::{Multiset, UpdateLog, UpdateOp};

    fn snapshot() -> DatasetSnapshot {
        DatasetSnapshot::new(
            DistributedDataset::new(
                8,
                4,
                vec![
                    Multiset::from_counts([(0, 2), (1, 1)]),
                    Multiset::from_counts([(1, 1), (6, 3)]),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn repeat_lookups_hit_and_share_everything() {
        let cache = ArtifactCache::new();
        let snap = snapshot();
        let a = cache.artifacts(&snap);
        let b = cache.artifacts(&snap);
        assert!(Arc::ptr_eq(&a, &b));
        // Anchors and programs are built once and shared through the bundle.
        let anchor_a: *const StateTable = a.sequential_anchor();
        let anchor_b: *const StateTable = b.sequential_anchor();
        assert_eq!(anchor_a, anchor_b);
        assert!(Arc::ptr_eq(a.sequential_program(), b.sequential_program()));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn updates_invalidate_and_eviction_keeps_the_newest_versions() {
        let cache = ArtifactCache::new();
        let mut snap = snapshot();
        let first = cache.artifacts(&snap);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        snap = snap.with_updates(&log);
        let second = cache.artifacts(&snap);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(second.version(), 1);
        assert_eq!(second.dataset().multiplicity(3, 0), 1);
        // A third version evicts version 0 but keeps 1 and 2.
        snap = snap.with_updates(&log);
        let third = cache.artifacts(&snap);
        assert_eq!(third.version(), 2);
        let stats = cache.stats();
        assert_eq!(stats.entries, ArtifactCache::KEEP);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn version_collisions_across_lineages_never_serve_stale_tables() {
        let cache = ArtifactCache::new();
        let a = snapshot();
        cache.artifacts(&a);
        // A distinct snapshot lineage at the same version number.
        let b = snapshot();
        let bundle = cache.artifacts(&b);
        assert!(Arc::ptr_eq(bundle.dataset_arc(), b.dataset_arc()));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn compiled_programs_match_the_direct_compile_paths() {
        let snap = snapshot();
        let arts = CompiledArtifacts::build(&snap);
        let direct = crate::circuit::compile_sequential_optimized(snap.dataset());
        assert_eq!(arts.sequential_program().shape(), direct.shape());
        let direct_par = crate::circuit::compile_parallel_optimized(snap.dataset());
        assert_eq!(arts.parallel_program().shape(), direct_par.shape());
        assert_eq!(
            arts.total_table().as_slice(),
            snap.dataset().total_count_table().as_slice()
        );
    }
}
