//! Versioned compiled-artifact cache for reentrant sampling services.
//!
//! Compiling a sampling circuit touches three kinds of pure, reusable
//! artifacts that were historically rebuilt on every call:
//!
//! * the register **layouts** (whose `uniform_anchor` state table — the
//!   `F|0⟩ = |π⟩` preparation — is the expensive part, cached in an
//!   `Arc<OnceLock<…>>` shared by clones);
//! * the per-machine **count tables** `c_{ij}` used by every `OracleAdd`
//!   (and the fused per-element **total-count table** `Σ_j c_{ij}`);
//! * the **optimized programs** from [`crate::circuit`].
//!
//! [`CompiledArtifacts`] bundles all of them for one dataset version;
//! [`ArtifactCache`] keys bundles by [`DatasetSnapshot::version`] and
//! retires stale versions as updates land. Everything here is
//! deterministic: no clocks, no randomized containers — eviction is purely
//! version-ordered (keep the newest [`ArtifactCache::KEEP`] versions), and
//! hit/miss accounting is exact.

use crate::circuit::{
    compile_parallel_with_tables, compile_sequential_with_tables, machine_count_tables,
};
use crate::layouts::{ParallelLayout, SequentialLayout};
use crate::snapshot::DatasetSnapshot;
use dqs_db::{DistributedDataset, FaultHandler, FaultyOracleSet, OracleError, UpdateLog};
use dqs_sim::{Program, StateTable};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Every pure compile-time artifact for one dataset version.
///
/// Layouts and count tables are built eagerly (they are cheap relative to a
/// single sampling run and every consumer needs them); the optimized
/// programs are built lazily on first use because the estimate-only service
/// path never executes them.
#[derive(Debug)]
pub struct CompiledArtifacts {
    version: u64,
    dataset: Arc<DistributedDataset>,
    seq_layout: SequentialLayout,
    par_layout: ParallelLayout,
    machine_tables: Vec<Arc<Vec<u64>>>,
    total_table: Arc<Vec<u64>>,
    seq_program: OnceLock<Arc<Program>>,
    par_program: OnceLock<Arc<Program>>,
    tainted: bool,
}

impl CompiledArtifacts {
    /// Compiles the eager artifacts for a snapshot.
    pub fn build(snapshot: &DatasetSnapshot) -> Self {
        let dataset = snapshot.dataset();
        let machine_tables = machine_count_tables(dataset);
        let total_table = Arc::new(dataset.total_count_table());
        Self {
            version: snapshot.version(),
            dataset: snapshot.dataset_arc().clone(),
            seq_layout: SequentialLayout::for_dataset(dataset),
            par_layout: ParallelLayout::for_dataset(dataset),
            machine_tables,
            total_table,
            seq_program: OnceLock::new(),
            par_program: OnceLock::new(),
            tainted: false,
        }
    }

    /// Compiles the eager artifacts by reading every machine's count table
    /// *through the (possibly faulty) oracle layer* — the warm path a
    /// service uses to pre-build a cache entry while a fault injector is
    /// live. Each machine is probed once with retries, charged on the
    /// faulty set's ledger, and its table is composed from whatever that
    /// machine actually *answered* — stale or corrupt answers produce
    /// poisoned tables. Whether any read was dirty is recorded on the
    /// faulty set's [`FaultyOracleSet::is_tainted`] flag, which
    /// [`ArtifactCache::warm`] keys its insert decision on.
    ///
    /// # Errors
    ///
    /// Propagates [`OracleError::MachineUnavailable`] when a machine fails
    /// past what `handler` absorbs; probes made so far stay charged.
    pub fn build_probed(
        snapshot: &DatasetSnapshot,
        faulty: &FaultyOracleSet<'_>,
        handler: &mut impl FaultHandler,
    ) -> Result<Self, OracleError> {
        let dataset = snapshot.dataset();
        let machines: Vec<usize> = (0..dataset.num_machines()).collect();
        let answers = faulty.probe_machines(&machines, handler)?;
        let machine_tables: Vec<Arc<Vec<u64>>> = answers
            .iter()
            .map(|&(j, ans)| Arc::new(faulty.answered_count_table(j, ans)))
            .collect();
        let mut total = vec![0u64; dataset.universe() as usize];
        for table in &machine_tables {
            for (acc, v) in total.iter_mut().zip(table.iter()) {
                *acc += v;
            }
        }
        Ok(Self {
            version: snapshot.version(),
            dataset: snapshot.dataset_arc().clone(),
            seq_layout: SequentialLayout::for_dataset(dataset),
            par_layout: ParallelLayout::for_dataset(dataset),
            machine_tables,
            total_table: Arc::new(total),
            seq_program: OnceLock::new(),
            par_program: OnceLock::new(),
            tainted: faulty.is_tainted(),
        })
    }

    /// Patches these artifacts forward to the successor snapshot instead of
    /// rebuilding from scratch (DESIGN.md §15).
    ///
    /// Cost is `O(touched machines · N)` table copies plus `O(net deltas)`
    /// patches, versus the `O(n·N)` of [`Self::build`]: untouched machines'
    /// count tables are shared with the parent (`Arc` bump), touched ones
    /// are cloned once and edited in place, and the total table is cloned
    /// once and edited at the touched elements. The layouts are shared
    /// outright — they depend only on `(N, ν, n)`, none of which an update
    /// can change, so the anchor amplitudes `|π⟩` carry over bit-identically.
    /// The optimized programs are *not* carried over: the amplification
    /// schedule depends on `M`, which updates change, so they lazily
    /// recompile from the patched tables on first use.
    ///
    /// Taint is propagated: artifacts advanced from a tainted bundle are
    /// tainted (a poisoned table stays poisoned under patching).
    ///
    /// Returns `None` instead of panicking when `next` is not the direct
    /// successor these artifacts can be patched to: wrong version, a
    /// dataset that does not descend from this bundle's, an update naming
    /// an unknown machine or out-of-range element, or a delta inconsistent
    /// with the resident tables. Callers fall back to [`Self::build`].
    pub fn advance(&self, updates: &UpdateLog, next: &DatasetSnapshot) -> Option<Self> {
        if next.version() != self.version + 1 {
            return None;
        }
        let descends = next
            .lineage()
            .is_some_and(|l| Arc::ptr_eq(&l.parent, &self.dataset));
        if !descends {
            return None;
        }
        let universe = self.dataset.universe() as usize;
        let mut machine_tables = self.machine_tables.clone();
        let mut total_table = Arc::clone(&self.total_table);
        for (machine, element, delta) in updates.net_deltas() {
            let element = element as usize;
            if machine >= machine_tables.len() || element >= universe {
                return None;
            }
            let table = Arc::make_mut(&mut machine_tables[machine]);
            let patched = table[element].checked_add_signed(delta)?;
            table[element] = patched;
            let totals = Arc::make_mut(&mut total_table);
            totals[element] = totals[element].checked_add_signed(delta)?;
        }
        Some(Self {
            version: next.version(),
            dataset: next.dataset_arc().clone(),
            seq_layout: self.seq_layout.clone(),
            par_layout: self.par_layout.clone(),
            machine_tables,
            total_table,
            seq_program: OnceLock::new(),
            par_program: OnceLock::new(),
            tainted: self.tainted,
        })
    }

    /// Whether any read that produced these artifacts was dirty (stale or
    /// corrupt oracle answers during [`Self::build_probed`], or descent
    /// from a tainted parent through [`Self::advance`]). Tainted bundles
    /// must never be served; [`ArtifactCache`] refuses to install them.
    pub fn is_tainted(&self) -> bool {
        self.tainted
    }

    /// The dataset version these artifacts were compiled from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The dataset these artifacts were compiled from.
    pub fn dataset(&self) -> &DistributedDataset {
        &self.dataset
    }

    /// The shared handle to the compiled-from dataset.
    pub fn dataset_arc(&self) -> &Arc<DistributedDataset> {
        &self.dataset
    }

    /// The sequential register layout. Clones share the cached
    /// `uniform_anchor` state table with this bundle.
    pub fn sequential_layout(&self) -> &SequentialLayout {
        &self.seq_layout
    }

    /// The parallel register layout (anchor shared as above).
    pub fn parallel_layout(&self) -> &ParallelLayout {
        &self.par_layout
    }

    /// The `|π⟩` anchor state for the sequential layout, built at most once
    /// per dataset version no matter how many requests run against it.
    pub fn sequential_anchor(&self) -> &StateTable {
        self.seq_layout.uniform_anchor()
    }

    /// The `|π⟩` anchor state for the parallel layout.
    pub fn parallel_anchor(&self) -> &StateTable {
        self.par_layout.uniform_anchor()
    }

    /// The per-machine count tables `c_{ij}`, indexed `[machine][element]`,
    /// shared by every compiled `OracleAdd` instruction.
    pub fn machine_tables(&self) -> &[Arc<Vec<u64>>] {
        &self.machine_tables
    }

    /// The fused per-element total-count table `Σ_j c_{ij}`.
    pub fn total_table(&self) -> &Arc<Vec<u64>> {
        &self.total_table
    }

    /// The optimized sequential sampling program, compiled on first use
    /// from the shared count tables.
    pub fn sequential_program(&self) -> &Arc<Program> {
        self.seq_program.get_or_init(|| {
            Arc::new(
                compile_sequential_with_tables(
                    &self.dataset,
                    &self.seq_layout,
                    &self.machine_tables,
                )
                .optimize(),
            )
        })
    }

    /// The optimized parallel sampling program, compiled on first use.
    pub fn parallel_program(&self) -> &Arc<Program> {
        self.par_program.get_or_init(|| {
            Arc::new(
                compile_parallel_with_tables(&self.dataset, &self.par_layout, &self.machine_tables)
                    .optimize(),
            )
        })
    }
}

/// Exact hit/miss/occupancy accounting for an [`ArtifactCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from an existing bundle.
    pub hits: u64,
    /// Lookups that compiled a fresh bundle from scratch.
    pub misses: u64,
    /// Lookups answered by patching the parent version's bundle forward
    /// ([`CompiledArtifacts::advance`]) instead of recompiling.
    pub derives: u64,
    /// Candidate bundles rejected for taint: dirty-read warm builds plus
    /// derive attempts refused because the parent was tainted.
    pub taints: u64,
    /// Versions currently resident.
    pub entries: usize,
}

/// A deterministic, version-keyed cache of [`CompiledArtifacts`].
///
/// Lookup is by [`DatasetSnapshot::version`] with an `Arc` identity check
/// on the dataset, so a bundle can never serve a snapshot it was not
/// compiled from — a version collision across snapshot lineages recompiles
/// (and recounts as a miss) instead of returning stale tables. Eviction
/// keeps the [`Self::KEEP`] newest versions: the live one plus one
/// predecessor for requests still draining against the pre-update snapshot.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    entries: Mutex<BTreeMap<u64, Arc<CompiledArtifacts>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    derives: AtomicU64,
    taints: AtomicU64,
}

impl ArtifactCache {
    /// Number of newest dataset versions retained.
    pub const KEEP: usize = 2;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifact bundle for `snapshot`, preferring, in order:
    ///
    /// 1. **hit** — a resident bundle for this exact snapshot;
    /// 2. **derive** — patching the resident *parent* version's bundle
    ///    forward through the snapshot's lineage
    ///    ([`CompiledArtifacts::advance`]), when the parent is resident,
    ///    identity-matches the lineage, and is untainted (a tainted parent
    ///    counts a taint rejection and falls through);
    /// 3. **miss** — compiling a fresh bundle from scratch.
    pub fn artifacts(&self, snapshot: &DatasetSnapshot) -> Arc<CompiledArtifacts> {
        let mut entries = self.entries.lock();
        if let Some(found) = entries.get(&snapshot.version()) {
            if Arc::ptr_eq(found.dataset_arc(), snapshot.dataset_arc()) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                dqs_obs::counter(dqs_obs::names::CACHE_HIT, 1);
                return found.clone();
            }
        }
        let built = Arc::new(self.derive_locked(&entries, snapshot).unwrap_or_else(|| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            dqs_obs::counter(dqs_obs::names::CACHE_MISS, 1);
            CompiledArtifacts::build(snapshot)
        }));
        entries.insert(snapshot.version(), built.clone());
        while entries.len() > Self::KEEP {
            entries.pop_first();
        }
        built
    }

    /// The derive-from-parent path of [`Self::artifacts`]: `None` when no
    /// usable parent bundle is resident (the caller compiles from scratch).
    fn derive_locked(
        &self,
        entries: &BTreeMap<u64, Arc<CompiledArtifacts>>,
        snapshot: &DatasetSnapshot,
    ) -> Option<CompiledArtifacts> {
        let lineage = snapshot.lineage()?;
        let parent = entries.get(&lineage.parent_version)?;
        if !Arc::ptr_eq(parent.dataset_arc(), &lineage.parent) {
            return None;
        }
        if parent.is_tainted() {
            // Defense in depth: tainted bundles are never inserted, but if
            // one ever became resident, deriving from it would launder the
            // taint into a servable artifact.
            self.taints.fetch_add(1, Ordering::Relaxed);
            dqs_obs::counter(dqs_obs::names::CACHE_TAINT, 1);
            return None;
        }
        let derived = parent.advance(&lineage.updates, snapshot)?;
        self.derives.fetch_add(1, Ordering::Relaxed);
        dqs_obs::counter(dqs_obs::names::CACHE_DERIVE, 1);
        Some(derived)
    }

    /// Warm path: build a bundle through the (possibly faulty) oracle
    /// layer and install it **only if every read that produced it was
    /// clean**. A tainted build is dropped on the floor — never inserted —
    /// so a chaos-warmed cache can only ever serve artifacts bit-identical
    /// to a faultless compile; the probes' charges are the rejected
    /// build's only trace. A bundle already resident for the snapshot wins
    /// without probing (it got there through a clean path). Warm lookups
    /// leave the hit/miss counters untouched — those account for
    /// [`Self::artifacts`] serving decisions only.
    ///
    /// Note the taint flag is monotone over the *whole* faulty set's
    /// lifetime: if earlier probes through the same set answered dirty,
    /// the warm build is rejected even when its own reads were clean — a
    /// value derived from the earlier dirty read may already be in flight.
    ///
    /// # Errors
    ///
    /// Propagates [`OracleError`] from the probe pass; nothing is inserted.
    pub fn warm(
        &self,
        snapshot: &DatasetSnapshot,
        faulty: &FaultyOracleSet<'_>,
        handler: &mut impl FaultHandler,
    ) -> Result<Option<Arc<CompiledArtifacts>>, OracleError> {
        {
            let entries = self.entries.lock();
            if let Some(found) = entries.get(&snapshot.version()) {
                if Arc::ptr_eq(found.dataset_arc(), snapshot.dataset_arc()) {
                    return Ok(Some(found.clone()));
                }
            }
        }
        let built = CompiledArtifacts::build_probed(snapshot, faulty, handler)?;
        if built.is_tainted() {
            self.taints.fetch_add(1, Ordering::Relaxed);
            dqs_obs::counter(dqs_obs::names::CACHE_TAINT, 1);
            return Ok(None);
        }
        let built = Arc::new(built);
        let mut entries = self.entries.lock();
        entries.insert(snapshot.version(), built.clone());
        while entries.len() > Self::KEEP {
            entries.pop_first();
        }
        Ok(Some(built))
    }

    /// Current hit/miss/derive/taint/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            derives: self.derives.load(Ordering::Relaxed),
            taints: self.taints.load(Ordering::Relaxed),
            entries: self.entries.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::{Multiset, UpdateLog, UpdateOp};

    fn snapshot() -> DatasetSnapshot {
        DatasetSnapshot::new(
            DistributedDataset::new(
                8,
                4,
                vec![
                    Multiset::from_counts([(0, 2), (1, 1)]),
                    Multiset::from_counts([(1, 1), (6, 3)]),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn repeat_lookups_hit_and_share_everything() {
        let cache = ArtifactCache::new();
        let snap = snapshot();
        let a = cache.artifacts(&snap);
        let b = cache.artifacts(&snap);
        assert!(Arc::ptr_eq(&a, &b));
        // Anchors and programs are built once and shared through the bundle.
        let anchor_a: *const StateTable = a.sequential_anchor();
        let anchor_b: *const StateTable = b.sequential_anchor();
        assert_eq!(anchor_a, anchor_b);
        assert!(Arc::ptr_eq(a.sequential_program(), b.sequential_program()));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                derives: 0,
                taints: 0,
                entries: 1
            }
        );
    }

    #[test]
    fn updates_invalidate_and_eviction_keeps_the_newest_versions() {
        let cache = ArtifactCache::new();
        let mut snap = snapshot();
        let first = cache.artifacts(&snap);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        snap = snap.with_updates(&log);
        let second = cache.artifacts(&snap);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(second.version(), 1);
        assert_eq!(second.dataset().multiplicity(3, 0), 1);
        // A third version evicts version 0 but keeps 1 and 2.
        snap = snap.with_updates(&log);
        let third = cache.artifacts(&snap);
        assert_eq!(third.version(), 2);
        let stats = cache.stats();
        assert_eq!(stats.entries, ArtifactCache::KEEP);
        // One cold compile at version 0, then each successor is patched
        // forward from its resident parent instead of rebuilt.
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.derives, 2);
    }

    #[test]
    fn version_collisions_across_lineages_never_serve_stale_tables() {
        let cache = ArtifactCache::new();
        let a = snapshot();
        cache.artifacts(&a);
        // A distinct snapshot lineage at the same version number.
        let b = snapshot();
        let bundle = cache.artifacts(&b);
        assert!(Arc::ptr_eq(bundle.dataset_arc(), b.dataset_arc()));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clean_warm_inserts_a_bundle_bit_identical_to_a_cold_build() {
        use crate::degraded::{RetryPolicy, RetrySession};
        use dqs_db::{FaultPlan, OracleSet, QueryLedger};
        let cache = ArtifactCache::new();
        let snap = snapshot();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(snap.dataset(), &ledger);
        let plan = FaultPlan::none(2);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        let policy = RetryPolicy::default();
        let mut session = RetrySession::new(2, &policy);
        let warmed = cache
            .warm(&snap, &faulty, &mut session)
            .expect("no failures")
            .expect("clean reads insert");
        let cold = CompiledArtifacts::build(&snap);
        assert_eq!(
            warmed.total_table().as_slice(),
            cold.total_table().as_slice()
        );
        for (w, c) in warmed.machine_tables().iter().zip(cold.machine_tables()) {
            assert_eq!(w.as_slice(), c.as_slice());
        }
        // The warm probes were charged, one per machine.
        assert_eq!(ledger.snapshot().per_machine, vec![1, 1]);
        // A later serving lookup reuses the warmed bundle verbatim.
        let served = cache.artifacts(&snap);
        assert!(Arc::ptr_eq(&served, &warmed));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn tainted_warm_is_never_inserted() {
        use crate::degraded::{RetryPolicy, RetrySession};
        use dqs_db::{FaultEvent, FaultKind, FaultPlan, OracleSet, QueryLedger};
        let cache = ArtifactCache::new();
        let snap = snapshot();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(snap.dataset(), &ledger);
        // Machine 0 silently lies on its first answer: the probe succeeds,
        // the table is poisoned, the taint flag is the only witness.
        let plan = FaultPlan::from_schedules(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Corrupt { delta: 1 },
            }],
            vec![],
        ]);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        let policy = RetryPolicy::default();
        let mut session = RetrySession::new(2, &policy);
        let warmed = cache
            .warm(&snap, &faulty, &mut session)
            .expect("no failures");
        assert!(warmed.is_none(), "poisoned build must be rejected");
        assert_eq!(cache.stats().entries, 0);
        // The discarded build's probes stay charged.
        assert_eq!(ledger.snapshot().per_machine, vec![1, 1]);
        // Serving afterwards compiles a clean bundle from the snapshot.
        let clean = cache.artifacts(&snap);
        assert_eq!(
            clean.total_table().as_slice(),
            snap.dataset().total_count_table().as_slice()
        );
    }

    #[test]
    fn crashed_warm_is_a_typed_error_and_inserts_nothing() {
        use crate::degraded::{RetryPolicy, RetrySession};
        use dqs_db::{FaultEvent, FaultKind, FaultPlan, OracleSet, QueryLedger};
        let cache = ArtifactCache::new();
        let snap = snapshot();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(snap.dataset(), &ledger);
        let plan = FaultPlan::from_schedules(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
            vec![],
        ]);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        let policy = RetryPolicy::default();
        let mut session = RetrySession::new(2, &policy);
        let err = cache.warm(&snap, &faulty, &mut session).unwrap_err();
        assert!(matches!(
            err,
            OracleError::MachineUnavailable { machine: 0, .. }
        ));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn advance_matches_a_from_scratch_rebuild() {
        let snap = snapshot();
        let parent = CompiledArtifacts::build(&snap);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        log.push(UpdateOp::delete(1, 6));
        let next = snap.with_updates(&log);
        let advanced = parent.advance(&log, &next).expect("patchable successor");
        let rebuilt = CompiledArtifacts::build(&next);
        assert_eq!(advanced.version(), 1);
        assert!(!advanced.is_tainted());
        assert_eq!(
            advanced.total_table().as_slice(),
            rebuilt.total_table().as_slice()
        );
        for (a, r) in advanced
            .machine_tables()
            .iter()
            .zip(rebuilt.machine_tables())
        {
            assert_eq!(a.as_slice(), r.as_slice());
        }
        // Untouched structure is shared with the parent, not copied.
        let anchor_parent: *const StateTable = parent.sequential_anchor();
        let anchor_advanced: *const StateTable = advanced.sequential_anchor();
        assert_eq!(anchor_parent, anchor_advanced, "anchor carried over");
    }

    #[test]
    fn advance_refuses_non_successors() {
        let snap = snapshot();
        let arts = CompiledArtifacts::build(&snap);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        let v1 = snap.with_updates(&log);
        let v2 = v1.with_updates(&log);
        assert!(arts.advance(&log, &v2).is_none(), "version gap");
        // A same-version snapshot from an unrelated lineage.
        let other = snapshot().with_updates(&log);
        assert!(arts.advance(&log, &other).is_none(), "foreign lineage");
    }

    #[test]
    fn derive_is_refused_when_the_parent_was_evicted() {
        let cache = ArtifactCache::new();
        let mut snap = snapshot();
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 3));
        cache.artifacts(&snap); // version 0 resident
        snap = snap.with_updates(&log);
        snap = snap.with_updates(&log); // version 2, parent v1 never cached
        cache.artifacts(&snap);
        let stats = cache.stats();
        assert_eq!(stats.derives, 0, "no resident parent to derive from");
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn derived_artifacts_serve_bit_identical_tables_and_programs() {
        let cache = ArtifactCache::new();
        let snap = snapshot();
        cache.artifacts(&snap);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(1, 2));
        let next = snap.with_updates(&log);
        let derived = cache.artifacts(&next);
        assert_eq!(cache.stats().derives, 1);
        let rebuilt = CompiledArtifacts::build(&next);
        assert_eq!(
            derived.total_table().as_slice(),
            rebuilt.total_table().as_slice()
        );
        assert_eq!(
            derived.sequential_program().shape(),
            rebuilt.sequential_program().shape()
        );
        assert_eq!(
            derived.parallel_program().shape(),
            rebuilt.parallel_program().shape()
        );
    }

    #[test]
    fn compiled_programs_match_the_direct_compile_paths() {
        let snap = snapshot();
        let arts = CompiledArtifacts::build(&snap);
        let direct = crate::circuit::compile_sequential_optimized(snap.dataset());
        assert_eq!(arts.sequential_program().shape(), direct.shape());
        let direct_par = crate::circuit::compile_parallel_optimized(snap.dataset());
        assert_eq!(arts.parallel_program().shape(), direct_par.shape());
        assert_eq!(
            arts.total_table().as_slice(),
            snap.dataset().total_count_table().as_slice()
        );
    }
}
