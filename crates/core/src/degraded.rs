//! Graceful degradation: sampling from whatever survives.
//!
//! The fault-injection layer (`dqs_db::faults`) makes machines crash, flap,
//! and lie. This module is the coordinator-side response policy:
//!
//! * [`RetryPolicy`] — bounded retries with deterministic exponential
//!   backoff (counted in virtual ticks, so runs stay reproducible) and a
//!   per-machine circuit breaker that declares a machine dead after `k`
//!   consecutive failures.
//! * [`RetrySession`] — the [`FaultHandler`] implementing that policy over
//!   one sampling run, tracking dead machines across restarts.
//! * [`sequential_sample_degraded`] / [`parallel_sample_degraded`] — run
//!   the Theorem 4.3 / 4.5 samplers against a [`FaultPlan`], restarting
//!   over the *surviving* machine subset whenever the breaker trips.
//!   Every probe of every attempt — including failed and abandoned ones —
//!   stays charged on one ledger: degradation is never free.
//!
//! ## The fidelity bound
//!
//! When machines `Dead ⊂ [n]` are lost, the best state preparable from the
//! survivors is `|ψ_surv⟩ = (1/√M_surv) Σ_i √(c_i^surv) |i⟩`. Its overlap
//! with the true target `|ψ⟩` is exactly
//!
//! ```text
//! |⟨ψ_surv|ψ⟩|² = (Σ_i √(c_i^surv · c_i))² / (M_surv · M) ,
//! ```
//!
//! which [`DegradedRun::fidelity_bound`] reports, computed classically from
//! the counts. For pure data-loss faults (crashes, exhausted retries) the
//! degraded run lands on `|ψ_surv⟩` exactly, so its measured fidelity
//! against the true target equals the bound; answer-corrupting faults
//! (`Corrupt`, `Stale`) additionally twist the surviving-run state, which
//! the measured `fidelity_vs_surviving` exposes.
//!
//! ## Faulty `D` realizations
//!
//! `D = A†·𝒰·A` where the cascades `A`, `A†` only shuttle counts in and
//! out. Probing forward and inverse cascades up front (charging exactly the
//! faultless `2n` queries / 4 rounds over the survivors) yields per-element
//! answered totals `tf`, `ti`; the net action is the flag rotation
//! `u_gate((s + tf_i) mod (ν+1))` plus a count shift by `tf_i − ti_i` —
//! zero whenever the two passes agree, so fault-free probes reproduce the
//! fused faultless `D` bit for bit. In the parallel model the uncompute
//! rounds (2 and 4) revert the ancilla loads of rounds 1 and 3: their
//! answer *content* is pinned to the paired compute round (it is the same
//! logical query run backwards), but they remain real charged rounds whose
//! failures retry or trip the breaker.

use crate::amplify::{try_execute_plan, walk_plan_queries, AaPlan};
use crate::artifacts::CompiledArtifacts;
use crate::distributing::DistributingOperator;
use crate::error::SampleError;
use crate::layouts::{ParallelLayout, SequentialLayout};
use dqs_db::{
    DistributedDataset, FailureAction, FaultHandler, FaultPlan, FaultyOracleSet, LedgerSnapshot,
    OracleError, OracleSet, QueryLedger,
};
use dqs_math::Complex64;
use dqs_sim::{measure_register, Layout, QuantumState, SimError, SparseState, StateTable};
use rand::Rng;

/// Bounded-retry policy with deterministic exponential backoff and a
/// per-machine circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per query before giving up on the machine.
    pub max_retries: u32,
    /// Backoff for the `k`-th retry is `base · 2^k` virtual ticks…
    pub backoff_base: u64,
    /// …clamped to this cap.
    pub backoff_cap: u64,
    /// Consecutive failures after which the breaker declares the machine
    /// dead (counted across queries; any success resets).
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base: 1,
            backoff_cap: 64,
            breaker_threshold: 3,
        }
    }
}

impl RetryPolicy {
    /// Backoff (in virtual ticks) before the `retry_index`-th retry
    /// (0-based): `min(cap, base · 2^retry_index)`. Deterministic — no
    /// jitter — so ledger and schedule replay bit-identically.
    pub fn backoff(&self, retry_index: u32) -> u64 {
        self.backoff_base
            .saturating_mul(1u64 << retry_index.min(63))
            .min(self.backoff_cap)
    }
}

/// Everything a caller can ask of a degraded run beyond the fault plan:
/// the retry policy, an optional deterministic deadline, and machines to
/// quarantine up front (a shared circuit breaker's memory of past trips).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedSpec {
    /// Retry/backoff/breaker policy.
    pub policy: RetryPolicy,
    /// Budget on total *charged attempts* — sequential queries plus
    /// parallel rounds — checked only at restart boundaries (never inside
    /// an attempt), so a `deadline: None` run produces an event stream
    /// bit-identical to one with no deadline machinery at all. Counted in
    /// charges, not wall clocks: deadlines replay deterministically
    /// (lint R1).
    pub deadline: Option<u64>,
    /// Machines declared dead before the run starts, exactly as if their
    /// breaker had tripped in an earlier run (order irrelevant,
    /// out-of-range indices ignored, no trip events re-emitted).
    pub quarantined: Vec<usize>,
}

impl DegradedSpec {
    /// A spec with no deadline and no quarantine — the plain retry policy.
    pub fn from_policy(policy: RetryPolicy) -> Self {
        Self {
            policy,
            deadline: None,
            quarantined: Vec::new(),
        }
    }
}

impl Default for DegradedSpec {
    fn default() -> Self {
        Self::from_policy(RetryPolicy::default())
    }
}

impl From<RetryPolicy> for DegradedSpec {
    fn from(policy: RetryPolicy) -> Self {
        Self::from_policy(policy)
    }
}

/// What a deadline-tripped run had established when it gave up: the exact
/// charges, retry/breaker state, and the survivor-set fidelity bound —
/// which is classical, so it never needed the circuit to finish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedPartial {
    /// Exact charges at the restart boundary that tripped.
    pub queries: LedgerSnapshot,
    /// Attempts fully started before the trip.
    pub restarts: u64,
    /// Machines still alive at the trip, ascending.
    pub survivors: Vec<usize>,
    /// Machines dead at the trip (quarantined or breaker-tripped),
    /// ascending.
    pub dead: Vec<usize>,
    /// Total charged retries.
    pub total_retries: u64,
    /// Deterministic backoff ticks spent before those retries.
    pub backoff_ticks: u64,
    /// `|⟨ψ_surv|ψ⟩|²` as its IEEE-754 bit pattern: the bound is a
    /// deterministic function of the counts, so bit equality is the right
    /// notion and [`SampleError`](crate::error::SampleError) keeps `Eq`.
    fidelity_bound_bits: u64,
}

impl DegradedPartial {
    /// Packages a partial run; `fidelity_bound` is stored bit-exactly.
    pub fn new(
        queries: LedgerSnapshot,
        restarts: u64,
        survivors: Vec<usize>,
        dead: Vec<usize>,
        total_retries: u64,
        backoff_ticks: u64,
        fidelity_bound: f64,
    ) -> Self {
        Self {
            queries,
            restarts,
            survivors,
            dead,
            total_retries,
            backoff_ticks,
            fidelity_bound_bits: fidelity_bound.to_bits(),
        }
    }

    /// The fidelity the surviving data could still promise at the trip.
    pub fn fidelity_bound(&self) -> f64 {
        f64::from_bits(self.fidelity_bound_bits)
    }
}

/// One sampling run's retry/breaker state: the [`FaultHandler`] the
/// degraded samplers hand to the faulty oracle layer.
#[derive(Debug)]
pub struct RetrySession<'p> {
    policy: &'p RetryPolicy,
    consecutive: Vec<u32>,
    dead: Vec<bool>,
    total_retries: u64,
    backoff_ticks: u64,
}

impl<'p> RetrySession<'p> {
    /// A fresh session for `n` machines.
    pub fn new(n: usize, policy: &'p RetryPolicy) -> Self {
        Self {
            policy,
            consecutive: vec![0; n],
            dead: vec![false; n],
            total_retries: 0,
            backoff_ticks: 0,
        }
    }

    /// A session whose breaker memory is pre-seeded: every machine in
    /// `quarantined` starts dead. No trip events are emitted — those
    /// happened in whatever earlier run built the quarantine.
    pub fn with_quarantined(n: usize, policy: &'p RetryPolicy, quarantined: &[usize]) -> Self {
        let mut session = Self::new(n, policy);
        for &machine in quarantined {
            if machine < n {
                session.dead[machine] = true;
            }
        }
        session
    }

    /// True when the breaker has declared `machine` dead.
    pub fn is_dead(&self, machine: usize) -> bool {
        self.dead[machine]
    }

    /// Machines declared dead so far, ascending.
    pub fn dead_machines(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&j| self.dead[j]).collect()
    }

    /// Machines still alive, ascending.
    pub fn survivors(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&j| !self.dead[j]).collect()
    }

    /// Total retries issued (each one a charged query or round).
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Total virtual backoff ticks accumulated before those retries.
    pub fn backoff_ticks(&self) -> u64 {
        self.backoff_ticks
    }
}

impl FaultHandler for RetrySession<'_> {
    fn on_failure(&mut self, machine: usize, _attempt: u64, permanent: bool) -> FailureAction {
        self.consecutive[machine] += 1;
        let failures = self.consecutive[machine];
        if permanent
            || failures > self.policy.max_retries
            || failures >= self.policy.breaker_threshold
        {
            self.dead[machine] = true;
            dqs_obs::machine_counter(dqs_obs::names::BREAKER_TRIP, machine, 1);
            return FailureAction::GiveUp;
        }
        self.total_retries += 1;
        let ticks = self.policy.backoff(failures - 1);
        self.backoff_ticks += ticks;
        dqs_obs::machine_counter(dqs_obs::names::RETRY, machine, 1);
        dqs_obs::observe(dqs_obs::names::BACKOFF_TICKS, ticks);
        FailureAction::Retry
    }

    fn on_success(&mut self, machine: usize) {
        self.consecutive[machine] = 0;
    }
}

/// The result of one degraded sampling run.
#[derive(Debug, Clone)]
pub struct DegradedRun<S, L> {
    /// The final state over the surviving data.
    pub state: S,
    /// Register layout used.
    pub layout: L,
    /// The amplification schedule of the attempt that completed (planned
    /// for `a = M_surv/(νN)`).
    pub plan: AaPlan,
    /// Exact query counts — *every* attempt's probes, retries, and failed
    /// restarts included.
    pub queries: LedgerSnapshot,
    /// How many times the sampler started over (1 = no restart).
    pub restarts: u64,
    /// Machines the completing attempt sampled from, ascending.
    pub survivors: Vec<usize>,
    /// Machines declared dead, ascending.
    pub dead: Vec<usize>,
    /// Total charged retries across the whole run.
    pub total_retries: u64,
    /// Total deterministic backoff ticks spent before those retries.
    pub backoff_ticks: u64,
    /// `|⟨ψ_surv|ψ⟩|²`, computed classically from the counts — what the
    /// surviving data can achieve at best against the true target.
    pub fidelity_bound: f64,
    /// Measured fidelity against `|ψ_surv⟩` (1 unless answers were
    /// corrupted or stale).
    pub fidelity_vs_surviving: f64,
    /// Measured fidelity against the true `|ψ⟩` (equals `fidelity_bound`
    /// for pure data-loss faults).
    pub fidelity_vs_target: f64,
    /// The surviving-data target `|ψ_surv⟩` the run aimed for.
    pub target_surviving: StateTable,
}

impl<S, L> DegradedRun<S, L> {
    /// True when any machine was lost along the way.
    pub fn is_degraded(&self) -> bool {
        !self.dead.is_empty()
    }
}

/// `(1/√M) Σ_i √c_i |i⟩` over an arbitrary per-element count table.
fn target_from_totals(layout: &Layout, elem_reg: usize, totals: &[u64]) -> StateTable {
    let m: u64 = totals.iter().sum();
    let m = m as f64;
    let entries = totals
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| {
            let mut b = layout.zero_basis();
            b[elem_reg] = i as u64;
            (
                b.into_boxed_slice(),
                Complex64::from_real((c as f64 / m).sqrt()),
            )
        })
        .collect();
    StateTable::new(layout.clone(), entries)
}

/// The exact overlap `|⟨ψ_surv|ψ⟩|² = (Σ_i √(c_i^surv·c_i))²/(M_surv·M)`.
fn fidelity_lower_bound(full: &[u64], surv: &[u64]) -> f64 {
    let m: u64 = full.iter().sum();
    let ms: u64 = surv.iter().sum();
    if m == 0 || ms == 0 {
        return 0.0;
    }
    let dot: f64 = full
        .iter()
        .zip(surv)
        .map(|(&c, &cs)| (c as f64 * cs as f64).sqrt())
        .sum();
    (dot * dot) / (m as f64 * ms as f64)
}

/// Net action of one faulty `D`/`D†` given the answered totals of its
/// forward (`tf`) and inverse (`ti`) cascade probes: the flag rotation
/// keyed `(s + tf_i) mod (ν+1)`, plus a count shift by `tf_i − ti_i` when
/// the passes disagreed (clean passes cancel exactly, keeping this
/// bit-identical to the fused faultless `D`).
fn apply_net_d<S: QuantumState>(
    d: &DistributingOperator,
    state: &mut S,
    (elem, count, flag): (usize, usize, usize),
    modulus: u64,
    tf: &[u64],
    ti: &[u64],
    inverse: bool,
) -> Result<(), SimError> {
    state.apply_conditioned_unitary(flag, |b| {
        let c = (b[count] + tf[b[elem] as usize]) % modulus;
        let u = d.u_gate(c);
        if inverse {
            u.adjoint()
        } else {
            u
        }
    });
    if tf != ti {
        state.try_apply_permutation(|b| {
            let i = b[elem] as usize;
            let shift = (tf[i] + modulus - ti[i]) % modulus;
            b[count] = (b[count] + shift) % modulus;
        })?;
    }
    Ok(())
}

/// Per-element totals over a survivor subset.
fn survivor_totals(dataset: &DistributedDataset, survivors: &[usize]) -> Vec<u64> {
    let mut totals = vec![0u64; dataset.universe() as usize];
    for &j in survivors {
        for (e, c) in dataset.shards()[j].iter() {
            totals[e as usize] += c;
        }
    }
    totals
}

/// Emits the deadline event and packages the partial run at a tripped
/// restart boundary.
fn deadline_partial(
    dataset: &DistributedDataset,
    full_totals: &[u64],
    ledger: &QueryLedger,
    session: &RetrySession<'_>,
    restarts: u64,
) -> SampleError {
    dqs_obs::counter(dqs_obs::names::DEADLINE_EXCEEDED, 1);
    let queries = ledger.snapshot();
    let survivors = session.survivors();
    let surv_totals = survivor_totals(dataset, &survivors);
    SampleError::DeadlineExceeded {
        partial: Box::new(DegradedPartial::new(
            queries,
            restarts,
            survivors,
            session.dead_machines(),
            session.total_retries(),
            session.backoff_ticks(),
            fidelity_lower_bound(full_totals, &surv_totals),
        )),
    }
}

/// True when the spec's deadline has been consumed by the charges so far.
fn deadline_tripped(spec: &DegradedSpec, ledger: &QueryLedger) -> bool {
    spec.deadline.is_some_and(|deadline| {
        let q = ledger.snapshot();
        q.total_sequential() + q.parallel_rounds >= deadline
    })
}

/// The shared restart loop: plan over the survivors, run one attempt
/// through the faulty `D`, and either finish (reporting fidelities) or
/// bury the newly dead machine and start over. One ledger spans all
/// attempts.
///
/// `probe_d` charges (and retries) one `D`'s worth of probes over the
/// survivors and returns the answered totals `(tf, ti)` of its forward and
/// inverse cascades. In execute mode (`template == None`) every `D` then
/// acts on the simulator state via [`apply_net_d`]. In replay mode the
/// state is never touched: the loop walks the identical probe/retry/
/// restart schedule — same events, same ledger — via [`walk_plan_queries`]
/// and clones the template's state and fidelities on success. Replay
/// bodies make no internal rayon calls, so services may run them on worker
/// threads under per-request recorders.
#[allow(clippy::too_many_arguments)]
fn run_degraded<S, L, P>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
    layout: L,
    sim_layout: Layout,
    regs: (usize, usize, usize),
    anchor: &StateTable,
    mut probe_d: P,
    template: Option<&DegradedRun<S, L>>,
) -> Result<DegradedRun<S, L>, SampleError>
where
    S: QuantumState,
    P: FnMut(
        &[usize],
        &FaultyOracleSet<'_>,
        &mut RetrySession<'_>,
    ) -> Result<(Vec<u64>, Vec<u64>), OracleError>,
{
    let n = dataset.num_machines();
    let _run_span = dqs_obs::span(dqs_obs::names::SPAN_DEGRADED);
    // One probe spans every attempt — all of them charge the same ledger.
    let obs_probe = dqs_obs::begin_probe(n);
    let ledger = QueryLedger::new(n);
    let oracles = OracleSet::new(dataset, &ledger);
    let faulty = FaultyOracleSet::new(&oracles, fault_plan);
    let mut session = RetrySession::with_quarantined(n, &spec.policy, &spec.quarantined);
    let full_totals = dataset.total_count_table();
    let universe = dataset.universe();
    let capacity = dataset.capacity();
    let d = DistributingOperator::new(capacity);
    let modulus = capacity + 1;
    let (elem, count, flag) = regs;

    let mut restarts = 0u64;
    loop {
        // The deadline is only consulted here, between attempts, so runs
        // without one are untouched — and a tripped run still hands back
        // everything it paid for.
        if deadline_tripped(spec, &ledger) {
            return Err(deadline_partial(
                dataset,
                &full_totals,
                &ledger,
                &session,
                restarts,
            ));
        }
        restarts += 1;
        dqs_obs::counter(dqs_obs::names::RESTART, 1);
        let survivors = session.survivors();
        let surv_totals = survivor_totals(dataset, &survivors);
        let m_surv: u64 = surv_totals.iter().sum();
        if survivors.is_empty() || m_surv == 0 {
            return Err(SampleError::NoSurvivingData {
                dead: session.dead_machines(),
            });
        }

        let a = m_surv as f64 / (capacity as f64 * universe as f64);
        let plan = AaPlan::for_success_probability(a);
        dqs_obs::gauge(
            dqs_obs::names::AA_PLAN_ITERATIONS,
            plan.total_iterations() as i64,
        );
        let outcome: Result<S, OracleError> = if let Some(t) = template {
            (|| {
                probe_d(&survivors, &faulty, &mut session)?;
                walk_plan_queries(&plan, |_| {
                    probe_d(&survivors, &faulty, &mut session).map(drop)
                })?;
                Ok(t.state.clone())
            })()
        } else {
            (|| {
                let mut state = S::from_table(anchor);
                let (tf, ti) = probe_d(&survivors, &faulty, &mut session)?;
                apply_net_d(
                    &d,
                    &mut state,
                    (elem, count, flag),
                    modulus,
                    &tf,
                    &ti,
                    false,
                )
                .map_err(OracleError::from)?;
                try_execute_plan(&mut state, &plan, anchor, flag, |s, inv| {
                    let (tf, ti) = probe_d(&survivors, &faulty, &mut session)?;
                    apply_net_d(&d, s, (elem, count, flag), modulus, &tf, &ti, inv)
                        .map_err(OracleError::from)
                })?;
                Ok(state)
            })()
        };

        match outcome {
            Ok(state) => {
                let (fidelity_bound, fidelity_vs_surviving, fidelity_vs_target, target_surviving) =
                    if let Some(t) = template {
                        (
                            t.fidelity_bound,
                            t.fidelity_vs_surviving,
                            t.fidelity_vs_target,
                            t.target_surviving.clone(),
                        )
                    } else {
                        let target_surviving = target_from_totals(&sim_layout, elem, &surv_totals);
                        let target_full = target_from_totals(&sim_layout, elem, &full_totals);
                        let fidelity_vs_surviving = state.fidelity_with_table(&target_surviving);
                        let fidelity_vs_target = state.fidelity_with_table(&target_full);
                        (
                            fidelity_lower_bound(&full_totals, &surv_totals),
                            fidelity_vs_surviving,
                            fidelity_vs_target,
                            target_surviving,
                        )
                    };
                dqs_obs::gauge(dqs_obs::names::SURVIVORS, survivors.len() as i64);
                dqs_obs::float_metric("degraded.fidelity_vs_target", fidelity_vs_target);
                let queries = ledger.snapshot();
                dqs_obs::debug_check(&obs_probe, &queries.per_machine, queries.parallel_rounds);
                return Ok(DegradedRun {
                    state,
                    layout,
                    plan,
                    queries,
                    restarts,
                    survivors,
                    dead: session.dead_machines(),
                    total_retries: session.total_retries(),
                    backoff_ticks: session.backoff_ticks(),
                    fidelity_bound,
                    fidelity_vs_surviving,
                    fidelity_vs_target,
                    target_surviving,
                });
            }
            Err(OracleError::MachineUnavailable { machine, .. }) => {
                debug_assert!(
                    session.is_dead(machine),
                    "a give-up must kill the machine, or the restart loop spins"
                );
                if restarts > n as u64 {
                    return Err(SampleError::NoSurvivingData {
                        dead: session.dead_machines(),
                    });
                }
                // Attempt's state is discarded; its charges remain.
            }
            Err(e @ OracleError::Sim(_)) => return Err(SampleError::Oracle(e)),
        }
    }
}

/// Runs the sequential sampler (Theorem 4.3) against a fault plan,
/// degrading to the surviving machines per `policy`. Charges the faultless
/// `2·|survivors|` queries per `D` plus every retry and failed attempt.
pub fn sequential_sample_degraded<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    sequential_sample_degraded_spec(dataset, fault_plan, &DegradedSpec::from_policy(*policy))
}

/// [`sequential_sample_degraded`] under a full [`DegradedSpec`]: deadline
/// budget and pre-quarantined machines included.
pub fn sequential_sample_degraded_spec<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    let layout = SequentialLayout::for_dataset(dataset);
    sequential_degraded_with_layout(dataset, fault_plan, spec, layout, None)
}

/// [`sequential_sample_degraded`] against pre-compiled shared artifacts:
/// layout and anchor come from the bundle, nothing is rebuilt or
/// deep-cloned per call. Bit-identical to [`sequential_sample_degraded`].
pub fn sequential_sample_degraded_cached<S: QuantumState>(
    artifacts: &CompiledArtifacts,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    sequential_sample_degraded_cached_spec(
        artifacts,
        fault_plan,
        &DegradedSpec::from_policy(*policy),
    )
}

/// [`sequential_sample_degraded_cached`] under a full [`DegradedSpec`].
pub fn sequential_sample_degraded_cached_spec<S: QuantumState>(
    artifacts: &CompiledArtifacts,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    sequential_degraded_with_layout(
        artifacts.dataset(),
        fault_plan,
        spec,
        artifacts.sequential_layout().clone(),
        None,
    )
}

/// Replays a completed sequential degraded run without evolving any
/// quantum state: identical spans, events, retries and ledger — the
/// returned run clones the template's state and fidelities. Makes no
/// internal rayon calls, so services may replay on worker threads under
/// per-request recorders.
pub fn replay_sequential_degraded_run<S: QuantumState>(
    artifacts: &CompiledArtifacts,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
    template: &DegradedRun<S, SequentialLayout>,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    sequential_degraded_with_layout(
        artifacts.dataset(),
        fault_plan,
        spec,
        artifacts.sequential_layout().clone(),
        Some(template),
    )
}

fn sequential_degraded_with_layout<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
    layout: SequentialLayout,
    template: Option<&DegradedRun<S, SequentialLayout>>,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    let (elem, count, flag) = (layout.elem, layout.count, layout.flag);
    // A cheap handle clone shares the cached anchor table through the
    // layout's internal `Arc<OnceLock<…>>` — no per-call deep copy — while
    // `layout` itself moves into the run result.
    let anchor_src = layout.clone();
    let sim_layout = layout.layout.clone();
    run_degraded(
        dataset,
        fault_plan,
        spec,
        layout,
        sim_layout,
        (elem, count, flag),
        anchor_src.uniform_anchor(),
        |survivors, faulty, session| {
            // Lemma 4.2 over the survivors: forward cascade ascending,
            // inverse cascade descending — 2·|survivors| charged probes.
            let fwd = faulty.probe_machines(survivors, session)?;
            let rev: Vec<usize> = survivors.iter().rev().copied().collect();
            let inv = faulty.probe_machines(&rev, session)?;
            Ok((
                faulty.answered_total_table(&fwd),
                faulty.answered_total_table(&inv),
            ))
        },
        template,
    )
}

/// Runs the parallel sampler (Theorem 4.5) against a fault plan. Each `D`
/// charges the faultless 4 composite rounds over the survivors (Lemma 4.4:
/// compute/uncompute per count load); uncompute rounds carry their compute
/// round's answer content but still probe — and can fail — like any round.
pub fn parallel_sample_degraded<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    parallel_sample_degraded_spec(dataset, fault_plan, &DegradedSpec::from_policy(*policy))
}

/// [`parallel_sample_degraded`] under a full [`DegradedSpec`].
pub fn parallel_sample_degraded_spec<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    let layout = ParallelLayout::for_dataset(dataset);
    parallel_degraded_with_layout(dataset, fault_plan, spec, layout, None)
}

/// [`parallel_sample_degraded`] against pre-compiled shared artifacts (see
/// [`sequential_sample_degraded_cached`]).
pub fn parallel_sample_degraded_cached<S: QuantumState>(
    artifacts: &CompiledArtifacts,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    parallel_sample_degraded_cached_spec(artifacts, fault_plan, &DegradedSpec::from_policy(*policy))
}

/// [`parallel_sample_degraded_cached`] under a full [`DegradedSpec`].
pub fn parallel_sample_degraded_cached_spec<S: QuantumState>(
    artifacts: &CompiledArtifacts,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    parallel_degraded_with_layout(
        artifacts.dataset(),
        fault_plan,
        spec,
        artifacts.parallel_layout().clone(),
        None,
    )
}

/// Replays a completed parallel degraded run (see
/// [`replay_sequential_degraded_run`]).
pub fn replay_parallel_degraded_run<S: QuantumState>(
    artifacts: &CompiledArtifacts,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
    template: &DegradedRun<S, ParallelLayout>,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    parallel_degraded_with_layout(
        artifacts.dataset(),
        fault_plan,
        spec,
        artifacts.parallel_layout().clone(),
        Some(template),
    )
}

fn parallel_degraded_with_layout<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
    layout: ParallelLayout,
    template: Option<&DegradedRun<S, ParallelLayout>>,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    let (elem, count, flag) = (layout.elem, layout.count, layout.flag);
    let anchor_src = layout.clone();
    let sim_layout = layout.layout.clone();
    run_degraded(
        dataset,
        fault_plan,
        spec,
        layout,
        sim_layout,
        (elem, count, flag),
        anchor_src.uniform_anchor(),
        |survivors, faulty, session| {
            let r1 = faulty.probe_round_machines(survivors, session)?; // load: O
            let _r2 = faulty.probe_round_machines(survivors, session)?; // load: O† (frozen to r1)
            let r3 = faulty.probe_round_machines(survivors, session)?; // unload: O
            let _r4 = faulty.probe_round_machines(survivors, session)?; // unload: O† (frozen to r3)
            Ok((
                faulty.answered_total_table(&r1),
                faulty.answered_total_table(&r3),
            ))
        },
        template,
    )
}

/// Result of estimating the *surviving* total `M_surv` under faults.
#[derive(Debug, Clone)]
pub struct DegradedEstimationRun {
    /// Estimated surviving total `M̂_surv = â·νN`.
    pub estimated_total: f64,
    /// Estimated success probability `â` (true value `M_surv/(νN)`).
    pub estimated_a: f64,
    /// Shots of the completing attempt.
    pub shots: u64,
    /// Exact charges — every attempt's probes and retries included.
    pub queries: LedgerSnapshot,
    /// How many attempts the estimator started (1 = no restart).
    pub restarts: u64,
    /// Machines the completing attempt probed, ascending.
    pub survivors: Vec<usize>,
    /// Machines declared dead, ascending.
    pub dead: Vec<usize>,
    /// Total charged retries.
    pub total_retries: u64,
    /// Deterministic backoff ticks spent before those retries.
    pub backoff_ticks: u64,
    /// `|⟨ψ_surv|ψ⟩|²` — the best sampling from the surviving data could
    /// do, computed classically from the counts.
    pub fidelity_bound: f64,
    /// The exact surviving total the estimate converges to.
    pub surviving_total: u64,
}

impl DegradedEstimationRun {
    /// True when any machine was lost along the way.
    pub fn is_degraded(&self) -> bool {
        !self.dead.is_empty()
    }
}

/// Estimates `M_surv` with `shots` prepare-measure rounds against a fault
/// plan: each shot probes one faulty `D` over the survivors (forward +
/// inverse cascade, retries included) and measures the flag of the net-`D`
/// state. A breaker trip mid-shot restarts the whole estimate over the
/// shrunken survivor set — spent shots stay charged, the zero counter
/// resets (mixed-population zero counts would estimate nothing meaningful).
///
/// Fault-free plans reproduce [`crate::estimate::estimate_total_count`]'s
/// estimate, charges and RNG consumption exactly: clean probes make the
/// net `D` bit-identical to the fused faultless `D`, and no `RESTART`
/// event is emitted on the first attempt.
///
/// # Errors
///
/// [`SampleError::InvalidShotBudget`] for `shots == 0`,
/// [`SampleError::NoFlagZeroOutcomes`] when every shot of the completing
/// attempt lands on flag 1, [`SampleError::NoSurvivingData`] when nothing
/// is left to probe, and [`SampleError::DeadlineExceeded`] at a tripped
/// restart boundary.
pub fn estimate_total_count_degraded(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
    shots: u64,
    rng: &mut impl Rng,
) -> Result<DegradedEstimationRun, SampleError> {
    let layout = SequentialLayout::for_dataset(dataset);
    estimate_degraded_with_layout(dataset, fault_plan, spec, shots, rng, layout)
}

/// [`estimate_total_count_degraded`] against pre-compiled shared
/// artifacts. Bit-identical to the uncached entry point.
pub fn estimate_total_count_degraded_cached(
    artifacts: &CompiledArtifacts,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
    shots: u64,
    rng: &mut impl Rng,
) -> Result<DegradedEstimationRun, SampleError> {
    estimate_degraded_with_layout(
        artifacts.dataset(),
        fault_plan,
        spec,
        shots,
        rng,
        artifacts.sequential_layout().clone(),
    )
}

fn estimate_degraded_with_layout(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    spec: &DegradedSpec,
    shots: u64,
    rng: &mut impl Rng,
    layout: SequentialLayout,
) -> Result<DegradedEstimationRun, SampleError> {
    if shots == 0 {
        return Err(SampleError::InvalidShotBudget);
    }
    let n = dataset.num_machines();
    let _run_span = dqs_obs::span(dqs_obs::names::SPAN_ESTIMATE);
    let obs_probe = dqs_obs::begin_probe(n);
    let ledger = QueryLedger::new(n);
    let oracles = OracleSet::new(dataset, &ledger);
    let faulty = FaultyOracleSet::new(&oracles, fault_plan);
    let mut session = RetrySession::with_quarantined(n, &spec.policy, &spec.quarantined);
    let full_totals = dataset.total_count_table();
    let universe = dataset.universe();
    let capacity = dataset.capacity();
    let d = DistributingOperator::new(capacity);
    let modulus = capacity + 1;
    let (elem, count, flag) = (layout.elem, layout.count, layout.flag);

    let mut restarts = 0u64;
    loop {
        if deadline_tripped(spec, &ledger) {
            return Err(deadline_partial(
                dataset,
                &full_totals,
                &ledger,
                &session,
                restarts,
            ));
        }
        restarts += 1;
        // No RESTART event on the first attempt: a fault-free degraded
        // estimate emits the exact faultless estimate stream.
        if restarts > 1 {
            dqs_obs::counter(dqs_obs::names::RESTART, 1);
        }
        let survivors = session.survivors();
        let surv_totals = survivor_totals(dataset, &survivors);
        let m_surv: u64 = surv_totals.iter().sum();
        if survivors.is_empty() || m_surv == 0 {
            return Err(SampleError::NoSurvivingData {
                dead: session.dead_machines(),
            });
        }

        let mut zeros = 0u64;
        let mut lost_machine = false;
        for _ in 0..shots {
            dqs_obs::counter(dqs_obs::names::ESTIMATE_SHOT, 1);
            let probed = (|| {
                let fwd = faulty.probe_machines(&survivors, &mut session)?;
                let rev: Vec<usize> = survivors.iter().rev().copied().collect();
                let inv = faulty.probe_machines(&rev, &mut session)?;
                Ok((
                    faulty.answered_total_table(&fwd),
                    faulty.answered_total_table(&inv),
                ))
            })();
            match probed {
                Ok((tf, ti)) => {
                    let mut state = SparseState::from_table(layout.uniform_anchor());
                    apply_net_d(
                        &d,
                        &mut state,
                        (elem, count, flag),
                        modulus,
                        &tf,
                        &ti,
                        false,
                    )
                    .map_err(|e| SampleError::Oracle(OracleError::from(e)))?;
                    let (flag_val, _) = measure_register(&mut state, flag, rng);
                    zeros += u64::from(flag_val == 0);
                }
                Err(OracleError::MachineUnavailable { machine, .. }) => {
                    debug_assert!(
                        session.is_dead(machine),
                        "a give-up must kill the machine, or the restart loop spins"
                    );
                    lost_machine = true;
                    break;
                }
                Err(e @ OracleError::Sim(_)) => return Err(SampleError::Oracle(e)),
            }
        }
        if lost_machine {
            if restarts > n as u64 {
                return Err(SampleError::NoSurvivingData {
                    dead: session.dead_machines(),
                });
            }
            continue; // Partial attempt's shots and probes stay charged.
        }
        dqs_obs::gauge(dqs_obs::names::ESTIMATE_ZEROS, zeros as i64);
        let queries = ledger.snapshot();
        dqs_obs::debug_check(&obs_probe, &queries.per_machine, queries.parallel_rounds);
        if zeros == 0 {
            return Err(SampleError::NoFlagZeroOutcomes { shots });
        }
        let a_hat = zeros as f64 / shots as f64;
        return Ok(DegradedEstimationRun {
            estimated_total: a_hat * capacity as f64 * universe as f64,
            estimated_a: a_hat,
            shots,
            queries,
            restarts,
            survivors,
            dead: session.dead_machines(),
            total_retries: session.total_retries(),
            backoff_ticks: session.backoff_ticks(),
            fidelity_bound: fidelity_lower_bound(&full_totals, &surv_totals),
            surviving_total: m_surv,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_sample;
    use crate::sequential::sequential_sample;
    use dqs_db::{FaultEvent, FaultKind, Multiset};
    use dqs_math::approx::approx_eq;
    use dqs_sim::SparseState;

    fn dataset() -> DistributedDataset {
        // c = (2, 2, 0, 3) over N = 4, ν = 4; M = 7.
        DistributedDataset::new(
            4,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (3, 3)]),
            ],
        )
        .unwrap()
    }

    fn crash(machine_schedules: Vec<Vec<FaultEvent>>) -> FaultPlan {
        FaultPlan::from_schedules(machine_schedules)
    }

    #[test]
    fn fault_free_degraded_equals_faultless_bit_for_bit() {
        let ds = dataset();
        let plan = FaultPlan::none(2);
        let policy = RetryPolicy::default();
        let deg =
            sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("no faults");
        let base = sequential_sample::<SparseState>(&ds).expect("faultless");
        assert_eq!(deg.state.to_table(), base.state.to_table());
        assert_eq!(deg.queries, base.queries);
        assert_eq!(deg.fidelity_bound, 1.0);
        assert_eq!(deg.restarts, 1);
        assert!(deg.dead.is_empty());
        assert_eq!(deg.total_retries, 0);
        assert_eq!(deg.backoff_ticks, 0);
        assert!(!deg.is_degraded());
    }

    #[test]
    fn fault_free_parallel_degraded_equals_faultless_bit_for_bit() {
        let ds = dataset();
        let plan = FaultPlan::none(2);
        let policy = RetryPolicy::default();
        let deg = parallel_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("no faults");
        let base = parallel_sample::<SparseState>(&ds).expect("faultless");
        assert_eq!(deg.state.to_table(), base.state.to_table());
        assert_eq!(deg.queries, base.queries);
        assert_eq!(deg.fidelity_bound, 1.0);
    }

    #[test]
    fn crashed_machine_degrades_with_exact_fidelity_bound() {
        let ds = dataset();
        // Machine 1 (holding c_1 = 1, c_3 = 3) is dead from the start.
        let plan = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let policy = RetryPolicy::default();
        let deg = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("degrades");
        assert_eq!(deg.dead, vec![1]);
        assert_eq!(deg.survivors, vec![0]);
        assert_eq!(deg.restarts, 2);
        assert!(deg.is_degraded());
        // Exact bound: survivors hold c^surv = (2,1,0,0), M_surv = 3;
        // (√(2·2) + √(1·2))²/(3·7) = (2 + √2)²/21.
        let expected = (2.0 + 2f64.sqrt()).powi(2) / 21.0;
        assert!(approx_eq(deg.fidelity_bound, expected));
        // Pure data loss: the run lands exactly on |ψ_surv⟩, so the
        // measured fidelity against the true target meets the bound.
        assert!(deg.fidelity_vs_surviving > 1.0 - 1e-9);
        assert!(
            (deg.fidelity_vs_target - deg.fidelity_bound).abs() < 1e-9,
            "{} vs bound {}",
            deg.fidelity_vs_target,
            deg.fidelity_bound
        );
        // The probe that discovered the crash is charged.
        assert_eq!(deg.queries.per_machine[1], 1);
        assert!(deg.queries.per_machine[0] > 0);
    }

    #[test]
    fn parallel_crash_degrades_identically() {
        let ds = dataset();
        let plan = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let policy = RetryPolicy::default();
        let deg = parallel_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("degrades");
        let seq = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("degrades");
        assert_eq!(deg.dead, vec![1]);
        assert!(approx_eq(deg.fidelity_bound, seq.fidelity_bound));
        assert!((deg.fidelity_vs_target - deg.fidelity_bound).abs() < 1e-9);
        // The failed attempt's round is charged, then the surviving run
        // pays 4 rounds per D.
        assert!(deg.queries.parallel_rounds > 4);
        assert_eq!(deg.queries.total_sequential(), 0);
    }

    #[test]
    fn transient_faults_retry_with_backoff_and_recover_exactly() {
        let ds = dataset();
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Transient { fail_count: 2 },
            }],
            vec![],
        ]);
        let policy = RetryPolicy {
            max_retries: 5,
            breaker_threshold: 6,
            ..RetryPolicy::default()
        };
        let deg = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("recovers");
        assert!(deg.dead.is_empty());
        assert_eq!(deg.restarts, 1);
        assert_eq!(deg.total_retries, 2);
        // Backoff: base·2⁰ + base·2¹ = 3 ticks.
        assert_eq!(deg.backoff_ticks, 3);
        // Full recovery: exact sampling state.
        assert_eq!(deg.fidelity_bound, 1.0);
        assert!(deg.fidelity_vs_target > 1.0 - 1e-9);
        // The two failed probes are charged on top of the faultless count.
        let base = sequential_sample::<SparseState>(&ds).expect("faultless");
        assert_eq!(deg.queries.per_machine[0], base.queries.per_machine[0] + 2);
        assert_eq!(deg.queries.per_machine[1], base.queries.per_machine[1]);
    }

    #[test]
    fn circuit_breaker_kills_flappy_machine() {
        let ds = dataset();
        // Machine 0 fails 10 consecutive queries — more than the breaker
        // tolerates — so it is declared dead even though the fault is
        // transient in principle.
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Transient { fail_count: 10 },
            }],
            vec![],
        ]);
        let policy = RetryPolicy::default(); // breaker at 3
        let deg = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("degrades");
        assert_eq!(deg.dead, vec![0]);
        assert_eq!(deg.survivors, vec![1]);
        assert_eq!(deg.restarts, 2);
        assert_eq!(deg.total_retries, 2, "two retries before the breaker");
        // All three failed probes of machine 0 are charged.
        assert_eq!(deg.queries.per_machine[0], 3);
        assert!(deg.fidelity_vs_surviving > 1.0 - 1e-9);
    }

    #[test]
    fn corrupt_answers_degrade_measured_fidelity_not_the_bound() {
        let ds = dataset();
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Corrupt { delta: 1 },
            }],
            vec![],
        ]);
        let policy = RetryPolicy::default();
        let deg = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("runs");
        // Nobody died, so the data-loss bound is trivial…
        assert!(deg.dead.is_empty());
        assert_eq!(deg.fidelity_bound, 1.0);
        // …but the lying machine twisted the run away from |ψ_surv⟩ = |ψ⟩.
        assert!(
            deg.fidelity_vs_surviving < 1.0 - 1e-6,
            "corruption must show up in the measured fidelity: {}",
            deg.fidelity_vs_surviving
        );
        // Still a unit vector — the faulty D stays unitary.
        assert!(approx_eq(deg.state.norm(), 1.0));
    }

    #[test]
    fn all_machines_dead_is_a_typed_error() {
        let ds = dataset();
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let policy = RetryPolicy::default();
        let err = match sequential_sample_degraded::<SparseState>(&ds, &plan, &policy) {
            Ok(_) => panic!("sampling with every machine dead must fail"),
            Err(e) => e,
        };
        assert_eq!(err, SampleError::NoSurvivingData { dead: vec![0, 1] });
    }

    #[test]
    fn zero_deadline_trips_before_any_attempt() {
        let ds = dataset();
        let plan = FaultPlan::none(2);
        let spec = DegradedSpec {
            deadline: Some(0),
            ..DegradedSpec::default()
        };
        let partial = match sequential_sample_degraded_spec::<SparseState>(&ds, &plan, &spec) {
            Err(SampleError::DeadlineExceeded { partial }) => partial,
            Err(other) => panic!("expected a deadline trip, got {other:?}"),
            Ok(_) => panic!("a zero budget cannot afford an attempt"),
        };
        assert_eq!(partial.restarts, 0, "no attempt was affordable");
        assert_eq!(partial.queries.total_sequential(), 0);
        assert_eq!(partial.survivors, vec![0, 1]);
        assert!(partial.dead.is_empty());
        assert_eq!(partial.fidelity_bound(), 1.0, "all data still reachable");
    }

    #[test]
    fn deadline_trips_at_restart_boundary_with_exact_partial() {
        let ds = dataset();
        // Machine 1 is dead on arrival: attempt 1 probes machine 0 (1
        // query), hits the crash on machine 1 (1 charged query), and
        // restarts. With a 2-query budget the boundary check trips before
        // attempt 2 begins.
        let plan = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let spec = DegradedSpec {
            deadline: Some(2),
            ..DegradedSpec::default()
        };
        let partial = match sequential_sample_degraded_spec::<SparseState>(&ds, &plan, &spec) {
            Err(SampleError::DeadlineExceeded { partial }) => partial,
            Err(other) => panic!("expected a deadline trip, got {other:?}"),
            Ok(_) => panic!("a 2-query budget cannot finish a run"),
        };
        assert_eq!(partial.restarts, 1);
        assert_eq!(partial.queries.per_machine, vec![1, 1]);
        assert_eq!(partial.survivors, vec![0]);
        assert_eq!(partial.dead, vec![1]);
        // The bound the aborted run could still promise — computed without
        // ever finishing a circuit.
        let expected = (2.0 + 2f64.sqrt()).powi(2) / 21.0;
        assert!(approx_eq(partial.fidelity_bound(), expected));
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let ds = dataset();
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Transient { fail_count: 2 },
            }],
            vec![],
        ]);
        let policy = RetryPolicy {
            max_retries: 5,
            breaker_threshold: 6,
            ..RetryPolicy::default()
        };
        let spec = DegradedSpec {
            policy,
            deadline: Some(1_000_000),
            ..DegradedSpec::default()
        };
        let with = sequential_sample_degraded_spec::<SparseState>(&ds, &plan, &spec).unwrap();
        let without = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).unwrap();
        assert_eq!(with.state.to_table(), without.state.to_table());
        assert_eq!(with.queries, without.queries);
        assert_eq!(with.restarts, without.restarts);
        assert_eq!(with.fidelity_bound, without.fidelity_bound);
    }

    #[test]
    fn quarantined_machines_start_dead_and_are_never_probed() {
        let ds = dataset();
        let plan = FaultPlan::none(2);
        let spec = DegradedSpec {
            quarantined: vec![1, 99], // out-of-range indices are ignored
            ..DegradedSpec::default()
        };
        let run = sequential_sample_degraded_spec::<SparseState>(&ds, &plan, &spec).unwrap();
        assert_eq!(run.survivors, vec![0]);
        assert_eq!(run.dead, vec![1]);
        assert_eq!(run.restarts, 1, "the quarantine needs no discovery");
        assert_eq!(run.queries.per_machine[1], 0, "dead machines cost nothing");
        let expected = (2.0 + 2f64.sqrt()).powi(2) / 21.0;
        assert!(approx_eq(run.fidelity_bound, expected));
        // Identical to discovering the crash, minus the discovery probes.
        let crashed = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let discovered =
            sequential_sample_degraded::<SparseState>(&ds, &crashed, &RetryPolicy::default())
                .unwrap();
        assert_eq!(run.state.to_table(), discovered.state.to_table());
    }

    #[test]
    fn replay_matches_execute_bitwise_sequential() {
        let ds = dataset();
        let artifacts =
            CompiledArtifacts::build(&crate::snapshot::DatasetSnapshot::new(ds.clone()));
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 2,
                kind: FaultKind::Transient { fail_count: 1 },
            }],
            vec![FaultEvent {
                at_query: 3,
                kind: FaultKind::Crashed,
            }],
        ]);
        let spec = DegradedSpec::default();
        let run = sequential_sample_degraded_cached_spec::<SparseState>(&artifacts, &plan, &spec)
            .unwrap();
        let replay =
            replay_sequential_degraded_run::<SparseState>(&artifacts, &plan, &spec, &run).unwrap();
        assert_eq!(replay.state.to_table(), run.state.to_table());
        assert_eq!(replay.queries, run.queries);
        assert_eq!(replay.restarts, run.restarts);
        assert_eq!(replay.survivors, run.survivors);
        assert_eq!(replay.dead, run.dead);
        assert_eq!(replay.total_retries, run.total_retries);
        assert_eq!(replay.backoff_ticks, run.backoff_ticks);
        assert_eq!(replay.fidelity_bound, run.fidelity_bound);
        assert_eq!(replay.fidelity_vs_target, run.fidelity_vs_target);
    }

    #[test]
    fn replay_matches_execute_bitwise_parallel() {
        let ds = dataset();
        let artifacts =
            CompiledArtifacts::build(&crate::snapshot::DatasetSnapshot::new(ds.clone()));
        let plan = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 1,
                kind: FaultKind::Crashed,
            }],
        ]);
        let spec = DegradedSpec::default();
        let run =
            parallel_sample_degraded_cached_spec::<SparseState>(&artifacts, &plan, &spec).unwrap();
        let replay =
            replay_parallel_degraded_run::<SparseState>(&artifacts, &plan, &spec, &run).unwrap();
        assert_eq!(replay.state.to_table(), run.state.to_table());
        assert_eq!(replay.queries, run.queries);
        assert_eq!(replay.restarts, run.restarts);
        assert_eq!(replay.dead, run.dead);
        assert_eq!(replay.fidelity_bound, run.fidelity_bound);
    }

    #[test]
    fn fault_free_degraded_estimate_matches_faultless_bitwise() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ds = dataset();
        let plan = FaultPlan::none(2);
        let spec = DegradedSpec::default();
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let deg = estimate_total_count_degraded(&ds, &plan, &spec, 200, &mut rng_a).unwrap();
        let base = crate::estimate::estimate_total_count(&ds, 200, &mut rng_b).unwrap();
        assert_eq!(deg.estimated_a, base.estimated_a);
        assert_eq!(deg.estimated_total, base.estimated_total);
        assert_eq!(deg.queries, base.queries);
        assert_eq!(deg.restarts, 1);
        assert!(deg.dead.is_empty());
        assert_eq!(deg.fidelity_bound, 1.0);
        assert_eq!(deg.surviving_total, 7);
    }

    #[test]
    fn degraded_estimate_tracks_the_surviving_total() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ds = dataset();
        let plan = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let spec = DegradedSpec::default();
        let mut rng = StdRng::seed_from_u64(5);
        let run = estimate_total_count_degraded(&ds, &plan, &spec, 2000, &mut rng).unwrap();
        assert_eq!(run.dead, vec![1]);
        assert_eq!(run.survivors, vec![0]);
        assert_eq!(run.restarts, 2);
        assert_eq!(run.surviving_total, 3, "machine 0 holds c = (2,1)");
        let rel = (run.estimated_total - 3.0).abs() / 3.0;
        assert!(rel < 0.25, "estimate {} vs M_surv = 3", run.estimated_total);
        let expected = (2.0 + 2f64.sqrt()).powi(2) / 21.0;
        assert!(approx_eq(run.fidelity_bound, expected));
        // The crashed probe of the first attempt stays charged.
        assert_eq!(run.queries.per_machine[1], 1);
    }

    #[test]
    fn degraded_estimate_honors_the_deadline() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ds = dataset();
        let plan = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let spec = DegradedSpec {
            deadline: Some(2),
            ..DegradedSpec::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let err = estimate_total_count_degraded(&ds, &plan, &spec, 50, &mut rng).unwrap_err();
        match err {
            SampleError::DeadlineExceeded { partial } => {
                assert_eq!(partial.restarts, 1);
                assert_eq!(partial.dead, vec![1]);
            }
            other => panic!("expected a deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            backoff_base: 2,
            backoff_cap: 10,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), 2);
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(2), 8);
        assert_eq!(p.backoff(3), 10, "capped");
        assert_eq!(p.backoff(60), 10, "no overflow at large indices");
    }
}
