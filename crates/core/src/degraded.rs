//! Graceful degradation: sampling from whatever survives.
//!
//! The fault-injection layer (`dqs_db::faults`) makes machines crash, flap,
//! and lie. This module is the coordinator-side response policy:
//!
//! * [`RetryPolicy`] — bounded retries with deterministic exponential
//!   backoff (counted in virtual ticks, so runs stay reproducible) and a
//!   per-machine circuit breaker that declares a machine dead after `k`
//!   consecutive failures.
//! * [`RetrySession`] — the [`FaultHandler`] implementing that policy over
//!   one sampling run, tracking dead machines across restarts.
//! * [`sequential_sample_degraded`] / [`parallel_sample_degraded`] — run
//!   the Theorem 4.3 / 4.5 samplers against a [`FaultPlan`], restarting
//!   over the *surviving* machine subset whenever the breaker trips.
//!   Every probe of every attempt — including failed and abandoned ones —
//!   stays charged on one ledger: degradation is never free.
//!
//! ## The fidelity bound
//!
//! When machines `Dead ⊂ [n]` are lost, the best state preparable from the
//! survivors is `|ψ_surv⟩ = (1/√M_surv) Σ_i √(c_i^surv) |i⟩`. Its overlap
//! with the true target `|ψ⟩` is exactly
//!
//! ```text
//! |⟨ψ_surv|ψ⟩|² = (Σ_i √(c_i^surv · c_i))² / (M_surv · M) ,
//! ```
//!
//! which [`DegradedRun::fidelity_bound`] reports, computed classically from
//! the counts. For pure data-loss faults (crashes, exhausted retries) the
//! degraded run lands on `|ψ_surv⟩` exactly, so its measured fidelity
//! against the true target equals the bound; answer-corrupting faults
//! (`Corrupt`, `Stale`) additionally twist the surviving-run state, which
//! the measured `fidelity_vs_surviving` exposes.
//!
//! ## Faulty `D` realizations
//!
//! `D = A†·𝒰·A` where the cascades `A`, `A†` only shuttle counts in and
//! out. Probing forward and inverse cascades up front (charging exactly the
//! faultless `2n` queries / 4 rounds over the survivors) yields per-element
//! answered totals `tf`, `ti`; the net action is the flag rotation
//! `u_gate((s + tf_i) mod (ν+1))` plus a count shift by `tf_i − ti_i` —
//! zero whenever the two passes agree, so fault-free probes reproduce the
//! fused faultless `D` bit for bit. In the parallel model the uncompute
//! rounds (2 and 4) revert the ancilla loads of rounds 1 and 3: their
//! answer *content* is pinned to the paired compute round (it is the same
//! logical query run backwards), but they remain real charged rounds whose
//! failures retry or trip the breaker.

use crate::amplify::{try_execute_plan, AaPlan};
use crate::distributing::DistributingOperator;
use crate::error::SampleError;
use crate::layouts::{ParallelLayout, SequentialLayout};
use dqs_db::{
    DistributedDataset, FailureAction, FaultHandler, FaultPlan, FaultyOracleSet, LedgerSnapshot,
    OracleError, OracleSet, QueryLedger,
};
use dqs_math::Complex64;
use dqs_sim::{Layout, QuantumState, SimError, StateTable};

/// Bounded-retry policy with deterministic exponential backoff and a
/// per-machine circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per query before giving up on the machine.
    pub max_retries: u32,
    /// Backoff for the `k`-th retry is `base · 2^k` virtual ticks…
    pub backoff_base: u64,
    /// …clamped to this cap.
    pub backoff_cap: u64,
    /// Consecutive failures after which the breaker declares the machine
    /// dead (counted across queries; any success resets).
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base: 1,
            backoff_cap: 64,
            breaker_threshold: 3,
        }
    }
}

impl RetryPolicy {
    /// Backoff (in virtual ticks) before the `retry_index`-th retry
    /// (0-based): `min(cap, base · 2^retry_index)`. Deterministic — no
    /// jitter — so ledger and schedule replay bit-identically.
    pub fn backoff(&self, retry_index: u32) -> u64 {
        self.backoff_base
            .saturating_mul(1u64 << retry_index.min(63))
            .min(self.backoff_cap)
    }
}

/// One sampling run's retry/breaker state: the [`FaultHandler`] the
/// degraded samplers hand to the faulty oracle layer.
#[derive(Debug)]
pub struct RetrySession<'p> {
    policy: &'p RetryPolicy,
    consecutive: Vec<u32>,
    dead: Vec<bool>,
    total_retries: u64,
    backoff_ticks: u64,
}

impl<'p> RetrySession<'p> {
    /// A fresh session for `n` machines.
    pub fn new(n: usize, policy: &'p RetryPolicy) -> Self {
        Self {
            policy,
            consecutive: vec![0; n],
            dead: vec![false; n],
            total_retries: 0,
            backoff_ticks: 0,
        }
    }

    /// True when the breaker has declared `machine` dead.
    pub fn is_dead(&self, machine: usize) -> bool {
        self.dead[machine]
    }

    /// Machines declared dead so far, ascending.
    pub fn dead_machines(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&j| self.dead[j]).collect()
    }

    /// Machines still alive, ascending.
    pub fn survivors(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&j| !self.dead[j]).collect()
    }

    /// Total retries issued (each one a charged query or round).
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Total virtual backoff ticks accumulated before those retries.
    pub fn backoff_ticks(&self) -> u64 {
        self.backoff_ticks
    }
}

impl FaultHandler for RetrySession<'_> {
    fn on_failure(&mut self, machine: usize, _attempt: u64, permanent: bool) -> FailureAction {
        self.consecutive[machine] += 1;
        let failures = self.consecutive[machine];
        if permanent
            || failures > self.policy.max_retries
            || failures >= self.policy.breaker_threshold
        {
            self.dead[machine] = true;
            dqs_obs::machine_counter(dqs_obs::names::BREAKER_TRIP, machine, 1);
            return FailureAction::GiveUp;
        }
        self.total_retries += 1;
        let ticks = self.policy.backoff(failures - 1);
        self.backoff_ticks += ticks;
        dqs_obs::machine_counter(dqs_obs::names::RETRY, machine, 1);
        dqs_obs::observe(dqs_obs::names::BACKOFF_TICKS, ticks);
        FailureAction::Retry
    }

    fn on_success(&mut self, machine: usize) {
        self.consecutive[machine] = 0;
    }
}

/// The result of one degraded sampling run.
#[derive(Debug, Clone)]
pub struct DegradedRun<S, L> {
    /// The final state over the surviving data.
    pub state: S,
    /// Register layout used.
    pub layout: L,
    /// The amplification schedule of the attempt that completed (planned
    /// for `a = M_surv/(νN)`).
    pub plan: AaPlan,
    /// Exact query counts — *every* attempt's probes, retries, and failed
    /// restarts included.
    pub queries: LedgerSnapshot,
    /// How many times the sampler started over (1 = no restart).
    pub restarts: u64,
    /// Machines the completing attempt sampled from, ascending.
    pub survivors: Vec<usize>,
    /// Machines declared dead, ascending.
    pub dead: Vec<usize>,
    /// Total charged retries across the whole run.
    pub total_retries: u64,
    /// Total deterministic backoff ticks spent before those retries.
    pub backoff_ticks: u64,
    /// `|⟨ψ_surv|ψ⟩|²`, computed classically from the counts — what the
    /// surviving data can achieve at best against the true target.
    pub fidelity_bound: f64,
    /// Measured fidelity against `|ψ_surv⟩` (1 unless answers were
    /// corrupted or stale).
    pub fidelity_vs_surviving: f64,
    /// Measured fidelity against the true `|ψ⟩` (equals `fidelity_bound`
    /// for pure data-loss faults).
    pub fidelity_vs_target: f64,
    /// The surviving-data target `|ψ_surv⟩` the run aimed for.
    pub target_surviving: StateTable,
}

impl<S, L> DegradedRun<S, L> {
    /// True when any machine was lost along the way.
    pub fn is_degraded(&self) -> bool {
        !self.dead.is_empty()
    }
}

/// `(1/√M) Σ_i √c_i |i⟩` over an arbitrary per-element count table.
fn target_from_totals(layout: &Layout, elem_reg: usize, totals: &[u64]) -> StateTable {
    let m: u64 = totals.iter().sum();
    let m = m as f64;
    let entries = totals
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| {
            let mut b = layout.zero_basis();
            b[elem_reg] = i as u64;
            (
                b.into_boxed_slice(),
                Complex64::from_real((c as f64 / m).sqrt()),
            )
        })
        .collect();
    StateTable::new(layout.clone(), entries)
}

/// The exact overlap `|⟨ψ_surv|ψ⟩|² = (Σ_i √(c_i^surv·c_i))²/(M_surv·M)`.
fn fidelity_lower_bound(full: &[u64], surv: &[u64]) -> f64 {
    let m: u64 = full.iter().sum();
    let ms: u64 = surv.iter().sum();
    if m == 0 || ms == 0 {
        return 0.0;
    }
    let dot: f64 = full
        .iter()
        .zip(surv)
        .map(|(&c, &cs)| (c as f64 * cs as f64).sqrt())
        .sum();
    (dot * dot) / (m as f64 * ms as f64)
}

/// Net action of one faulty `D`/`D†` given the answered totals of its
/// forward (`tf`) and inverse (`ti`) cascade probes: the flag rotation
/// keyed `(s + tf_i) mod (ν+1)`, plus a count shift by `tf_i − ti_i` when
/// the passes disagreed (clean passes cancel exactly, keeping this
/// bit-identical to the fused faultless `D`).
fn apply_net_d<S: QuantumState>(
    d: &DistributingOperator,
    state: &mut S,
    (elem, count, flag): (usize, usize, usize),
    modulus: u64,
    tf: &[u64],
    ti: &[u64],
    inverse: bool,
) -> Result<(), SimError> {
    state.apply_conditioned_unitary(flag, |b| {
        let c = (b[count] + tf[b[elem] as usize]) % modulus;
        let u = d.u_gate(c);
        if inverse {
            u.adjoint()
        } else {
            u
        }
    });
    if tf != ti {
        state.try_apply_permutation(|b| {
            let i = b[elem] as usize;
            let shift = (tf[i] + modulus - ti[i]) % modulus;
            b[count] = (b[count] + shift) % modulus;
        })?;
    }
    Ok(())
}

/// The shared restart loop: plan over the survivors, run one attempt
/// through the faulty `D`, and either finish (reporting fidelities) or
/// bury the newly dead machine and start over. One ledger spans all
/// attempts.
#[allow(clippy::too_many_arguments)]
fn run_degraded<S, L, D>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
    layout: L,
    sim_layout: Layout,
    elem: usize,
    flag: usize,
    anchor: &StateTable,
    mut apply_d: D,
) -> Result<DegradedRun<S, L>, SampleError>
where
    S: QuantumState,
    D: FnMut(
        &mut S,
        bool,
        &[usize],
        &FaultyOracleSet<'_>,
        &mut RetrySession<'_>,
    ) -> Result<(), OracleError>,
{
    let n = dataset.num_machines();
    let _run_span = dqs_obs::span(dqs_obs::names::SPAN_DEGRADED);
    // One probe spans every attempt — all of them charge the same ledger.
    let obs_probe = dqs_obs::begin_probe(n);
    let ledger = QueryLedger::new(n);
    let oracles = OracleSet::new(dataset, &ledger);
    let faulty = FaultyOracleSet::new(&oracles, fault_plan);
    let mut session = RetrySession::new(n, policy);
    let full_totals = dataset.total_count_table();
    let universe = dataset.universe();
    let capacity = dataset.capacity();

    let mut restarts = 0u64;
    loop {
        restarts += 1;
        dqs_obs::counter(dqs_obs::names::RESTART, 1);
        let survivors = session.survivors();
        let mut surv_totals = vec![0u64; universe as usize];
        for &j in &survivors {
            for (e, c) in dataset.shards()[j].iter() {
                surv_totals[e as usize] += c;
            }
        }
        let m_surv: u64 = surv_totals.iter().sum();
        if survivors.is_empty() || m_surv == 0 {
            return Err(SampleError::NoSurvivingData {
                dead: session.dead_machines(),
            });
        }

        let a = m_surv as f64 / (capacity as f64 * universe as f64);
        let plan = AaPlan::for_success_probability(a);
        dqs_obs::gauge(
            dqs_obs::names::AA_PLAN_ITERATIONS,
            plan.total_iterations() as i64,
        );
        let mut state = S::from_table(anchor);
        let outcome = (|| -> Result<(), OracleError> {
            apply_d(&mut state, false, &survivors, &faulty, &mut session)?;
            try_execute_plan(&mut state, &plan, anchor, flag, |s, inv| {
                apply_d(s, inv, &survivors, &faulty, &mut session)
            })
        })();

        match outcome {
            Ok(()) => {
                let target_surviving = target_from_totals(&sim_layout, elem, &surv_totals);
                let target_full = target_from_totals(&sim_layout, elem, &full_totals);
                let fidelity_vs_surviving = state.fidelity_with_table(&target_surviving);
                let fidelity_vs_target = state.fidelity_with_table(&target_full);
                dqs_obs::gauge(dqs_obs::names::SURVIVORS, survivors.len() as i64);
                dqs_obs::float_metric("degraded.fidelity_vs_target", fidelity_vs_target);
                let queries = ledger.snapshot();
                dqs_obs::debug_check(&obs_probe, &queries.per_machine, queries.parallel_rounds);
                return Ok(DegradedRun {
                    state,
                    layout,
                    plan,
                    queries,
                    restarts,
                    survivors,
                    dead: session.dead_machines(),
                    total_retries: session.total_retries(),
                    backoff_ticks: session.backoff_ticks(),
                    fidelity_bound: fidelity_lower_bound(&full_totals, &surv_totals),
                    fidelity_vs_surviving,
                    fidelity_vs_target,
                    target_surviving,
                });
            }
            Err(OracleError::MachineUnavailable { machine, .. }) => {
                debug_assert!(
                    session.is_dead(machine),
                    "a give-up must kill the machine, or the restart loop spins"
                );
                if restarts > n as u64 {
                    return Err(SampleError::NoSurvivingData {
                        dead: session.dead_machines(),
                    });
                }
                // Attempt's state is discarded; its charges remain.
            }
            Err(e @ OracleError::Sim(_)) => return Err(SampleError::Oracle(e)),
        }
    }
}

/// Runs the sequential sampler (Theorem 4.3) against a fault plan,
/// degrading to the surviving machines per `policy`. Charges the faultless
/// `2·|survivors|` queries per `D` plus every retry and failed attempt.
pub fn sequential_sample_degraded<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    let layout = SequentialLayout::for_dataset(dataset);
    sequential_degraded_with_layout(dataset, fault_plan, policy, layout)
}

/// [`sequential_sample_degraded`] against pre-compiled shared artifacts:
/// layout and anchor come from the bundle, nothing is rebuilt or
/// deep-cloned per call. Bit-identical to [`sequential_sample_degraded`].
pub fn sequential_sample_degraded_cached<S: QuantumState>(
    artifacts: &crate::artifacts::CompiledArtifacts,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    sequential_degraded_with_layout(
        artifacts.dataset(),
        fault_plan,
        policy,
        artifacts.sequential_layout().clone(),
    )
}

fn sequential_degraded_with_layout<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
    layout: SequentialLayout,
) -> Result<DegradedRun<S, SequentialLayout>, SampleError> {
    let d = DistributingOperator::new(dataset.capacity());
    let modulus = dataset.capacity() + 1;
    let (elem, count, flag) = (layout.elem, layout.count, layout.flag);
    // A cheap handle clone shares the cached anchor table through the
    // layout's internal `Arc<OnceLock<…>>` — no per-call deep copy — while
    // `layout` itself moves into the run result.
    let anchor_src = layout.clone();
    let sim_layout = layout.layout.clone();
    run_degraded(
        dataset,
        fault_plan,
        policy,
        layout,
        sim_layout,
        elem,
        flag,
        anchor_src.uniform_anchor(),
        move |state: &mut S, inverse, survivors, faulty, session| {
            // Lemma 4.2 over the survivors: forward cascade ascending,
            // inverse cascade descending — 2·|survivors| charged probes.
            let fwd = faulty.probe_machines(survivors, session)?;
            let rev: Vec<usize> = survivors.iter().rev().copied().collect();
            let inv = faulty.probe_machines(&rev, session)?;
            let tf = faulty.answered_total_table(&fwd);
            let ti = faulty.answered_total_table(&inv);
            apply_net_d(&d, state, (elem, count, flag), modulus, &tf, &ti, inverse)
                .map_err(OracleError::from)
        },
    )
}

/// Runs the parallel sampler (Theorem 4.5) against a fault plan. Each `D`
/// charges the faultless 4 composite rounds over the survivors (Lemma 4.4:
/// compute/uncompute per count load); uncompute rounds carry their compute
/// round's answer content but still probe — and can fail — like any round.
pub fn parallel_sample_degraded<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    let layout = ParallelLayout::for_dataset(dataset);
    parallel_degraded_with_layout(dataset, fault_plan, policy, layout)
}

/// [`parallel_sample_degraded`] against pre-compiled shared artifacts (see
/// [`sequential_sample_degraded_cached`]).
pub fn parallel_sample_degraded_cached<S: QuantumState>(
    artifacts: &crate::artifacts::CompiledArtifacts,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    parallel_degraded_with_layout(
        artifacts.dataset(),
        fault_plan,
        policy,
        artifacts.parallel_layout().clone(),
    )
}

fn parallel_degraded_with_layout<S: QuantumState>(
    dataset: &DistributedDataset,
    fault_plan: &FaultPlan,
    policy: &RetryPolicy,
    layout: ParallelLayout,
) -> Result<DegradedRun<S, ParallelLayout>, SampleError> {
    let d = DistributingOperator::new(dataset.capacity());
    let modulus = dataset.capacity() + 1;
    let (elem, count, flag) = (layout.elem, layout.count, layout.flag);
    let anchor_src = layout.clone();
    let sim_layout = layout.layout.clone();
    run_degraded(
        dataset,
        fault_plan,
        policy,
        layout,
        sim_layout,
        elem,
        flag,
        anchor_src.uniform_anchor(),
        move |state: &mut S, inverse, survivors, faulty, session| {
            let r1 = faulty.probe_round_machines(survivors, session)?; // load: O
            let _r2 = faulty.probe_round_machines(survivors, session)?; // load: O† (frozen to r1)
            let r3 = faulty.probe_round_machines(survivors, session)?; // unload: O
            let _r4 = faulty.probe_round_machines(survivors, session)?; // unload: O† (frozen to r3)
            let tf = faulty.answered_total_table(&r1);
            let ti = faulty.answered_total_table(&r3);
            apply_net_d(&d, state, (elem, count, flag), modulus, &tf, &ti, inverse)
                .map_err(OracleError::from)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_sample;
    use crate::sequential::sequential_sample;
    use dqs_db::{FaultEvent, FaultKind, Multiset};
    use dqs_math::approx::approx_eq;
    use dqs_sim::SparseState;

    fn dataset() -> DistributedDataset {
        // c = (2, 2, 0, 3) over N = 4, ν = 4; M = 7.
        DistributedDataset::new(
            4,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (3, 3)]),
            ],
        )
        .unwrap()
    }

    fn crash(machine_schedules: Vec<Vec<FaultEvent>>) -> FaultPlan {
        FaultPlan::from_schedules(machine_schedules)
    }

    #[test]
    fn fault_free_degraded_equals_faultless_bit_for_bit() {
        let ds = dataset();
        let plan = FaultPlan::none(2);
        let policy = RetryPolicy::default();
        let deg =
            sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("no faults");
        let base = sequential_sample::<SparseState>(&ds).expect("faultless");
        assert_eq!(deg.state.to_table(), base.state.to_table());
        assert_eq!(deg.queries, base.queries);
        assert_eq!(deg.fidelity_bound, 1.0);
        assert_eq!(deg.restarts, 1);
        assert!(deg.dead.is_empty());
        assert_eq!(deg.total_retries, 0);
        assert_eq!(deg.backoff_ticks, 0);
        assert!(!deg.is_degraded());
    }

    #[test]
    fn fault_free_parallel_degraded_equals_faultless_bit_for_bit() {
        let ds = dataset();
        let plan = FaultPlan::none(2);
        let policy = RetryPolicy::default();
        let deg = parallel_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("no faults");
        let base = parallel_sample::<SparseState>(&ds).expect("faultless");
        assert_eq!(deg.state.to_table(), base.state.to_table());
        assert_eq!(deg.queries, base.queries);
        assert_eq!(deg.fidelity_bound, 1.0);
    }

    #[test]
    fn crashed_machine_degrades_with_exact_fidelity_bound() {
        let ds = dataset();
        // Machine 1 (holding c_1 = 1, c_3 = 3) is dead from the start.
        let plan = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let policy = RetryPolicy::default();
        let deg = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("degrades");
        assert_eq!(deg.dead, vec![1]);
        assert_eq!(deg.survivors, vec![0]);
        assert_eq!(deg.restarts, 2);
        assert!(deg.is_degraded());
        // Exact bound: survivors hold c^surv = (2,1,0,0), M_surv = 3;
        // (√(2·2) + √(1·2))²/(3·7) = (2 + √2)²/21.
        let expected = (2.0 + 2f64.sqrt()).powi(2) / 21.0;
        assert!(approx_eq(deg.fidelity_bound, expected));
        // Pure data loss: the run lands exactly on |ψ_surv⟩, so the
        // measured fidelity against the true target meets the bound.
        assert!(deg.fidelity_vs_surviving > 1.0 - 1e-9);
        assert!(
            (deg.fidelity_vs_target - deg.fidelity_bound).abs() < 1e-9,
            "{} vs bound {}",
            deg.fidelity_vs_target,
            deg.fidelity_bound
        );
        // The probe that discovered the crash is charged.
        assert_eq!(deg.queries.per_machine[1], 1);
        assert!(deg.queries.per_machine[0] > 0);
    }

    #[test]
    fn parallel_crash_degrades_identically() {
        let ds = dataset();
        let plan = crash(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let policy = RetryPolicy::default();
        let deg = parallel_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("degrades");
        let seq = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("degrades");
        assert_eq!(deg.dead, vec![1]);
        assert!(approx_eq(deg.fidelity_bound, seq.fidelity_bound));
        assert!((deg.fidelity_vs_target - deg.fidelity_bound).abs() < 1e-9);
        // The failed attempt's round is charged, then the surviving run
        // pays 4 rounds per D.
        assert!(deg.queries.parallel_rounds > 4);
        assert_eq!(deg.queries.total_sequential(), 0);
    }

    #[test]
    fn transient_faults_retry_with_backoff_and_recover_exactly() {
        let ds = dataset();
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Transient { fail_count: 2 },
            }],
            vec![],
        ]);
        let policy = RetryPolicy {
            max_retries: 5,
            breaker_threshold: 6,
            ..RetryPolicy::default()
        };
        let deg = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("recovers");
        assert!(deg.dead.is_empty());
        assert_eq!(deg.restarts, 1);
        assert_eq!(deg.total_retries, 2);
        // Backoff: base·2⁰ + base·2¹ = 3 ticks.
        assert_eq!(deg.backoff_ticks, 3);
        // Full recovery: exact sampling state.
        assert_eq!(deg.fidelity_bound, 1.0);
        assert!(deg.fidelity_vs_target > 1.0 - 1e-9);
        // The two failed probes are charged on top of the faultless count.
        let base = sequential_sample::<SparseState>(&ds).expect("faultless");
        assert_eq!(deg.queries.per_machine[0], base.queries.per_machine[0] + 2);
        assert_eq!(deg.queries.per_machine[1], base.queries.per_machine[1]);
    }

    #[test]
    fn circuit_breaker_kills_flappy_machine() {
        let ds = dataset();
        // Machine 0 fails 10 consecutive queries — more than the breaker
        // tolerates — so it is declared dead even though the fault is
        // transient in principle.
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Transient { fail_count: 10 },
            }],
            vec![],
        ]);
        let policy = RetryPolicy::default(); // breaker at 3
        let deg = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("degrades");
        assert_eq!(deg.dead, vec![0]);
        assert_eq!(deg.survivors, vec![1]);
        assert_eq!(deg.restarts, 2);
        assert_eq!(deg.total_retries, 2, "two retries before the breaker");
        // All three failed probes of machine 0 are charged.
        assert_eq!(deg.queries.per_machine[0], 3);
        assert!(deg.fidelity_vs_surviving > 1.0 - 1e-9);
    }

    #[test]
    fn corrupt_answers_degrade_measured_fidelity_not_the_bound() {
        let ds = dataset();
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Corrupt { delta: 1 },
            }],
            vec![],
        ]);
        let policy = RetryPolicy::default();
        let deg = sequential_sample_degraded::<SparseState>(&ds, &plan, &policy).expect("runs");
        // Nobody died, so the data-loss bound is trivial…
        assert!(deg.dead.is_empty());
        assert_eq!(deg.fidelity_bound, 1.0);
        // …but the lying machine twisted the run away from |ψ_surv⟩ = |ψ⟩.
        assert!(
            deg.fidelity_vs_surviving < 1.0 - 1e-6,
            "corruption must show up in the measured fidelity: {}",
            deg.fidelity_vs_surviving
        );
        // Still a unit vector — the faulty D stays unitary.
        assert!(approx_eq(deg.state.norm(), 1.0));
    }

    #[test]
    fn all_machines_dead_is_a_typed_error() {
        let ds = dataset();
        let plan = crash(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let policy = RetryPolicy::default();
        let err = match sequential_sample_degraded::<SparseState>(&ds, &plan, &policy) {
            Ok(_) => panic!("sampling with every machine dead must fail"),
            Err(e) => e,
        };
        assert_eq!(err, SampleError::NoSurvivingData { dead: vec![0, 1] });
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            backoff_base: 2,
            backoff_cap: 10,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), 2);
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(2), 8);
        assert_eq!(p.backoff(3), 10, "capped");
        assert_eq!(p.backoff(60), 10, "no overflow at large indices");
    }
}
