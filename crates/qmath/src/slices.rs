//! Structure-of-arrays complex kernels.
//!
//! The sparse simulator backend stores amplitudes as two parallel `f64`
//! slices (`re[i] + i·im[i]`) instead of a slice of [`Complex64`] so the
//! hot whole-support passes compile to straight-line loops over contiguous
//! `f64` data that the autovectorizer can chew on. These kernels are the
//! shared scalar-slice counterparts of the [`Complex64`] operations; each
//! one documents (and tests pin) that it is **bit-identical** to the
//! equivalent element-wise `Complex64` arithmetic, because the simulator's
//! cross-backend equivalence suite demands exact agreement, not just
//! approximate agreement.

use crate::complex::Complex64;

/// Multiplies every amplitude `re[i] + i·im[i]` by the complex scalar `k`,
/// in place.
///
/// Bit-identical to `amp[i] = amp[i] * k` on `Complex64` values: the loop
/// body routes through the very same `Mul` impl, so no reassociation can
/// creep in.
///
/// # Panics
///
/// Panics when the two slices disagree in length.
#[inline]
pub fn scale_in_place(re: &mut [f64], im: &mut [f64], k: Complex64) {
    assert_eq!(re.len(), im.len(), "re/im slice length mismatch");
    for (r, i) in re.iter_mut().zip(im.iter_mut()) {
        let v = Complex64::new(*r, *i) * k;
        *r = v.re;
        *i = v.im;
    }
}

/// Sums `re[i]² + im[i]²` left to right — the squared ℓ² mass of the slice
/// pair.
///
/// Bit-identical to `iter().map(Complex64::norm_sqr).sum()` over the same
/// elements in the same order (strict left-to-right accumulation, no
/// pairwise reassociation), which is what the deterministic chunk-ordered
/// norm reductions in the sparse backend require.
///
/// # Panics
///
/// Panics when the two slices disagree in length.
#[inline]
pub fn norm_sqr_sum(re: &[f64], im: &[f64]) -> f64 {
    assert_eq!(re.len(), im.len(), "re/im slice length mismatch");
    let mut acc = 0.0;
    for (r, i) in re.iter().zip(im.iter()) {
        acc += r * r + i * i;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amps() -> Vec<Complex64> {
        (0..97)
            .map(|k| Complex64::new((k as f64).sin() * 0.3, (k as f64 * 1.7).cos() * 0.2))
            .collect()
    }

    fn split(v: &[Complex64]) -> (Vec<f64>, Vec<f64>) {
        (
            v.iter().map(|a| a.re).collect(),
            v.iter().map(|a| a.im).collect(),
        )
    }

    #[test]
    fn scale_matches_elementwise_complex_mul_bitwise() {
        let a = amps();
        let k = Complex64::new(0.3, -1.2);
        let (mut re, mut im) = split(&a);
        scale_in_place(&mut re, &mut im, k);
        for (j, amp) in a.iter().enumerate() {
            let want = *amp * k;
            assert_eq!(want.re.to_bits(), re[j].to_bits(), "re at {j}");
            assert_eq!(want.im.to_bits(), im[j].to_bits(), "im at {j}");
        }
    }

    #[test]
    fn norm_sqr_sum_matches_sequential_complex_sum_bitwise() {
        let a = amps();
        let (re, im) = split(&a);
        let want: f64 = a.iter().map(|z| z.norm_sqr()).sum();
        assert_eq!(want.to_bits(), norm_sqr_sum(&re, &im).to_bits());
    }

    #[test]
    fn empty_slices_are_fine() {
        assert_eq!(norm_sqr_sum(&[], &[]), 0.0);
        scale_in_place(&mut [], &mut [], Complex64::I);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_are_rejected() {
        norm_sqr_sum(&[1.0], &[]);
    }
}
