//! Tolerant floating-point comparison helpers.
//!
//! All numeric assertions in the reproduction go through these helpers so the
//! tolerance policy lives in one place. The default tolerance `1e-9` is far
//! below any quantity of interest (amplitudes, probabilities, fidelities) but
//! far above accumulated `f64` round-off for the circuit sizes we simulate.

use crate::complex::Complex64;

/// Default absolute tolerance used across the workspace.
pub const DEFAULT_EPS: f64 = 1e-9;

/// Returns `true` when `|a - b| <= DEFAULT_EPS`.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, DEFAULT_EPS)
}

/// Returns `true` when `|a - b| <= eps`.
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Returns `true` when two complex numbers agree within `DEFAULT_EPS`
/// (Euclidean distance in the complex plane).
#[inline]
pub fn approx_eq_c(a: Complex64, b: Complex64) -> bool {
    (a - b).abs() <= DEFAULT_EPS
}

/// Trait-based tolerant comparison so generic test helpers can accept both
/// real and complex values.
pub trait ApproxEq {
    /// Tolerant equality with explicit tolerance.
    fn approx_eq_eps(&self, other: &Self, eps: f64) -> bool;

    /// Tolerant equality with [`DEFAULT_EPS`].
    fn approx(&self, other: &Self) -> bool {
        self.approx_eq_eps(other, DEFAULT_EPS)
    }
}

impl ApproxEq for f64 {
    fn approx_eq_eps(&self, other: &Self, eps: f64) -> bool {
        approx_eq_eps(*self, *other, eps)
    }
}

impl ApproxEq for Complex64 {
    fn approx_eq_eps(&self, other: &Self, eps: f64) -> bool {
        (*self - *other).abs() <= eps
    }
}

impl<T: ApproxEq> ApproxEq for [T] {
    fn approx_eq_eps(&self, other: &Self, eps: f64) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.approx_eq_eps(b, eps))
    }
}

impl<T: ApproxEq> ApproxEq for Vec<T> {
    fn approx_eq_eps(&self, other: &Self, eps: f64) -> bool {
        self.as_slice().approx_eq_eps(other.as_slice(), eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_comparison() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_eq_eps(1.0, 1.1, 0.2));
    }

    #[test]
    fn complex_comparison() {
        let a = Complex64::new(1.0, 1.0);
        assert!(approx_eq_c(a, Complex64::new(1.0 + 1e-12, 1.0)));
        assert!(!approx_eq_c(a, Complex64::new(1.0, 1.1)));
    }

    #[test]
    fn trait_on_slices() {
        let a = vec![1.0f64, 2.0, 3.0];
        let b = vec![1.0f64, 2.0 + 1e-12, 3.0];
        assert!(a.approx(&b));
        let c = vec![1.0f64, 2.0];
        assert!(!a.approx(&c));
    }

    #[test]
    fn trait_on_complex() {
        let a = Complex64::new(0.5, -0.5);
        let b = Complex64::new(0.5, -0.5 + 1e-13);
        assert!(a.approx(&b));
        assert!(a.approx_eq_eps(&Complex64::new(0.6, -0.5), 0.2));
    }
}
