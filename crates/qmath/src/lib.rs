//! # dqs-math
//!
//! Foundational mathematics for the *distributed quantum sampling*
//! reproduction: complex arithmetic, small dense complex linear algebra,
//! quantum-information metrics (fidelity, trace distance), and the exact
//! combinatorics used by the lower-bound analysis (binomial coefficients for
//! hard-input counting, Lemma 5.6 of the paper).
//!
//! Everything in this crate is dependency-free and deterministic; the
//! simulator (`dqs-sim`) and the algorithm crates build on top of it.
//!
//! ## Modules
//!
//! * [`complex`] — `Complex64`, a minimal but complete complex-number type.
//! * [`matrix`] — heap-allocated dense complex matrices with unitarity checks.
//! * [`eigen`] — Hermitian eigendecomposition (Jacobi), entropy, purity.
//! * [`vector`] — state-vector helpers: norms, inner products, normalization.
//! * [`metrics`] — fidelity and trace distance between pure states.
//! * [`slices`] — structure-of-arrays kernels over split re/im `f64` slices.
//! * [`stats`] — streaming mean/variance for Monte-Carlo reporting.
//! * [`combinatorics`] — exact and log-space binomial coefficients.
//! * [`approx`] — tolerant floating-point comparison helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod combinatorics;
pub mod complex;
pub mod eigen;
pub mod matrix;
pub mod metrics;
pub mod slices;
pub mod stats;
pub mod vector;

pub use approx::{approx_eq, approx_eq_c, approx_eq_eps, ApproxEq};
pub use combinatorics::{binomial, binomial_f64, ln_binomial, ln_factorial};
pub use complex::Complex64;
pub use eigen::{eigh, purity, von_neumann_entropy, EigenDecomposition};
pub use matrix::MatC;
pub use metrics::{fidelity_pure, trace_distance_pure};
pub use stats::Welford;
pub use vector::{inner_product, l2_norm, normalize, normalized};
