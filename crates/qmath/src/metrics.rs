//! Quantum-information metrics between pure states.
//!
//! The paper measures algorithm success by **fidelity** (§2): for pure states
//! `F(|φ⟩,|ψ⟩) = |⟨φ|ψ⟩|²`. The lower bounds gate on `F > 9/16`. Trace
//! distance is provided for cross-checks via the Fuchs–van de Graaf relation
//! `T = sqrt(1 − F)` for pure states.

use crate::complex::Complex64;
use crate::vector::inner_product;

/// Fidelity `|⟨a|b⟩|²` between two pure states given as amplitude slices.
///
/// Inputs are assumed normalized; the result is clamped to `[0, 1]` to absorb
/// floating-point round-off so callers can feed it to `acos`/`sqrt` safely.
pub fn fidelity_pure(a: &[Complex64], b: &[Complex64]) -> f64 {
    inner_product(a, b).norm_sqr().clamp(0.0, 1.0)
}

/// Trace distance between pure states: `sqrt(1 − F)`.
pub fn trace_distance_pure(a: &[Complex64], b: &[Complex64]) -> f64 {
    (1.0 - fidelity_pure(a, b)).max(0.0).sqrt()
}

/// The fidelity threshold `9/16` from Theorems 5.1/5.2: lower bounds apply to
/// any algorithm whose output fidelity exceeds this constant.
pub const LOWER_BOUND_FIDELITY_THRESHOLD: f64 = 9.0 / 16.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    fn basis(n: usize, k: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; n];
        v[k] = Complex64::ONE;
        v
    }

    #[test]
    fn fidelity_identical_states_is_one() {
        let v = crate::vector::normalized(&[
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 2.0),
            Complex64::new(-1.0, 1.0),
        ]);
        assert!(approx_eq(fidelity_pure(&v, &v), 1.0));
    }

    #[test]
    fn fidelity_orthogonal_states_is_zero() {
        assert!(approx_eq(fidelity_pure(&basis(4, 0), &basis(4, 3)), 0.0));
    }

    #[test]
    fn fidelity_invariant_under_global_phase() {
        let v = crate::vector::normalized(&[Complex64::new(0.6, 0.0), Complex64::new(0.8, 0.0)]);
        let phased: Vec<_> = v.iter().map(|z| *z * Complex64::cis(1.234)).collect();
        assert!(approx_eq(fidelity_pure(&v, &phased), 1.0));
    }

    #[test]
    fn fidelity_of_superposition_with_basis() {
        // |+⟩ = (|0⟩+|1⟩)/√2 has fidelity 1/2 with |0⟩.
        let plus = crate::vector::normalized(&[Complex64::ONE, Complex64::ONE]);
        assert!(approx_eq(fidelity_pure(&plus, &basis(2, 0)), 0.5));
    }

    #[test]
    fn trace_distance_endpoints() {
        assert!(approx_eq(
            trace_distance_pure(&basis(2, 0), &basis(2, 0)),
            0.0
        ));
        assert!(approx_eq(
            trace_distance_pure(&basis(2, 0), &basis(2, 1)),
            1.0
        ));
    }

    #[test]
    fn threshold_constant_value() {
        assert!(approx_eq(LOWER_BOUND_FIDELITY_THRESHOLD, 0.5625));
    }
}
