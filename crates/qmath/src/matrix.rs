//! Small dense complex matrices.
//!
//! Used for single-register unitaries (the distributing step 𝒰 of Lemma 4.2,
//! phase gates, the uniform-preparation transform F), for unitarity checks in
//! tests (Lemma 4.1's "extends to a unitary" claims), and for explicitly
//! materializing operators at tiny dimensions to cross-validate the sparse
//! simulator.
//!
//! Row-major storage; dimensions are small (≤ a few thousand), so the naive
//! O(n³) multiply is fine and keeps the code auditable.

use crate::approx::DEFAULT_EPS;
use crate::complex::Complex64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Element count up to which a matrix lives inline instead of on the heap.
///
/// Covers every 2×2 gate — the flag rotations and phase gates that the
/// sparse conditioned-unitary kernel requests once *per bucket*. Keeping
/// those off the allocator matters: a heap round-trip per bucket is
/// comparable to the whole 2×2 matvec it feeds.
const INLINE_LEN: usize = 4;

/// Backing storage: small matrices are stored inline, larger ones on the
/// heap. Which variant is in use is an implementation detail — equality,
/// indexing, and every public constructor see only the logical element
/// slice.
#[derive(Clone)]
enum Store {
    Inline([Complex64; INLINE_LEN]),
    Heap(Vec<Complex64>),
}

/// A dense complex matrix, row-major.
#[derive(Clone)]
pub struct MatC {
    rows: usize,
    cols: usize,
    data: Store,
}

impl PartialEq for MatC {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.as_slice() == other.as_slice()
    }
}

impl MatC {
    /// Row-major element slice (`rows · cols` long).
    #[inline]
    fn as_slice(&self) -> &[Complex64] {
        match &self.data {
            Store::Inline(buf) => &buf[..self.rows * self.cols],
            Store::Heap(v) => v,
        }
    }

    /// Mutable row-major element slice.
    #[inline]
    fn as_mut_slice(&mut self) -> &mut [Complex64] {
        match &mut self.data {
            Store::Inline(buf) => &mut buf[..self.rows * self.cols],
            Store::Heap(v) => v,
        }
    }

    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows * cols;
        let data = if len <= INLINE_LEN {
            Store::Inline([Complex64::ZERO; INLINE_LEN])
        } else {
            Store::Heap(vec![Complex64::ZERO; len])
        };
        Self { rows, cols, data }
    }

    /// Builds a 2×2 matrix `[[a, b], [c, d]]` without heap allocation.
    #[inline]
    pub fn mat2(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> Self {
        Self {
            rows: 2,
            cols: 2,
            data: Store::Inline([a, b, c, d]),
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major element vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "element count mismatch");
        let data = if data.len() <= INLINE_LEN {
            let mut buf = [Complex64::ZERO; INLINE_LEN];
            buf[..data.len()].copy_from_slice(&data);
            Store::Inline(buf)
        } else {
            Store::Heap(data)
        };
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols, "matrix-vector shape mismatch");
        self.as_slice()
            .chunks_exact(self.cols)
            .map(|row| {
                row.iter()
                    .zip(v.iter())
                    .fold(Complex64::ZERO, |acc, (a, x)| acc + *a * *x)
            })
            .collect()
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &Self) -> Self {
        let rows = self.rows * other.rows;
        let cols = self.cols * other.cols;
        Self::from_fn(rows, cols, |r, c| {
            let (r1, r2) = (r / other.rows, r % other.rows);
            let (c1, c2) = (c / other.cols, c % other.cols);
            self[(r1, c1)] * other[(r2, c2)]
        })
    }

    /// Maximum absolute difference from the identity of `A†A`; zero for an
    /// exact unitary. This is the numeric form of the paper's Lemma 4.1-style
    /// "preserves inner products ⇒ extends to a unitary" checks.
    pub fn unitarity_defect(&self) -> f64 {
        assert!(
            self.is_square(),
            "unitarity only defined for square matrices"
        );
        let prod = self.adjoint() * self.clone();
        let mut worst = 0.0f64;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let target = if r == c {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                worst = worst.max((prod[(r, c)] - target).abs());
            }
        }
        worst
    }

    /// True when `A†A = I` within `eps`.
    pub fn is_unitary_eps(&self, eps: f64) -> bool {
        self.unitarity_defect() <= eps
    }

    /// True when `A†A = I` within the workspace default tolerance.
    pub fn is_unitary(&self) -> bool {
        self.is_unitary_eps(DEFAULT_EPS)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.as_slice()
            .iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every entry by a complex factor.
    pub fn scaled(&self, k: Complex64) -> Self {
        let mut out = self.clone();
        for z in out.as_mut_slice() {
            *z *= k;
        }
        out
    }
}

impl Index<(usize, usize)> for MatC {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        let idx = r * self.cols + c;
        match &self.data {
            Store::Inline(buf) => &buf[..self.rows * self.cols][idx],
            Store::Heap(v) => &v[idx],
        }
    }
}

impl IndexMut<(usize, usize)> for MatC {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        let idx = r * self.cols + c;
        match &mut self.data {
            Store::Inline(buf) => &mut buf[..self.rows * self.cols][idx],
            Store::Heap(v) => &mut v[idx],
        }
    }
}

impl Add for MatC {
    type Output = MatC;
    fn add(self, rhs: Self) -> MatC {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self;
        for (a, b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += *b;
        }
        out
    }
}

impl Sub for MatC {
    type Output = MatC;
    fn sub(self, rhs: Self) -> MatC {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self;
        for (a, b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= *b;
        }
        out
    }
}

impl Mul for MatC {
    type Output = MatC;
    fn mul(self, rhs: Self) -> MatC {
        assert_eq!(self.cols, rhs.rows, "matrix multiply shape mismatch");
        let mut out = MatC::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl fmt::Debug for MatC {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MatC {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approx_eq, approx_eq_c};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn hadamard() -> MatC {
        let s = 1.0 / 2.0f64.sqrt();
        MatC::from_rows(2, 2, vec![c(s, 0.0), c(s, 0.0), c(s, 0.0), c(-s, 0.0)])
    }

    #[test]
    fn identity_is_unitary_and_neutral() {
        let i4 = MatC::identity(4);
        assert!(i4.is_unitary());
        let m = MatC::from_fn(4, 4, |r, c_| c((r * 4 + c_) as f64, 1.0));
        assert_eq!(i4.clone() * m.clone(), m);
        assert_eq!(m.clone() * i4, m);
    }

    #[test]
    fn hadamard_is_unitary_and_self_inverse() {
        let h = hadamard();
        assert!(h.is_unitary());
        let hh = h.clone() * h;
        assert!(approx_eq_c(hh[(0, 0)], Complex64::ONE));
        assert!(approx_eq_c(hh[(0, 1)], Complex64::ZERO));
    }

    #[test]
    fn adjoint_involution_and_product_rule() {
        let a = MatC::from_fn(3, 2, |r, c_| c(r as f64, c_ as f64 + 0.5));
        let b = MatC::from_fn(2, 3, |r, c_| c(1.0 - r as f64, c_ as f64));
        let lhs = (a.clone() * b.clone()).adjoint();
        let rhs = b.adjoint() * a.adjoint();
        for r in 0..lhs.rows() {
            for cc in 0..lhs.cols() {
                assert!(approx_eq_c(lhs[(r, cc)], rhs[(r, cc)]));
            }
        }
        let back = a.adjoint().adjoint();
        assert_eq!(back, a);
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let m = MatC::from_fn(3, 3, |r, c_| c((r + c_) as f64, (r * c_) as f64));
        let v = vec![c(1.0, 0.0), c(0.0, 1.0), c(-1.0, 0.5)];
        let as_mat = MatC::from_rows(3, 1, v.clone());
        let prod = m.clone() * as_mat;
        let direct = m.mul_vec(&v);
        for r in 0..3 {
            assert!(approx_eq_c(prod[(r, 0)], direct[r]));
        }
    }

    #[test]
    fn kron_dimensions_and_values() {
        let h = hadamard();
        let i2 = MatC::identity(2);
        let hi = h.kron(&i2);
        assert_eq!(hi.rows(), 4);
        assert_eq!(hi.cols(), 4);
        assert!(hi.is_unitary());
        // (H ⊗ I)[0,2] = H[0,1]·I[0,0] = 1/√2.
        assert!(approx_eq(hi[(0, 2)].re, 1.0 / 2.0f64.sqrt()));
    }

    #[test]
    fn kron_of_unitaries_is_unitary() {
        let h = hadamard();
        let p = MatC::from_rows(
            2,
            2,
            vec![
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::cis(0.9),
            ],
        );
        assert!(h.kron(&p).is_unitary());
    }

    #[test]
    fn non_unitary_detected() {
        let m = MatC::from_fn(2, 2, |_, _| Complex64::ONE);
        assert!(!m.is_unitary());
        assert!(m.unitarity_defect() > 0.5);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = MatC::from_fn(2, 3, |r, c_| c(r as f64, c_ as f64));
        let b = MatC::from_fn(2, 3, |r, c_| c(c_ as f64, r as f64));
        let s = (a.clone() + b.clone()) - b;
        for r in 0..2 {
            for cc in 0..3 {
                assert!(approx_eq_c(s[(r, cc)], a[(r, cc)]));
            }
        }
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = MatC::from_rows(1, 2, vec![c(3.0, 0.0), c(0.0, 4.0)]);
        assert!(approx_eq(m.frobenius_norm(), 5.0));
    }

    #[test]
    fn scaled_by_phase_preserves_unitarity() {
        let h = hadamard().scaled(Complex64::cis(0.3));
        assert!(h.is_unitary());
    }

    #[test]
    fn inline_and_heap_storage_agree() {
        // 2×2 lives inline; the same values through the Vec constructor
        // must compare equal and index identically.
        let a = MatC::mat2(c(1.0, 2.0), c(3.0, 4.0), c(5.0, 6.0), c(7.0, 8.0));
        let b = MatC::from_rows(
            2,
            2,
            vec![c(1.0, 2.0), c(3.0, 4.0), c(5.0, 6.0), c(7.0, 8.0)],
        );
        assert_eq!(a, b);
        assert_eq!(a[(1, 0)], c(5.0, 6.0));
        // A 3×3 exceeds the inline capacity and exercises the heap variant
        // through the same operations.
        let m = MatC::from_fn(3, 3, |r, cc| c(r as f64, cc as f64));
        assert_eq!(m.scaled(Complex64::ONE), m);
        assert_eq!(m.adjoint().adjoint(), m);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = MatC::zeros(2, 3);
        let b = MatC::zeros(2, 3);
        let _ = a * b;
    }
}
