//! Streaming statistics for Monte-Carlo experiments.
//!
//! The hybrid-argument potential `D_t` is an expectation over a family of
//! `C(N, m_k)` inputs; when the family is too large to enumerate we sample,
//! and every reported number should carry its uncertainty. [`Welford`] is
//! the numerically-stable one-pass mean/variance accumulator; it reports
//! the standard error and a normal-approximation confidence interval.

/// One-pass mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`None` with fewer than 2 observations).
    pub fn variance(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some(self.m2 / (self.count - 1) as f64)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean `s/√n`.
    pub fn std_err(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.count as f64).sqrt())
    }

    /// Normal-approximation confidence half-width at `z` standard errors
    /// (e.g. `z = 1.96` for 95%).
    pub fn ci_half_width(&self, z: f64) -> Option<f64> {
        self.std_err().map(|se| z * se)
    }

    /// Merges another accumulator (parallel reduction — Chan et al.).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq_eps;

    #[test]
    fn empty_and_singleton() {
        let mut w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert!(w.variance().is_none());
        w.push(3.5);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 3.5);
        assert!(w.variance().is_none());
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!(approx_eq_eps(w.mean(), mean, 1e-12));
        assert!(approx_eq_eps(w.variance().unwrap(), var, 1e-12));
    }

    #[test]
    fn std_err_shrinks_with_n() {
        let a: Welford = (0..100).map(|k| (k % 7) as f64).collect();
        let b: Welford = (0..10_000).map(|k| (k % 7) as f64).collect();
        assert!(b.std_err().unwrap() < a.std_err().unwrap() / 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|k| ((k * 37) % 101) as f64 / 3.0).collect();
        let whole: Welford = xs.iter().copied().collect();
        let mut left: Welford = xs[..400].iter().copied().collect();
        let right: Welford = xs[400..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!(approx_eq_eps(left.mean(), whole.mean(), 1e-10));
        assert!(approx_eq_eps(
            left.variance().unwrap(),
            whole.variance().unwrap(),
            1e-8
        ));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let before = (w.count(), w.mean(), w.variance());
        w.merge(&Welford::new());
        assert_eq!((w.count(), w.mean(), w.variance()), before);
        let mut e = Welford::new();
        e.merge(&w);
        assert_eq!(e.count(), 3);
    }

    #[test]
    fn ci_half_width_scales_with_z() {
        let w: Welford = (0..50).map(|k| k as f64).collect();
        let h1 = w.ci_half_width(1.0).unwrap();
        let h2 = w.ci_half_width(1.96).unwrap();
        assert!(approx_eq_eps(h2 / h1, 1.96, 1e-12));
    }
}
