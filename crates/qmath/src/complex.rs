//! A minimal, fully-featured double-precision complex number.
//!
//! We implement our own complex type rather than pulling in `num-complex`
//! to keep the reproduction dependency-light (see DESIGN.md §2). The type is
//! `Copy`, 16 bytes, and supports the full arithmetic surface the simulator
//! needs: ring operations, conjugation, polar form, `exp(iθ)`, and scaling by
//! reals.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-modulus phase.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re - im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|² = re² + im²`.
    ///
    /// This is the Born-rule probability weight of an amplitude, and is the
    /// hot operation in norm computations, so it avoids the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `z·w + acc` in one expression; convenience for inner-product loops.
    #[inline]
    pub fn mul_add(self, w: Self, acc: Self) -> Self {
        self * w + acc
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w := z * w^{-1} is the definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approx_eq, approx_eq_c};

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO.re, 0.0);
        assert_eq!(Complex64::ONE.re, 1.0);
        assert_eq!(Complex64::I.im, 1.0);
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
    }

    #[test]
    fn modulus_and_argument() {
        let z = Complex64::new(3.0, 4.0);
        assert!(approx_eq(z.abs(), 5.0));
        assert!(approx_eq(z.norm_sqr(), 25.0));
        assert!(approx_eq(Complex64::I.arg(), std::f64::consts::FRAC_PI_2));
        assert!(approx_eq(Complex64::ONE.arg(), 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!(approx_eq(z.abs(), 2.0));
        assert!(approx_eq(z.arg(), 0.7));
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..32 {
            let theta = k as f64 * 0.41;
            assert!(approx_eq(Complex64::cis(theta).abs(), 1.0));
        }
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(1.5, -2.5);
        let w = Complex64::new(-0.5, 3.0);
        assert!(approx_eq_c(z + w - w, z));
        assert!(approx_eq_c(z * w / w, z));
        assert!(approx_eq_c(-(-z), z));
        assert!(approx_eq_c(z * Complex64::ONE, z));
        assert!(approx_eq_c(z + Complex64::ZERO, z));
    }

    #[test]
    fn conjugation_properties() {
        let z = Complex64::new(1.0, 2.0);
        let w = Complex64::new(-3.0, 0.5);
        assert!(approx_eq_c((z * w).conj(), z.conj() * w.conj()));
        assert!(approx_eq_c(
            z * z.conj(),
            Complex64::from_real(z.norm_sqr())
        ));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(approx_eq_c(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn recip_is_inverse() {
        let z = Complex64::new(0.3, -0.7);
        assert!(approx_eq_c(z * z.recip(), Complex64::ONE));
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (Complex64::I * std::f64::consts::PI).exp();
        assert!(approx_eq_c(z, -Complex64::ONE));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (3.0, -4.0)] {
            let z = Complex64::new(re, im);
            let r = z.sqrt();
            assert!(approx_eq_c(r * r, z));
        }
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let z = Complex64::new(1.0, 1.0);
        let w = Complex64::new(2.0, -3.0);
        let mut a = z;
        a += w;
        assert!(approx_eq_c(a, z + w));
        let mut s = z;
        s -= w;
        assert!(approx_eq_c(s, z - w));
        let mut m = z;
        m *= w;
        assert!(approx_eq_c(m, z * w));
        let mut d = z;
        d /= w;
        assert!(approx_eq_c(d, z / w));
    }

    #[test]
    fn real_scaling() {
        let z = Complex64::new(1.0, -2.0);
        assert!(approx_eq_c(z * 2.0, Complex64::new(2.0, -4.0)));
        assert!(approx_eq_c(2.0 * z, z * 2.0));
        assert!(approx_eq_c(z / 2.0, Complex64::new(0.5, -1.0)));
    }

    #[test]
    fn sum_iterator() {
        let xs = [
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 1.0),
            Complex64::new(2.0, -2.0),
        ];
        let s: Complex64 = xs.iter().sum();
        assert!(approx_eq_c(s, Complex64::new(3.0, -1.0)));
        let s2: Complex64 = xs.into_iter().sum();
        assert!(approx_eq_c(s2, Complex64::new(3.0, -1.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
    }

    #[test]
    fn finiteness() {
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let z = Complex64::new(1.0, 2.0);
        let w = Complex64::new(3.0, -1.0);
        let acc = Complex64::new(-0.5, 0.25);
        assert!(approx_eq_c(z.mul_add(w, acc), z * w + acc));
    }
}
