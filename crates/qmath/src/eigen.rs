//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! Needed for density-matrix diagnostics (purity is polynomial, but von
//! Neumann entropy needs eigenvalues). Jacobi is slow (O(n³) per sweep) but
//! simple, numerically robust, and our matrices are tiny (reduced density
//! matrices over one or two registers), so it is the right tool.

use crate::complex::Complex64;
use crate::matrix::MatC;

/// Result of a Hermitian eigendecomposition `H = V·diag(λ)·V†`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, ascending. Real because the input is Hermitian.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: MatC,
}

/// Maximum absolute deviation of `A` from Hermitian symmetry.
pub fn hermiticity_defect(a: &MatC) -> f64 {
    assert!(a.is_square(), "hermiticity needs a square matrix");
    let n = a.rows();
    let mut worst = 0.0f64;
    for r in 0..n {
        for c in 0..n {
            worst = worst.max((a[(r, c)] - a[(c, r)].conj()).abs());
        }
    }
    worst
}

/// Eigendecomposition of a Hermitian matrix.
///
/// # Panics
///
/// Panics when the matrix is not square or not Hermitian within `1e-8`.
pub fn eigh(a: &MatC) -> EigenDecomposition {
    assert!(a.is_square(), "eigh needs a square matrix");
    assert!(
        hermiticity_defect(a) < 1e-8,
        "eigh input is not Hermitian (defect {})",
        hermiticity_defect(a)
    );
    let n = a.rows();
    let mut h = a.clone();
    let mut v = MatC::identity(n);

    let off_norm = |m: &MatC| -> f64 {
        let mut s = 0.0;
        for r in 0..n {
            for c in 0..n {
                if r != c {
                    s += m[(r, c)].norm_sqr();
                }
            }
        }
        s.sqrt()
    };

    const TOL: f64 = 1e-12;
    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        if off_norm(&h) < TOL {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let hpq = h[(p, q)];
                if hpq.abs() < TOL / (n as f64) {
                    continue;
                }
                // Complex Jacobi rotation J zeroing (J†HJ)[p,q]:
                // J[p,p] = c, J[p,q] = −s·e^{iφ}, J[q,p] = s·e^{−iφ},
                // J[q,q] = c, with φ = arg(H[p,q]) and the zeroing condition
                // (H[q,q]−H[p,p])·cs + |H[p,q]|·(c²−s²) = 0, i.e.
                // tan(2θ) = 2|H[p,q]| / (H[p,p] − H[q,q]).
                let phi = hpq.arg();
                let app = h[(p, p)].re;
                let aqq = h[(q, q)].re;
                let theta = 0.5 * (2.0 * hpq.abs()).atan2(app - aqq);
                let (c, s) = (theta.cos(), theta.sin());
                let e_pos = Complex64::cis(phi);
                // Right-multiply by J (columns):
                // col_p ← c·col_p + s·e^{−iφ}·col_q,
                // col_q ← −s·e^{iφ}·col_p + c·col_q.
                let rotate_cols = |m: &mut MatC| {
                    for r in 0..n {
                        let mp = m[(r, p)];
                        let mq = m[(r, q)];
                        m[(r, p)] = mp.scale(c) + e_pos.conj() * mq.scale(s);
                        m[(r, q)] = -(e_pos * mp.scale(s)) + mq.scale(c);
                    }
                };
                // Left-multiply by J† (rows):
                // row_p ← c·row_p + s·e^{iφ}·row_q,
                // row_q ← −s·e^{−iφ}·row_p + c·row_q.
                let rotate_rows = |m: &mut MatC| {
                    for col in 0..n {
                        let mp = m[(p, col)];
                        let mq = m[(q, col)];
                        m[(p, col)] = mp.scale(c) + e_pos * mq.scale(s);
                        m[(q, col)] = -(e_pos.conj() * mp.scale(s)) + mq.scale(c);
                    }
                };
                rotate_cols(&mut h);
                rotate_rows(&mut h);
                rotate_cols(&mut v);
            }
        }
    }

    // extract, sort ascending, permute vectors accordingly
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|k| (h[(k, k)].re, k)).collect();
    // lint: allow(panic): Jacobi rotations of a finite Hermitian matrix keep
    // the diagonal finite, so the comparison is always defined.
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));
    let values: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let vectors = MatC::from_fn(n, n, |r, c| v[(r, pairs[c].1)]);
    EigenDecomposition { values, vectors }
}

/// Von Neumann entropy `S(ρ) = −Σ λ log2 λ` (bits) of a density matrix.
///
/// # Panics
///
/// Panics when `rho` is not Hermitian or its trace is not 1 within `1e-6`.
pub fn von_neumann_entropy(rho: &MatC) -> f64 {
    let trace: f64 = (0..rho.rows()).map(|k| rho[(k, k)].re).sum();
    assert!(
        (trace - 1.0).abs() < 1e-6,
        "density matrix trace {trace} != 1"
    );
    let eig = eigh(rho);
    -eig.values
        .iter()
        .filter(|&&l| l > 1e-12)
        .map(|&l| l * l.log2())
        .sum::<f64>()
}

/// Purity `Tr(ρ²)`; 1 for pure states, `1/d` for maximally mixed.
pub fn purity(rho: &MatC) -> f64 {
    let sq = rho.clone() * rho.clone();
    (0..sq.rows()).map(|k| sq[(k, k)].re).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq_eps;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn random_hermitian(n: usize, seed: u64) -> MatC {
        // deterministic pseudo-random Hermitian: H = B + B†
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b = MatC::from_fn(n, n, |_, _| c(next(), next()));
        let bt = b.adjoint();
        b + bt
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut d = MatC::zeros(3, 3);
        d[(0, 0)] = c(2.0, 0.0);
        d[(1, 1)] = c(-1.0, 0.0);
        d[(2, 2)] = c(0.5, 0.0);
        let e = eigh(&d);
        assert!(approx_eq_eps(e.values[0], -1.0, 1e-10));
        assert!(approx_eq_eps(e.values[1], 0.5, 1e-10));
        assert!(approx_eq_eps(e.values[2], 2.0, 1e-10));
    }

    #[test]
    fn pauli_x_eigenvalues_are_plus_minus_one() {
        let x = MatC::from_rows(
            2,
            2,
            vec![
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ZERO,
            ],
        );
        let e = eigh(&x);
        assert!(approx_eq_eps(e.values[0], -1.0, 1e-10));
        assert!(approx_eq_eps(e.values[1], 1.0, 1e-10));
    }

    #[test]
    fn pauli_y_complex_entries_handled() {
        let y = MatC::from_rows(
            2,
            2,
            vec![Complex64::ZERO, c(0.0, -1.0), c(0.0, 1.0), Complex64::ZERO],
        );
        let e = eigh(&y);
        assert!(approx_eq_eps(e.values[0], -1.0, 1e-10));
        assert!(approx_eq_eps(e.values[1], 1.0, 1e-10));
    }

    #[test]
    fn reconstruction_and_orthonormality_random() {
        for seed in 1..5u64 {
            for n in [2usize, 3, 5] {
                let h = random_hermitian(n, seed * 31 + n as u64);
                let e = eigh(&h);
                // V unitary
                assert!(e.vectors.is_unitary_eps(1e-8), "V not unitary (n={n})");
                // H·v_k = λ_k·v_k
                for k in 0..n {
                    let vk: Vec<Complex64> = (0..n).map(|r| e.vectors[(r, k)]).collect();
                    let hv = h.mul_vec(&vk);
                    for r in 0..n {
                        let want = vk[r].scale(e.values[k]);
                        assert!(
                            (hv[r] - want).abs() < 1e-7,
                            "eigenpair {k} fails at row {r} (n={n}, seed={seed})"
                        );
                    }
                }
                // trace preserved
                let tr_h: f64 = (0..n).map(|k| h[(k, k)].re).sum();
                let tr_l: f64 = e.values.iter().sum();
                assert!(approx_eq_eps(tr_h, tr_l, 1e-8));
            }
        }
    }

    #[test]
    fn entropy_of_pure_state_is_zero() {
        // ρ = |+⟩⟨+|
        let h = MatC::from_fn(2, 2, |_, _| c(0.5, 0.0));
        assert!(von_neumann_entropy(&h).abs() < 1e-9);
        assert!(approx_eq_eps(purity(&h), 1.0, 1e-10));
    }

    #[test]
    fn entropy_of_maximally_mixed_is_log_d() {
        let mut rho = MatC::zeros(4, 4);
        for k in 0..4 {
            rho[(k, k)] = c(0.25, 0.0);
        }
        assert!(approx_eq_eps(von_neumann_entropy(&rho), 2.0, 1e-9));
        assert!(approx_eq_eps(purity(&rho), 0.25, 1e-10));
    }

    #[test]
    fn entropy_of_biased_qubit() {
        let mut rho = MatC::zeros(2, 2);
        rho[(0, 0)] = c(0.9, 0.0);
        rho[(1, 1)] = c(0.1, 0.0);
        let expect = -(0.9f64 * 0.9f64.log2() + 0.1 * 0.1f64.log2());
        assert!(approx_eq_eps(von_neumann_entropy(&rho), expect, 1e-9));
    }

    #[test]
    #[should_panic(expected = "not Hermitian")]
    fn non_hermitian_rejected() {
        let m = MatC::from_rows(
            2,
            2,
            vec![
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ONE,
            ],
        );
        let _ = eigh(&m);
    }

    #[test]
    #[should_panic(expected = "trace")]
    fn entropy_requires_unit_trace() {
        let m = MatC::identity(2);
        let _ = von_neumann_entropy(&m);
    }
}
