//! State-vector helpers: inner products, norms, normalization.
//!
//! These operate on plain `&[Complex64]` slices so both simulator backends
//! and small hand-built states in tests can share them.

use crate::complex::Complex64;

/// Hermitian inner product `⟨a|b⟩ = Σ_k conj(a_k)·b_k`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn inner_product(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "inner product of unequal-length vectors");
    a.iter()
        .zip(b.iter())
        .fold(Complex64::ZERO, |acc, (x, y)| acc + x.conj() * *y)
}

/// Euclidean (ℓ²) norm `‖v‖ = sqrt(Σ |v_k|²)`.
pub fn l2_norm(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Squared ℓ² distance `‖a − b‖²`, the quantity the paper's potential
/// function `D_t` (Eq. 11) averages over hard inputs.
pub fn distance_sqr(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance of unequal-length vectors");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).norm_sqr())
        .sum()
}

/// Normalizes `v` in place to unit ℓ² norm.
///
/// # Panics
///
/// Panics if `v` is (numerically) the zero vector.
pub fn normalize(v: &mut [Complex64]) {
    let n = l2_norm(v);
    assert!(n > 0.0, "cannot normalize the zero vector");
    let inv = 1.0 / n;
    for z in v.iter_mut() {
        *z = z.scale(inv);
    }
}

/// Returns a normalized copy of `v`.
pub fn normalized(v: &[Complex64]) -> Vec<Complex64> {
    let mut out = v.to_vec();
    normalize(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approx_eq, approx_eq_c};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn inner_product_conjugates_left() {
        let a = vec![c(0.0, 1.0)];
        let b = vec![c(0.0, 1.0)];
        // ⟨i|i⟩ = conj(i)·i = 1
        assert!(approx_eq_c(inner_product(&a, &b), Complex64::ONE));
    }

    #[test]
    fn inner_product_linear_in_right_argument() {
        let a = vec![c(1.0, 0.5), c(-1.0, 2.0)];
        let b = vec![c(0.3, -0.2), c(1.0, 1.0)];
        let scaled: Vec<_> = b.iter().map(|z| *z * c(0.0, 2.0)).collect();
        let lhs = inner_product(&a, &scaled);
        let rhs = c(0.0, 2.0) * inner_product(&a, &b);
        assert!(approx_eq_c(lhs, rhs));
    }

    #[test]
    fn norm_of_unit_basis() {
        let mut v = vec![Complex64::ZERO; 8];
        v[3] = Complex64::ONE;
        assert!(approx_eq(l2_norm(&v), 1.0));
    }

    #[test]
    fn normalize_produces_unit_vector() {
        let mut v = vec![c(3.0, 0.0), c(0.0, 4.0)];
        normalize(&mut v);
        assert!(approx_eq(l2_norm(&v), 1.0));
        assert!(approx_eq_c(v[0], c(0.6, 0.0)));
        assert!(approx_eq_c(v[1], c(0.0, 0.8)));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        let mut v = vec![Complex64::ZERO; 4];
        normalize(&mut v);
    }

    #[test]
    fn distance_sqr_expands_correctly() {
        let a = vec![c(1.0, 0.0), c(0.0, 0.0)];
        let b = vec![c(0.0, 0.0), c(1.0, 0.0)];
        // ‖a−b‖² = 1 + 1 = 2 (orthogonal unit vectors).
        assert!(approx_eq(distance_sqr(&a, &b), 2.0));
    }

    #[test]
    fn normalized_leaves_original_untouched() {
        let v = vec![c(2.0, 0.0)];
        let n = normalized(&v);
        assert!(approx_eq_c(v[0], c(2.0, 0.0)));
        assert!(approx_eq_c(n[0], Complex64::ONE));
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn inner_product_length_mismatch_panics() {
        let _ = inner_product(&[Complex64::ONE], &[Complex64::ONE, Complex64::ZERO]);
    }
}
