//! Exact and log-space combinatorics.
//!
//! Lemma 5.6 of the paper states that the hard-input family for machine `k`
//! has size `|𝒯| = C(N, m_k)`. The adversary crate verifies this by
//! enumeration for small `N` and needs `C(N, m_k)` both exactly (checked
//! `u128`) and in log-space for large parameters.

/// Exact binomial coefficient `C(n, k)` in `u128`.
///
/// Returns `None` on intermediate overflow. Uses the multiplicative formula
/// with per-step GCD-free reduction (divide as early as possible), which is
/// exact because `C(n, 0..=j)` prefix products are always integral.
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for j in 0..k {
        // acc * (n - j) is divisible by (j + 1) after the multiplication
        // because acc holds C(n, j) exactly.
        acc = acc.checked_mul((n - j) as u128)?;
        acc /= (j + 1) as u128;
    }
    Some(acc)
}

/// Binomial coefficient as `f64` (may lose precision, never overflows for
/// arguments where `ln_binomial` is finite).
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    ln_binomial(n, k).exp()
}

/// Natural log of `n!` via Stirling's series for large `n`, exact summation
/// for small `n`.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    // Stirling's series: ln n! ≈ n ln n − n + ½ln(2πn) + 1/(12n) − 1/(360n³)
    let nf = n as f64;
    nf * nf.ln() - nf + 0.5 * (2.0 * std::f64::consts::PI * nf).ln() + 1.0 / (12.0 * nf)
        - 1.0 / (360.0 * nf * nf * nf)
}

/// Natural log of `C(n, k)`; `-inf` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq_eps;

    #[test]
    fn small_values_exact() {
        assert_eq!(binomial(0, 0), Some(1));
        assert_eq!(binomial(5, 0), Some(1));
        assert_eq!(binomial(5, 5), Some(1));
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(10, 3), Some(120));
        assert_eq!(binomial(52, 5), Some(2_598_960));
    }

    #[test]
    fn k_greater_than_n_is_zero() {
        assert_eq!(binomial(3, 4), Some(0));
        assert_eq!(binomial_f64(3, 4), 0.0);
    }

    #[test]
    fn symmetry() {
        for n in 0..30u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn pascal_recurrence() {
        for n in 1..40u64 {
            for k in 1..n {
                let lhs = binomial(n, k).unwrap();
                let rhs = binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap();
                assert_eq!(lhs, rhs, "Pascal at ({n},{k})");
            }
        }
    }

    #[test]
    fn row_sums_are_powers_of_two() {
        for n in 0..60u64 {
            let sum: u128 = (0..=n).map(|k| binomial(n, k).unwrap()).sum();
            assert_eq!(sum, 1u128 << n);
        }
    }

    #[test]
    fn large_exact_value() {
        // C(100, 50) fits in u128.
        assert_eq!(
            binomial(100, 50),
            Some(100_891_344_545_564_193_334_812_497_256)
        );
    }

    #[test]
    fn overflow_detected() {
        // C(200, 100) ≈ 9.05e58; intermediate products overflow u128 only for
        // much larger n, so pick one that definitely overflows.
        assert_eq!(binomial(1000, 500), None);
    }

    #[test]
    fn ln_factorial_matches_exact_small() {
        let exact: f64 = (2..=20u64).map(|i| (i as f64).ln()).sum();
        assert!(approx_eq_eps(ln_factorial(20), exact, 1e-9));
    }

    #[test]
    fn ln_factorial_stirling_accurate() {
        // Compare Stirling branch (n = 300) against exact log-sum.
        let exact: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!(approx_eq_eps(ln_factorial(300), exact, 1e-8));
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for &(n, k) in &[(10u64, 3u64), (52, 5), (100, 50)] {
            let exact = binomial(n, k).unwrap() as f64;
            assert!(
                (ln_binomial(n, k) - exact.ln()).abs() < 1e-8,
                "ln C({n},{k})"
            );
        }
    }

    #[test]
    fn binomial_f64_tracks_exact() {
        let exact = binomial(60, 30).unwrap() as f64;
        let est = binomial_f64(60, 30);
        assert!((est / exact - 1.0).abs() < 1e-10);
    }
}
