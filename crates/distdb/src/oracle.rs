//! The counting oracles — the only quantum operations machines implement.
//!
//! * [`OracleSet::apply_oj`] — the sequential oracle `O_j` of Eq. (1):
//!   `O_j|i⟩|s⟩ = |i⟩|(s + c_ij) mod (ν+1)⟩`.
//! * [`OracleSet::apply_hat_oj`] — the flag-controlled `Ô_j` of Eq. (2):
//!   adds `c_ij·b` where `b ∈ {0,1}` is a control flag.
//! * [`OracleSet::apply_parallel_round`] — the composite parallel oracle
//!   `O = ⊗_j Ô_j` of Eq. (3), applied to `n` disjoint register triples in
//!   one round.
//!
//! Every application is charged to the [`QueryLedger`]: one sequential query
//! per `O_j`/`Ô_j` (and per machine inside an explicitly sequentialized
//! round), one round per composite `O`. Oracles read multiplicities through
//! an optional [`UpdateLog`], realizing the paper's `U`/`U†` dynamic-update
//! composition without rebuilding the database.

use crate::counter::QueryLedger;
use crate::dataset::DistributedDataset;
use crate::update::UpdateLog;
use dqs_sim::QuantumState;
use std::sync::OnceLock;

/// Register assignment for the sequential oracle: which layout registers
/// hold the element `i` and the count `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleRegisters {
    /// Register holding the queried element.
    pub elem: usize,
    /// Register accumulating the multiplicity (dimension must be `ν+1`).
    pub count: usize,
}

/// Register assignment for the parallel model: machine `j` receives the
/// triple `(elem[j], count[j], flag[j])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelRegisters {
    /// Per-machine element registers.
    pub elem: Vec<usize>,
    /// Per-machine count registers.
    pub count: Vec<usize>,
    /// Per-machine control flags (dimension 2).
    pub flag: Vec<usize>,
}

impl ParallelRegisters {
    /// Number of machines addressed.
    pub fn machines(&self) -> usize {
        debug_assert_eq!(self.elem.len(), self.count.len());
        debug_assert_eq!(self.elem.len(), self.flag.len());
        self.elem.len()
    }
}

/// A live view of the distributed database's oracles, with query accounting.
pub struct OracleSet<'a> {
    dataset: &'a DistributedDataset,
    ledger: &'a QueryLedger,
    updates: Option<&'a UpdateLog>,
    /// Lazily-built per-element totals `c_i = Σ_j c_ij` (update log
    /// composed in), shared by every fused cascade over this oracle set.
    totals: OnceLock<Vec<u64>>,
}

impl<'a> OracleSet<'a> {
    /// Oracles over a static dataset.
    pub fn new(dataset: &'a DistributedDataset, ledger: &'a QueryLedger) -> Self {
        assert_eq!(
            ledger.num_machines(),
            dataset.num_machines(),
            "ledger must track the same number of machines"
        );
        Self {
            dataset,
            ledger,
            updates: None,
            totals: OnceLock::new(),
        }
    }

    /// Oracles over a dataset with a dynamic-update log composed on top
    /// (§3's `U`/`U†` mechanism).
    pub fn with_updates(
        dataset: &'a DistributedDataset,
        ledger: &'a QueryLedger,
        updates: &'a UpdateLog,
    ) -> Self {
        let mut s = Self::new(dataset, ledger);
        s.updates = Some(updates);
        s
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &DistributedDataset {
        self.dataset
    }

    /// The ledger every query is charged to.
    pub fn ledger(&self) -> &QueryLedger {
        self.ledger
    }

    /// The composed dynamic-update log, if any.
    pub fn updates(&self) -> Option<&UpdateLog> {
        self.updates
    }

    /// The modulus `ν+1` of the count register.
    pub fn modulus(&self) -> u64 {
        self.dataset.capacity() + 1
    }

    /// The multiplicity the oracle answers with (base counts plus any
    /// logged dynamic updates).
    pub fn effective_multiplicity(&self, elem: u64, machine: usize) -> u64 {
        let base = self.dataset.multiplicity(elem, machine);
        let eff = match self.updates {
            Some(log) => log.effective_multiplicity(base, machine, elem),
            None => base,
        };
        debug_assert!(
            eff <= self.dataset.capacity(),
            "effective multiplicity {eff} exceeds capacity ν = {}",
            self.dataset.capacity()
        );
        eff
    }

    /// The per-element total-count table `c_i = Σ_j c_ij` with the update
    /// log composed in — built once on first use, then shared by every
    /// fused cascade over this oracle set.
    pub fn total_table(&self) -> &[u64] {
        self.totals.get_or_init(|| {
            let mut totals = self.dataset.total_count_table();
            if let Some(log) = self.updates {
                for (_machine, elem, delta) in log.net_deltas() {
                    let slot = &mut totals[elem as usize];
                    let eff = *slot as i64 + delta;
                    assert!(eff >= 0, "update log drives total c[{elem}] negative");
                    *slot = eff as u64;
                }
            }
            totals
        })
    }

    /// `c_i` — the total multiplicity the full cascade `O_1 … O_n` would
    /// accumulate for `elem` (with logged updates composed in).
    pub fn effective_total(&self, elem: u64) -> u64 {
        self.total_table()[elem as usize]
    }

    /// Charges the ledger for one full sequential cascade — `n` queries,
    /// one per machine — without touching any state. Fused realizations
    /// call this so that a single compiled pass is billed exactly like the
    /// `O_1 … O_n` (or reversed) gate sequence it stands for: the paper's
    /// cost metric counts *queries*, not simulator passes.
    pub fn charge_all_sequential(&self) {
        for j in 0..self.dataset.num_machines() {
            self.ledger.record_sequential(j);
            dqs_obs::machine_counter(dqs_obs::names::ORACLE_QUERY, j, 1);
        }
    }

    /// Charges one composite parallel round without touching any state —
    /// the parallel-model analogue of [`Self::charge_all_sequential`].
    pub fn charge_parallel_round(&self) {
        self.ledger.record_parallel_round();
        dqs_obs::counter(dqs_obs::names::ORACLE_ROUND, 1);
    }

    /// Applies `O_j` (or `O_j†` when `inverse`) on `(regs.elem, regs.count)`.
    /// Charges one sequential query to machine `j`.
    pub fn apply_oj<S: QuantumState>(
        &self,
        state: &mut S,
        machine: usize,
        regs: OracleRegisters,
        inverse: bool,
    ) {
        // Charge first, unconditionally: a query that reaches the machine
        // is billed even if applying its answer fails further down.
        self.ledger.record_sequential(machine);
        dqs_obs::machine_counter(dqs_obs::names::ORACLE_QUERY, machine, 1);
        let modulus = self.modulus();
        debug_assert_eq!(
            state.layout().dim(regs.count),
            modulus,
            "count register dimension must be ν+1"
        );
        state.apply_permutation(|b| {
            let c = self.effective_multiplicity(b[regs.elem], machine) % modulus;
            let add = if inverse { modulus - c } else { c } % modulus;
            b[regs.count] = (b[regs.count] + add) % modulus;
        });
    }

    /// Applies the flag-controlled `Ô_j` (Eq. 2): adds `c_ij` only when the
    /// flag register holds 1. Charges one sequential query.
    pub fn apply_hat_oj<S: QuantumState>(
        &self,
        state: &mut S,
        machine: usize,
        elem_reg: usize,
        count_reg: usize,
        flag_reg: usize,
        inverse: bool,
    ) {
        self.ledger.record_sequential(machine);
        dqs_obs::machine_counter(dqs_obs::names::ORACLE_QUERY, machine, 1);
        let modulus = self.modulus();
        state.apply_permutation(|b| {
            if b[flag_reg] == 1 {
                let c = self.effective_multiplicity(b[elem_reg], machine) % modulus;
                let add = if inverse { modulus - c } else { c } % modulus;
                b[count_reg] = (b[count_reg] + add) % modulus;
            }
        });
    }

    /// Applies `O_1 … O_n` (or the inverses, in reverse order) on a shared
    /// register pair — the first/third steps of Lemma 4.2. Charges `n`
    /// sequential queries.
    pub fn apply_all_sequential<S: QuantumState>(
        &self,
        state: &mut S,
        regs: OracleRegisters,
        inverse: bool,
    ) {
        let n = self.dataset.num_machines();
        if inverse {
            for j in (0..n).rev() {
                self.apply_oj(state, j, regs, true);
            }
        } else {
            for j in 0..n {
                self.apply_oj(state, j, regs, false);
            }
        }
    }

    /// Applies the whole cascade `O_1 … O_n` (or `O_n† … O_1†`) as **one**
    /// support pass: `|i,s⟩ ↦ |i, (s ± c_i) mod (ν+1)⟩` with the
    /// precomputed total `c_i = Σ_j c_ij`. The linear-algebraic action is
    /// identical to [`Self::apply_all_sequential`] — the additions commute —
    /// and so is the bill: the ledger is charged the same `n` sequential
    /// queries, because the cost metric counts oracle applications, not the
    /// number of passes the simulator happens to make.
    pub fn apply_all_fused<S: QuantumState>(
        &self,
        state: &mut S,
        regs: OracleRegisters,
        inverse: bool,
    ) {
        self.charge_all_sequential();
        let modulus = self.modulus();
        debug_assert_eq!(
            state.layout().dim(regs.count),
            modulus,
            "count register dimension must be ν+1"
        );
        let totals = self.total_table();
        state.apply_permutation(|b| {
            let c = totals[b[regs.elem] as usize] % modulus;
            let add = if inverse { modulus - c } else { c } % modulus;
            b[regs.count] = (b[regs.count] + add) % modulus;
        });
    }

    /// Applies the composite parallel oracle `O = ⊗_j Ô_j` (Eq. 3) — every
    /// machine acts on its own register triple simultaneously. Charges one
    /// parallel round.
    pub fn apply_parallel_round<S: QuantumState>(
        &self,
        state: &mut S,
        regs: &ParallelRegisters,
        inverse: bool,
    ) {
        self.ledger.record_parallel_round();
        dqs_obs::counter(dqs_obs::names::ORACLE_ROUND, 1);
        let n = self.dataset.num_machines();
        assert_eq!(
            regs.machines(),
            n,
            "parallel register triples must match the machine count"
        );
        let modulus = self.modulus();
        state.apply_permutation(|b| {
            for j in 0..n {
                if b[regs.flag[j]] == 1 {
                    let c = self.effective_multiplicity(b[regs.elem[j]], j) % modulus;
                    let add = if inverse { modulus - c } else { c } % modulus;
                    b[regs.count[j]] = (b[regs.count[j]] + add) % modulus;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiset::Multiset;
    use crate::update::UpdateOp;
    use dqs_math::approx::approx_eq_c;
    use dqs_math::Complex64;
    use dqs_sim::{Layout, SparseState};

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            4,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (3, 3)]),
            ],
        )
        .unwrap()
    }

    fn seq_layout(ds: &DistributedDataset) -> Layout {
        Layout::builder()
            .register("i", ds.universe())
            .register("s", ds.capacity() + 1)
            .register("b", 2)
            .build()
    }

    const REGS: OracleRegisters = OracleRegisters { elem: 0, count: 1 };

    #[test]
    fn oracle_adds_multiplicity() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let mut s = SparseState::from_basis(seq_layout(&ds), &[0, 0, 0]);
        oracles.apply_oj(&mut s, 0, REGS, false);
        assert!(approx_eq_c(s.amplitude(&[0, 2, 0]), Complex64::ONE));
        assert_eq!(ledger.sequential_queries(0), 1);
    }

    #[test]
    fn oracle_wraps_mod_capacity_plus_one() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        // start with count register = 4 (= ν), adding c_{3,1} = 3 wraps mod 5
        let mut s = SparseState::from_basis(seq_layout(&ds), &[3, 4, 0]);
        oracles.apply_oj(&mut s, 1, REGS, false);
        assert!(approx_eq_c(s.amplitude(&[3, 2, 0]), Complex64::ONE));
    }

    #[test]
    fn inverse_oracle_undoes_forward() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let layout = seq_layout(&ds);
        let mut s = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        // superpose the element register first
        s.apply_register_unitary(0, &dqs_sim::gates::dft(4));
        let before = s.to_table();
        oracles.apply_oj(&mut s, 0, REGS, false);
        oracles.apply_oj(&mut s, 0, REGS, true);
        assert!(s.to_table().distance_sqr(&before) < 1e-18);
        assert_eq!(ledger.sequential_queries(0), 2);
    }

    #[test]
    fn all_sequential_accumulates_total_multiplicity() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        // element 1 appears once on each machine: total 2
        let mut s = SparseState::from_basis(seq_layout(&ds), &[1, 0, 0]);
        oracles.apply_all_sequential(&mut s, REGS, false);
        assert!(approx_eq_c(s.amplitude(&[1, 2, 0]), Complex64::ONE));
        assert_eq!(ledger.total_sequential(), 2);
    }

    #[test]
    fn hat_oracle_respects_flag() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let layout = seq_layout(&ds);
        // flag = 0 → identity
        let mut s0 = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        oracles.apply_hat_oj(&mut s0, 0, 0, 1, 2, false);
        assert!(approx_eq_c(s0.amplitude(&[0, 0, 0]), Complex64::ONE));
        // flag = 1 → adds c_{0,0} = 2
        let mut s1 = SparseState::from_basis(layout, &[0, 0, 1]);
        oracles.apply_hat_oj(&mut s1, 0, 0, 1, 2, false);
        assert!(approx_eq_c(s1.amplitude(&[0, 2, 1]), Complex64::ONE));
    }

    #[test]
    fn parallel_round_equals_n_controlled_sequential_queries() {
        let ds = dataset();
        let layout = Layout::builder()
            .register("i0", ds.universe())
            .register("s0", ds.capacity() + 1)
            .register("b0", 2)
            .register("i1", ds.universe())
            .register("s1", ds.capacity() + 1)
            .register("b1", 2)
            .build();
        let pregs = ParallelRegisters {
            elem: vec![0, 3],
            count: vec![1, 4],
            flag: vec![2, 5],
        };
        // query element 1 on machine 0 and element 3 on machine 1, both active
        let start = [1, 0, 1, 3, 0, 1];

        let ledger_p = QueryLedger::new(2);
        let oracles_p = OracleSet::new(&ds, &ledger_p);
        let mut sp = SparseState::from_basis(layout.clone(), &start);
        oracles_p.apply_parallel_round(&mut sp, &pregs, false);

        let ledger_s = QueryLedger::new(2);
        let oracles_s = OracleSet::new(&ds, &ledger_s);
        let mut ss = SparseState::from_basis(layout, &start);
        oracles_s.apply_hat_oj(&mut ss, 0, 0, 1, 2, false);
        oracles_s.apply_hat_oj(&mut ss, 1, 3, 4, 5, false);

        assert!(sp.to_table().distance_sqr(&ss.to_table()) < 1e-18);
        assert_eq!(ledger_p.parallel_rounds(), 1);
        assert_eq!(ledger_p.total_sequential(), 0);
        assert_eq!(ledger_s.total_sequential(), 2);
        // c_{1,0} = 1 and c_{3,1} = 3
        assert!(approx_eq_c(
            sp.amplitude(&[1, 1, 1, 3, 3, 1]),
            Complex64::ONE
        ));
    }

    #[test]
    fn parallel_inverse_round_trips() {
        let ds = dataset();
        let layout = Layout::builder()
            .register("i0", ds.universe())
            .register("s0", ds.capacity() + 1)
            .register("b0", 2)
            .register("i1", ds.universe())
            .register("s1", ds.capacity() + 1)
            .register("b1", 2)
            .build();
        let pregs = ParallelRegisters {
            elem: vec![0, 3],
            count: vec![1, 4],
            flag: vec![2, 5],
        };
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let mut s = SparseState::from_basis(layout, &[3, 0, 1, 3, 0, 1]);
        let before = s.to_table();
        oracles.apply_parallel_round(&mut s, &pregs, false);
        oracles.apply_parallel_round(&mut s, &pregs, true);
        assert!(s.to_table().distance_sqr(&before) < 1e-18);
        assert_eq!(ledger.parallel_rounds(), 2);
    }

    #[test]
    fn update_log_changes_oracle_answers() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 0)); // c_{0,0}: 2 → 3
        log.push(UpdateOp::delete(1, 3)); // c_{3,1}: 3 → 2
        let oracles = OracleSet::with_updates(&ds, &ledger, &log);
        assert_eq!(oracles.effective_multiplicity(0, 0), 3);
        assert_eq!(oracles.effective_multiplicity(3, 1), 2);

        // Composed oracle ≡ oracle over the rebuilt dataset.
        let rebuilt = log.apply_to(&ds);
        let ledger2 = QueryLedger::new(2);
        let oracles2 = OracleSet::new(&rebuilt, &ledger2);
        let layout = seq_layout(&ds);
        for elem in 0..4u64 {
            let mut a = SparseState::from_basis(layout.clone(), &[elem, 0, 0]);
            let mut b = a.clone();
            oracles.apply_oj(&mut a, 0, REGS, false);
            oracles2.apply_oj(&mut b, 0, REGS, false);
            assert!(
                a.to_table().distance_sqr(&b.to_table()) < 1e-18,
                "elem {elem}"
            );
        }
    }

    #[test]
    fn fused_cascade_matches_sequential_cascade() {
        let ds = dataset();
        let layout = seq_layout(&ds);
        for elem in 0..4u64 {
            for start in 0..=ds.capacity() {
                let ledger_f = QueryLedger::new(2);
                let oracles_f = OracleSet::new(&ds, &ledger_f);
                let mut fused = SparseState::from_basis(layout.clone(), &[elem, start, 0]);
                oracles_f.apply_all_fused(&mut fused, REGS, false);

                let ledger_s = QueryLedger::new(2);
                let oracles_s = OracleSet::new(&ds, &ledger_s);
                let mut seq = SparseState::from_basis(layout.clone(), &[elem, start, 0]);
                oracles_s.apply_all_sequential(&mut seq, REGS, false);

                assert!(fused.to_table().distance_sqr(&seq.to_table()) < 1e-18);
                // identical query bill, per machine
                assert_eq!(ledger_f.snapshot(), ledger_s.snapshot());
            }
        }
    }

    #[test]
    fn fused_inverse_undoes_fused_forward() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let mut s = SparseState::from_basis(seq_layout(&ds), &[0, 0, 0]);
        s.apply_register_unitary(0, &dqs_sim::gates::dft(4));
        let before = s.to_table();
        oracles.apply_all_fused(&mut s, REGS, false);
        oracles.apply_all_fused(&mut s, REGS, true);
        assert!(s.to_table().distance_sqr(&before) < 1e-18);
        assert_eq!(ledger.total_sequential(), 4);
    }

    #[test]
    fn total_table_composes_update_log() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 2)); // c_2: 0 → 1
        log.push(UpdateOp::delete(1, 3)); // c_3: 3 → 2
        let oracles = OracleSet::with_updates(&ds, &ledger, &log);
        // base totals c = (2, 2, 0, 3); updated = (2, 2, 1, 2)
        assert_eq!(oracles.total_table(), &[2, 2, 1, 2]);
        assert_eq!(oracles.effective_total(2), 1);
        // and the fused cascade over the log equals the cascade over the
        // rebuilt dataset
        let rebuilt = log.apply_to(&ds);
        let ledger2 = QueryLedger::new(2);
        let oracles2 = OracleSet::new(&rebuilt, &ledger2);
        let layout = seq_layout(&ds);
        for elem in 0..4u64 {
            let mut a = SparseState::from_basis(layout.clone(), &[elem, 0, 0]);
            let mut b = a.clone();
            oracles.apply_all_fused(&mut a, REGS, false);
            oracles2.apply_all_sequential(&mut b, REGS, false);
            assert!(a.to_table().distance_sqr(&b.to_table()) < 1e-18);
        }
    }

    #[test]
    fn charge_helpers_touch_no_state() {
        let ds = dataset();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        oracles.charge_all_sequential();
        oracles.charge_parallel_round();
        assert_eq!(ledger.snapshot().per_machine, vec![1, 1]);
        assert_eq!(ledger.parallel_rounds(), 1);
    }

    #[test]
    fn failed_apply_is_still_charged() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let ds = dataset();
        let layout = seq_layout(&ds);

        // A register assignment pointing past the layout makes the state
        // application panic *after* the query reached the machine — the
        // charge must already be on the books (charge-before-apply).
        let bad = OracleRegisters { elem: 0, count: 9 };

        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let mut s = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        assert!(catch_unwind(AssertUnwindSafe(|| {
            oracles.apply_oj(&mut s, 0, bad, false);
        }))
        .is_err());
        assert_eq!(ledger.sequential_queries(0), 1, "failed O_j not billed");

        let mut s = SparseState::from_basis(layout.clone(), &[0, 0, 1]);
        assert!(catch_unwind(AssertUnwindSafe(|| {
            oracles.apply_hat_oj(&mut s, 1, 0, 9, 2, false);
        }))
        .is_err());
        assert_eq!(ledger.sequential_queries(1), 1, "failed Ô_j not billed");

        let mut s = SparseState::from_basis(layout, &[0, 0, 0]);
        assert!(catch_unwind(AssertUnwindSafe(|| {
            oracles.apply_all_fused(&mut s, bad, false);
        }))
        .is_err());
        assert_eq!(
            ledger.snapshot().per_machine,
            vec![2, 2],
            "failed fused cascade not billed"
        );
    }

    #[test]
    fn empty_machine_oracle_is_identity() {
        let ds =
            DistributedDataset::new(4, 2, vec![Multiset::from_counts([(0, 1)]), Multiset::new()])
                .unwrap();
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let layout = seq_layout(&ds);
        let mut s = SparseState::from_basis(layout, &[2, 1, 0]);
        let before = s.to_table();
        oracles.apply_oj(&mut s, 1, REGS, false);
        assert!(s.to_table().distance_sqr(&before) < 1e-18);
        // The query is still charged — obliviousness means the coordinator
        // cannot skip machines it knows nothing about.
        assert_eq!(ledger.sequential_queries(1), 1);
    }
}
