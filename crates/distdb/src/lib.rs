//! # dqs-db
//!
//! The distributed database model from §3 of *Optimal quantum sampling on
//! distributed databases* (SPAA 2025): `n` machines, each holding a multiset
//! `T_j` over the data universe `[N]` and exposing only the counting oracle
//!
//! ```text
//! O_j |i⟩|s⟩ = |i⟩|(s + c_ij) mod (ν+1)⟩          (Eq. 1)
//! ```
//!
//! plus its controlled variant `Ô_j` and the composite parallel oracle `O`
//! (Eqs. 2–3). The coordinator is charged **one query** per `O_j`/`O_j†`
//! application in the sequential model and **one round** per composite
//! `O`/`O†` application in the parallel model; a [`counter::QueryLedger`]
//! records both, which is the paper's entire cost metric.
//!
//! The crate also implements dynamic updates (§3's remark): composing the
//! element-controlled increment `U`/`U†` onto an oracle is equivalent to
//! editing the underlying multiset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod dataset;
pub mod faults;
pub mod multiset;
pub mod oracle;
pub mod stats;
pub mod tsv;
pub mod update;

pub use counter::{LedgerSnapshot, QueryLedger};
pub use dataset::{DatasetError, DistributedDataset, Params};
pub use faults::{
    Answer, FailFast, FailureAction, FaultEvent, FaultHandler, FaultKind, FaultPlan, FaultRates,
    FaultyOracleSet, OracleError, QueryOutcome,
};
pub use multiset::Multiset;
pub use oracle::{OracleRegisters, OracleSet, ParallelRegisters};
pub use stats::{dataset_stats, DatasetStats};
pub use tsv::{from_tsv, read_tsv_file, to_tsv, write_tsv_file, TsvError};
pub use update::{UpdateError, UpdateLog, UpdateOp};
