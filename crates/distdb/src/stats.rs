//! Dataset statistics: distribution shape and placement balance.
//!
//! These quantify *why* workloads differ in sampling cost: `√(νN/M)` is
//! driven by concentration (a skewed distribution forces large `ν`), and
//! the lower bound's per-machine terms are driven by placement skew
//! (`κ_j`). Used by the Table-1 experiment and the examples.

use crate::dataset::DistributedDataset;

/// Shape and balance statistics for one dataset instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Shannon entropy (bits) of the sampling distribution `c_i/M`.
    pub entropy_bits: f64,
    /// Maximum possible entropy `log2 |support|`.
    pub max_entropy_bits: f64,
    /// Collision probability `Σ_i (c_i/M)²` (Rényi-2 mass).
    pub collision_probability: f64,
    /// Fraction of mass on the single heaviest element.
    pub top_element_mass: f64,
    /// Load imbalance: `max_j M_j / mean_j M_j` (1.0 = perfectly even).
    pub load_imbalance: f64,
    /// Capacity utilization: `max_i c_i / ν` (1.0 = tight capacity).
    pub capacity_utilization: f64,
}

/// Computes [`DatasetStats`].
pub fn dataset_stats(ds: &DistributedDataset) -> DatasetStats {
    let m_total = ds.total_count() as f64;
    let support = ds.support();
    let mut entropy = 0.0;
    let mut collision = 0.0;
    let mut top = 0.0f64;
    for &i in &support {
        let p = ds.total_multiplicity(i) as f64 / m_total;
        entropy -= p * p.log2();
        collision += p * p;
        top = top.max(p);
    }
    let params = ds.params();
    let mean_load = m_total / params.machines as f64;
    let max_load = params.machine_counts.iter().copied().max().unwrap_or(0) as f64;
    DatasetStats {
        entropy_bits: entropy,
        max_entropy_bits: (support.len() as f64).log2(),
        collision_probability: collision,
        top_element_mass: top,
        load_imbalance: if mean_load > 0.0 {
            max_load / mean_load
        } else {
            0.0
        },
        capacity_utilization: params.realized_capacity as f64 / params.capacity as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiset::Multiset;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn uniform_distribution_maximizes_entropy() {
        let ds =
            DistributedDataset::new(8, 1, vec![Multiset::from_counts((0..8u64).map(|i| (i, 1)))])
                .unwrap();
        let s = dataset_stats(&ds);
        assert!(approx(s.entropy_bits, 3.0));
        assert!(approx(s.max_entropy_bits, 3.0));
        assert!(approx(s.collision_probability, 1.0 / 8.0));
        assert!(approx(s.top_element_mass, 1.0 / 8.0));
    }

    #[test]
    fn singleton_has_zero_entropy_full_collision() {
        let ds = DistributedDataset::new(8, 5, vec![Multiset::from_counts([(3, 5)])]).unwrap();
        let s = dataset_stats(&ds);
        assert!(approx(s.entropy_bits, 0.0));
        assert!(approx(s.collision_probability, 1.0));
        assert!(approx(s.top_element_mass, 1.0));
        assert!(approx(s.capacity_utilization, 1.0));
    }

    #[test]
    fn load_imbalance_detects_skewed_placement() {
        let even = DistributedDataset::new(
            8,
            2,
            vec![
                Multiset::from_counts([(0, 2)]),
                Multiset::from_counts([(1, 2)]),
            ],
        )
        .unwrap();
        assert!(approx(dataset_stats(&even).load_imbalance, 1.0));
        let skewed =
            DistributedDataset::new(8, 4, vec![Multiset::from_counts([(0, 4)]), Multiset::new()])
                .unwrap();
        assert!(approx(dataset_stats(&skewed).load_imbalance, 2.0));
    }

    #[test]
    fn capacity_slack_lowers_utilization() {
        let ds = DistributedDataset::new(8, 10, vec![Multiset::from_counts([(0, 2)])]).unwrap();
        assert!(approx(dataset_stats(&ds).capacity_utilization, 0.2));
    }
}
