//! The distributed dataset `{T_j}_{j∈[n]}` and its derived parameters.
//!
//! [`DistributedDataset`] owns one [`Multiset`] per machine plus the public
//! constants the coordinator knows in the paper's model: the universe size
//! `N` and the maximum capacity `ν`. [`Params`] materializes every row of
//! the paper's Table 1 for reporting, and
//! [`DistributedDataset::target_state`] constructs the quantum sampling
//! state `|ψ⟩ = (1/√M) Σ_i √c_i |i⟩` (Eq. 4) directly from the data — the
//! ground truth every algorithm's output is checked against.

use crate::multiset::Multiset;
use dqs_math::Complex64;
use dqs_sim::{Layout, StateTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when a dataset violates the model's constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// An element id is `≥ N`.
    ElementOutOfRange {
        /// Offending machine index.
        machine: usize,
        /// Offending element.
        element: u64,
        /// Universe size.
        universe: u64,
    },
    /// Some total multiplicity `c_i` exceeds the declared capacity `ν`.
    CapacityExceeded {
        /// Offending element.
        element: u64,
        /// Its total multiplicity across machines.
        total: u64,
        /// The declared capacity.
        capacity: u64,
    },
    /// The dataset is empty (`M = 0`) — the sampling state is undefined.
    EmptyDataset,
    /// No machines.
    NoMachines,
    /// Summing multiplicities overflowed `u64` — the input is corrupt
    /// (no physical dataset has `2⁶⁴` copies of an element).
    CountOverflow {
        /// The element whose total overflowed.
        element: u64,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ElementOutOfRange {
                machine,
                element,
                universe,
            } => write!(
                f,
                "machine {machine} holds element {element} outside universe 0..{universe}"
            ),
            DatasetError::CapacityExceeded {
                element,
                total,
                capacity,
            } => write!(
                f,
                "element {element} has total multiplicity {total} > capacity ν = {capacity}"
            ),
            DatasetError::EmptyDataset => write!(f, "dataset is empty (M = 0)"),
            DatasetError::NoMachines => write!(f, "dataset has no machines"),
            DatasetError::CountOverflow { element } => {
                write!(f, "total multiplicity of element {element} overflows u64")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// The full parameter set of the paper's Table 1 for one dataset instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// `n` — number of machines.
    pub machines: usize,
    /// `N` — universe size.
    pub universe: u64,
    /// `M` — total element count (with multiplicity) over all machines.
    pub total_count: u64,
    /// `M_j` — per-machine element counts.
    pub machine_counts: Vec<u64>,
    /// `m_j` — per-machine support sizes.
    pub machine_supports: Vec<usize>,
    /// `ν` — declared maximum capacity.
    pub capacity: u64,
    /// `κ_j = max_i c_ij` — per-machine realized capacities (§5).
    pub machine_capacities: Vec<u64>,
    /// `max_i c_i` — realized global capacity (must be ≤ ν).
    pub realized_capacity: u64,
}

impl Params {
    /// The initial success amplitude squared `a = M/(νN)` of the
    /// distributing operator (Eq. 7); always in `(0, 1]` for valid datasets.
    pub fn initial_success_probability(&self) -> f64 {
        self.total_count as f64 / (self.capacity as f64 * self.universe as f64)
    }

    /// Theory predictor `√(νN/M)` — the paper's per-machine query-count
    /// scale (Theorems 4.3/4.5 up to constants).
    pub fn sqrt_vn_over_m(&self) -> f64 {
        (self.capacity as f64 * self.universe as f64 / self.total_count as f64).sqrt()
    }
}

/// A dataset distributed over `n` machines with public constants `N`, `ν`.
///
/// Cloning is cheap: each [`Multiset`] shard is copy-on-write, so a clone
/// shares every shard's storage until that shard is mutated. Versioned
/// snapshots (DESIGN.md §15) rely on this to let a writer materialize
/// version `v+1` while readers keep sampling from `v`, with only the
/// touched machines' count maps duplicated.
#[derive(Clone, Debug, PartialEq)]
pub struct DistributedDataset {
    universe: u64,
    capacity: u64,
    shards: Vec<Multiset>,
}

impl DistributedDataset {
    /// Creates and validates a dataset.
    ///
    /// `capacity` is the paper's `ν ≥ max_i Σ_j c_ij`; declaring slack
    /// (larger `ν`) is allowed and costs `√ν` more queries (Experiment E10).
    pub fn new(universe: u64, capacity: u64, shards: Vec<Multiset>) -> Result<Self, DatasetError> {
        if shards.is_empty() {
            return Err(DatasetError::NoMachines);
        }
        for (j, shard) in shards.iter().enumerate() {
            if let Some(e) = shard.max_element() {
                if e >= universe {
                    return Err(DatasetError::ElementOutOfRange {
                        machine: j,
                        element: e,
                        universe,
                    });
                }
            }
        }
        let ds = Self {
            universe,
            capacity,
            shards,
        };
        let mut total = 0u64;
        for i in ds.support() {
            // Checked accumulation: untrusted loaders (TSV) feed raw counts
            // in here, and a corrupt file must not wrap or panic.
            let mut c = 0u64;
            for shard in &ds.shards {
                c = c
                    .checked_add(shard.multiplicity(i))
                    .ok_or(DatasetError::CountOverflow { element: i })?;
            }
            if c > capacity {
                return Err(DatasetError::CapacityExceeded {
                    element: i,
                    total: c,
                    capacity,
                });
            }
            total = total
                .checked_add(c)
                .ok_or(DatasetError::CountOverflow { element: i })?;
        }
        if total == 0 {
            return Err(DatasetError::EmptyDataset);
        }
        Ok(ds)
    }

    /// Assembles a dataset from parts the caller has already validated.
    ///
    /// This is the incremental-update fast path ([`crate::UpdateLog::try_apply_to`]):
    /// the caller starts from an already-valid dataset and has checked the
    /// model constraints at every touched `(machine, element)` entry, so
    /// re-running the full `O(N·n)` validation of [`Self::new`] would defeat
    /// the point of an `O(touched)` patch. Crate-private on purpose —
    /// external constructors must go through [`Self::new`].
    pub(crate) fn from_validated_parts(
        universe: u64,
        capacity: u64,
        shards: Vec<Multiset>,
    ) -> Self {
        Self {
            universe,
            capacity,
            shards,
        }
    }

    /// Convenience constructor choosing `ν = max_i c_i` (tight capacity).
    pub fn with_tight_capacity(universe: u64, shards: Vec<Multiset>) -> Result<Self, DatasetError> {
        let mut totals: std::collections::BTreeMap<u64, u64> = Default::default();
        for s in &shards {
            for (e, c) in s.iter() {
                let slot = totals.entry(e).or_insert(0);
                *slot = slot
                    .checked_add(c)
                    .ok_or(DatasetError::CountOverflow { element: e })?;
            }
        }
        let cap = totals.values().copied().max().unwrap_or(0).max(1);
        Self::new(universe, cap, shards)
    }

    /// `n` — number of machines.
    pub fn num_machines(&self) -> usize {
        self.shards.len()
    }

    /// `N` — universe size.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// `ν` — declared capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The machine shards.
    pub fn shards(&self) -> &[Multiset] {
        &self.shards
    }

    /// `c_ij` — multiplicity of `elem` on machine `j`.
    pub fn multiplicity(&self, elem: u64, machine: usize) -> u64 {
        self.shards[machine].multiplicity(elem)
    }

    /// `c_i = Σ_j c_ij` — total multiplicity of `elem`.
    pub fn total_multiplicity(&self, elem: u64) -> u64 {
        self.shards.iter().map(|s| s.multiplicity(elem)).sum()
    }

    /// The dense per-element total-count table `c_i = Σ_j c_ij`, indexed by
    /// element over the whole universe `0..N`. One `O(N + nnz)` pass over
    /// the shards; fused oracle cascades ([`crate::OracleSet::apply_all_fused`])
    /// look totals up here instead of re-summing per machine per basis state.
    pub fn total_count_table(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.universe as usize];
        for shard in &self.shards {
            for (elem, count) in shard.iter() {
                totals[elem as usize] += count;
            }
        }
        totals
    }

    /// `M = Σ_i c_i`.
    pub fn total_count(&self) -> u64 {
        self.shards.iter().map(|s| s.cardinality()).sum()
    }

    /// The union support across machines, sorted ascending.
    pub fn support(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for s in &self.shards {
            out.extend(s.support());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Replaces machine `k`'s shard (used by the hard-input generator and
    /// by the hybrid argument, which sets `T_k = ∅`).
    ///
    /// Note: this bypasses re-validation against `ν` deliberately — hard
    /// inputs are constructed to stay within capacity by Definition 5.4.
    pub fn with_shard_replaced(&self, k: usize, shard: Multiset) -> Self {
        let mut out = self.clone();
        out.shards[k] = shard;
        out
    }

    /// Table 1 parameters for this instance.
    pub fn params(&self) -> Params {
        let machine_counts: Vec<u64> = self.shards.iter().map(|s| s.cardinality()).collect();
        let machine_supports: Vec<usize> = self.shards.iter().map(|s| s.support_size()).collect();
        let machine_capacities: Vec<u64> =
            self.shards.iter().map(|s| s.max_multiplicity()).collect();
        let realized = self
            .support()
            .into_iter()
            .map(|i| self.total_multiplicity(i))
            .max()
            .unwrap_or(0);
        Params {
            machines: self.shards.len(),
            universe: self.universe,
            total_count: machine_counts.iter().sum(),
            machine_counts,
            machine_supports,
            capacity: self.capacity,
            machine_capacities,
            realized_capacity: realized,
        }
    }

    /// Builds the target sampling state `|ψ⟩ = (1/√M) Σ_i √c_i |i⟩` (Eq. 4)
    /// over the given layout, placing the element value in register
    /// `elem_reg` and zeros everywhere else.
    pub fn target_state(&self, layout: &Layout, elem_reg: usize) -> StateTable {
        let m_total = self.total_count() as f64;
        assert!(m_total > 0.0, "target state undefined for empty dataset");
        let mut entries = Vec::new();
        for i in self.support() {
            let c = self.total_multiplicity(i) as f64;
            let mut basis = layout.zero_basis();
            basis[elem_reg] = i;
            entries.push((
                basis.into_boxed_slice(),
                Complex64::from_real((c / m_total).sqrt()),
            ));
        }
        StateTable::new(layout.clone(), entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_math::approx::approx_eq;

    fn two_machine_dataset() -> DistributedDataset {
        // T_0 = {0,0,1}, T_1 = {1,3,3,3}
        DistributedDataset::new(
            4,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (3, 3)]),
            ],
        )
        .expect("valid dataset")
    }

    #[test]
    fn parameters_match_table_1_definitions() {
        let ds = two_machine_dataset();
        let p = ds.params();
        assert_eq!(p.machines, 2);
        assert_eq!(p.universe, 4);
        assert_eq!(p.total_count, 7);
        assert_eq!(p.machine_counts, vec![3, 4]);
        assert_eq!(p.machine_supports, vec![2, 2]);
        assert_eq!(p.machine_capacities, vec![2, 3]);
        assert_eq!(p.realized_capacity, 3); // c_3 = 3 is the max total
        assert_eq!(ds.total_multiplicity(1), 2);
    }

    #[test]
    fn support_is_union() {
        assert_eq!(two_machine_dataset().support(), vec![0, 1, 3]);
    }

    #[test]
    fn capacity_violation_rejected() {
        let err = DistributedDataset::new(4, 2, vec![Multiset::from_counts([(3, 3)])]).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::CapacityExceeded {
                element: 3,
                total: 3,
                ..
            }
        ));
    }

    #[test]
    fn element_out_of_range_rejected() {
        let err =
            DistributedDataset::new(4, 10, vec![Multiset::from_counts([(4, 1)])]).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::ElementOutOfRange { element: 4, .. }
        ));
    }

    #[test]
    fn empty_dataset_rejected() {
        let err = DistributedDataset::new(4, 1, vec![Multiset::new()]).unwrap_err();
        assert_eq!(err, DatasetError::EmptyDataset);
        let err2 = DistributedDataset::new(4, 1, vec![]).unwrap_err();
        assert_eq!(err2, DatasetError::NoMachines);
    }

    #[test]
    fn tight_capacity_picks_max_total() {
        let ds = DistributedDataset::with_tight_capacity(
            4,
            vec![
                Multiset::from_counts([(1, 1)]),
                Multiset::from_counts([(1, 2)]),
            ],
        )
        .unwrap();
        assert_eq!(ds.capacity(), 3);
    }

    #[test]
    fn target_state_amplitudes_are_sqrt_frequencies() {
        let ds = two_machine_dataset();
        let layout = Layout::builder()
            .register("i", 4)
            .register("s", 5)
            .register("b", 2)
            .build();
        let psi = ds.target_state(&layout, 0);
        assert!(approx_eq(psi.norm(), 1.0));
        // c = (2, 2, 0, 3), M = 7
        assert!(approx_eq(
            psi.amplitude(&[0, 0, 0]).re,
            (2.0f64 / 7.0).sqrt()
        ));
        assert!(approx_eq(
            psi.amplitude(&[3, 0, 0]).re,
            (3.0f64 / 7.0).sqrt()
        ));
        assert!(approx_eq(psi.amplitude(&[2, 0, 0]).re, 0.0));
    }

    #[test]
    fn params_predictors() {
        let ds = two_machine_dataset();
        let p = ds.params();
        // a = M/(νN) = 7/16
        assert!(approx_eq(p.initial_success_probability(), 7.0 / 16.0));
        assert!(approx_eq(p.sqrt_vn_over_m(), (16.0f64 / 7.0).sqrt()));
    }

    #[test]
    fn with_shard_replaced_swaps_one_machine() {
        let ds = two_machine_dataset();
        let empty = ds.with_shard_replaced(1, Multiset::new());
        assert_eq!(empty.total_count(), 3);
        assert_eq!(empty.shards()[0], ds.shards()[0]);
        assert!(empty.shards()[1].is_empty());
    }
}
