//! Plain-text (TSV) persistence for datasets.
//!
//! A deliberately simple, diff-friendly format so experiment inputs can be
//! committed, inspected, and round-tripped without extra dependencies:
//!
//! ```text
//! # dqs-dataset v1
//! universe\t<N>
//! capacity\t<ν>
//! machines\t<n>
//! <machine>\t<element>\t<multiplicity>
//! …
//! ```

use crate::dataset::{DatasetError, DistributedDataset};
use crate::multiset::Multiset;
use std::fmt::Write as _;

/// Errors from parsing the TSV format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// Missing or malformed header line.
    BadHeader(String),
    /// A data line did not parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Two data lines name the same `(machine, element)` pair — almost
    /// certainly a corrupt or hand-mangled file, so we refuse rather than
    /// silently summing.
    DuplicateRow {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated machine index.
        machine: usize,
        /// The repeated element.
        element: u64,
    },
    /// The parsed data violates the model (propagated).
    Invalid(String),
    /// Reading or writing the file failed.
    Io(String),
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::BadHeader(s) => write!(f, "bad header: {s}"),
            TsvError::BadLine { line, content } => write!(f, "bad line {line}: {content:?}"),
            TsvError::DuplicateRow {
                line,
                machine,
                element,
            } => write!(
                f,
                "line {line} repeats machine {machine}, element {element}"
            ),
            TsvError::Invalid(s) => write!(f, "invalid dataset: {s}"),
            TsvError::Io(s) => write!(f, "io error: {s}"),
        }
    }
}

impl std::error::Error for TsvError {}

impl From<DatasetError> for TsvError {
    fn from(e: DatasetError) -> Self {
        TsvError::Invalid(e.to_string())
    }
}

/// Serializes a dataset to the TSV format (deterministic ordering).
pub fn to_tsv(ds: &DistributedDataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# dqs-dataset v1");
    let _ = writeln!(out, "universe\t{}", ds.universe());
    let _ = writeln!(out, "capacity\t{}", ds.capacity());
    let _ = writeln!(out, "machines\t{}", ds.num_machines());
    for (j, shard) in ds.shards().iter().enumerate() {
        for (elem, count) in shard.iter() {
            let _ = writeln!(out, "{j}\t{elem}\t{count}");
        }
    }
    out
}

/// Parses the TSV format back into a validated dataset.
pub fn from_tsv(text: &str) -> Result<DistributedDataset, TsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| TsvError::BadHeader("empty input".into()))?;
    if header.trim() != "# dqs-dataset v1" {
        return Err(TsvError::BadHeader(header.to_string()));
    }
    let mut universe: Option<u64> = None;
    let mut capacity: Option<u64> = None;
    let mut machines: Option<usize> = None;
    let mut triples: Vec<(usize, usize, u64, u64)> = Vec::new();

    for (idx, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let bad = || TsvError::BadLine {
            line: idx + 1,
            content: raw.to_string(),
        };
        match fields.as_slice() {
            ["universe", v] => universe = Some(v.parse().map_err(|_| bad())?),
            ["capacity", v] => capacity = Some(v.parse().map_err(|_| bad())?),
            ["machines", v] => machines = Some(v.parse().map_err(|_| bad())?),
            [j, e, c] => {
                let j: usize = j.parse().map_err(|_| bad())?;
                let e: u64 = e.parse().map_err(|_| bad())?;
                let c: u64 = c.parse().map_err(|_| bad())?;
                triples.push((idx + 1, j, e, c));
            }
            _ => return Err(bad()),
        }
    }
    let universe = universe.ok_or_else(|| TsvError::BadHeader("missing universe".into()))?;
    let capacity = capacity.ok_or_else(|| TsvError::BadHeader("missing capacity".into()))?;
    let machines = machines.ok_or_else(|| TsvError::BadHeader("missing machines".into()))?;
    let mut shards = vec![Multiset::new(); machines];
    for (line, j, e, c) in triples {
        if j >= machines {
            return Err(TsvError::Invalid(format!(
                "machine index {j} out of range 0..{machines}"
            )));
        }
        if shards[j].multiplicity(e) > 0 {
            return Err(TsvError::DuplicateRow {
                line,
                machine: j,
                element: e,
            });
        }
        // `checked_insert_many` so a corrupt count errors instead of
        // wrapping or panicking (the dataset validator re-checks totals
        // across machines with the same discipline).
        shards[j]
            .checked_insert_many(e, c)
            .ok_or(TsvError::Invalid(
                DatasetError::CountOverflow { element: e }.to_string(),
            ))?;
    }
    Ok(DistributedDataset::new(universe, capacity, shards)?)
}

/// Reads and parses a dataset from a TSV file on disk.
pub fn read_tsv_file(path: impl AsRef<std::path::Path>) -> Result<DistributedDataset, TsvError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| TsvError::Io(format!("{}: {e}", path.display())))?;
    from_tsv(&text)
}

/// Serializes a dataset to a TSV file on disk.
pub fn write_tsv_file(
    ds: &DistributedDataset,
    path: impl AsRef<std::path::Path>,
) -> Result<(), TsvError> {
    let path = path.as_ref();
    std::fs::write(path, to_tsv(ds)).map_err(|e| TsvError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            16,
            4,
            vec![
                Multiset::from_counts([(0, 2), (9, 1)]),
                Multiset::from_counts([(9, 3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        let ds = dataset();
        let text = to_tsv(&ds);
        let back = from_tsv(&text).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn format_is_deterministic_and_readable() {
        let text = to_tsv(&dataset());
        assert!(text.starts_with("# dqs-dataset v1\n"));
        assert!(text.contains("universe\t16"));
        assert!(text.contains("0\t9\t1"));
        assert_eq!(to_tsv(&dataset()), text);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut text = to_tsv(&dataset());
        text.push_str("\n# trailing comment\n\n");
        assert_eq!(from_tsv(&text).unwrap(), dataset());
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            from_tsv("not a dataset"),
            Err(TsvError::BadHeader(_))
        ));
        assert!(matches!(from_tsv(""), Err(TsvError::BadHeader(_))));
    }

    #[test]
    fn bad_line_reports_position() {
        let text = "# dqs-dataset v1\nuniverse\t8\ncapacity\t2\nmachines\t1\n0\tx\t1\n";
        match from_tsv(text) {
            Err(TsvError::BadLine { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_machine_rejected() {
        let text = "# dqs-dataset v1\nuniverse\t8\ncapacity\t2\nmachines\t1\n3\t0\t1\n";
        assert!(matches!(from_tsv(text), Err(TsvError::Invalid(_))));
    }

    #[test]
    fn invalid_dataset_propagates() {
        // capacity violated: element 0 total 5 > ν = 2
        let text = "# dqs-dataset v1\nuniverse\t8\ncapacity\t2\nmachines\t1\n0\t0\t5\n";
        assert!(matches!(from_tsv(text), Err(TsvError::Invalid(_))));
    }

    #[test]
    fn duplicate_row_rejected_with_position() {
        let text = "# dqs-dataset v1\nuniverse\t8\ncapacity\t4\nmachines\t1\n0\t1\t2\n0\t1\t1\n";
        match from_tsv(text) {
            Err(TsvError::DuplicateRow {
                line,
                machine,
                element,
            }) => {
                assert_eq!((line, machine, element), (6, 0, 1));
            }
            other => panic!("expected DuplicateRow, got {other:?}"),
        }
    }

    #[test]
    fn overflowing_count_is_a_typed_error_not_a_panic() {
        // Two near-u64::MAX counts on different machines: each row parses,
        // the cross-machine total overflows — caught by the validator.
        let huge = u64::MAX - 1;
        let text = format!(
            "# dqs-dataset v1\nuniverse\t8\ncapacity\t{huge}\nmachines\t2\n0\t1\t{huge}\n1\t1\t{huge}\n"
        );
        match from_tsv(&text) {
            Err(TsvError::Invalid(msg)) => assert!(msg.contains("overflow"), "{msg}"),
            other => panic!("expected overflow error, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join("dqs-tsv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.tsv");
        write_tsv_file(&dataset(), &path).unwrap();
        assert_eq!(read_tsv_file(&path).unwrap(), dataset());
        let missing = dir.join("does-not-exist.tsv");
        match read_tsv_file(&missing) {
            Err(TsvError::Io(msg)) => assert!(msg.contains("does-not-exist"), "{msg}"),
            other => panic!("expected Io error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
