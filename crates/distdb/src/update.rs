//! Dynamic database updates (§3's remark).
//!
//! The paper observes that when `c_ij` changes by ±1 the oracle `O_j` can be
//! updated by composing the element-controlled increment `U` (or `U†`),
//! where `U|i⟩|s⟩ = |i⟩|(s+1) mod (ν+1)⟩` controlled on the element register
//! holding `i`. We model a stream of such updates as an [`UpdateLog`]; the
//! oracle layer applies the base counts and then the net logged delta, which
//! is exactly the composition `U^{±1}·…·O_j`. Experiment E9 verifies that an
//! oracle with a log behaves identically to an oracle over the edited
//! dataset.

use crate::dataset::{DatasetError, DistributedDataset};
use crate::multiset::Multiset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised when an [`UpdateLog`] cannot be applied to a base dataset.
///
/// This is the typed counterpart of [`UpdateLog::apply_to`]'s panic
/// contract, used by the live-write tier (DESIGN.md §15): a serving process
/// must reject a corrupt update stream as a request error, never die on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An op names a machine index outside the dataset.
    UnknownMachine {
        /// The machine the op named.
        machine: usize,
        /// How many machines the dataset has.
        machines: usize,
    },
    /// The net delta would drive a multiplicity negative — inconsistent
    /// with any dataset history.
    NegativeMultiplicity {
        /// Machine whose shard would go negative.
        machine: usize,
        /// Element whose multiplicity would go negative.
        element: u64,
        /// The base multiplicity.
        base: u64,
        /// The net delta applied to it.
        delta: i64,
    },
    /// The updated dataset violates a model constraint (element range,
    /// capacity `ν`, emptiness, count overflow).
    Dataset(DatasetError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownMachine { machine, machines } => {
                write!(f, "update names machine {machine} of {machines}")
            }
            UpdateError::NegativeMultiplicity {
                machine,
                element,
                base,
                delta,
            } => write!(
                f,
                "update drives c[{element},{machine}] negative ({base} {delta:+})"
            ),
            UpdateError::Dataset(e) => write!(f, "updated dataset is invalid: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatasetError> for UpdateError {
    fn from(e: DatasetError) -> Self {
        UpdateError::Dataset(e)
    }
}

/// One dynamic update: the multiplicity of `element` on `machine` changes
/// by `delta` (±1 in the paper; we allow any step and treat it as `|delta|`
/// composed applications of `U` or `U†`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateOp {
    /// Machine whose shard changes.
    pub machine: usize,
    /// Element whose multiplicity changes.
    pub element: u64,
    /// Signed multiplicity change.
    pub delta: i64,
}

impl UpdateOp {
    /// An insertion of one occurrence.
    pub fn insert(machine: usize, element: u64) -> Self {
        Self {
            machine,
            element,
            delta: 1,
        }
    }

    /// A deletion of one occurrence.
    pub fn delete(machine: usize, element: u64) -> Self {
        Self {
            machine,
            element,
            delta: -1,
        }
    }
}

/// An append-only stream of updates with fast net-delta lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UpdateLog {
    ops: Vec<UpdateOp>,
    net: BTreeMap<(usize, u64), i64>,
}

impl UpdateLog {
    /// The empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an update.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
        let slot = self.net.entry((op.machine, op.element)).or_insert(0);
        *slot += op.delta;
        if *slot == 0 {
            self.net.remove(&(op.machine, op.element));
        }
    }

    /// All updates in arrival order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of logged operations (each `|delta|` counts as that many
    /// compositions of `U`/`U†`).
    pub fn composed_unitaries(&self) -> u64 {
        self.ops.iter().map(|o| o.delta.unsigned_abs()).sum()
    }

    /// Net multiplicity change for `(machine, element)`.
    pub fn net_delta(&self, machine: usize, element: u64) -> i64 {
        self.net.get(&(machine, element)).copied().unwrap_or(0)
    }

    /// All nonzero net deltas as `(machine, element, delta)`, in
    /// `(machine, element)` order. This is the composition interface the
    /// fused-oracle total table uses: `c_i ← c_i + Σ_j delta_ij`.
    pub fn net_deltas(&self) -> impl Iterator<Item = (usize, u64, i64)> + '_ {
        self.net.iter().map(|(&(m, e), &d)| (m, e, d))
    }

    /// Effective multiplicity after applying the log to a base count.
    ///
    /// # Panics
    ///
    /// Panics if the log would drive a multiplicity negative — such a log is
    /// inconsistent with any dataset history.
    pub fn effective_multiplicity(&self, base: u64, machine: usize, element: u64) -> u64 {
        let d = self.net_delta(machine, element);
        let eff = base as i64 + d;
        assert!(
            eff >= 0,
            "update log drives c[{element},{machine}] negative ({base} + {d})"
        );
        eff as u64
    }

    /// Materializes the log into a new dataset (the "rebuild from scratch"
    /// comparator for Experiment E9).
    ///
    /// # Panics
    ///
    /// Panics on any [`UpdateError`]: negative effective multiplicities,
    /// machine indices out of range, or a constraint-violating result.
    pub fn apply_to(&self, base: &DistributedDataset) -> DistributedDataset {
        self.try_apply_to(base)
            // lint: allow(panic): part of the documented `# Panics` contract
            // above — a log that breaks validity has no consistent history.
            .expect("updated dataset must stay valid")
    }

    /// Materializes the log into a new dataset, validating incrementally.
    ///
    /// Cost is `O(n + touched·n)` rather than the `O(N·n)` of a full
    /// [`DistributedDataset::new`] validation: starting from an
    /// already-valid base, only the touched `(machine, element)` entries can
    /// introduce a violation, so range, negativity, capacity `ν`, and
    /// overflow are re-checked only there (capacity sums the touched
    /// element's multiplicity across all machines). Untouched shards of the
    /// result share storage with the base (copy-on-write).
    pub fn try_apply_to(
        &self,
        base: &DistributedDataset,
    ) -> Result<DistributedDataset, UpdateError> {
        let mut shards: Vec<Multiset> = base.shards().to_vec();
        let universe = base.universe();
        let capacity = base.capacity();
        for (&(machine, element), &delta) in &self.net {
            if machine >= shards.len() {
                return Err(UpdateError::UnknownMachine {
                    machine,
                    machines: shards.len(),
                });
            }
            if element >= universe {
                return Err(UpdateError::Dataset(DatasetError::ElementOutOfRange {
                    machine,
                    element,
                    universe,
                }));
            }
            let cur = shards[machine].multiplicity(element);
            let eff = (cur as i64).checked_add(delta).ok_or(UpdateError::Dataset(
                DatasetError::CountOverflow { element },
            ))?;
            if eff < 0 {
                return Err(UpdateError::NegativeMultiplicity {
                    machine,
                    element,
                    base: cur,
                    delta,
                });
            }
            shards[machine].remove_many(element, cur);
            shards[machine].insert_many(element, eff as u64);
        }
        // Capacity / overflow re-check, only at touched elements.
        let mut touched: Vec<u64> = self.net.keys().map(|&(_, e)| e).collect();
        touched.sort_unstable();
        touched.dedup();
        for element in touched {
            let mut total = 0u64;
            for shard in &shards {
                total =
                    total
                        .checked_add(shard.multiplicity(element))
                        .ok_or(UpdateError::Dataset(DatasetError::CountOverflow {
                            element,
                        }))?;
            }
            if total > capacity {
                return Err(UpdateError::Dataset(DatasetError::CapacityExceeded {
                    element,
                    total,
                    capacity,
                }));
            }
        }
        if shards.iter().all(|s| s.is_empty()) {
            return Err(UpdateError::Dataset(DatasetError::EmptyDataset));
        }
        Ok(DistributedDataset::from_validated_parts(
            universe, capacity, shards,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DistributedDataset {
        DistributedDataset::new(
            8,
            5,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (3, 2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_and_net_delta() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 1));
        log.push(UpdateOp::insert(0, 1));
        log.push(UpdateOp::delete(0, 1));
        assert_eq!(log.net_delta(0, 1), 1);
        assert_eq!(log.net_delta(1, 1), 0);
        assert_eq!(log.ops().len(), 3);
        assert_eq!(log.composed_unitaries(), 3);
    }

    #[test]
    fn cancelled_deltas_are_dropped() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(1, 3));
        log.push(UpdateOp::delete(1, 3));
        assert_eq!(log.net_delta(1, 3), 0);
        // The materialized dataset equals the base.
        assert_eq!(log.apply_to(&base()), base());
    }

    #[test]
    fn effective_multiplicity_adds_delta() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 0));
        assert_eq!(log.effective_multiplicity(2, 0, 0), 3);
        assert_eq!(log.effective_multiplicity(2, 1, 0), 2);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_effective_multiplicity_panics() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::delete(0, 5));
        let _ = log.effective_multiplicity(0, 0, 5);
    }

    #[test]
    fn apply_to_matches_manual_edit() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 4)); // new element on machine 0
        log.push(UpdateOp::delete(1, 3)); // remove one occurrence
        let updated = log.apply_to(&base());
        assert_eq!(updated.multiplicity(4, 0), 1);
        assert_eq!(updated.multiplicity(3, 1), 1);
        assert_eq!(updated.total_count(), base().total_count());
    }

    #[test]
    fn try_apply_to_shares_untouched_shards() {
        let base = base();
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 4));
        let updated = log.try_apply_to(&base).unwrap();
        assert!(
            !updated.shards()[0].shares_storage_with(&base.shards()[0]),
            "touched shard is copied"
        );
        assert!(
            updated.shards()[1].shares_storage_with(&base.shards()[1]),
            "untouched shard is shared, not copied (MVCC copy-on-write)"
        );
    }

    #[test]
    fn try_apply_to_rejects_unknown_machine() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(5, 0));
        assert_eq!(
            log.try_apply_to(&base()).unwrap_err(),
            UpdateError::UnknownMachine {
                machine: 5,
                machines: 2
            }
        );
    }

    #[test]
    fn try_apply_to_rejects_negative_multiplicity() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::delete(0, 5));
        assert_eq!(
            log.try_apply_to(&base()).unwrap_err(),
            UpdateError::NegativeMultiplicity {
                machine: 0,
                element: 5,
                base: 0,
                delta: -1
            }
        );
    }

    #[test]
    fn try_apply_to_rejects_out_of_range_element() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 99));
        assert!(matches!(
            log.try_apply_to(&base()).unwrap_err(),
            UpdateError::Dataset(DatasetError::ElementOutOfRange { element: 99, .. })
        ));
    }

    #[test]
    fn try_apply_to_rejects_capacity_violation() {
        // Element 3 has total 2 in base() with ν = 5; +4 pushes it to 6.
        let mut log = UpdateLog::new();
        log.push(UpdateOp {
            machine: 0,
            element: 3,
            delta: 4,
        });
        assert!(matches!(
            log.try_apply_to(&base()).unwrap_err(),
            UpdateError::Dataset(DatasetError::CapacityExceeded {
                element: 3,
                total: 6,
                capacity: 5
            })
        ));
    }

    #[test]
    fn try_apply_to_rejects_emptied_dataset() {
        let mut log = UpdateLog::new();
        for (machine, shard) in base().shards().iter().enumerate() {
            for (element, count) in shard.iter() {
                log.push(UpdateOp {
                    machine,
                    element,
                    delta: -(count as i64),
                });
            }
        }
        assert_eq!(
            log.try_apply_to(&base()).unwrap_err(),
            UpdateError::Dataset(DatasetError::EmptyDataset)
        );
    }

    #[test]
    fn try_apply_to_agrees_with_full_revalidation() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 4));
        log.push(UpdateOp::delete(1, 3));
        log.push(UpdateOp::insert(1, 7));
        let fast = log.try_apply_to(&base()).unwrap();
        let slow =
            DistributedDataset::new(fast.universe(), fast.capacity(), fast.shards().to_vec())
                .unwrap();
        assert_eq!(fast, slow);
    }
}
