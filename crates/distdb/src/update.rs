//! Dynamic database updates (§3's remark).
//!
//! The paper observes that when `c_ij` changes by ±1 the oracle `O_j` can be
//! updated by composing the element-controlled increment `U` (or `U†`),
//! where `U|i⟩|s⟩ = |i⟩|(s+1) mod (ν+1)⟩` controlled on the element register
//! holding `i`. We model a stream of such updates as an [`UpdateLog`]; the
//! oracle layer applies the base counts and then the net logged delta, which
//! is exactly the composition `U^{±1}·…·O_j`. Experiment E9 verifies that an
//! oracle with a log behaves identically to an oracle over the edited
//! dataset.

use crate::dataset::DistributedDataset;
use crate::multiset::Multiset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One dynamic update: the multiplicity of `element` on `machine` changes
/// by `delta` (±1 in the paper; we allow any step and treat it as `|delta|`
/// composed applications of `U` or `U†`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateOp {
    /// Machine whose shard changes.
    pub machine: usize,
    /// Element whose multiplicity changes.
    pub element: u64,
    /// Signed multiplicity change.
    pub delta: i64,
}

impl UpdateOp {
    /// An insertion of one occurrence.
    pub fn insert(machine: usize, element: u64) -> Self {
        Self {
            machine,
            element,
            delta: 1,
        }
    }

    /// A deletion of one occurrence.
    pub fn delete(machine: usize, element: u64) -> Self {
        Self {
            machine,
            element,
            delta: -1,
        }
    }
}

/// An append-only stream of updates with fast net-delta lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UpdateLog {
    ops: Vec<UpdateOp>,
    net: BTreeMap<(usize, u64), i64>,
}

impl UpdateLog {
    /// The empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an update.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
        let slot = self.net.entry((op.machine, op.element)).or_insert(0);
        *slot += op.delta;
        if *slot == 0 {
            self.net.remove(&(op.machine, op.element));
        }
    }

    /// All updates in arrival order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of logged operations (each `|delta|` counts as that many
    /// compositions of `U`/`U†`).
    pub fn composed_unitaries(&self) -> u64 {
        self.ops.iter().map(|o| o.delta.unsigned_abs()).sum()
    }

    /// Net multiplicity change for `(machine, element)`.
    pub fn net_delta(&self, machine: usize, element: u64) -> i64 {
        self.net.get(&(machine, element)).copied().unwrap_or(0)
    }

    /// All nonzero net deltas as `(machine, element, delta)`, in
    /// `(machine, element)` order. This is the composition interface the
    /// fused-oracle total table uses: `c_i ← c_i + Σ_j delta_ij`.
    pub fn net_deltas(&self) -> impl Iterator<Item = (usize, u64, i64)> + '_ {
        self.net.iter().map(|(&(m, e), &d)| (m, e, d))
    }

    /// Effective multiplicity after applying the log to a base count.
    ///
    /// # Panics
    ///
    /// Panics if the log would drive a multiplicity negative — such a log is
    /// inconsistent with any dataset history.
    pub fn effective_multiplicity(&self, base: u64, machine: usize, element: u64) -> u64 {
        let d = self.net_delta(machine, element);
        let eff = base as i64 + d;
        assert!(
            eff >= 0,
            "update log drives c[{element},{machine}] negative ({base} + {d})"
        );
        eff as u64
    }

    /// Materializes the log into a new dataset (the "rebuild from scratch"
    /// comparator for Experiment E9).
    ///
    /// # Panics
    ///
    /// Panics on negative effective multiplicities or machine indices out of
    /// range.
    pub fn apply_to(&self, base: &DistributedDataset) -> DistributedDataset {
        let mut shards: Vec<Multiset> = base.shards().to_vec();
        for (&(machine, element), &delta) in &self.net {
            assert!(
                machine < shards.len(),
                "update for unknown machine {machine}"
            );
            let cur = shards[machine].multiplicity(element);
            let eff = cur as i64 + delta;
            assert!(eff >= 0, "net delta drives multiplicity negative");
            shards[machine].remove_many(element, cur);
            shards[machine].insert_many(element, eff as u64);
        }
        DistributedDataset::new(base.universe(), base.capacity(), shards)
            // lint: allow(panic): part of the documented `# Panics` contract
            // above — a log that breaks validity has no consistent history.
            .expect("updated dataset must stay valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DistributedDataset {
        DistributedDataset::new(
            8,
            5,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (3, 2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_and_net_delta() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 1));
        log.push(UpdateOp::insert(0, 1));
        log.push(UpdateOp::delete(0, 1));
        assert_eq!(log.net_delta(0, 1), 1);
        assert_eq!(log.net_delta(1, 1), 0);
        assert_eq!(log.ops().len(), 3);
        assert_eq!(log.composed_unitaries(), 3);
    }

    #[test]
    fn cancelled_deltas_are_dropped() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(1, 3));
        log.push(UpdateOp::delete(1, 3));
        assert_eq!(log.net_delta(1, 3), 0);
        // The materialized dataset equals the base.
        assert_eq!(log.apply_to(&base()), base());
    }

    #[test]
    fn effective_multiplicity_adds_delta() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 0));
        assert_eq!(log.effective_multiplicity(2, 0, 0), 3);
        assert_eq!(log.effective_multiplicity(2, 1, 0), 2);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_effective_multiplicity_panics() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::delete(0, 5));
        let _ = log.effective_multiplicity(0, 0, 5);
    }

    #[test]
    fn apply_to_matches_manual_edit() {
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 4)); // new element on machine 0
        log.push(UpdateOp::delete(1, 3)); // remove one occurrence
        let updated = log.apply_to(&base());
        assert_eq!(updated.multiplicity(4, 0), 1);
        assert_eq!(updated.multiplicity(3, 1), 1);
        assert_eq!(updated.total_count(), base().total_count());
    }
}
