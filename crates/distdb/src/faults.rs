//! Fault injection for the distributed oracle model.
//!
//! The paper assumes every machine answers every counting-oracle query
//! perfectly. This module drops that assumption *deterministically*: a
//! [`FaultPlan`] is a per-machine schedule of faults (crashes, transient
//! failures, stale views, corrupted counts) keyed on the machine's own
//! query-attempt counter, and a [`FaultyOracleSet`] wraps an [`OracleSet`]
//! so the same cascades the samplers already use surface failures as a
//! typed [`OracleError`] instead of panicking.
//!
//! ## Accounting rules (honest ledger)
//!
//! * Every probe of a machine — successful, failed, or retried — is charged
//!   to the [`QueryLedger`] **before** its outcome is
//!   inspected. A retry is a real oracle query; a crashed machine still
//!   costs the query that discovered the crash. Charging is therefore
//!   impossible to skip on any error path.
//! * In the parallel model every round queries every machine once, so each
//!   round bumps every machine's attempt counter and bills one round —
//!   including rounds that have to be replayed because a machine failed.
//!
//! ## Probe-then-apply
//!
//! Cascade methods first probe *every* machine in cascade order (collecting
//! answers and charging queries) and only then touch the quantum state. On
//! failure the state is untouched, and the fused and gate-by-gate
//! realizations — which probe in the same order — stay bit-identical in
//! both output state and ledger, faulty or not.

use crate::counter::QueryLedger;
use crate::oracle::{OracleRegisters, OracleSet, ParallelRegisters};
use dqs_sim::{QuantumState, SimError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One kind of machine misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The machine stops answering permanently from the trigger query on.
    Crashed,
    /// The machine fails the next `fail_count` queries after the trigger,
    /// then recovers.
    Transient {
        /// How many consecutive queries fail.
        fail_count: u32,
    },
    /// The machine answers from a stale view: only the first
    /// `as_of_update` operations of the update log are visible to it.
    Stale {
        /// Length of the update-log prefix the machine has applied.
        as_of_update: usize,
    },
    /// Every answer from the machine is off by `delta` (clamped at zero).
    /// Multiple corrupt events accumulate.
    Corrupt {
        /// Signed count error added to every answer.
        delta: i64,
    },
}

/// A scheduled fault: `kind` takes effect at the machine's `at_query`-th
/// query attempt (0-based) and — except for `Transient` — stays in effect
/// for every later attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// 0-based query-attempt index at which the fault triggers.
    pub at_query: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Fault probabilities and magnitudes for seeded plan generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability a machine crashes somewhere in the horizon.
    pub crash: f64,
    /// Probability of one transient-failure burst.
    pub transient: f64,
    /// Probability the machine serves a stale update-log prefix.
    pub stale: f64,
    /// Probability the machine's answers are corrupted.
    pub corrupt: f64,
    /// Fault onset times are drawn uniformly from `[0, horizon)`.
    pub horizon: u64,
    /// Transient bursts fail `1..=max_transient_failures` queries.
    pub max_transient_failures: u32,
    /// Corrupt deltas are drawn from `±1..=max_corrupt_delta`.
    pub max_corrupt_delta: i64,
    /// Stale prefixes are drawn from `0..max_stale_updates`.
    pub max_stale_updates: usize,
}

impl FaultRates {
    /// Every fault class at the same `rate`, onsets within `horizon`
    /// queries, with small default magnitudes.
    pub fn uniform(rate: f64, horizon: u64) -> Self {
        Self {
            crash: rate,
            transient: rate,
            stale: rate,
            corrupt: rate,
            horizon: horizon.max(1),
            max_transient_failures: 3,
            max_corrupt_delta: 2,
            max_stale_updates: 4,
        }
    }
}

/// The fixed-increment splitmix64 generator — tiny, seedable, and
/// dependency-free, so plans stay bit-identical across platforms and
/// builds (the workspace `rand` is only a dev-dependency here).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    // 53 uniform bits → [0, 1)
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic per-machine fault schedule.
///
/// Two plans built from the same seed and rates are equal (`PartialEq` is
/// exact), and [`FaultPlan::outcome`] is a pure function of
/// `(machine, attempt)` — replaying a run replays its faults bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    schedules: Vec<Vec<FaultEvent>>,
}

impl FaultPlan {
    /// The fault-free plan for `n` machines.
    pub fn none(n: usize) -> Self {
        Self {
            schedules: vec![Vec::new(); n],
        }
    }

    /// A plan from explicit per-machine schedules; each schedule is sorted
    /// by trigger query.
    pub fn from_schedules(mut schedules: Vec<Vec<FaultEvent>>) -> Self {
        for s in &mut schedules {
            s.sort_by_key(|e| e.at_query);
        }
        Self { schedules }
    }

    /// A seeded plan: for each machine, each fault class fires
    /// independently with its [`FaultRates`] probability at a uniform
    /// onset in `[0, horizon)`. Fully deterministic in `(n, seed, rates)`.
    pub fn seeded(n: usize, seed: u64, rates: &FaultRates) -> Self {
        let mut schedules = Vec::with_capacity(n);
        for machine in 0..n {
            // Decorrelate machine streams so inserting a machine does not
            // shift every later machine's schedule.
            let mut s = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((machine as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
            let mut events = Vec::new();
            let onset = |s: &mut u64| splitmix64(s) % rates.horizon.max(1);
            if unit_f64(&mut s) < rates.crash {
                events.push(FaultEvent {
                    at_query: onset(&mut s),
                    kind: FaultKind::Crashed,
                });
            }
            if unit_f64(&mut s) < rates.transient {
                let fail_count =
                    1 + (splitmix64(&mut s) % rates.max_transient_failures.max(1) as u64) as u32;
                events.push(FaultEvent {
                    at_query: onset(&mut s),
                    kind: FaultKind::Transient { fail_count },
                });
            }
            if unit_f64(&mut s) < rates.stale {
                let as_of_update =
                    (splitmix64(&mut s) % rates.max_stale_updates.max(1) as u64) as usize;
                events.push(FaultEvent {
                    at_query: onset(&mut s),
                    kind: FaultKind::Stale { as_of_update },
                });
            }
            if unit_f64(&mut s) < rates.corrupt {
                let mag = 1 + (splitmix64(&mut s) % rates.max_corrupt_delta.max(1) as u64) as i64;
                let delta = if splitmix64(&mut s) & 1 == 0 {
                    mag
                } else {
                    -mag
                };
                events.push(FaultEvent {
                    at_query: onset(&mut s),
                    kind: FaultKind::Corrupt { delta },
                });
            }
            events.sort_by_key(|e| e.at_query);
            schedules.push(events);
        }
        Self { schedules }
    }

    /// Number of machines the plan covers.
    pub fn num_machines(&self) -> usize {
        self.schedules.len()
    }

    /// The schedule for one machine, sorted by trigger query.
    pub fn schedule(&self, machine: usize) -> &[FaultEvent] {
        &self.schedules[machine]
    }

    /// True when no machine has any scheduled fault.
    pub fn is_fault_free(&self) -> bool {
        self.schedules.iter().all(Vec::is_empty)
    }

    /// The outcome of `machine`'s `attempt`-th query (0-based): either a
    /// (possibly degraded) [`Answer`] or a failure. Pure and total.
    pub fn outcome(&self, machine: usize, attempt: u64) -> QueryOutcome {
        let mut stale_as_of = None;
        let mut corrupt_delta = 0i64;
        let mut failed: Option<bool> = None;
        for ev in &self.schedules[machine] {
            if ev.at_query > attempt {
                break; // sorted: nothing later has triggered yet
            }
            match ev.kind {
                FaultKind::Crashed => failed = Some(true),
                FaultKind::Transient { fail_count } => {
                    if attempt < ev.at_query + u64::from(fail_count) && failed != Some(true) {
                        failed = Some(false);
                    }
                }
                FaultKind::Stale { as_of_update } => stale_as_of = Some(as_of_update),
                FaultKind::Corrupt { delta } => corrupt_delta += delta,
            }
        }
        match failed {
            Some(permanent) => QueryOutcome::Failed { permanent },
            None => QueryOutcome::Answer(Answer {
                stale_as_of,
                corrupt_delta,
            }),
        }
    }
}

/// The content of a (possibly degraded) oracle answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    /// `Some(k)` — the machine has only applied the first `k` update-log
    /// operations; `None` — the view is current.
    pub stale_as_of: Option<usize>,
    /// Accumulated corruption added to every count (clamped at zero).
    pub corrupt_delta: i64,
}

impl Answer {
    /// The honest answer.
    pub fn clean() -> Self {
        Self {
            stale_as_of: None,
            corrupt_delta: 0,
        }
    }

    /// True when the answer matches the faultless oracle exactly.
    pub fn is_clean(&self) -> bool {
        self.stale_as_of.is_none() && self.corrupt_delta == 0
    }
}

/// What one query attempt produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The machine answered (perhaps stale or corrupt).
    Answer(Answer),
    /// The machine failed; `permanent` distinguishes crashes from
    /// transient faults that may clear on retry.
    Failed {
        /// Retrying can never succeed when true.
        permanent: bool,
    },
}

/// Emits the observability event matching one probe outcome: failures and
/// degraded (stale/corrupt) answers are counted per machine; clean answers
/// stay silent — the `oracle.query` charge already covers them.
fn emit_outcome(machine: usize, outcome: &QueryOutcome) {
    match outcome {
        QueryOutcome::Failed { .. } => {
            dqs_obs::machine_counter(dqs_obs::names::FAULT_FAILURE, machine, 1)
        }
        QueryOutcome::Answer(ans) if !ans.is_clean() => {
            dqs_obs::machine_counter(dqs_obs::names::FAULT_DEGRADED, machine, 1)
        }
        QueryOutcome::Answer(_) => {}
    }
}

/// Typed failure surfaced by the faulty oracle layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleError {
    /// A machine failed and the fault handler gave up on it.
    MachineUnavailable {
        /// The failed machine.
        machine: usize,
        /// Its attempt counter at the failing query (0-based).
        attempt: u64,
        /// True for crashes — retrying is pointless.
        permanent: bool,
    },
    /// The simulator rejected an answer-driven state rewrite.
    Sim(SimError),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::MachineUnavailable {
                machine,
                attempt,
                permanent,
            } => write!(
                f,
                "machine {machine} unavailable at query {attempt} ({})",
                if *permanent { "crashed" } else { "transient" }
            ),
            OracleError::Sim(e) => write!(f, "simulator rejected oracle answer: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<SimError> for OracleError {
    fn from(e: SimError) -> Self {
        OracleError::Sim(e)
    }
}

/// What a [`FaultHandler`] wants done about one failed probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureAction {
    /// Probe the machine again (the retry is charged like any query).
    Retry,
    /// Stop querying; the cascade fails with
    /// [`OracleError::MachineUnavailable`].
    GiveUp,
}

/// Per-failure policy hook: retry/backoff/circuit-breaker logic lives in
/// the caller (see `dqs-core`'s `RetryPolicy`), not in the oracle layer.
pub trait FaultHandler {
    /// Called after a failed (and charged) probe of `machine`.
    fn on_failure(&mut self, machine: usize, attempt: u64, permanent: bool) -> FailureAction;

    /// Called after a successful probe — lets policies reset
    /// consecutive-failure counters.
    fn on_success(&mut self, _machine: usize) {}
}

/// The trivial handler: never retries.
#[derive(Debug, Clone, Copy, Default)]
pub struct FailFast;

impl FaultHandler for FailFast {
    fn on_failure(&mut self, _machine: usize, _attempt: u64, _permanent: bool) -> FailureAction {
        FailureAction::GiveUp
    }
}

/// A machine's effective view for one answered query: the stale update-log
/// prefix (when stale) and the accumulated corruption.
struct MachineView {
    machine: usize,
    /// `Some(net)` — per-element net deltas of the visible log prefix;
    /// `None` — current view (full log composed by the base oracle).
    stale_net: Option<BTreeMap<u64, i64>>,
    corrupt: i64,
}

/// A fault-injecting wrapper over an [`OracleSet`].
///
/// Holds per-machine attempt counters (the clock faults are keyed on) and
/// surfaces failures as [`OracleError`]. All cascade entry points are
/// probe-then-apply: on `Err` the state is untouched, while every probe
/// made — including the failing one — remains charged in the ledger.
pub struct FaultyOracleSet<'a> {
    oracles: &'a OracleSet<'a>,
    plan: &'a FaultPlan,
    attempts: Vec<AtomicU64>,
    /// Set once any probe returns a *silently wrong* answer (stale or
    /// corrupt). Loud failures (crash/transient) do not taint: they either
    /// retry into a clean answer or abort the caller with a typed error,
    /// so no wrong value can flow into derived artifacts unnoticed.
    tainted: AtomicBool,
}

impl<'a> FaultyOracleSet<'a> {
    /// Wraps `oracles` with the given plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different number of machines than the
    /// dataset.
    pub fn new(oracles: &'a OracleSet<'a>, plan: &'a FaultPlan) -> Self {
        assert_eq!(
            plan.num_machines(),
            oracles.dataset().num_machines(),
            "fault plan must cover every machine"
        );
        Self {
            oracles,
            plan,
            attempts: (0..plan.num_machines())
                .map(|_| AtomicU64::new(0))
                .collect(),
            tainted: AtomicBool::new(false),
        }
    }

    /// The wrapped oracle set.
    pub fn oracles(&self) -> &OracleSet<'a> {
        self.oracles
    }

    /// The fault plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// The ledger every probe is charged to.
    pub fn ledger(&self) -> &QueryLedger {
        self.oracles.ledger()
    }

    /// How many times `machine` has been probed so far.
    pub fn attempts(&self, machine: usize) -> u64 {
        self.attempts[machine].load(Ordering::Relaxed)
    }

    /// Per-machine probe counters.
    pub fn attempt_counts(&self) -> Vec<u64> {
        (0..self.attempts.len()).map(|j| self.attempts(j)).collect()
    }

    /// Issues one query to `machine`: charges the ledger, bumps the
    /// attempt counter, and reports the scheduled outcome. The charge
    /// happens *first*, unconditionally — failures are real queries.
    pub fn probe(&self, machine: usize) -> QueryOutcome {
        self.oracles.ledger().record_sequential(machine);
        dqs_obs::machine_counter(dqs_obs::names::ORACLE_QUERY, machine, 1);
        let attempt = self.attempts[machine].fetch_add(1, Ordering::Relaxed);
        let outcome = self.plan.outcome(machine, attempt);
        self.record_taint(&outcome);
        emit_outcome(machine, &outcome);
        outcome
    }

    /// True once any probe has answered stale or corrupt. The flag is
    /// monotone: a later clean answer cannot clear it, because a value
    /// derived from the earlier dirty read may already be in flight — this
    /// is the poison signal artifact caches key their insert decision on.
    pub fn is_tainted(&self) -> bool {
        self.tainted.load(Ordering::Relaxed)
    }

    fn record_taint(&self, outcome: &QueryOutcome) {
        if matches!(outcome, QueryOutcome::Answer(ans) if !ans.is_clean()) {
            self.tainted.store(true, Ordering::Relaxed);
        }
    }

    /// Probes `machine` until it answers or `handler` gives up. Every
    /// retry is a charged query.
    pub fn probe_with_retry(
        &self,
        machine: usize,
        handler: &mut impl FaultHandler,
    ) -> Result<Answer, OracleError> {
        loop {
            let attempt = self.attempts(machine);
            match self.probe(machine) {
                QueryOutcome::Answer(ans) => {
                    handler.on_success(machine);
                    return Ok(ans);
                }
                QueryOutcome::Failed { permanent } => {
                    match handler.on_failure(machine, attempt, permanent) {
                        FailureAction::Retry => continue,
                        FailureAction::GiveUp => {
                            return Err(OracleError::MachineUnavailable {
                                machine,
                                attempt,
                                permanent,
                            })
                        }
                    }
                }
            }
        }
    }

    /// Builds the effective per-machine view for one answer. Stale views
    /// compose only the visible update-log prefix.
    fn view(&self, machine: usize, ans: Answer) -> MachineView {
        let stale_net = ans.stale_as_of.map(|k| {
            let mut net = BTreeMap::new();
            if let Some(log) = self.oracles.updates() {
                for op in log.ops().iter().take(k) {
                    if op.machine == machine {
                        *net.entry(op.element).or_insert(0) += op.delta;
                    }
                }
            }
            net
        });
        MachineView {
            machine,
            stale_net,
            corrupt: ans.corrupt_delta,
        }
    }

    /// The count this view answers for `elem` — stale prefix composed,
    /// corruption added, clamped at zero. Callers reduce mod `ν+1` exactly
    /// like the honest oracle does.
    fn answered_count(&self, view: &MachineView, elem: u64) -> u64 {
        let base = match &view.stale_net {
            Some(net) => {
                let b = self.oracles.dataset().multiplicity(elem, view.machine) as i64
                    + net.get(&elem).copied().unwrap_or(0);
                b.max(0) as u64
            }
            None => self.oracles.effective_multiplicity(elem, view.machine),
        };
        (base as i64).saturating_add(view.corrupt).max(0) as u64
    }

    /// Fallible `O_j` (or `O_j†`): one probed (and charged) query, then
    /// the Eq. (1) rewrite with whatever count the machine answered.
    pub fn apply_oj<S: QuantumState>(
        &self,
        state: &mut S,
        machine: usize,
        regs: OracleRegisters,
        inverse: bool,
        handler: &mut impl FaultHandler,
    ) -> Result<(), OracleError> {
        let ans = self.probe_with_retry(machine, handler)?;
        let view = self.view(machine, ans);
        let modulus = self.oracles.modulus();
        state.try_apply_permutation(|b| {
            let c = self.answered_count(&view, b[regs.elem]) % modulus;
            let add = if inverse { modulus - c } else { c } % modulus;
            b[regs.count] = (b[regs.count] + add) % modulus;
        })?;
        Ok(())
    }

    /// Fallible flag-controlled `Ô_j` (Eq. 2).
    #[allow(clippy::too_many_arguments)]
    pub fn apply_hat_oj<S: QuantumState>(
        &self,
        state: &mut S,
        machine: usize,
        elem_reg: usize,
        count_reg: usize,
        flag_reg: usize,
        inverse: bool,
        handler: &mut impl FaultHandler,
    ) -> Result<(), OracleError> {
        let ans = self.probe_with_retry(machine, handler)?;
        let view = self.view(machine, ans);
        let modulus = self.oracles.modulus();
        state.try_apply_permutation(|b| {
            if b[flag_reg] == 1 {
                let c = self.answered_count(&view, b[elem_reg]) % modulus;
                let add = if inverse { modulus - c } else { c } % modulus;
                b[count_reg] = (b[count_reg] + add) % modulus;
            }
        })?;
        Ok(())
    }

    /// Probes `machines` in the given order (one sequential query each,
    /// retried per `handler`); returns `(machine, answer)` pairs in probe
    /// order. On `Err` every probe already made stays charged. This is the
    /// building block degraded samplers use to run cascades over a
    /// *surviving subset* of machines.
    pub fn probe_machines(
        &self,
        machines: &[usize],
        handler: &mut impl FaultHandler,
    ) -> Result<Vec<(usize, Answer)>, OracleError> {
        let mut out = Vec::with_capacity(machines.len());
        for &j in machines {
            out.push((j, self.probe_with_retry(j, handler)?));
        }
        Ok(out)
    }

    /// One composite parallel round over `machines`: every attempt charges
    /// one round and bumps each listed machine's counter; rounds where some
    /// machine failed are replayed whole (per `handler`). Returns
    /// `(machine, answer)` pairs for the round that finally succeeded.
    pub fn probe_round_machines(
        &self,
        machines: &[usize],
        handler: &mut impl FaultHandler,
    ) -> Result<Vec<(usize, Answer)>, OracleError> {
        loop {
            self.oracles.ledger().record_parallel_round();
            dqs_obs::counter(dqs_obs::names::ORACLE_ROUND, 1);
            let mut outcomes = Vec::with_capacity(machines.len());
            for &j in machines {
                let attempt = self.attempts[j].fetch_add(1, Ordering::Relaxed);
                let outcome = self.plan.outcome(j, attempt);
                self.record_taint(&outcome);
                emit_outcome(j, &outcome);
                outcomes.push((j, attempt, outcome));
            }
            let mut retry = false;
            let mut answers = Vec::with_capacity(machines.len());
            for (j, attempt, outcome) in outcomes {
                match outcome {
                    QueryOutcome::Answer(ans) => {
                        handler.on_success(j);
                        answers.push((j, ans));
                    }
                    QueryOutcome::Failed { permanent } => {
                        match handler.on_failure(j, attempt, permanent) {
                            FailureAction::Retry => retry = true,
                            FailureAction::GiveUp => {
                                return Err(OracleError::MachineUnavailable {
                                    machine: j,
                                    attempt,
                                    permanent,
                                })
                            }
                        }
                    }
                }
            }
            if !retry {
                return Ok(answers);
            }
        }
    }

    /// The per-element answered totals `(Σ_j (a_j(i) mod (ν+1))) mod (ν+1)`
    /// of one probed cascade, indexed over the whole universe — the table a
    /// fused faulty `D` realization rotates by. For clean answers this
    /// equals the honest `total_table` reduced mod `ν+1`.
    pub fn answered_total_table(&self, answers: &[(usize, Answer)]) -> Vec<u64> {
        let modulus = self.oracles.modulus();
        let views: Vec<MachineView> = answers.iter().map(|&(j, a)| self.view(j, a)).collect();
        (0..self.oracles.dataset().universe())
            .map(|i| {
                views
                    .iter()
                    .map(|v| self.answered_count(v, i) % modulus)
                    .sum::<u64>()
                    % modulus
            })
            .collect()
    }

    /// The full per-element count table `machine` answers with under one
    /// probed [`Answer`] — stale prefix composed, corruption added, clamped
    /// at zero, *not* reduced mod `ν+1`. For a clean answer this equals the
    /// machine's true multiplicity table; a dirty answer yields exactly the
    /// wrong table a poisoned artifact build would bake in, which is why
    /// callers must pair this with [`Self::is_tainted`] before caching
    /// anything derived from it.
    pub fn answered_count_table(&self, machine: usize, ans: Answer) -> Vec<u64> {
        let view = self.view(machine, ans);
        (0..self.oracles.dataset().universe())
            .map(|i| self.answered_count(&view, i))
            .collect()
    }

    /// Probes every machine in cascade order, retrying per `handler`,
    /// collecting views. On `Err` all probes made so far stay charged.
    fn collect_cascade(
        &self,
        inverse: bool,
        handler: &mut impl FaultHandler,
    ) -> Result<Vec<MachineView>, OracleError> {
        let n = self.oracles.dataset().num_machines();
        let order: Vec<usize> = if inverse {
            (0..n).rev().collect()
        } else {
            (0..n).collect()
        };
        let answers = self.probe_machines(&order, handler)?;
        Ok(answers
            .into_iter()
            .map(|(j, ans)| self.view(j, ans))
            .collect())
    }

    /// Fallible gate-by-gate cascade `O_1 … O_n` (reversed for the
    /// inverse): probe-then-apply, one rewrite per machine.
    pub fn apply_all_sequential<S: QuantumState>(
        &self,
        state: &mut S,
        regs: OracleRegisters,
        inverse: bool,
        handler: &mut impl FaultHandler,
    ) -> Result<(), OracleError> {
        let views = self.collect_cascade(inverse, handler)?;
        let modulus = self.oracles.modulus();
        for view in &views {
            state.try_apply_permutation(|b| {
                let c = self.answered_count(view, b[regs.elem]) % modulus;
                let add = if inverse { modulus - c } else { c } % modulus;
                b[regs.count] = (b[regs.count] + add) % modulus;
            })?;
        }
        Ok(())
    }

    /// Fallible fused cascade: probes every machine exactly like
    /// [`Self::apply_all_sequential`] (same order, same charges), then
    /// applies the summed answer in one support pass. Bit-identical to the
    /// gate-by-gate path in state and ledger — faults included.
    pub fn apply_all_fused<S: QuantumState>(
        &self,
        state: &mut S,
        regs: OracleRegisters,
        inverse: bool,
        handler: &mut impl FaultHandler,
    ) -> Result<(), OracleError> {
        let views = self.collect_cascade(inverse, handler)?;
        let modulus = self.oracles.modulus();
        state.try_apply_permutation(|b| {
            let total: u64 = views
                .iter()
                .map(|v| self.answered_count(v, b[regs.elem]) % modulus)
                .sum();
            let c = total % modulus;
            let add = if inverse { modulus - c } else { c } % modulus;
            b[regs.count] = (b[regs.count] + add) % modulus;
        })?;
        Ok(())
    }

    /// Fallible composite parallel round `O = ⊗_j Ô_j` (Eq. 3). Each
    /// attempted round charges one parallel round and bumps every
    /// machine's attempt counter; rounds where some machine failed are
    /// replayed whole (per `handler`) — partial rounds never touch the
    /// state.
    pub fn apply_parallel_round<S: QuantumState>(
        &self,
        state: &mut S,
        regs: &ParallelRegisters,
        inverse: bool,
        handler: &mut impl FaultHandler,
    ) -> Result<(), OracleError> {
        let n = self.oracles.dataset().num_machines();
        assert_eq!(
            regs.machines(),
            n,
            "parallel register triples must match the machine count"
        );
        let all: Vec<usize> = (0..n).collect();
        let answers = self.probe_round_machines(&all, handler)?;
        let views: Vec<MachineView> = answers
            .into_iter()
            .map(|(j, ans)| self.view(j, ans))
            .collect();
        let modulus = self.oracles.modulus();
        state.try_apply_permutation(|b| {
            for view in &views {
                let j = view.machine;
                if b[regs.flag[j]] == 1 {
                    let c = self.answered_count(view, b[regs.elem[j]]) % modulus;
                    let add = if inverse { modulus - c } else { c } % modulus;
                    b[regs.count[j]] = (b[regs.count[j]] + add) % modulus;
                }
            }
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DistributedDataset;
    use crate::multiset::Multiset;
    use crate::update::{UpdateLog, UpdateOp};
    use dqs_sim::{Layout, QuantumState, SparseState};

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            4,
            4,
            vec![
                Multiset::from_counts([(0, 2), (1, 1)]),
                Multiset::from_counts([(1, 1), (3, 3)]),
            ],
        )
        .unwrap()
    }

    fn seq_layout(ds: &DistributedDataset) -> Layout {
        Layout::builder()
            .register("i", ds.universe())
            .register("s", ds.capacity() + 1)
            .register("b", 2)
            .build()
    }

    const REGS: OracleRegisters = OracleRegisters { elem: 0, count: 1 };

    /// Retries every transient failure, gives up on crashes.
    struct RetryTransient;
    impl FaultHandler for RetryTransient {
        fn on_failure(&mut self, _m: usize, _a: u64, permanent: bool) -> FailureAction {
            if permanent {
                FailureAction::GiveUp
            } else {
                FailureAction::Retry
            }
        }
    }

    fn superposed(ds: &DistributedDataset) -> SparseState {
        let mut s = SparseState::from_basis(seq_layout(ds), &[0, 0, 0]);
        s.apply_register_unitary(0, &dqs_sim::gates::dft(ds.universe()));
        s
    }

    #[test]
    fn zero_fault_plan_matches_faultless_path_bit_for_bit() {
        let ds = dataset();
        let plan = FaultPlan::none(2);
        assert!(plan.is_fault_free());

        let ledger_f = QueryLedger::new(2);
        let oracles_f = OracleSet::new(&ds, &ledger_f);
        let faulty = FaultyOracleSet::new(&oracles_f, &plan);
        let mut sf = superposed(&ds);
        faulty
            .apply_all_sequential(&mut sf, REGS, false, &mut FailFast)
            .unwrap();

        let ledger_h = QueryLedger::new(2);
        let oracles_h = OracleSet::new(&ds, &ledger_h);
        let mut sh = superposed(&ds);
        oracles_h.apply_all_sequential(&mut sh, REGS, false);

        assert_eq!(sf.to_table(), sh.to_table());
        assert_eq!(ledger_f.snapshot(), ledger_h.snapshot());
    }

    #[test]
    fn fused_equals_gate_by_gate_under_faults() {
        let ds = dataset();
        let plan = FaultPlan::from_schedules(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Corrupt { delta: 1 },
            }],
            vec![FaultEvent {
                at_query: 1,
                kind: FaultKind::Corrupt { delta: -2 },
            }],
        ]);
        for inverse in [false, true] {
            let ledger_g = QueryLedger::new(2);
            let oracles_g = OracleSet::new(&ds, &ledger_g);
            let faulty_g = FaultyOracleSet::new(&oracles_g, &plan);
            let mut sg = superposed(&ds);
            faulty_g
                .apply_all_sequential(&mut sg, REGS, inverse, &mut FailFast)
                .unwrap();
            faulty_g
                .apply_all_sequential(&mut sg, REGS, inverse, &mut FailFast)
                .unwrap();

            let ledger_f = QueryLedger::new(2);
            let oracles_f = OracleSet::new(&ds, &ledger_f);
            let faulty_f = FaultyOracleSet::new(&oracles_f, &plan);
            let mut sf = superposed(&ds);
            faulty_f
                .apply_all_fused(&mut sf, REGS, inverse, &mut FailFast)
                .unwrap();
            faulty_f
                .apply_all_fused(&mut sf, REGS, inverse, &mut FailFast)
                .unwrap();

            assert_eq!(sg.to_table(), sf.to_table(), "inverse={inverse}");
            assert_eq!(ledger_g.snapshot(), ledger_f.snapshot());
        }
    }

    #[test]
    fn transient_fault_retries_are_charged() {
        let ds = dataset();
        let plan = FaultPlan::from_schedules(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Transient { fail_count: 2 },
            }],
            vec![],
        ]);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        let mut s = SparseState::from_basis(seq_layout(&ds), &[0, 0, 0]);
        faulty
            .apply_all_sequential(&mut s, REGS, false, &mut RetryTransient)
            .unwrap();
        // Machine 0 fails twice then answers: 3 charged queries; machine 1
        // answers first try.
        assert_eq!(ledger.snapshot().per_machine, vec![3, 1]);
        // The answer after recovery is honest.
        use dqs_math::approx::approx_eq_c;
        assert!(approx_eq_c(
            s.amplitude(&[0, 2, 0]),
            dqs_math::Complex64::ONE
        ));
    }

    #[test]
    fn crash_fails_loudly_charges_probe_and_leaves_state_untouched() {
        let ds = dataset();
        let plan = FaultPlan::from_schedules(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Crashed,
            }],
        ]);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        let mut s = superposed(&ds);
        let before = s.to_table();
        let err = faulty
            .apply_all_sequential(&mut s, REGS, false, &mut RetryTransient)
            .unwrap_err();
        assert_eq!(
            err,
            OracleError::MachineUnavailable {
                machine: 1,
                attempt: 0,
                permanent: true
            }
        );
        // Probe-then-apply: the state is untouched...
        assert_eq!(s.to_table(), before);
        // ...but both probes (machine 0's answer, machine 1's crash
        // discovery) are charged.
        assert_eq!(ledger.snapshot().per_machine, vec![1, 1]);
    }

    #[test]
    fn stale_machine_answers_log_prefix() {
        let ds = dataset();
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 0)); // op 0: c_{0,0}: 2 → 3
        log.push(UpdateOp::insert(0, 0)); // op 1: c_{0,0}: 3 → 4
        let plan = FaultPlan::from_schedules(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Stale { as_of_update: 1 },
            }],
            vec![],
        ]);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::with_updates(&ds, &ledger, &log);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        let mut s = SparseState::from_basis(seq_layout(&ds), &[0, 0, 0]);
        faulty
            .apply_oj(&mut s, 0, REGS, false, &mut FailFast)
            .unwrap();
        // Stale view saw only op 0: answers 3, not the current 4.
        use dqs_math::approx::approx_eq_c;
        assert!(approx_eq_c(
            s.amplitude(&[0, 3, 0]),
            dqs_math::Complex64::ONE
        ));
    }

    #[test]
    fn corrupt_answers_clamp_at_zero() {
        let ds = dataset();
        let plan = FaultPlan::from_schedules(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Corrupt { delta: -5 },
            }],
            vec![],
        ]);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        // c_{0,0} = 2, corrupted by −5 → clamped to 0: identity on counts.
        let mut s = SparseState::from_basis(seq_layout(&ds), &[0, 1, 0]);
        faulty
            .apply_oj(&mut s, 0, REGS, false, &mut FailFast)
            .unwrap();
        use dqs_math::approx::approx_eq_c;
        assert!(approx_eq_c(
            s.amplitude(&[0, 1, 0]),
            dqs_math::Complex64::ONE
        ));
    }

    #[test]
    fn parallel_round_replays_whole_rounds_and_charges_them() {
        let ds = dataset();
        let layout = Layout::builder()
            .register("i0", ds.universe())
            .register("s0", ds.capacity() + 1)
            .register("b0", 2)
            .register("i1", ds.universe())
            .register("s1", ds.capacity() + 1)
            .register("b1", 2)
            .build();
        let pregs = ParallelRegisters {
            elem: vec![0, 3],
            count: vec![1, 4],
            flag: vec![2, 5],
        };
        let plan = FaultPlan::from_schedules(vec![
            vec![],
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Transient { fail_count: 1 },
            }],
        ]);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        let mut s = SparseState::from_basis(layout, &[1, 0, 1, 3, 0, 1]);
        faulty
            .apply_parallel_round(&mut s, &pregs, false, &mut RetryTransient)
            .unwrap();
        // Round 0 failed on machine 1 and was replayed: 2 rounds charged,
        // both machines probed twice.
        assert_eq!(ledger.parallel_rounds(), 2);
        assert_eq!(faulty.attempt_counts(), vec![2, 2]);
        // The replayed round answers honestly: c_{1,0}=1, c_{3,1}=3.
        use dqs_math::approx::approx_eq_c;
        assert!(approx_eq_c(
            s.amplitude(&[1, 1, 1, 3, 3, 1]),
            dqs_math::Complex64::ONE
        ));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let rates = FaultRates::uniform(0.5, 16);
        let a = FaultPlan::seeded(8, 42, &rates);
        let b = FaultPlan::seeded(8, 42, &rates);
        assert_eq!(a, b);
        // Prefix stability: machine j's schedule does not depend on n.
        let wider = FaultPlan::seeded(12, 42, &rates);
        for j in 0..8 {
            assert_eq!(a.schedule(j), wider.schedule(j), "machine {j}");
        }
        // A saturated plan actually schedules faults.
        let all = FaultPlan::seeded(8, 7, &FaultRates::uniform(1.0, 16));
        assert!(all.schedules.iter().all(|s| s.len() == 4));
    }

    #[test]
    fn outcome_is_pure_and_total() {
        let plan = FaultPlan::from_schedules(vec![vec![
            FaultEvent {
                at_query: 2,
                kind: FaultKind::Transient { fail_count: 1 },
            },
            FaultEvent {
                at_query: 5,
                kind: FaultKind::Crashed,
            },
        ]]);
        assert_eq!(plan.outcome(0, 0), QueryOutcome::Answer(Answer::clean()));
        assert_eq!(
            plan.outcome(0, 2),
            QueryOutcome::Failed { permanent: false }
        );
        assert_eq!(plan.outcome(0, 3), QueryOutcome::Answer(Answer::clean()));
        for attempt in 5..10 {
            assert_eq!(
                plan.outcome(0, attempt),
                QueryOutcome::Failed { permanent: true },
                "crashed machines stay crashed (attempt {attempt})"
            );
        }
    }

    #[test]
    fn taint_flags_dirty_answers_and_stays_set() {
        let ds = dataset();
        // Machine 0 lies once (corrupt), then answers cleanly forever.
        let plan = FaultPlan::from_schedules(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Corrupt { delta: 2 },
            }],
            vec![],
        ]);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        assert!(!faulty.is_tainted());
        faulty.probe(1);
        assert!(!faulty.is_tainted(), "clean answers do not taint");
        faulty.probe(0);
        assert!(faulty.is_tainted(), "a corrupt answer taints");
        faulty.probe(0);
        assert!(faulty.is_tainted(), "the flag is monotone");
    }

    #[test]
    fn loud_failures_do_not_taint_but_stale_answers_do() {
        let ds = dataset();
        let plan = FaultPlan::from_schedules(vec![
            vec![FaultEvent {
                at_query: 0,
                kind: FaultKind::Transient { fail_count: 2 },
            }],
            vec![FaultEvent {
                at_query: 1,
                kind: FaultKind::Stale { as_of_update: 0 },
            }],
        ]);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        let ans = faulty.probe_with_retry(0, &mut RetryTransient).unwrap();
        assert!(ans.is_clean());
        assert!(
            !faulty.is_tainted(),
            "retried-through failures yield clean reads"
        );
        faulty.probe(1);
        assert!(!faulty.is_tainted());
        faulty.probe(1);
        assert!(faulty.is_tainted(), "a stale answer taints");
    }

    #[test]
    fn answered_count_table_reports_the_view_the_machine_answered() {
        let ds = dataset();
        let plan = FaultPlan::none(2);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::new(&ds, &ledger);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        // Clean: the true multiplicity table of machine 1.
        assert_eq!(
            faulty.answered_count_table(1, Answer::clean()),
            vec![0, 1, 0, 3]
        );
        // Corrupt: every count shifted (clamped at zero).
        assert_eq!(
            faulty.answered_count_table(
                1,
                Answer {
                    stale_as_of: None,
                    corrupt_delta: -1,
                }
            ),
            vec![0, 0, 0, 2]
        );
    }

    #[test]
    fn stale_answered_count_table_composes_only_the_visible_prefix() {
        let ds = dataset();
        let mut log = UpdateLog::new();
        log.push(UpdateOp::insert(0, 0)); // machine 0: c_0 2 → 3
        log.push(UpdateOp::insert(0, 2)); // machine 0: c_2 0 → 1
        let plan = FaultPlan::none(2);
        let ledger = QueryLedger::new(2);
        let oracles = OracleSet::with_updates(&ds, &ledger, &log);
        let faulty = FaultyOracleSet::new(&oracles, &plan);
        assert_eq!(
            faulty.answered_count_table(0, Answer::clean()),
            vec![3, 1, 1, 0],
            "current view composes the whole log"
        );
        assert_eq!(
            faulty.answered_count_table(
                0,
                Answer {
                    stale_as_of: Some(1),
                    corrupt_delta: 0,
                }
            ),
            vec![3, 1, 0, 0],
            "stale view stops after the first op"
        );
    }
}
