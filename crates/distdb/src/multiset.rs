//! Multisets over the data universe `[N]` (represented as `0..N`).
//!
//! The paper's `T_j` is a multiset; `c_ij` is the multiplicity of element
//! `i` in `T_j`, `M_j = |T_j|` the cardinality counting multiplicity, and
//! `m_j = |Supp(T_j)|` the number of distinct elements (Table 1). We store
//! counts in a `BTreeMap` so iteration is deterministic, which keeps every
//! experiment reproducible bit-for-bit.
//!
//! The count map lives behind an `Arc`, making `Multiset::clone` O(1) and
//! letting versioned datasets (MVCC snapshots, DESIGN.md §15) share every
//! unchanged shard between a reader-pinned version `v` and the writer's
//! `v+1`. Mutation goes through `Arc::make_mut`, so a shard is deep-copied
//! lazily, only when it is actually edited while shared.
//!
//! Elements are `0`-based here (`0..N`) whereas the paper writes `[N] =
//! {1,…,N}`; this is a pure relabeling.

use std::collections::BTreeMap;
use std::sync::Arc;

/// A multiset of elements drawn from `0..universe`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Multiset {
    counts: Arc<BTreeMap<u64, u64>>,
}

impl Multiset {
    /// The empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(element, multiplicity)` pairs; zero multiplicities are
    /// dropped, duplicate elements are summed.
    pub fn from_counts(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut m = Self::new();
        for (elem, k) in pairs {
            m.insert_many(elem, k);
        }
        m
    }

    /// Builds from a list of elements (each occurrence counts once).
    pub fn from_elements(elems: impl IntoIterator<Item = u64>) -> Self {
        Self::from_counts(elems.into_iter().map(|e| (e, 1)))
    }

    /// Multiplicity `c_i` of an element (0 when absent).
    pub fn multiplicity(&self, elem: u64) -> u64 {
        self.counts.get(&elem).copied().unwrap_or(0)
    }

    /// Adds `k` occurrences of `elem`.
    pub fn insert_many(&mut self, elem: u64, k: u64) {
        if k > 0 {
            *Arc::make_mut(&mut self.counts).entry(elem).or_insert(0) += k;
        }
    }

    /// Adds `k` occurrences of `elem`, refusing on `u64` overflow: returns
    /// the new multiplicity, or `None` with the multiset unchanged. This is
    /// the loading-path variant — untrusted inputs (TSV files) go through
    /// here so a corrupt count surfaces as a typed error, not a panic.
    pub fn checked_insert_many(&mut self, elem: u64, k: u64) -> Option<u64> {
        let new = self.multiplicity(elem).checked_add(k)?;
        if k > 0 {
            Arc::make_mut(&mut self.counts).insert(elem, new);
        }
        Some(new)
    }

    /// Adds one occurrence.
    pub fn insert(&mut self, elem: u64) {
        self.insert_many(elem, 1);
    }

    /// Removes up to `k` occurrences; returns how many were actually removed.
    pub fn remove_many(&mut self, elem: u64, k: u64) -> u64 {
        // Check before `make_mut` so a no-op removal never forces a deep
        // copy of a shared count map.
        match self.multiplicity(elem) {
            0 => 0,
            c => {
                let removed = c.min(k);
                let counts = Arc::make_mut(&mut self.counts);
                if c == removed {
                    counts.remove(&elem);
                } else {
                    counts.insert(elem, c - removed);
                }
                removed
            }
        }
    }

    /// Removes one occurrence; returns whether one was present.
    pub fn remove(&mut self, elem: u64) -> bool {
        self.remove_many(elem, 1) == 1
    }

    /// Cardinality `|T| = Σ_i c_i` (counting multiplicity) — the paper's `M_j`.
    pub fn cardinality(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Support size `|Supp(T)|` — the paper's `m_j`.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Largest multiplicity `max_i c_i` — the per-machine capacity `κ_j`
    /// actually used (0 for an empty multiset).
    pub fn max_multiplicity(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Largest element present, if any.
    pub fn max_element(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Iterates `(element, multiplicity)` in increasing element order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(e, c)| (*e, *c))
    }

    /// Iterates the support (distinct elements) in increasing order.
    pub fn support(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.keys().copied()
    }

    /// Union (multiplicities add).
    pub fn union(&self, other: &Multiset) -> Multiset {
        let mut out = self.clone();
        for (e, c) in other.iter() {
            out.insert_many(e, c);
        }
        out
    }

    /// True when `self` and `other` share the same underlying count map
    /// allocation (clones that neither side has mutated since). This is the
    /// observable form of the copy-on-write contract: MVCC snapshot tests
    /// use it to prove untouched shards are shared, not copied, across
    /// versions.
    pub fn shares_storage_with(&self, other: &Multiset) -> bool {
        Arc::ptr_eq(&self.counts, &other.counts)
    }

    /// Relabels elements through `sigma` (must be injective on the support);
    /// used to build the paper's hard inputs `σ̃^k(T)` (Definition 5.5).
    pub fn relabel(&self, mut sigma: impl FnMut(u64) -> u64) -> Multiset {
        let mut out = Multiset::new();
        for (e, c) in self.iter() {
            let img = sigma(e);
            assert_eq!(
                out.multiplicity(img),
                0,
                "relabel map is not injective on the support (collision at {img})"
            );
            out.insert_many(img, c);
        }
        out
    }
}

impl FromIterator<u64> for Multiset {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_elements(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_multiplicity() {
        let mut m = Multiset::new();
        m.insert(3);
        m.insert(3);
        m.insert_many(7, 5);
        assert_eq!(m.multiplicity(3), 2);
        assert_eq!(m.multiplicity(7), 5);
        assert_eq!(m.multiplicity(0), 0);
        assert!(m.remove(3));
        assert_eq!(m.multiplicity(3), 1);
        assert!(m.remove(3));
        assert!(!m.remove(3), "removing from empty slot returns false");
        assert_eq!(m.support_size(), 1);
    }

    #[test]
    fn remove_many_clamps() {
        let mut m = Multiset::from_counts([(1, 3)]);
        assert_eq!(m.remove_many(1, 10), 3);
        assert!(m.is_empty());
    }

    #[test]
    fn cardinality_and_support() {
        let m = Multiset::from_counts([(0, 2), (5, 1), (9, 4)]);
        assert_eq!(m.cardinality(), 7);
        assert_eq!(m.support_size(), 3);
        assert_eq!(m.max_multiplicity(), 4);
        assert_eq!(m.max_element(), Some(9));
    }

    #[test]
    fn from_counts_merges_and_drops_zero() {
        let m = Multiset::from_counts([(1, 0), (2, 1), (2, 2)]);
        assert_eq!(m.multiplicity(1), 0);
        assert_eq!(m.multiplicity(2), 3);
        assert_eq!(m.support_size(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let m = Multiset::from_elements([9, 1, 5, 1]);
        let elems: Vec<u64> = m.support().collect();
        assert_eq!(elems, vec![1, 5, 9]);
        let pairs: Vec<(u64, u64)> = m.iter().collect();
        assert_eq!(pairs, vec![(1, 2), (5, 1), (9, 1)]);
    }

    #[test]
    fn union_adds_multiplicities() {
        let a = Multiset::from_counts([(1, 2), (2, 1)]);
        let b = Multiset::from_counts([(2, 2), (3, 1)]);
        let u = a.union(&b);
        assert_eq!(u.multiplicity(1), 2);
        assert_eq!(u.multiplicity(2), 3);
        assert_eq!(u.multiplicity(3), 1);
        assert_eq!(u.cardinality(), a.cardinality() + b.cardinality());
    }

    #[test]
    fn relabel_moves_counts() {
        let m = Multiset::from_counts([(0, 1), (1, 3)]);
        let r = m.relabel(|e| e + 10);
        assert_eq!(r.multiplicity(10), 1);
        assert_eq!(r.multiplicity(11), 3);
        assert_eq!(r.cardinality(), m.cardinality());
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn relabel_rejects_collisions() {
        let m = Multiset::from_counts([(0, 1), (1, 1)]);
        let _ = m.relabel(|_| 5);
    }

    #[test]
    fn from_iterator_collect() {
        let m: Multiset = [1u64, 1, 2].into_iter().collect();
        assert_eq!(m.multiplicity(1), 2);
        assert_eq!(m.multiplicity(2), 1);
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let a = Multiset::from_counts([(3, 2), (8, 1)]);
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b), "clone is O(1) and shared");
        b.insert(5);
        assert!(!a.shares_storage_with(&b), "mutation unshares the clone");
        assert_eq!(a.multiplicity(5), 0, "original is unaffected");
        assert_eq!(b.multiplicity(5), 1);
    }

    #[test]
    fn noop_removal_keeps_sharing() {
        let a = Multiset::from_counts([(3, 2)]);
        let mut b = a.clone();
        assert_eq!(b.remove_many(7, 4), 0);
        assert!(
            a.shares_storage_with(&b),
            "removing an absent element must not force a copy"
        );
    }

    #[test]
    fn debug_format_shows_counts() {
        let m = Multiset::from_counts([(3, 2), (8, 1)]);
        let repr = format!("{m:?}");
        assert!(repr.contains('3') && repr.contains('8'));
    }
}
