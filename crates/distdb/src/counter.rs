//! Query accounting — the paper's cost metric.
//!
//! The complexity results (Theorems 4.3, 4.5, 5.1, 5.2) count **oracle
//! applications**: `t_j` sequential applications of `O_j`/`O_j†` per machine
//! and, in the parallel model, rounds of the composite oracle `O`/`O†`.
//! [`QueryLedger`] records both with atomic counters so oracle code can be
//! called through shared references from parallel benches.

use std::sync::atomic::{AtomicU64, Ordering};

/// Immutable snapshot of a ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// `t_j` — sequential oracle applications per machine.
    pub per_machine: Vec<u64>,
    /// Parallel composite-oracle rounds.
    pub parallel_rounds: u64,
}

impl LedgerSnapshot {
    /// Total sequential queries `Σ_j t_j`.
    pub fn total_sequential(&self) -> u64 {
        self.per_machine.iter().sum()
    }
}

/// Atomic per-machine query counters plus a parallel-round counter.
#[derive(Debug)]
pub struct QueryLedger {
    per_machine: Vec<AtomicU64>,
    parallel_rounds: AtomicU64,
}

impl QueryLedger {
    /// Creates a ledger for `n` machines, all counters zero.
    pub fn new(n: usize) -> Self {
        Self {
            per_machine: (0..n).map(|_| AtomicU64::new(0)).collect(),
            parallel_rounds: AtomicU64::new(0),
        }
    }

    /// Number of machines tracked.
    pub fn num_machines(&self) -> usize {
        self.per_machine.len()
    }

    /// Records one sequential application of `O_j` or `O_j†`.
    pub fn record_sequential(&self, machine: usize) {
        self.per_machine[machine].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one round of the composite parallel oracle `O` or `O†`.
    pub fn record_parallel_round(&self) {
        self.parallel_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// `t_j` for one machine.
    pub fn sequential_queries(&self, machine: usize) -> u64 {
        self.per_machine[machine].load(Ordering::Relaxed)
    }

    /// `Σ_j t_j`.
    pub fn total_sequential(&self) -> u64 {
        self.per_machine
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Parallel rounds so far.
    pub fn parallel_rounds(&self) -> u64 {
        self.parallel_rounds.load(Ordering::Relaxed)
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            per_machine: self
                .per_machine
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            parallel_rounds: self.parallel_rounds.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.per_machine {
            c.store(0, Ordering::Relaxed);
        }
        self.parallel_rounds.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let ledger = QueryLedger::new(3);
        ledger.record_sequential(0);
        ledger.record_sequential(2);
        ledger.record_sequential(2);
        ledger.record_parallel_round();
        let snap = ledger.snapshot();
        assert_eq!(snap.per_machine, vec![1, 0, 2]);
        assert_eq!(snap.total_sequential(), 3);
        assert_eq!(snap.parallel_rounds, 1);
        assert_eq!(ledger.sequential_queries(2), 2);
        assert_eq!(ledger.total_sequential(), 3);
    }

    #[test]
    fn reset_zeroes_everything() {
        let ledger = QueryLedger::new(2);
        ledger.record_sequential(1);
        ledger.record_parallel_round();
        ledger.reset();
        assert_eq!(ledger.total_sequential(), 0);
        assert_eq!(ledger.parallel_rounds(), 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let ledger = Arc::new(QueryLedger::new(4));
        let mut handles = Vec::new();
        for j in 0..4usize {
            let l = Arc::clone(&ledger);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.record_sequential(j);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.total_sequential(), 4000);
        for j in 0..4 {
            assert_eq!(ledger.sequential_queries(j), 1000);
        }
    }
}
