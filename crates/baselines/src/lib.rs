//! # dqs-baselines
//!
//! Comparators for the paper's algorithms:
//!
//! * [`classical`] — the classical-communication strawman from §1: the
//!   coordinator asks every machine for the multiplicity of every element
//!   (`n·N` classical queries, the paper's "the coordinator has to
//!   effectively ask every database how many times every possible element
//!   appears"), then prepares the state from the fully-known counts.
//! * [`plain_grover`] — an ablation of the zero-error final rotation: plain
//!   `Q(π,π)` amplitude amplification with a rounded iteration count, which
//!   generically under/overshoots and caps fidelity strictly below 1.
//! * [`centralized`] — the `n = 1` reduction: all data merged onto a single
//!   machine, which is the classic (non-distributed) quantum sampling
//!   setting whose cost the paper's `Θ(n√(νN/M))` generalizes.
//! * [`sample_learn`] — replace quantum sampling with repeated classical
//!   sampling (prepare, measure, tally, synthesize): polynomially more
//!   queries and never exact — the intro's "advantage vanishes" remark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod classical;
pub mod plain_grover;
pub mod sample_learn;

pub use centralized::{centralized_sample, CentralizedRun};
pub use classical::{classical_sample, ClassicalRun};
pub use plain_grover::{plain_sequential_sample, PlainRun};
pub use sample_learn::{sample_and_learn, SampleLearnRun};
