//! The classical-communication baseline (§1 of the paper).
//!
//! With classical channels only, error-correcting-code arguments force
//! `Ω(N)` communication per machine; operationally the coordinator must
//! learn every multiplicity `c_ij`, i.e. issue `n·N` classical counting
//! queries. Once all counts are known the coordinator can synthesize `|ψ⟩`
//! locally (state synthesis from classical data is not charged queries in
//! this model). The point of Experiment E7 is the query-count gap:
//! `n·N` versus `2n(2·iterations+1) ≈ πn·√(νN/M)`.

use dqs_db::DistributedDataset;
use dqs_math::Complex64;
use dqs_sim::{Layout, StateTable};

/// Result of the classical baseline.
#[derive(Debug, Clone)]
pub struct ClassicalRun {
    /// Classical queries issued (`n·N` — one per machine per element).
    pub classical_queries: u64,
    /// The reconstructed counts `c_i`.
    pub counts: Vec<u64>,
    /// The state synthesized from the counts.
    pub state: StateTable,
    /// Fidelity against the true sampling state (always 1: the counts are
    /// learned exactly).
    pub fidelity: f64,
}

/// Runs the exhaustive classical protocol.
pub fn classical_sample(dataset: &DistributedDataset) -> ClassicalRun {
    let n = dataset.num_machines() as u64;
    let universe = dataset.universe();
    let mut counts = vec![0u64; universe as usize];
    let mut classical_queries = 0u64;
    // The coordinator cannot skip any (machine, element) pair: it has no
    // prior knowledge of placements (the same obliviousness that drives the
    // quantum lower bound).
    for j in 0..dataset.num_machines() {
        for i in 0..universe {
            counts[i as usize] += dataset.multiplicity(i, j);
            classical_queries += 1;
        }
    }
    debug_assert_eq!(classical_queries, n * universe);

    let m_total: u64 = counts.iter().sum();
    let layout = Layout::builder().register("elem", universe).build();
    let entries = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            (
                vec![i as u64].into_boxed_slice(),
                Complex64::from_real((c as f64 / m_total as f64).sqrt()),
            )
        })
        .collect();
    let state = StateTable::new(layout.clone(), entries);
    let target = dataset.target_state(&layout, 0);
    let fidelity = state.fidelity(&target);
    ClassicalRun {
        classical_queries,
        counts,
        state,
        fidelity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_db::Multiset;
    use dqs_math::approx::approx_eq;

    fn dataset() -> DistributedDataset {
        DistributedDataset::new(
            8,
            3,
            vec![
                Multiset::from_counts([(0, 1), (2, 2)]),
                Multiset::from_counts([(2, 1), (7, 1)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn query_count_is_n_times_universe() {
        let run = classical_sample(&dataset());
        assert_eq!(run.classical_queries, 2 * 8);
    }

    #[test]
    fn counts_are_exact() {
        let run = classical_sample(&dataset());
        assert_eq!(run.counts, vec![1, 0, 3, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn synthesized_state_is_exact() {
        let run = classical_sample(&dataset());
        assert!(approx_eq(run.fidelity, 1.0));
        assert!(approx_eq(run.state.norm(), 1.0));
        assert!(approx_eq(
            run.state.amplitude(&[2]).re,
            (3.0f64 / 5.0).sqrt()
        ));
    }

    #[test]
    fn cost_is_independent_of_data_density() {
        // Classical cost depends only on (n, N) — unlike the quantum cost.
        let sparse = DistributedDataset::new(
            64,
            1,
            vec![Multiset::from_counts([(0, 1)]), Multiset::new()],
        )
        .unwrap();
        let dense_shards = vec![
            Multiset::from_counts((0..64u64).map(|i| (i, 1))),
            Multiset::from_counts((0..64u64).map(|i| (i, 1))),
        ];
        let dense = DistributedDataset::new(64, 2, dense_shards).unwrap();
        assert_eq!(
            classical_sample(&sparse).classical_queries,
            classical_sample(&dense).classical_queries
        );
    }
}
