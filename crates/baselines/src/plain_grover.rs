//! Plain (non-zero-error) amplitude amplification — the ablation for
//! Experiment E8.
//!
//! Same circuit as Theorem 4.3 but every iteration uses phases `(π, π)` and
//! the iteration count is simply `round(m̃)`. The final angle
//! `(2m+1)θ` generically misses `π/2`, so the success probability is
//! `sin²((2m+1)θ) < 1`. This quantifies what the paper's zero-error final
//! rotation buys: exactness at identical query cost (the corrected
//! iteration is still one `Q`).

use dqs_core::amplify::{AaPlan, FinalRotation};
use dqs_core::{DistributingOperator, SequentialLayout};
use dqs_db::{DistributedDataset, LedgerSnapshot, OracleSet, QueryLedger};
use dqs_sim::QuantumState;

/// Result of a plain-Grover sequential run.
#[derive(Debug, Clone)]
pub struct PlainRun<S> {
    /// Final state.
    pub state: S,
    /// Iterations executed (all with phases `(π, π)`).
    pub iterations: u64,
    /// Observed query counts.
    pub queries: LedgerSnapshot,
    /// Fidelity against `|ψ,0,0⟩` — generically `< 1`.
    pub fidelity: f64,
    /// The fidelity plain Grover is predicted to achieve:
    /// `sin²((2m+1)θ)`.
    pub predicted_fidelity: f64,
}

/// Runs the sequential sampler with plain amplitude amplification.
///
/// `iterations` overrides the default `round(m̃)` when given (used by the
/// ablation sweep to show the oscillation of `sin²((2m+1)θ)`).
pub fn plain_sequential_sample<S: QuantumState>(
    dataset: &DistributedDataset,
    iterations: Option<u64>,
) -> PlainRun<S> {
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);
    let layout = SequentialLayout::for_dataset(dataset);
    let params = dataset.params();
    let a = params.initial_success_probability();
    let theta = a.sqrt().asin();
    let m = iterations.unwrap_or_else(|| {
        (std::f64::consts::PI / (4.0 * theta) - 0.5)
            .round()
            .max(0.0) as u64
    });
    let d = DistributingOperator::new(dataset.capacity());

    // Compiled prep: `F|0⟩ = |π⟩` is exactly the cached anchor table.
    let anchor = layout.uniform_anchor();
    let mut state = S::from_table(anchor);

    d.apply_sequential(&oracles, &mut state, &layout, false);
    // Plain loop: reuse the zero-error driver with the correction disabled.
    let plan = AaPlan {
        success_probability: a,
        theta,
        full_iterations: m,
        final_rotation: FinalRotation::None,
    };
    dqs_core::amplify::execute_plan(&mut state, &plan, anchor, layout.flag, |s, inv| {
        d.apply_sequential(&oracles, s, &layout, inv)
    });

    let target = dataset.target_state(&layout.layout, layout.elem);
    let fidelity = state.fidelity_with_table(&target);
    let predicted = ((2 * m + 1) as f64 * theta).sin().powi(2);
    PlainRun {
        state,
        iterations: m,
        queries: ledger.snapshot(),
        fidelity,
        predicted_fidelity: predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_core::sequential_sample;
    use dqs_db::Multiset;
    use dqs_sim::SparseState;

    fn skewed_dataset() -> DistributedDataset {
        // a = M/(νN) = 6/(5·32) = 0.0375 → θ misses the π/2 grid.
        DistributedDataset::new(
            32,
            5,
            vec![
                Multiset::from_counts([(3, 2), (9, 1)]),
                Multiset::from_counts([(9, 3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn plain_fidelity_matches_sine_prediction() {
        let run = plain_sequential_sample::<SparseState>(&skewed_dataset(), None);
        assert!(
            (run.fidelity - run.predicted_fidelity).abs() < 1e-9,
            "measured {} vs predicted {}",
            run.fidelity,
            run.predicted_fidelity
        );
    }

    #[test]
    fn plain_is_generically_inexact_where_zero_error_is_exact() {
        let ds = skewed_dataset();
        let plain = plain_sequential_sample::<SparseState>(&ds, None);
        let exact = sequential_sample::<SparseState>(&ds).expect("faultless run");
        assert!(exact.fidelity > 1.0 - 1e-9);
        assert!(
            plain.fidelity < 1.0 - 1e-6,
            "plain Grover should miss: {}",
            plain.fidelity
        );
        // … while still achieving high (just not perfect) fidelity
        assert!(plain.fidelity > 0.8);
    }

    #[test]
    fn fidelity_oscillates_with_iteration_count() {
        let ds = skewed_dataset();
        let mut fids = Vec::new();
        for m in 0..12u64 {
            let run = plain_sequential_sample::<SparseState>(&ds, Some(m));
            fids.push(run.fidelity);
        }
        // sin²((2m+1)θ) rises then falls past the optimum
        let max_idx = fids
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(max_idx > 0 && max_idx < 11, "peak should be interior");
        assert!(fids[max_idx] > fids[0]);
        assert!(fids[max_idx] > *fids.last().unwrap());
    }

    #[test]
    fn query_cost_equals_zero_error_cost_at_same_iterations() {
        let ds = skewed_dataset();
        let exact = sequential_sample::<SparseState>(&ds).expect("faultless run");
        let plain =
            plain_sequential_sample::<SparseState>(&ds, Some(exact.plan.total_iterations()));
        assert_eq!(
            plain.queries.total_sequential(),
            exact.queries.total_sequential(),
            "the corrected rotation must not cost extra queries"
        );
    }
}
