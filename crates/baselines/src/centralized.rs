//! The centralized (`n = 1`) reduction.
//!
//! Merging every shard onto one machine recovers classic quantum sampling
//! on a single database — the setting of Grover/BHMT that the paper
//! generalizes. Comparing its query count against the distributed run on
//! the same data isolates the distribution overhead: the iteration count is
//! identical (it depends only on `M, N, ν`), and the sequential cost scales
//! by exactly `n`.

use dqs_core::{sequential_sample, SampleError, SequentialRun};
use dqs_db::{DistributedDataset, Multiset};
use dqs_sim::QuantumState;

/// Result of the centralized comparator.
#[derive(Debug, Clone)]
pub struct CentralizedRun<S> {
    /// The inner run over the merged single-machine dataset.
    pub run: SequentialRun<S>,
}

/// Merges all shards onto one machine (same `N`, same `ν`) and samples.
///
/// # Errors
///
/// Propagates [`SampleError`] from the inner sequential run (unreachable
/// on a faultless oracle set, but typed so callers compose uniformly with
/// the other sampling entry points).
pub fn centralized_sample<S: QuantumState>(
    dataset: &DistributedDataset,
) -> Result<CentralizedRun<S>, SampleError> {
    let merged = dataset
        .shards()
        .iter()
        .fold(Multiset::new(), |acc, s| acc.union(s));
    let central = DistributedDataset::new(dataset.universe(), dataset.capacity(), vec![merged])
        // lint: allow(panic): `new` validates the cross-machine totals
        // c_i = Σ_j c_ij against ν, and merging shards preserves every c_i,
        // so a valid input dataset always yields a valid merged one.
        .expect("merged dataset is valid when the original is");
    Ok(CentralizedRun {
        run: sequential_sample::<S>(&central)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_math::approx::approx_eq;
    use dqs_sim::SparseState;
    use dqs_workloads::WorkloadSpec;

    fn dataset() -> DistributedDataset {
        WorkloadSpec::small_uniform(32, 60, 4, 23).build()
    }

    #[test]
    fn centralized_output_is_exact() {
        let run = centralized_sample::<SparseState>(&dataset()).expect("faultless run");
        assert!(run.run.fidelity > 1.0 - 1e-9);
    }

    #[test]
    fn same_iteration_count_as_distributed() {
        let ds = dataset();
        let central = centralized_sample::<SparseState>(&ds).expect("faultless run");
        let distributed = sequential_sample::<SparseState>(&ds).expect("faultless run");
        assert_eq!(
            central.run.plan.total_iterations(),
            distributed.plan.total_iterations(),
            "iterations depend only on (M, N, ν)"
        );
    }

    #[test]
    fn distributed_cost_is_exactly_n_times_centralized() {
        let ds = dataset();
        let central = centralized_sample::<SparseState>(&ds).expect("faultless run");
        let distributed = sequential_sample::<SparseState>(&ds).expect("faultless run");
        assert_eq!(
            distributed.queries.total_sequential(),
            ds.num_machines() as u64 * central.run.queries.total_sequential()
        );
    }

    #[test]
    fn same_output_distribution() {
        let ds = dataset();
        let central = centralized_sample::<SparseState>(&ds).expect("faultless run");
        let distributed = sequential_sample::<SparseState>(&ds).expect("faultless run");
        let pc = central.run.state.register_probabilities(0);
        let pd = distributed.state.register_probabilities(0);
        for i in 0..ds.universe() as usize {
            assert!(approx_eq(pc[i], pd[i]), "element {i}");
        }
    }
}
