//! The sample-and-learn baseline: replace *quantum* sampling with
//! repeated *classical* sampling.
//!
//! The paper's introduction notes (citing Gilyén–Li) that the quantum
//! advantage of several learning algorithms "would vanish if quantum
//! sampling was replaced by classical sampling". This baseline makes that
//! concrete in the distributed model: the coordinator repeatedly prepares
//! `D|π,0⟩` (`2n` queries a time), measures the flag — with probability
//! `a = M/νN` it lands on the good branch and the element register then
//! yields one classical sample from `c_i/M` — and finally synthesizes the
//! state `Σ_i √(ĉ_i/K) |i⟩` from the `K` collected samples.
//!
//! The output fidelity is capped by the empirical estimation error
//! (`1 − Θ(m/K)` for support size `m`), so reaching fidelity `1 − δ`
//! needs `K = Θ(m/δ)` samples ≈ `2n·m/(a·δ)` queries — polynomially worse
//! than the coherent `Θ(n√(1/a))` of Theorem 4.3, and *never exact*.

use dqs_core::{DistributingOperator, SequentialLayout};
use dqs_db::{DistributedDataset, LedgerSnapshot, OracleSet, QueryLedger};
use dqs_math::Complex64;
use dqs_sim::{measure_register, Layout, QuantumState, SparseState, StateTable};
use rand::Rng;

/// Result of the sample-and-learn protocol.
#[derive(Debug, Clone)]
pub struct SampleLearnRun {
    /// Good samples collected.
    pub samples: u64,
    /// Preparation attempts (each costs one `D` = `2n` queries).
    pub attempts: u64,
    /// Total oracle queries spent.
    pub queries: LedgerSnapshot,
    /// The state synthesized from empirical frequencies.
    pub state: StateTable,
    /// Fidelity of the synthesized state against the true `|ψ⟩`.
    pub fidelity: f64,
}

/// Runs sample-and-learn until `target_samples` good samples are collected.
pub fn sample_and_learn(
    dataset: &DistributedDataset,
    target_samples: u64,
    rng: &mut impl Rng,
) -> SampleLearnRun {
    assert!(target_samples > 0);
    let ledger = QueryLedger::new(dataset.num_machines());
    let oracles = OracleSet::new(dataset, &ledger);
    let layout = SequentialLayout::for_dataset(dataset);
    let d = DistributingOperator::new(dataset.capacity());

    let mut counts = vec![0u64; dataset.universe() as usize];
    let mut samples = 0u64;
    let mut attempts = 0u64;
    while samples < target_samples {
        attempts += 1;
        // Compiled prep: cached `|π,0,0⟩` table, built once across shots.
        let mut state = SparseState::from_table(layout.uniform_anchor());
        d.apply_sequential(&oracles, &mut state, &layout, false);
        let (flag, _) = measure_register(&mut state, layout.flag, rng);
        if flag == 0 {
            // good branch: the element register now holds |ψ⟩ — one sample
            let (elem, _) = measure_register(&mut state, layout.elem, rng);
            counts[elem as usize] += 1;
            samples += 1;
        }
    }

    // synthesize √(empirical frequency) amplitudes
    let out_layout = Layout::builder()
        .register("elem", dataset.universe())
        .build();
    let entries = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            (
                vec![i as u64].into_boxed_slice(),
                Complex64::from_real((c as f64 / samples as f64).sqrt()),
            )
        })
        .collect();
    let state = StateTable::new(out_layout.clone(), entries);
    let target = dataset.target_state(&out_layout, 0);
    let fidelity = state.fidelity(&target);
    SampleLearnRun {
        samples,
        attempts,
        queries: ledger.snapshot(),
        state,
        fidelity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_core::sequential_sample;
    use dqs_db::Multiset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> DistributedDataset {
        // a = 12/(3·16) = 0.25
        DistributedDataset::new(
            16,
            3,
            vec![
                Multiset::from_counts([(0, 3), (1, 2), (2, 1)]),
                Multiset::from_counts([(3, 3), (5, 3)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn queries_are_2n_per_attempt() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let run = sample_and_learn(&ds, 20, &mut rng);
        assert_eq!(
            run.queries.total_sequential(),
            run.attempts * 2 * ds.num_machines() as u64
        );
        assert!(run.attempts >= run.samples);
    }

    #[test]
    fn fidelity_improves_with_samples_but_stays_inexact() {
        let ds = dataset();
        let small = sample_and_learn(&ds, 25, &mut StdRng::seed_from_u64(2));
        let large = sample_and_learn(&ds, 2500, &mut StdRng::seed_from_u64(3));
        assert!(large.fidelity > small.fidelity - 0.02);
        assert!(large.fidelity > 0.98);
        assert!(
            large.fidelity < 1.0 - 1e-9,
            "empirical synthesis is generically inexact"
        );
    }

    #[test]
    fn acceptance_rate_tracks_a() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let run = sample_and_learn(&ds, 400, &mut rng);
        let rate = run.samples as f64 / run.attempts as f64;
        let a = ds.params().initial_success_probability();
        assert!((rate - a).abs() < 0.06, "acceptance {rate} vs a = {a}");
    }

    #[test]
    fn coherent_sampler_beats_sample_and_learn_on_queries() {
        let ds = dataset();
        let coherent = sequential_sample::<SparseState>(&ds).expect("faultless run");
        let mut rng = StdRng::seed_from_u64(5);
        // even a loose 95%-fidelity target costs more than the exact
        // coherent preparation on this instance
        let classical = sample_and_learn(&ds, 200, &mut rng);
        assert!(classical.queries.total_sequential() > coherent.queries.total_sequential());
        assert!(coherent.fidelity > classical.fidelity);
    }
}
