//! # dqs-workloads
//!
//! Synthetic dataset generation for the reproduction's experiments. The
//! paper has no workload section (it is pure theory), so these generators
//! realize the *settings its theorems quantify over*: arbitrary multisets
//! over a universe `[N]`, arbitrarily partitioned over `n` machines,
//! possibly with replication (the paper explicitly allows machines to share
//! keys), with capacity `ν` at or above the realized maximum.
//!
//! Everything is seeded and deterministic: the same [`WorkloadSpec`]
//! produces the same [`dqs_db::DistributedDataset`] bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod generators;
pub mod partition;
pub mod scenario;
pub mod spec;
pub mod sweeps;

pub use churn::churn_trace;
pub use generators::{heavy_hitter, singleton, sparse_uniform, uniform_support, zipf};
pub use partition::PartitionScheme;
pub use scenario::{FaultScenario, Scenario, ScenarioParseError};
pub use spec::{Distribution, WorkloadSpec};
pub use sweeps::{geometric_sweep, SweepAxis};
