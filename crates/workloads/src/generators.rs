//! Global multiset generators.
//!
//! Each generator returns one global [`Multiset`] of cardinality `total`
//! over universe `0..universe`; [`crate::partition`] then distributes it
//! over machines. All are deterministic functions of the supplied RNG.

use dqs_db::Multiset;
use rand::seq::SliceRandom;
use rand::Rng;

/// `total` draws uniform over the whole universe (dense support for
/// `total ≫ universe`, sparse otherwise).
pub fn uniform_support(universe: u64, total: u64, rng: &mut impl Rng) -> Multiset {
    let mut m = Multiset::new();
    for _ in 0..total {
        m.insert(rng.gen_range(0..universe));
    }
    m
}

/// Exactly `support` distinct elements, each with multiplicity
/// `total / support` (remainder spread over the first elements). The
/// support is a uniform random subset — this is the regime of the paper's
/// hard inputs (`m_k` distinct elements of equal weight).
pub fn sparse_uniform(universe: u64, support: u64, total: u64, rng: &mut impl Rng) -> Multiset {
    assert!(support > 0 && support <= universe, "support out of range");
    assert!(total >= support, "need at least one copy per element");
    let mut elems: Vec<u64> = (0..universe).collect();
    elems.partial_shuffle(rng, support as usize);
    let base = total / support;
    let extra = (total % support) as usize;
    Multiset::from_counts(
        elems[..support as usize]
            .iter()
            .enumerate()
            .map(|(k, &e)| (e, base + u64::from(k < extra))),
    )
}

/// Zipf-distributed multiplicities: element ranks get weight `1/rank^s`,
/// and `total` samples are drawn from that law over a random permutation of
/// the universe.
pub fn zipf(universe: u64, total: u64, s: f64, rng: &mut impl Rng) -> Multiset {
    assert!(universe > 0);
    assert!(s >= 0.0, "zipf exponent must be non-negative");
    // cumulative weights over ranks
    let mut cum = Vec::with_capacity(universe as usize);
    let mut acc = 0.0f64;
    for rank in 1..=universe {
        acc += 1.0 / (rank as f64).powf(s);
        cum.push(acc);
    }
    let z = acc;
    // random rank→element relabeling so low ids are not systematically hot
    let mut relabel: Vec<u64> = (0..universe).collect();
    relabel.shuffle(rng);
    let mut m = Multiset::new();
    for _ in 0..total {
        let u = rng.gen::<f64>() * z;
        let rank = cum.partition_point(|&c| c < u).min(universe as usize - 1);
        m.insert(relabel[rank]);
    }
    m
}

/// `hot` elements share `hot_mass` of the total; the rest is uniform over
/// the remaining universe. Models skewed frequency encoding (e.g. log
/// analytics with a few dominant event types).
pub fn heavy_hitter(
    universe: u64,
    total: u64,
    hot: u64,
    hot_mass: f64,
    rng: &mut impl Rng,
) -> Multiset {
    assert!(hot > 0 && hot < universe, "hot set must be a proper subset");
    assert!((0.0..=1.0).contains(&hot_mass), "hot_mass is a fraction");
    let hot_total = (total as f64 * hot_mass).round() as u64;
    let mut m = Multiset::new();
    for _ in 0..hot_total {
        m.insert(rng.gen_range(0..hot));
    }
    for _ in 0..(total - hot_total) {
        m.insert(rng.gen_range(hot..universe));
    }
    m
}

/// A single element with multiplicity `total` — the extreme concentration
/// case (`m = 1`), where quantum sampling degenerates to Grover search for
/// one marked item.
pub fn singleton(universe: u64, total: u64, rng: &mut impl Rng) -> Multiset {
    let elem = rng.gen_range(0..universe);
    Multiset::from_counts([(elem, total)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_support_total_is_exact() {
        let m = uniform_support(100, 250, &mut rng(1));
        assert_eq!(m.cardinality(), 250);
        assert!(m.max_element().unwrap() < 100);
    }

    #[test]
    fn sparse_uniform_support_and_total() {
        let m = sparse_uniform(64, 10, 35, &mut rng(2));
        assert_eq!(m.support_size(), 10);
        assert_eq!(m.cardinality(), 35);
        // multiplicities differ by at most 1
        let (lo, hi) = m
            .iter()
            .fold((u64::MAX, 0u64), |(lo, hi), (_, c)| (lo.min(c), hi.max(c)));
        assert!(hi - lo <= 1);
    }

    #[test]
    fn zipf_is_skewed() {
        let m = zipf(1000, 20_000, 1.2, &mut rng(3));
        assert_eq!(m.cardinality(), 20_000);
        // the hottest element should carry far more than the mean
        let mean = 20_000.0 / m.support_size() as f64;
        assert!(m.max_multiplicity() as f64 > 5.0 * mean);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_law() {
        let m = zipf(50, 5000, 0.0, &mut rng(4));
        assert_eq!(m.cardinality(), 5000);
        // every element should appear: expected 100 each
        assert_eq!(m.support_size(), 50);
    }

    #[test]
    fn heavy_hitter_mass_split() {
        let m = heavy_hitter(100, 10_000, 5, 0.8, &mut rng(5));
        let hot_mass: u64 = m.iter().filter(|(e, _)| *e < 5).map(|(_, c)| c).sum();
        assert_eq!(hot_mass, 8000);
        assert_eq!(m.cardinality(), 10_000);
    }

    #[test]
    fn singleton_is_one_element() {
        let m = singleton(32, 9, &mut rng(6));
        assert_eq!(m.support_size(), 1);
        assert_eq!(m.cardinality(), 9);
        assert_eq!(m.max_multiplicity(), 9);
    }

    #[test]
    fn determinism_same_seed_same_output() {
        let a = zipf(256, 4096, 1.0, &mut rng(42));
        let b = zipf(256, 4096, 1.0, &mut rng(42));
        assert_eq!(a, b);
        let c = zipf(256, 4096, 1.0, &mut rng(43));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "support out of range")]
    fn sparse_uniform_rejects_oversupport() {
        let _ = sparse_uniform(4, 5, 10, &mut rng(0));
    }
}
