//! Named scenario presets.
//!
//! The examples and benches keep re-using a handful of recognizable
//! configurations; naming them here keeps parameters consistent across the
//! repository and gives README-level narratives a single source of truth.
//! [`FaultScenario`] extends a preset with a seeded fault environment so a
//! whole chaos experiment — data, placement, and failure schedule — is one
//! reproducible value with a text form for run manifests.

use crate::partition::PartitionScheme;
use crate::spec::{Distribution, WorkloadSpec};
use dqs_db::{FaultPlan, FaultRates};

/// A named, ready-to-build scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A balanced analytics cluster: uniform data, round-robin sharding.
    BalancedCluster,
    /// A log-ingest fleet: few hot event types carrying most of the mass.
    LogIngest,
    /// A federated inventory: Zipf-popular SKUs replicated on 2 sites, with
    /// capacity headroom for restocking churn.
    FederatedInventory,
    /// The adversarial placement of §5.3: everything on one machine.
    AdversarialConcentration,
    /// The index-erasure regime: a uniform subset, one copy per element.
    IndexErasure,
}

impl Scenario {
    /// All scenarios, for table-driven tests and sweeps.
    pub fn all() -> [Scenario; 5] {
        [
            Scenario::BalancedCluster,
            Scenario::LogIngest,
            Scenario::FederatedInventory,
            Scenario::AdversarialConcentration,
            Scenario::IndexErasure,
        ]
    }

    /// A short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::BalancedCluster => "balanced-cluster",
            Scenario::LogIngest => "log-ingest",
            Scenario::FederatedInventory => "federated-inventory",
            Scenario::AdversarialConcentration => "adversarial-concentration",
            Scenario::IndexErasure => "index-erasure",
        }
    }

    /// The preset spec at a given scale (universe size) and seed. `scale`
    /// is clamped below by 64 so every preset's internal ratios stay valid.
    pub fn spec(&self, scale: u64, seed: u64) -> WorkloadSpec {
        let universe = scale.max(64);
        match self {
            Scenario::BalancedCluster => WorkloadSpec {
                universe,
                total: universe / 2,
                machines: 4,
                distribution: Distribution::Uniform,
                partition: PartitionScheme::RoundRobin,
                capacity_slack: 1.0,
                seed,
            },
            Scenario::LogIngest => WorkloadSpec {
                universe,
                total: universe * 4,
                machines: 4,
                distribution: Distribution::HeavyHitter {
                    hot: (universe / 32).max(1),
                    hot_mass: 0.8,
                },
                partition: PartitionScheme::RoundRobin,
                capacity_slack: 1.0,
                seed,
            },
            Scenario::FederatedInventory => WorkloadSpec {
                universe,
                total: universe,
                machines: 5,
                distribution: Distribution::Zipf { s: 1.0 },
                partition: PartitionScheme::Replicated { copies: 2 },
                capacity_slack: 1.5,
                seed,
            },
            Scenario::AdversarialConcentration => WorkloadSpec {
                universe,
                total: universe / 4,
                machines: 4,
                distribution: Distribution::SparseUniform {
                    support: universe / 8,
                },
                partition: PartitionScheme::AllOnOne { machine: 0 },
                capacity_slack: 1.0,
                seed,
            },
            Scenario::IndexErasure => WorkloadSpec {
                universe,
                total: universe / 8,
                machines: 2,
                distribution: Distribution::SparseUniform {
                    support: universe / 8,
                },
                partition: PartitionScheme::ByElement,
                capacity_slack: 1.0,
                seed,
            },
        }
    }
}

/// A [`Scenario`] plus a seeded fault environment: everything a chaos
/// experiment needs to be replayed bit-for-bit, with a line-oriented
/// `key = value` text form (the offline serde stub provides only marker
/// traits, so (de)serialization is hand-rolled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenario {
    /// The data/placement preset.
    pub scenario: Scenario,
    /// Universe scale handed to [`Scenario::spec`].
    pub scale: u64,
    /// Seed for both the dataset and the fault plan.
    pub seed: u64,
    /// Per-class fault probability (see [`FaultRates::uniform`]).
    pub fault_rate: f64,
    /// Fault onsets are drawn from `[0, horizon)` query attempts.
    pub horizon: u64,
}

impl FaultScenario {
    /// The dataset spec of the underlying preset.
    pub fn workload(&self) -> WorkloadSpec {
        self.scenario.spec(self.scale, self.seed)
    }

    /// The uniform fault rates of this scenario.
    pub fn fault_rates(&self) -> FaultRates {
        FaultRates::uniform(self.fault_rate, self.horizon)
    }

    /// The deterministic fault plan for the preset's machine count.
    pub fn fault_plan(&self) -> FaultPlan {
        let machines = self.workload().machines;
        FaultPlan::seeded(machines, self.seed, &self.fault_rates())
    }

    /// Serializes to the manifest text form.
    pub fn to_text(&self) -> String {
        format!(
            "scenario = {}\nscale = {}\nseed = {}\nfault_rate = {}\nhorizon = {}\n",
            self.scenario.name(),
            self.scale,
            self.seed,
            self.fault_rate,
            self.horizon,
        )
    }

    /// Parses the text form produced by [`FaultScenario::to_text`]. Keys
    /// may appear in any order; unknown keys, missing keys, and malformed
    /// values are [`ScenarioParseError`]s carrying the offending line.
    pub fn from_text(text: &str) -> Result<Self, ScenarioParseError> {
        let (mut scenario, mut scale, mut seed, mut rate, mut horizon) =
            (None, None, None, None, None);
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ScenarioParseError::Syntax { line: lineno + 1 });
            };
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: &dyn std::fmt::Display| ScenarioParseError::BadValue {
                line: lineno + 1,
                key: key.to_string(),
                cause: e.to_string(),
            };
            match key {
                "scenario" => {
                    scenario = Some(
                        Scenario::all()
                            .into_iter()
                            .find(|s| s.name() == value)
                            .ok_or_else(|| ScenarioParseError::UnknownScenario {
                                line: lineno + 1,
                                name: value.to_string(),
                            })?,
                    );
                }
                "scale" => scale = Some(value.parse::<u64>().map_err(|e| bad(&e))?),
                "seed" => seed = Some(value.parse::<u64>().map_err(|e| bad(&e))?),
                "fault_rate" => rate = Some(value.parse::<f64>().map_err(|e| bad(&e))?),
                "horizon" => horizon = Some(value.parse::<u64>().map_err(|e| bad(&e))?),
                other => {
                    return Err(ScenarioParseError::UnknownKey {
                        line: lineno + 1,
                        key: other.to_string(),
                    })
                }
            }
        }
        let missing = |key| ScenarioParseError::MissingKey { key };
        Ok(Self {
            scenario: scenario.ok_or_else(|| missing("scenario"))?,
            scale: scale.ok_or_else(|| missing("scale"))?,
            seed: seed.ok_or_else(|| missing("seed"))?,
            fault_rate: rate.ok_or_else(|| missing("fault_rate"))?,
            horizon: horizon.ok_or_else(|| missing("horizon"))?,
        })
    }
}

/// A parse failure from [`FaultScenario::from_text`]. Line numbers are
/// 1-based positions in the manifest text.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioParseError {
    /// A non-comment line lacked the `key = value` shape.
    Syntax {
        /// Offending manifest line.
        line: usize,
    },
    /// `scenario =` named a preset that does not exist.
    UnknownScenario {
        /// Offending manifest line.
        line: usize,
        /// The unrecognized preset name.
        name: String,
    },
    /// A value failed to parse for its key.
    BadValue {
        /// Offending manifest line.
        line: usize,
        /// The key whose value was malformed.
        key: String,
        /// The underlying parse error, rendered.
        cause: String,
    },
    /// A key this manifest format does not define.
    UnknownKey {
        /// Offending manifest line.
        line: usize,
        /// The unrecognized key.
        key: String,
    },
    /// A required key never appeared.
    MissingKey {
        /// The absent key.
        key: &'static str,
    },
}

impl std::fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax { line } => write!(f, "line {line}: expected `key = value`"),
            Self::UnknownScenario { line, name } => {
                write!(f, "line {line}: unknown scenario {name:?}")
            }
            Self::BadValue { line, key, cause } => write!(f, "line {line}: {key}: {cause}"),
            Self::UnknownKey { line, key } => write!(f, "line {line}: unknown key {key:?}"),
            Self::MissingKey { key } => write!(f, "missing key: {key}"),
        }
    }
}

impl std::error::Error for ScenarioParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build_valid_datasets() {
        for sc in Scenario::all() {
            let ds = sc.spec(128, 7).build();
            assert!(ds.total_count() > 0, "{}", sc.name());
            let p = ds.params();
            assert!(p.realized_capacity <= p.capacity, "{}", sc.name());
        }
    }

    #[test]
    fn index_erasure_preset_is_multiplicity_one() {
        let ds = Scenario::IndexErasure.spec(256, 3).build();
        assert_eq!(ds.capacity(), 1);
        for i in ds.support() {
            assert_eq!(ds.total_multiplicity(i), 1);
        }
    }

    #[test]
    fn adversarial_preset_concentrates() {
        let ds = Scenario::AdversarialConcentration.spec(128, 5).build();
        let p = ds.params();
        assert_eq!(p.machine_counts[0], p.total_count);
        assert!(p.machine_counts[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn presets_are_deterministic_and_named() {
        for sc in Scenario::all() {
            assert_eq!(sc.spec(64, 1).build(), sc.spec(64, 1).build());
            assert!(!sc.name().is_empty());
        }
    }

    #[test]
    fn scale_is_clamped() {
        let ds = Scenario::BalancedCluster.spec(4, 1).build();
        assert_eq!(ds.universe(), 64);
    }

    #[test]
    fn fault_scenario_text_round_trips() {
        for sc in Scenario::all() {
            let fs = FaultScenario {
                scenario: sc,
                scale: 128,
                seed: 9,
                fault_rate: 0.125,
                horizon: 40,
            };
            let parsed = FaultScenario::from_text(&fs.to_text()).expect("round trip");
            assert_eq!(parsed, fs);
            // The replay contract: the parsed manifest regenerates the
            // identical fault schedule and dataset.
            assert_eq!(parsed.fault_plan(), fs.fault_plan());
            assert_eq!(parsed.workload().build(), fs.workload().build());
        }
    }

    #[test]
    fn fault_scenario_text_tolerates_comments_and_order() {
        let text = "# chaos manifest\nhorizon = 12\nseed = 3\n\nfault_rate = 0.5\nscenario = log-ingest\nscale = 256\n";
        let fs = FaultScenario::from_text(text).expect("parse");
        assert_eq!(fs.scenario, Scenario::LogIngest);
        assert_eq!(fs.horizon, 12);
        assert_eq!(fs.fault_rate, 0.5);
    }

    #[test]
    fn fault_scenario_text_rejects_garbage() {
        assert!(FaultScenario::from_text("scenario = nope\n").is_err());
        assert!(FaultScenario::from_text("scale = twelve\n").is_err());
        assert!(FaultScenario::from_text("bogus = 1\n").is_err());
        assert!(matches!(
            FaultScenario::from_text("scenario = log-ingest\n"),
            Err(ScenarioParseError::MissingKey { key: "scale" })
        ));
        assert!(FaultScenario::from_text("no equals sign here\n").is_err());
    }

    #[test]
    fn fault_free_scenario_has_empty_plan() {
        let fs = FaultScenario {
            scenario: Scenario::BalancedCluster,
            scale: 64,
            seed: 1,
            fault_rate: 0.0,
            horizon: 16,
        };
        assert!(fs.fault_plan().is_fault_free());
    }
}
