//! Named scenario presets.
//!
//! The examples and benches keep re-using a handful of recognizable
//! configurations; naming them here keeps parameters consistent across the
//! repository and gives README-level narratives a single source of truth.

use crate::partition::PartitionScheme;
use crate::spec::{Distribution, WorkloadSpec};

/// A named, ready-to-build scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A balanced analytics cluster: uniform data, round-robin sharding.
    BalancedCluster,
    /// A log-ingest fleet: few hot event types carrying most of the mass.
    LogIngest,
    /// A federated inventory: Zipf-popular SKUs replicated on 2 sites, with
    /// capacity headroom for restocking churn.
    FederatedInventory,
    /// The adversarial placement of §5.3: everything on one machine.
    AdversarialConcentration,
    /// The index-erasure regime: a uniform subset, one copy per element.
    IndexErasure,
}

impl Scenario {
    /// All scenarios, for table-driven tests and sweeps.
    pub fn all() -> [Scenario; 5] {
        [
            Scenario::BalancedCluster,
            Scenario::LogIngest,
            Scenario::FederatedInventory,
            Scenario::AdversarialConcentration,
            Scenario::IndexErasure,
        ]
    }

    /// A short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::BalancedCluster => "balanced-cluster",
            Scenario::LogIngest => "log-ingest",
            Scenario::FederatedInventory => "federated-inventory",
            Scenario::AdversarialConcentration => "adversarial-concentration",
            Scenario::IndexErasure => "index-erasure",
        }
    }

    /// The preset spec at a given scale (universe size) and seed. `scale`
    /// is clamped below by 64 so every preset's internal ratios stay valid.
    pub fn spec(&self, scale: u64, seed: u64) -> WorkloadSpec {
        let universe = scale.max(64);
        match self {
            Scenario::BalancedCluster => WorkloadSpec {
                universe,
                total: universe / 2,
                machines: 4,
                distribution: Distribution::Uniform,
                partition: PartitionScheme::RoundRobin,
                capacity_slack: 1.0,
                seed,
            },
            Scenario::LogIngest => WorkloadSpec {
                universe,
                total: universe * 4,
                machines: 4,
                distribution: Distribution::HeavyHitter {
                    hot: (universe / 32).max(1),
                    hot_mass: 0.8,
                },
                partition: PartitionScheme::RoundRobin,
                capacity_slack: 1.0,
                seed,
            },
            Scenario::FederatedInventory => WorkloadSpec {
                universe,
                total: universe,
                machines: 5,
                distribution: Distribution::Zipf { s: 1.0 },
                partition: PartitionScheme::Replicated { copies: 2 },
                capacity_slack: 1.5,
                seed,
            },
            Scenario::AdversarialConcentration => WorkloadSpec {
                universe,
                total: universe / 4,
                machines: 4,
                distribution: Distribution::SparseUniform {
                    support: universe / 8,
                },
                partition: PartitionScheme::AllOnOne { machine: 0 },
                capacity_slack: 1.0,
                seed,
            },
            Scenario::IndexErasure => WorkloadSpec {
                universe,
                total: universe / 8,
                machines: 2,
                distribution: Distribution::SparseUniform {
                    support: universe / 8,
                },
                partition: PartitionScheme::ByElement,
                capacity_slack: 1.0,
                seed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build_valid_datasets() {
        for sc in Scenario::all() {
            let ds = sc.spec(128, 7).build();
            assert!(ds.total_count() > 0, "{}", sc.name());
            let p = ds.params();
            assert!(p.realized_capacity <= p.capacity, "{}", sc.name());
        }
    }

    #[test]
    fn index_erasure_preset_is_multiplicity_one() {
        let ds = Scenario::IndexErasure.spec(256, 3).build();
        assert_eq!(ds.capacity(), 1);
        for i in ds.support() {
            assert_eq!(ds.total_multiplicity(i), 1);
        }
    }

    #[test]
    fn adversarial_preset_concentrates() {
        let ds = Scenario::AdversarialConcentration.spec(128, 5).build();
        let p = ds.params();
        assert_eq!(p.machine_counts[0], p.total_count);
        assert!(p.machine_counts[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn presets_are_deterministic_and_named() {
        for sc in Scenario::all() {
            assert_eq!(sc.spec(64, 1).build(), sc.spec(64, 1).build());
            assert!(!sc.name().is_empty());
        }
    }

    #[test]
    fn scale_is_clamped() {
        let ds = Scenario::BalancedCluster.spec(4, 1).build();
        assert_eq!(ds.universe(), 64);
    }
}
