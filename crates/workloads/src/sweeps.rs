//! Parameter sweeps for the experiment harness.
//!
//! The theorems are scaling statements; the experiments sweep one parameter
//! geometrically while holding the others fixed. [`geometric_sweep`]
//! produces the grid and [`SweepAxis`] names which of the paper's
//! parameters is being varied (for table headers).

use serde::{Deserialize, Serialize};

/// Which Table-1 parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Universe size `N`.
    Universe,
    /// Machine count `n`.
    Machines,
    /// Total data size `M`.
    Total,
    /// Capacity slack multiplier on `ν`.
    CapacitySlack,
}

impl SweepAxis {
    /// Column header used in printed tables.
    pub fn header(&self) -> &'static str {
        match self {
            SweepAxis::Universe => "N",
            SweepAxis::Machines => "n",
            SweepAxis::Total => "M",
            SweepAxis::CapacitySlack => "nu/nu_min",
        }
    }
}

/// Geometric grid `start, start·ratio, …` (integer, deduplicated,
/// `points` entries at most).
pub fn geometric_sweep(start: u64, ratio: f64, points: usize) -> Vec<u64> {
    assert!(start > 0 && ratio > 1.0, "need start > 0 and ratio > 1");
    let mut out = Vec::with_capacity(points);
    let mut x = start as f64;
    for _ in 0..points {
        let v = x.round() as u64;
        if out.last() != Some(&v) {
            out.push(v);
        }
        x *= ratio;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_sweep() {
        assert_eq!(geometric_sweep(16, 2.0, 4), vec![16, 32, 64, 128]);
    }

    #[test]
    fn fractional_ratio_dedupes() {
        let s = geometric_sweep(2, 1.3, 6);
        // strictly increasing after dedup
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.first().unwrap(), 2);
    }

    #[test]
    fn headers() {
        assert_eq!(SweepAxis::Universe.header(), "N");
        assert_eq!(SweepAxis::CapacitySlack.header(), "nu/nu_min");
    }

    #[test]
    #[should_panic(expected = "ratio > 1")]
    fn bad_ratio_rejected() {
        let _ = geometric_sweep(4, 1.0, 3);
    }
}
