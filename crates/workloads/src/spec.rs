//! [`WorkloadSpec`] — a fully-seeded, serializable description of one
//! experimental dataset instance.
//!
//! Specs are what the benchmark harness sweeps over; building the same spec
//! twice yields byte-identical datasets, so every number in EXPERIMENTS.md
//! can be regenerated.

use crate::generators;
use crate::partition::PartitionScheme;
use dqs_db::{DistributedDataset, Multiset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The shape of the global frequency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// `total` uniform draws over the universe.
    Uniform,
    /// Exactly `support` distinct elements with near-equal multiplicities.
    SparseUniform {
        /// Number of distinct elements.
        support: u64,
    },
    /// Zipf-law multiplicities with exponent `s`.
    Zipf {
        /// Skew exponent (0 = uniform law).
        s: f64,
    },
    /// `hot` elements carry `hot_mass` of the total mass.
    HeavyHitter {
        /// Number of hot elements.
        hot: u64,
        /// Fraction of mass on the hot set.
        hot_mass: f64,
    },
    /// All mass on a single random element.
    Singleton,
}

/// A complete, reproducible workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Universe size `N`.
    pub universe: u64,
    /// Global cardinality `M` *before* any replication.
    pub total: u64,
    /// Machine count `n`.
    pub machines: usize,
    /// Frequency shape.
    pub distribution: Distribution,
    /// Placement over machines.
    pub partition: PartitionScheme,
    /// Capacity slack: `ν = ceil(slack · max_i c_i)` (1.0 = tight).
    pub capacity_slack: f64,
    /// RNG seed — the only source of randomness.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A compact uniform default, useful as a starting point in examples.
    pub fn small_uniform(universe: u64, total: u64, machines: usize, seed: u64) -> Self {
        Self {
            universe,
            total,
            machines,
            distribution: Distribution::Uniform,
            partition: PartitionScheme::RoundRobin,
            capacity_slack: 1.0,
            seed,
        }
    }

    /// Generates the global multiset (before partitioning).
    pub fn global_multiset(&self) -> Multiset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.distribution {
            Distribution::Uniform => {
                generators::uniform_support(self.universe, self.total, &mut rng)
            }
            Distribution::SparseUniform { support } => {
                generators::sparse_uniform(self.universe, support, self.total, &mut rng)
            }
            Distribution::Zipf { s } => generators::zipf(self.universe, self.total, s, &mut rng),
            Distribution::HeavyHitter { hot, hot_mass } => {
                generators::heavy_hitter(self.universe, self.total, hot, hot_mass, &mut rng)
            }
            Distribution::Singleton => generators::singleton(self.universe, self.total, &mut rng),
        }
    }

    /// Builds the distributed dataset: generate, partition, set capacity.
    pub fn build(&self) -> DistributedDataset {
        assert!(self.capacity_slack >= 1.0, "capacity slack must be ≥ 1");
        let global = self.global_multiset();
        // separate RNG stream for partitioning so distribution and placement
        // can be varied independently under the same seed
        let mut prng = StdRng::seed_from_u64(self.seed ^ 0xD1F7_A5E3_9C4B_2680);
        let shards = self
            .partition
            .split(&global, self.machines, self.universe, &mut prng);
        let max_total: u64 = {
            let mut totals: std::collections::BTreeMap<u64, u64> = Default::default();
            for s in &shards {
                for (e, c) in s.iter() {
                    *totals.entry(e).or_insert(0) += c;
                }
            }
            totals.values().copied().max().unwrap_or(1)
        };
        let capacity = ((max_total as f64) * self.capacity_slack).ceil() as u64;
        DistributedDataset::new(self.universe, capacity.max(1), shards)
            // lint: allow(panic): capacity is computed above as a ceiling of
            // the max total, so the built shards always fit it.
            .expect("spec-built dataset must be valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let spec = WorkloadSpec::small_uniform(64, 200, 4, 9);
        assert_eq!(spec.build(), spec.build());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::small_uniform(64, 200, 4, 1).build();
        let b = WorkloadSpec::small_uniform(64, 200, 4, 2).build();
        assert_ne!(a, b);
    }

    #[test]
    fn capacity_slack_inflates_nu() {
        let mut spec = WorkloadSpec::small_uniform(32, 100, 2, 5);
        let tight = spec.build();
        spec.capacity_slack = 4.0;
        let slack = spec.build();
        assert_eq!(
            slack.capacity(),
            (tight.capacity() as f64 * 4.0).ceil() as u64
        );
        // same data, only ν differs
        assert_eq!(tight.shards(), slack.shards());
    }

    #[test]
    fn total_preserved_without_replication() {
        for dist in [
            Distribution::Uniform,
            Distribution::SparseUniform { support: 10 },
            Distribution::Zipf { s: 1.1 },
            Distribution::HeavyHitter {
                hot: 3,
                hot_mass: 0.7,
            },
            Distribution::Singleton,
        ] {
            let spec = WorkloadSpec {
                distribution: dist,
                ..WorkloadSpec::small_uniform(64, 300, 3, 11)
            };
            assert_eq!(spec.build().total_count(), 300, "{dist:?}");
        }
    }

    #[test]
    fn replicated_spec_multiplies_total() {
        let spec = WorkloadSpec {
            partition: PartitionScheme::Replicated { copies: 2 },
            ..WorkloadSpec::small_uniform(64, 150, 4, 3)
        };
        assert_eq!(spec.build().total_count(), 300);
    }

    #[test]
    fn all_on_one_concentration() {
        let spec = WorkloadSpec {
            partition: PartitionScheme::AllOnOne { machine: 2 },
            ..WorkloadSpec::small_uniform(64, 100, 4, 3)
        };
        let ds = spec.build();
        assert_eq!(ds.shards()[2].cardinality(), 100);
        assert_eq!(ds.params().machine_counts, vec![0, 0, 100, 0]);
    }
}
