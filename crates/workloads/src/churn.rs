//! Dynamic-update (churn) traces for Experiment E9.
//!
//! Generates a random but always-valid stream of insert/delete operations
//! against a dataset: deletes only target present occurrences, and inserts
//! never push a total multiplicity past the capacity `ν` (so the composed
//! oracle stays well-defined).

use dqs_db::{DistributedDataset, UpdateLog, UpdateOp};
use rand::Rng;

/// Generates `ops` valid update operations against `base`.
///
/// `insert_bias ∈ [0,1]` is the probability of attempting an insert (vs a
/// delete); when the attempted kind is impossible (nothing to delete /
/// capacity reached) the other kind is tried, and if neither is possible
/// the trace ends early.
pub fn churn_trace(
    base: &DistributedDataset,
    ops: usize,
    insert_bias: f64,
    rng: &mut impl Rng,
) -> UpdateLog {
    assert!((0.0..=1.0).contains(&insert_bias));
    let mut log = UpdateLog::new();
    // live view = base + log (tracked incrementally for validity checks)
    let mut live = base.clone();
    for _ in 0..ops {
        let want_insert = rng.gen::<f64>() < insert_bias;
        let op = if want_insert {
            try_insert(&live, rng).or_else(|| try_delete(&live, rng))
        } else {
            try_delete(&live, rng).or_else(|| try_insert(&live, rng))
        };
        let Some(op) = op else { break };
        log.push(op);
        // maintain the live view
        let mut single = UpdateLog::new();
        single.push(op);
        live = single.apply_to(&live);
    }
    log
}

fn try_insert(live: &DistributedDataset, rng: &mut impl Rng) -> Option<UpdateOp> {
    let n = live.num_machines();
    // rejection-sample an (element, machine) that stays within capacity
    for _ in 0..64 {
        let elem = rng.gen_range(0..live.universe());
        let machine = rng.gen_range(0..n);
        if live.total_multiplicity(elem) < live.capacity() {
            return Some(UpdateOp::insert(machine, elem));
        }
    }
    None
}

fn try_delete(live: &DistributedDataset, rng: &mut impl Rng) -> Option<UpdateOp> {
    // Never delete the last element overall: an empty dataset has no
    // sampling state.
    if live.total_count() <= 1 {
        return None;
    }
    let n = live.num_machines();
    for _ in 0..64 {
        let machine = rng.gen_range(0..n);
        let shard = &live.shards()[machine];
        if shard.is_empty() {
            continue;
        }
        let support: Vec<u64> = shard.support().collect();
        let elem = support[rng.gen_range(0..support.len())];
        return Some(UpdateOp::delete(machine, elem));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> DistributedDataset {
        WorkloadSpec::small_uniform(32, 80, 3, 17).build()
    }

    #[test]
    fn trace_is_always_applicable() {
        let ds = base();
        let mut rng = StdRng::seed_from_u64(5);
        let log = churn_trace(&ds, 200, 0.5, &mut rng);
        assert!(!log.ops().is_empty());
        // applying must not panic and must stay within capacity
        let updated = log.apply_to(&ds);
        let p = updated.params();
        assert!(p.realized_capacity <= ds.capacity());
        assert!(p.total_count >= 1);
    }

    #[test]
    fn insert_only_bias_grows_dataset() {
        let ds = base();
        let mut rng = StdRng::seed_from_u64(6);
        let log = churn_trace(&ds, 50, 1.0, &mut rng);
        let updated = log.apply_to(&ds);
        assert!(updated.total_count() >= ds.total_count());
    }

    #[test]
    fn delete_only_bias_shrinks_dataset() {
        let ds = base();
        let mut rng = StdRng::seed_from_u64(7);
        let log = churn_trace(&ds, 50, 0.0, &mut rng);
        let updated = log.apply_to(&ds);
        assert!(updated.total_count() <= ds.total_count());
        assert!(updated.total_count() >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = base();
        let a = churn_trace(&ds, 30, 0.5, &mut StdRng::seed_from_u64(9));
        let b = churn_trace(&ds, 30, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.ops(), b.ops());
    }
}
