//! Partitioning a global multiset over `n` machines.
//!
//! The paper's model places no constraint on how data is distributed —
//! machines may even hold copies of the same key ("our algorithms allow
//! different machines to hold the same key", §1). These schemes cover the
//! spectrum the experiments need: balanced, skewed, disjoint, replicated,
//! and the adversarial all-on-one-machine placement used by the
//! lower-bound's hard inputs.

use dqs_db::Multiset;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a global multiset is laid out over machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// Occurrences dealt round-robin: machine loads differ by ≤ 1 and
    /// every machine sees (roughly) every hot element.
    RoundRobin,
    /// Each *element* (with all its copies) goes to machine
    /// `hash(element) mod n` — disjoint supports, realistic sharding.
    ByElement,
    /// Contiguous element ranges — disjoint supports with locality.
    Range,
    /// Every occurrence lands on a uniformly random machine.
    Random,
    /// Each element's copies are written to `copies` distinct machines
    /// (replication factor); total count is multiplied by `copies`.
    Replicated {
        /// Replication factor (≥ 1, ≤ n).
        copies: usize,
    },
    /// All data on machine `machine`; the rest are empty. This is the
    /// placement behind the lower-bound hard inputs (§5.3 puts "all of the
    /// elements to the k-th machine").
    AllOnOne {
        /// The loaded machine.
        machine: usize,
    },
}

impl PartitionScheme {
    /// Splits `global` over `machines` shards.
    pub fn split(
        &self,
        global: &Multiset,
        machines: usize,
        universe: u64,
        rng: &mut impl Rng,
    ) -> Vec<Multiset> {
        assert!(machines > 0, "need at least one machine");
        let mut shards = vec![Multiset::new(); machines];
        match *self {
            PartitionScheme::RoundRobin => {
                let mut k = 0usize;
                for (e, c) in global.iter() {
                    for _ in 0..c {
                        shards[k % machines].insert(e);
                        k += 1;
                    }
                }
            }
            PartitionScheme::ByElement => {
                for (e, c) in global.iter() {
                    // cheap deterministic spread (Fibonacci hashing)
                    let h = (e.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize;
                    shards[h % machines].insert_many(e, c);
                }
            }
            PartitionScheme::Range => {
                let span = universe.div_ceil(machines as u64).max(1);
                for (e, c) in global.iter() {
                    let j = ((e / span) as usize).min(machines - 1);
                    shards[j].insert_many(e, c);
                }
            }
            PartitionScheme::Random => {
                for (e, c) in global.iter() {
                    for _ in 0..c {
                        shards[rng.gen_range(0..machines)].insert(e);
                    }
                }
            }
            PartitionScheme::Replicated { copies } => {
                assert!(
                    copies >= 1 && copies <= machines,
                    "replication factor must be in 1..=n"
                );
                for (e, c) in global.iter() {
                    let start = rng.gen_range(0..machines);
                    for r in 0..copies {
                        shards[(start + r) % machines].insert_many(e, c);
                    }
                }
            }
            PartitionScheme::AllOnOne { machine } => {
                assert!(machine < machines, "machine index out of range");
                shards[machine] = global.clone();
            }
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn global() -> Multiset {
        Multiset::from_counts([(0, 3), (1, 1), (5, 2), (9, 4)])
    }

    fn total(shards: &[Multiset]) -> u64 {
        shards.iter().map(|s| s.cardinality()).sum()
    }

    #[test]
    fn round_robin_balances_loads() {
        let mut rng = StdRng::seed_from_u64(0);
        let shards = PartitionScheme::RoundRobin.split(&global(), 3, 16, &mut rng);
        assert_eq!(total(&shards), 10);
        let loads: Vec<u64> = shards.iter().map(|s| s.cardinality()).collect();
        assert!(loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 1);
    }

    #[test]
    fn by_element_supports_are_disjoint() {
        let mut rng = StdRng::seed_from_u64(0);
        let shards = PartitionScheme::ByElement.split(&global(), 4, 16, &mut rng);
        assert_eq!(total(&shards), 10);
        let mut seen = std::collections::HashSet::new();
        for s in &shards {
            for e in s.support() {
                assert!(seen.insert(e), "element {e} on two machines");
            }
        }
    }

    #[test]
    fn range_respects_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let shards = PartitionScheme::Range.split(&global(), 2, 16, &mut rng);
        // span = 8: elements 0,1,5 → machine 0; 9 → machine 1
        assert_eq!(shards[0].cardinality(), 6);
        assert_eq!(shards[1].cardinality(), 4);
    }

    #[test]
    fn random_preserves_total() {
        let mut rng = StdRng::seed_from_u64(7);
        let shards = PartitionScheme::Random.split(&global(), 5, 16, &mut rng);
        assert_eq!(total(&shards), 10);
    }

    #[test]
    fn replication_multiplies_totals_and_spreads_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let shards = PartitionScheme::Replicated { copies: 2 }.split(&global(), 3, 16, &mut rng);
        assert_eq!(total(&shards), 20);
        // element 9 must appear on exactly two machines with full count
        let holders: Vec<_> = shards.iter().filter(|s| s.multiplicity(9) == 4).collect();
        assert_eq!(holders.len(), 2);
    }

    #[test]
    fn all_on_one_concentrates() {
        let mut rng = StdRng::seed_from_u64(1);
        let shards = PartitionScheme::AllOnOne { machine: 1 }.split(&global(), 3, 16, &mut rng);
        assert!(shards[0].is_empty());
        assert_eq!(shards[1], global());
        assert!(shards[2].is_empty());
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn oversized_replication_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = PartitionScheme::Replicated { copies: 4 }.split(&global(), 3, 16, &mut rng);
    }
}
