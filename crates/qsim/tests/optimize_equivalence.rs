//! Property-based check for the peephole optimizer: on random instruction
//! sequences, `Program::optimize()` must preserve the program's action on
//! random start states and its static query accounting, while never growing
//! the instruction count.

use dqs_math::Complex64;
use dqs_sim::{gates, Instruction, Layout, Program, QuantumState, SparseState};
use proptest::prelude::*;
use std::sync::Arc;

/// Boolean strategy (the offline proptest stub has no `proptest::bool`).
fn any_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|x| x == 1)
}

const UNIVERSE: u64 = 6;
const COUNTS: u64 = 4;
const MACHINES: usize = 2;

fn layout() -> Layout {
    Layout::builder()
        .register("elem", UNIVERSE)
        .register("count", COUNTS)
        .register("flag", 2)
        .build()
}

/// A random instruction drawn from the classes the optimizer rewrites:
/// oracle adds (fusion), unitaries (merging), and phases (merge/drop).
fn instr_strategy() -> impl Strategy<Value = Instruction> {
    let oracle = (
        0usize..MACHINES,
        proptest::collection::vec(0u64..COUNTS, UNIVERSE as usize),
        any_bool(),
    )
        .prop_map(|(machine, table, inverse)| Instruction::OracleAdd {
            machine,
            elem: 0,
            count: 1,
            table: Arc::new(table),
            modulus: COUNTS,
            inverse,
        });
    let unitary = (0u64..4).prop_map(|k| Instruction::RegisterUnitary {
        target: 2,
        matrix: {
            let c = (k as f64 / 3.0).min(1.0);
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        },
    });
    let by_register = (1u64..5).prop_map(|scale| Instruction::UnitaryByRegister {
        target: 2,
        by: 1,
        matrices: (0..COUNTS)
            .map(|s| {
                let c = (((s * scale) % COUNTS) as f64 / (COUNTS - 1) as f64).min(1.0);
                gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
            })
            .collect(),
    });
    let phase_if_zero = (0usize..3, -3i32..4).prop_map(|(reg, k)| Instruction::PhaseIfZero {
        reg,
        phi: k as f64 * 0.41,
    });
    let global_phase = (-3i32..4).prop_map(|k| Instruction::GlobalPhase {
        phi: k as f64 * 0.73,
    });
    prop_oneof![oracle, unitary, by_register, phase_if_zero, global_phase]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimize_preserves_action_and_accounting(
        instrs in proptest::collection::vec(instr_strategy(), 1..14),
        start in (0u64..UNIVERSE, 0u64..COUNTS, 0u64..2),
    ) {
        let mut raw = Program::new(layout());
        for i in instrs {
            raw.push(i);
        }
        let opt = raw.optimize();

        prop_assert!(opt.len() <= raw.len(), "optimize must never grow a program");
        prop_assert_eq!(
            raw.oracle_queries(MACHINES),
            opt.oracle_queries(MACHINES),
            "static query accounting is an optimizer invariant"
        );

        // Same action on a superposed start state (uniform element register
        // on top of the random basis tuple, so every branch is exercised).
        let basis = [start.0, start.1, start.2];
        let mut a = SparseState::from_basis(layout(), &basis);
        a.apply_register_unitary(0, &gates::dft(UNIVERSE));
        a.apply_phase(|b| Complex64::cis(0.17 * b[0] as f64));
        let mut b = a.clone();
        raw.run(&mut a);
        opt.run(&mut b);
        let (ta, tb) = (a.to_table(), b.to_table());
        prop_assert!(
            ta.distance_sqr(&tb) < 1e-15,
            "optimized program diverged: {:.3e}\nraw: {}\nopt: {}",
            ta.distance_sqr(&tb),
            raw.shape(),
            opt.shape()
        );
    }

    #[test]
    fn optimize_is_idempotent(
        instrs in proptest::collection::vec(instr_strategy(), 1..14),
    ) {
        let mut raw = Program::new(layout());
        for i in instrs {
            raw.push(i);
        }
        let once = raw.optimize();
        let twice = once.optimize();
        prop_assert_eq!(once.shape(), twice.shape(), "optimize must reach a fixpoint");
    }
}
