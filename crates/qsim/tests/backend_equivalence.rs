//! Property-based cross-validation: the dense and sparse backends must
//! produce identical states on arbitrary random circuits, and both must
//! preserve norms under every unitary primitive.

use dqs_math::Complex64;
use dqs_sim::{gates, DenseState, Layout, QuantumState, SparseState, StateTable};
use proptest::prelude::*;

/// One random operation, chosen from the four primitive classes.
#[derive(Debug, Clone)]
enum Op {
    /// Controlled modular addition: count += f(elem) (mod dim).
    AddMod { mult: u64 },
    /// Conditioned rotation on the flag, angle from the count value.
    CondRotate { scale: u64 },
    /// Diagonal phase depending on all registers.
    Phase { k1: u64, k2: u64 },
    /// Rank-one phase about a two-element anchor.
    RankOne { a: u64, b: u64, phi_milli: u64 },
    /// Fixed single-register unitary (DFT on the element register).
    Dft,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..5).prop_map(|mult| Op::AddMod { mult }),
        (1u64..4).prop_map(|scale| Op::CondRotate { scale }),
        (0u64..7, 0u64..5).prop_map(|(k1, k2)| Op::Phase { k1, k2 }),
        (0u64..6, 0u64..6, 1u64..6283).prop_map(|(a, b, phi_milli)| Op::RankOne {
            a,
            b,
            phi_milli
        }),
        Just(Op::Dft),
    ]
}

const UNIVERSE: u64 = 6;
const COUNTS: u64 = 4;

fn layout() -> Layout {
    Layout::builder()
        .register("elem", UNIVERSE)
        .register("count", COUNTS)
        .register("flag", 2)
        .build()
}

fn anchor(a: u64, b: u64) -> StateTable {
    let l = layout();
    let amp = if a == b {
        Complex64::ONE
    } else {
        Complex64::from_real(1.0 / 2.0f64.sqrt())
    };
    let mut entries = vec![(vec![a, 0, 0].into_boxed_slice(), amp)];
    if a != b {
        entries.push((vec![b, 0, 0].into_boxed_slice(), amp));
    }
    StateTable::new(l, entries)
}

fn apply<S: QuantumState>(state: &mut S, op: &Op) {
    match *op {
        Op::AddMod { mult } => {
            state.apply_permutation(|t| t[1] = (t[1] + (t[0] * mult) % COUNTS) % COUNTS)
        }
        Op::CondRotate { scale } => state.apply_conditioned_unitary(2, |t| {
            let c = ((t[1] * scale) % COUNTS) as f64 / (COUNTS - 1) as f64;
            let c = c.min(1.0);
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        }),
        Op::Phase { k1, k2 } => state
            .apply_phase(|t| Complex64::cis(0.37 * (t[0] * k1) as f64 + 0.11 * (t[1] * k2) as f64)),
        Op::RankOne { a, b, phi_milli } => {
            state.apply_rank_one_phase(&anchor(a, b), phi_milli as f64 / 1000.0)
        }
        Op::Dft => state.apply_register_unitary(0, &gates::dft(UNIVERSE)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_and_sparse_agree_on_random_circuits(
        start in (0u64..UNIVERSE, 0u64..COUNTS, 0u64..2),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let basis = [start.0, start.1, start.2];
        let mut dense = DenseState::from_basis(layout(), &basis);
        let mut sparse = SparseState::from_basis(layout(), &basis);
        for op in &ops {
            apply(&mut dense, op);
            apply(&mut sparse, op);
        }
        let (td, ts) = (dense.to_table(), sparse.to_table());
        prop_assert!(
            td.distance_sqr(&ts) < 1e-15,
            "backends diverged after {ops:?}: {:.3e}",
            td.distance_sqr(&ts)
        );
    }

    #[test]
    fn norm_is_preserved_by_random_circuits(
        ops in proptest::collection::vec(op_strategy(), 1..16),
    ) {
        let mut s = SparseState::from_basis(layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(UNIVERSE));
        for op in &ops {
            apply(&mut s, op);
            prop_assert!((s.norm() - 1.0).abs() < 1e-9, "norm drift after {op:?}");
        }
    }

    #[test]
    fn inner_products_match_across_backends(
        ops_a in proptest::collection::vec(op_strategy(), 1..8),
        ops_b in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let mut da = DenseState::from_basis(layout(), &[0, 0, 0]);
        let mut sa = SparseState::from_basis(layout(), &[0, 0, 0]);
        let mut db = DenseState::from_basis(layout(), &[1, 0, 0]);
        let mut sb = SparseState::from_basis(layout(), &[1, 0, 0]);
        for op in &ops_a { apply(&mut da, op); apply(&mut sa, op); }
        for op in &ops_b { apply(&mut db, op); apply(&mut sb, op); }
        let ip_dense = da.inner(&db);
        let ip_sparse = sa.inner(&sb);
        prop_assert!((ip_dense - ip_sparse).abs() < 1e-9);
    }

    #[test]
    fn measurement_marginals_match_across_backends(
        ops in proptest::collection::vec(op_strategy(), 1..10),
        reg in 0usize..3,
    ) {
        let mut dense = DenseState::from_basis(layout(), &[2, 1, 0]);
        let mut sparse = SparseState::from_basis(layout(), &[2, 1, 0]);
        for op in &ops {
            apply(&mut dense, op);
            apply(&mut sparse, op);
        }
        let pd = dense.register_probabilities(reg);
        let ps = sparse.register_probabilities(reg);
        for (a, b) in pd.iter().zip(&ps) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
