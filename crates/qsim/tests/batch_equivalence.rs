//! Property-based validation of batched execution: advancing `B` states
//! through one shared gate sequence with [`Program::run_batch`] /
//! [`BatchedState`] must be **bit-identical** (not approximately equal) to
//! running each state through [`Program::run`] on its own, on all three
//! backends — dense, sparse packed-`u128`, and the sparse boxed-key
//! fallback. Batching is an execution schedule, never a semantic change.

use dqs_math::Complex64;
use dqs_sim::{gates, BatchedState, DenseState, Instruction, Layout, Program, QuantumState};
use dqs_sim::{SparseState, StateTable};
use proptest::prelude::*;
use std::sync::Arc;

const UNIVERSE: u64 = 6;
const COUNTS: u64 = 4;

fn layout() -> Layout {
    Layout::builder()
        .register("elem", UNIVERSE)
        .register("count", COUNTS)
        .register("flag", 2)
        .build()
}

/// One random instruction, covering every [`Instruction`] kind that the
/// three-register layout supports (the ancilla kinds need the parallel
/// layout and are covered by the `dqs-core` batch tests).
#[derive(Debug, Clone)]
enum Op {
    AddMod { mult: u64, inverse: bool },
    CondRotate { scale: u64 },
    PhaseIfZero { phi_milli: u64 },
    RankOne { a: u64, b: u64, phi_milli: u64 },
    Dft,
    GlobalPhase { phi_milli: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..5, 0u8..2).prop_map(|(mult, inv)| Op::AddMod {
            mult,
            inverse: inv == 1
        }),
        (1u64..4).prop_map(|scale| Op::CondRotate { scale }),
        (1u64..6283).prop_map(|phi_milli| Op::PhaseIfZero { phi_milli }),
        (0u64..UNIVERSE, 0u64..UNIVERSE, 1u64..6283).prop_map(|(a, b, phi_milli)| Op::RankOne {
            a,
            b,
            phi_milli
        }),
        Just(Op::Dft),
        (1u64..6283).prop_map(|phi_milli| Op::GlobalPhase { phi_milli }),
    ]
}

fn anchor(a: u64, b: u64) -> StateTable {
    let amp = if a == b {
        Complex64::ONE
    } else {
        Complex64::from_real(1.0 / 2.0f64.sqrt())
    };
    let mut entries = vec![(vec![a, 0, 0].into_boxed_slice(), amp)];
    if a != b {
        entries.push((vec![b, 0, 0].into_boxed_slice(), amp));
    }
    StateTable::new(layout(), entries)
}

fn compile(ops: &[Op]) -> Program {
    let mut p = Program::new(layout());
    for op in ops {
        p.push(match *op {
            Op::AddMod { mult, inverse } => Instruction::OracleAdd {
                machine: 0,
                elem: 0,
                count: 1,
                table: Arc::new((0..UNIVERSE).map(|e| (e * mult) % COUNTS).collect()),
                modulus: COUNTS,
                inverse,
            },
            Op::CondRotate { scale } => Instruction::UnitaryByRegister {
                target: 2,
                by: 1,
                matrices: (0..COUNTS)
                    .map(|v| {
                        let c = (((v * scale) % COUNTS) as f64 / (COUNTS - 1) as f64).min(1.0);
                        gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
                    })
                    .collect(),
            },
            Op::PhaseIfZero { phi_milli } => Instruction::PhaseIfZero {
                reg: 2,
                phi: phi_milli as f64 / 1000.0,
            },
            Op::RankOne { a, b, phi_milli } => Instruction::RankOnePhase {
                anchor: anchor(a, b),
                phi: phi_milli as f64 / 1000.0,
            },
            Op::Dft => Instruction::RegisterUnitary {
                target: 0,
                matrix: gates::dft(UNIVERSE),
            },
            Op::GlobalPhase { phi_milli } => Instruction::GlobalPhase {
                phi: phi_milli as f64 / 1000.0,
            },
        });
    }
    p
}

/// Per-member initial state: a basis load plus a member-specific phase ramp
/// so no two batch members coincide (a real multi-seed workload).
fn member<S: QuantumState>(mk: impl Fn() -> S, seed: u64) -> S {
    let mut s = mk();
    s.apply_register_unitary(0, &gates::dft(UNIVERSE));
    s.apply_phase(|b| Complex64::cis(0.001 * ((seed * 13 + 1) * (b[0] + 2 * b[1])) as f64));
    s
}

fn assert_batch_matches_solo<S: QuantumState>(mk: impl Fn() -> S, program: &Program, b: usize) {
    let mut batch = BatchedState::new((0..b as u64).map(|seed| member(&mk, seed)).collect());
    batch.run(program);
    for (seed, got) in batch.states().iter().enumerate() {
        let mut want = member(&mk, seed as u64);
        program.run(&mut want);
        let d = got.to_table().distance_sqr(&want.to_table());
        assert_eq!(
            d, 0.0,
            "batch member {seed}/{b} diverged from its solo run by {d:.3e}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `run_batch` ≡ B × `run`, bitwise, on all three backends.
    #[test]
    fn run_batch_is_bit_identical_to_sequential_runs(
        start in (0u64..UNIVERSE, 0u64..COUNTS, 0u64..2),
        ops in proptest::collection::vec(op_strategy(), 1..12),
        b in 1usize..6,
    ) {
        let basis = [start.0, start.1, start.2];
        let program = compile(&ops);
        assert_batch_matches_solo(
            || DenseState::from_basis(layout(), &basis),
            &program,
            b,
        );
        assert_batch_matches_solo(
            || SparseState::from_basis(layout(), &basis),
            &program,
            b,
        );
        assert_batch_matches_solo(
            || SparseState::from_basis_fallback(layout(), &basis),
            &program,
            b,
        );
    }

    /// The batched rank-one hook alone (the one instruction with a real
    /// batched override) agrees bitwise between packed and the solo path,
    /// including repeated application.
    #[test]
    fn repeated_batched_rank_one_stays_bit_identical(
        a in 0u64..UNIVERSE,
        bb in 0u64..UNIVERSE,
        phi_milli in 1u64..6283,
        reps in 1usize..4,
        b in 2usize..5,
    ) {
        let anchor = anchor(a, bb);
        let phi = phi_milli as f64 / 1000.0;
        let mk = || SparseState::from_basis(layout(), &[0, 0, 0]);
        let mut batch: Vec<SparseState> = (0..b as u64).map(|s| member(mk, s)).collect();
        let mut solo: Vec<SparseState> = (0..b as u64).map(|s| member(mk, s)).collect();
        for _ in 0..reps {
            SparseState::apply_rank_one_phase_batch(&mut batch, &anchor, phi);
            for s in solo.iter_mut() {
                s.apply_rank_one_phase(&anchor, phi);
            }
        }
        for (x, y) in batch.iter().zip(&solo) {
            prop_assert_eq!(x.to_table().distance_sqr(&y.to_table()), 0.0);
        }
    }
}
