//! Projective measurement: destructive, coherent (purified), and the
//! deferred-measurement equivalence the paper leans on (§5.1, Lemma 5.3,
//! Appendix A).
//!
//! Lemma 5.3 says an oblivious algorithm with measurements can be replaced
//! by one without, at equal query complexity and fidelity: defer the
//! measurement, then replace the final projective measurement `{Π_v}` by
//! the unitary `U|s,0⟩ = Σ_v √p_v |s_v, v⟩` that records the outcome in an
//! ancilla. For register-valued measurements that `U` is just a coherent
//! copy ([`coherent_copy`]), and the fidelity identity
//! `F(ρ', ψ) = F(ρ, ψ)` of Appendix A becomes checkable numerics
//! ([`fidelity_after_measurement`] versus
//! [`StateTable::fidelity_of_register_marginal`] on the purified run) —
//! see this module's tests.

use crate::state::QuantumState;
use crate::table::StateTable;
use dqs_math::Complex64;
use rand::Rng;

/// Destructively measures register `reg` in the computational basis:
/// samples an outcome `v` with Born probability, projects, renormalizes.
/// Returns `(outcome, probability)`.
pub fn measure_register<S: QuantumState>(
    state: &mut S,
    reg: usize,
    rng: &mut impl Rng,
) -> (u64, f64) {
    let probs = state.register_probabilities(reg);
    let outcome = sample_outcome(&probs, rng) as usize;
    let p = state.filter_amplitudes(|b| b[reg] as usize == outcome);
    state.renormalize();
    (outcome as u64, p)
}

/// Samples an outcome index from an (unnormalized) probability table with
/// the Born rule — the pure sampling half of [`measure_register`], split
/// out so callers that only need the outcome (e.g. replaying a measurement
/// against a precomputed probability table) can skip the projection while
/// consuming **exactly** the same randomness: one `rng.gen::<f64>()` draw
/// and the same cumulative scan, so a replay is bit-identical to the
/// measurement it mirrors.
///
/// # Panics
///
/// Panics if the table's total mass is ≤ 1e-12 (measuring the zero vector).
pub fn sample_outcome(probs: &[f64], rng: &mut impl Rng) -> u64 {
    let total: f64 = probs.iter().sum();
    assert!(total > 1e-12, "measuring the zero vector");
    let mut u = rng.gen::<f64>() * total;
    let mut outcome = probs.len() - 1;
    for (v, &p) in probs.iter().enumerate() {
        if u < p {
            outcome = v;
            break;
        }
        u -= p;
    }
    outcome as u64
}

/// The purifying unitary of Lemma 5.3 for a register-valued measurement:
/// coherently copies `src` into the (clean) ancilla register `dst`,
/// `|…v…⟩|0⟩ ↦ |…v…⟩|v⟩`. No collapse, no randomness.
///
/// # Panics
///
/// Panics (in debug) if `dst` is not in the `|0⟩` state on the support, or
/// if the registers' dimensions differ.
pub fn coherent_copy<S: QuantumState>(state: &mut S, src: usize, dst: usize) {
    assert_ne!(src, dst, "cannot copy a register onto itself");
    assert!(
        state.layout().dim(dst) >= state.layout().dim(src),
        "destination register too small to record the outcome"
    );
    state.apply_permutation(|b| {
        debug_assert_eq!(b[dst], 0, "outcome register must be clean");
        b[dst] = b[src];
    });
}

/// `F(ρ, |τ⟩⟨τ|)` where `ρ` is the state of register `reg` **after** a
/// destructive computational-basis measurement of register `measured`
/// (outcome discarded): `ρ = Σ_v p_v ρ_v` with `ρ_v` the reduced state of
/// `reg` conditioned on outcome `v`.
///
/// By linearity `⟨τ|ρ|τ⟩ = Σ_v p_v ⟨τ|ρ_v|τ⟩`, computed here exactly from
/// the pure pre-measurement state.
pub fn fidelity_after_measurement(
    state: &StateTable,
    measured: usize,
    reg: usize,
    target: &[Complex64],
) -> f64 {
    assert_ne!(
        measured, reg,
        "measure a different register than the target"
    );
    let dim = state.layout().dim(measured);
    let mut total = 0.0;
    for v in 0..dim {
        // un-normalized conditional branch: keep entries with measured == v
        let branch: Vec<_> = state
            .iter()
            .filter(|(b, _)| b[measured] == v)
            .map(|(b, a)| (b.to_vec().into_boxed_slice(), a))
            .collect();
        if branch.is_empty() {
            continue;
        }
        let branch = StateTable::new(state.layout().clone(), branch);
        // p_v·⟨τ|ρ_v|τ⟩ = fidelity computed on the unnormalized branch
        total += branch.fidelity_of_register_marginal(reg, target);
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::register::Layout;
    use crate::sparse::SparseState;
    use dqs_math::approx::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout() -> Layout {
        Layout::builder()
            .register("elem", 4)
            .register("flag", 2)
            .register("out", 4)
            .build()
    }

    /// A correlated test state: (|0,0⟩ + |1,0⟩ + |2,1⟩ + |3,1⟩)/2 ⊗ |0⟩.
    fn correlated() -> SparseState {
        let mut s = SparseState::from_basis(layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_permutation(|b| b[1] = u64::from(b[0] >= 2));
        s
    }

    #[test]
    fn destructive_measurement_collapses_and_renormalizes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = correlated();
        let (outcome, p) = measure_register(&mut s, 1, &mut rng);
        assert!(approx_eq(p, 0.5));
        assert!(approx_eq(s.norm(), 1.0));
        // the elem register is now confined to the matching half
        for (b, _) in s.to_table().iter() {
            assert_eq!(u64::from(b[0] >= 2), outcome);
        }
    }

    #[test]
    fn measurement_outcome_frequencies_match_born_rule() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut ones = 0;
        let trials = 2000;
        for _ in 0..trials {
            let mut s = correlated();
            let (v, _) = measure_register(&mut s, 1, &mut rng);
            ones += v as usize;
        }
        let freq = ones as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.05, "flag=1 frequency {freq}");
    }

    #[test]
    fn sample_outcome_consumes_identical_randomness_to_measure_register() {
        for seed in 0..16 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut s = correlated();
            let probs = s.register_probabilities(1);
            let (v, _) = measure_register(&mut s, 1, &mut rng_a);
            assert_eq!(sample_outcome(&probs, &mut rng_b), v);
            // Both paths consumed exactly one draw: the streams stay in
            // lockstep afterwards.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn coherent_copy_records_without_collapse() {
        let mut s = correlated();
        coherent_copy(&mut s, 0, 2);
        assert!(approx_eq(s.norm(), 1.0));
        assert_eq!(s.support_len(), 4, "no branch was lost");
        for (b, _) in s.to_table().iter() {
            assert_eq!(b[2], b[0], "outcome register mirrors the source");
        }
    }

    #[test]
    fn lemma_5_3_fidelity_identity() {
        // Target |τ⟩ on the elem register: uniform over {0,1,2,3}.
        let target = vec![Complex64::from_real(0.5); 4];
        let s = correlated();

        // 𝒜: destructively measure the flag, output the elem register.
        let f_measured = fidelity_after_measurement(&s.to_table(), 1, 0, &target);

        // ℬ: purify — coherently copy the flag into the ancilla, no
        // measurement; output register fidelity of the *pure* final state.
        let mut purified = s.clone();
        coherent_copy(&mut purified, 1, 2);
        let f_purified = purified
            .to_table()
            .fidelity_of_register_marginal(0, &target);

        assert!(
            approx_eq(f_measured, f_purified),
            "Lemma 5.3: {f_measured} != {f_purified}"
        );
        // and the common value is what the correlation dictates: each
        // branch overlaps |τ⟩ with |1/2·(…)|² mass — here 2·|(1/2)(1/2)+(1/2)(1/2)|²/… compute: 0.5
        assert!(approx_eq(f_measured, 0.5));
    }

    #[test]
    fn fidelity_after_measurement_of_uncorrelated_register_is_lossless() {
        // Measuring a register in a product state cannot hurt fidelity.
        let mut s = SparseState::from_basis(layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_register_unitary(1, &gates::hadamard());
        let target = vec![Complex64::from_real(0.5); 4];
        let f = fidelity_after_measurement(&s.to_table(), 1, 0, &target);
        assert!(approx_eq(f, 1.0));
    }

    #[test]
    fn filter_amplitudes_returns_projected_mass() {
        let mut s = correlated();
        let p = s.filter_amplitudes(|b| b[0] == 0);
        assert!(approx_eq(p, 0.25));
        assert_eq!(s.support_len(), 1);
    }

    #[test]
    #[should_panic(expected = "renormalize the zero vector")]
    fn renormalizing_zero_panics() {
        let mut s = correlated();
        s.filter_amplitudes(|_| false);
        s.renormalize();
    }
}
