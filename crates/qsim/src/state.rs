//! The backend-neutral [`QuantumState`] trait.
//!
//! Every algorithm in the reproduction (oracles, the distributing operator
//! `D`, amplitude amplification, the lower-bound hybrid runs) is written
//! against this trait, so it runs unchanged on the dense ground-truth
//! backend and on the scalable sparse backend.

use crate::register::Layout;
use crate::table::StateTable;
use dqs_math::{Complex64, MatC};
use rand::Rng;
use std::fmt;

/// Typed error from a *checked* state operation.
///
/// The unchecked entry points ([`QuantumState::apply_permutation`] and
/// friends) debug-assert their contract and panic on violation — the right
/// behaviour for trusted, internally generated circuits. Fault-injection
/// layers rewrite basis tuples from *untrusted* (possibly corrupt) oracle
/// answers, so they go through [`QuantumState::try_apply_permutation`],
/// which surfaces contract violations as this error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A permutation closure wrote a register value `value ≥ dim` — the
    /// rewritten tuple is not a valid basis state of the layout.
    BasisOutOfRange {
        /// Offending register index.
        register: usize,
        /// The out-of-range value the closure produced.
        value: u64,
        /// The register's dimension (valid values are `0..dim`).
        dim: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BasisOutOfRange {
                register,
                value,
                dim,
            } => write!(
                f,
                "permutation wrote {value} into register {register} of dimension {dim}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A mutable pure quantum state over a multi-register [`Layout`].
///
/// # Contract
///
/// * All operations are linear and (except [`Self::scale`] and explicitly
///   non-unitary test helpers) norm-preserving.
/// * `apply_permutation` closures **must** be bijections on valid basis
///   tuples and must keep every value in range; this is debug-asserted.
/// * `apply_conditioned_unitary` matrix factories **must not** depend on the
///   target register's value (the target slot is zeroed before the closure
///   sees the tuple) and must return a `dim(target) × dim(target)` unitary.
pub trait QuantumState: Clone {
    /// Constructs the computational basis state `|basis⟩`.
    fn from_basis(layout: Layout, basis: &[u64]) -> Self;

    /// Constructs a state from a snapshot table — the inverse of
    /// [`Self::to_table`]. The table must be normalized.
    ///
    /// This is the compiled state-preparation path: when the prepared state
    /// has a closed form (e.g. `F|0⟩ = |π⟩`, the uniform anchor), loading
    /// its table directly costs `O(support)` instead of materializing and
    /// applying a `dim × dim` transform.
    fn from_table(table: &StateTable) -> Self;

    /// The register layout.
    fn layout(&self) -> &Layout;

    /// Amplitude `⟨basis|self⟩`.
    fn amplitude(&self, basis: &[u64]) -> Complex64;

    /// Number of basis states with nonzero stored amplitude.
    ///
    /// For the dense backend this counts numerically nonzero entries; for
    /// the sparse backend it is the stored support size.
    fn support_len(&self) -> usize;

    /// Applies a reversible classical map: each basis tuple is rewritten in
    /// place by `f`. This implements the paper's oracles `O_j` (Eq. 1),
    /// `Ô_j` (Eq. 2) and the parallel composite `O` (Eq. 3), as well as
    /// ancilla copy/uncopy steps.
    fn apply_permutation(&mut self, f: impl Fn(&mut [u64]) + Sync);

    /// Checked variant of [`Self::apply_permutation`] for untrusted maps
    /// (e.g. oracle answers rewritten by a fault-injection layer).
    ///
    /// Dry-runs `f` over the current support first and validates every
    /// rewritten register value against the layout; on violation the state
    /// is left **unchanged** and a [`SimError`] is returned. Only then is
    /// the map applied for real. Costs one extra pass over the support.
    fn try_apply_permutation(&mut self, f: impl Fn(&mut [u64]) + Sync) -> Result<(), SimError> {
        let layout = self.layout().clone();
        // Walk the sorted support so the reported violation is deterministic.
        for (basis, _) in self.to_table().iter() {
            let mut tuple = basis.to_vec();
            f(&mut tuple);
            for (r, &v) in tuple.iter().enumerate() {
                if v >= layout.dim(r) {
                    return Err(SimError::BasisOutOfRange {
                        register: r,
                        value: v,
                        dim: layout.dim(r),
                    });
                }
            }
        }
        self.apply_permutation(f);
        Ok(())
    }

    /// Applies a unitary on register `target`, conditioned on the values of
    /// the other registers: the matrix used for a basis tuple `b` is
    /// `u_of(b with b[target] = 0)`.
    fn apply_conditioned_unitary(&mut self, target: usize, u_of: impl Fn(&[u64]) -> MatC + Sync);

    /// Applies one fixed unitary on register `target`.
    fn apply_register_unitary(&mut self, target: usize, u: &MatC) {
        self.apply_conditioned_unitary(target, |_| u.clone());
    }

    /// Applies a diagonal operator: each basis state `|b⟩` is multiplied by
    /// `f(b)` (which must be unit-modulus for unitarity).
    fn apply_phase(&mut self, f: impl Fn(&[u64]) -> Complex64 + Sync);

    /// Applies the rank-one phase `I + (e^{iϕ} − 1)|a⟩⟨a|` where `|a⟩` is
    /// the (normalized) anchor. With `ϕ = π` this is the reflection
    /// `I − 2|a⟩⟨a|` used by amplitude amplification; in the paper it
    /// realizes `S_π(ϕ)` conjugated into place (Theorem 4.3).
    fn apply_rank_one_phase(&mut self, anchor: &StateTable, phi: f64);

    /// Applies the same rank-one phase to every state in a batch.
    ///
    /// Semantically identical (bit-for-bit) to calling
    /// [`Self::apply_rank_one_phase`] on each state in order — which is
    /// exactly what this default does. Backends override it to amortize the
    /// anchor preprocessing (key encoding, sorting checks) across the batch;
    /// [`crate::program::Program::run_batch`] routes through this hook.
    fn apply_rank_one_phase_batch(states: &mut [Self], anchor: &StateTable, phi: f64) {
        for s in states {
            s.apply_rank_one_phase(anchor, phi);
        }
    }

    /// Multiplies the whole state by a scalar (e.g. the global `−1` in
    /// `Q = −D S_π(ϕ) D† S_χ(φ)`).
    fn scale(&mut self, k: Complex64);

    /// ℓ² norm (should stay 1 under unitary evolution).
    fn norm(&self) -> f64;

    /// Hermitian inner product `⟨self|other⟩`.
    fn inner(&self, other: &Self) -> Complex64;

    /// Zeroes every amplitude whose basis tuple fails `keep`. This is the
    /// projection `Π` of a (possibly destructive) measurement — **not**
    /// unitary; callers renormalize via [`Self::renormalize`]. Returns the
    /// surviving squared mass (the outcome probability).
    fn filter_amplitudes(&mut self, keep: impl Fn(&[u64]) -> bool + Sync) -> f64;

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics on the (numerically) zero vector.
    fn renormalize(&mut self) {
        let n = self.norm();
        assert!(n > 1e-12, "cannot renormalize the zero vector");
        self.scale(Complex64::from_real(1.0 / n));
    }

    /// Deterministic snapshot (sorted support).
    fn to_table(&self) -> StateTable;

    /// Fidelity `|⟨self|target⟩|²` against a snapshot target.
    fn fidelity_with_table(&self, target: &StateTable) -> f64 {
        self.to_table().fidelity(target)
    }

    /// Marginal distribution of one register.
    fn register_probabilities(&self, reg: usize) -> Vec<f64> {
        self.to_table().register_probabilities(reg)
    }

    /// Born-rule measurement of the full state in the computational basis;
    /// returns the observed basis tuple. Deterministic given the RNG because
    /// it walks the sorted support.
    fn sample(&self, rng: &mut impl Rng) -> Vec<u64> {
        let table = self.to_table();
        let total: f64 = table.iter().map(|(_, a)| a.norm_sqr()).sum();
        assert!(total > 0.0, "sampling from the zero vector");
        let mut u: f64 = rng.gen::<f64>() * total;
        let mut last: Option<Vec<u64>> = None;
        for (b, a) in table.iter() {
            let p = a.norm_sqr();
            last = Some(b.to_vec());
            if u < p {
                return b.to_vec();
            }
            u -= p;
        }
        // lint: allow(panic): a normalized state has norm 1, so its support
        // iterator yields at least one entry.
        last.expect("non-empty support")
    }
}

/// Debug-build norm check shared by backend implementations: asserts the
/// state norm drifted less than `1e-6` from 1 after a unitary operation.
#[inline]
pub(crate) fn debug_check_norm<S: QuantumState>(state: &S, op: &str) {
    if cfg!(debug_assertions) {
        let n = state.norm();
        debug_assert!(
            (n - 1.0).abs() < 1e-6,
            "norm drifted to {n} after {op} (layout {:?})",
            state.layout()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseState;
    use crate::sparse::SparseState;

    fn layout() -> Layout {
        Layout::builder().register("i", 4).register("s", 3).build()
    }

    fn superposed<S: QuantumState>() -> S {
        let mut s = S::from_basis(layout(), &[1, 0]);
        // Spread support over two tuples so the dry-run walks more than one.
        s.apply_register_unitary(0, &crate::gates::dft(4));
        s
    }

    fn checked_roundtrip<S: QuantumState>() {
        let mut s: S = superposed();
        let before = s.to_table();

        // Valid map: matches the unchecked path bit-for-bit.
        let mut unchecked: S = superposed();
        unchecked.apply_permutation(|b| b[1] = (b[1] + 2) % 3);
        s.try_apply_permutation(|b| b[1] = (b[1] + 2) % 3)
            .expect("in-range map");
        assert_eq!(s.to_table(), unchecked.to_table());

        // Invalid map: typed error, and the state must be untouched.
        let mut t: S = superposed();
        let err = t
            .try_apply_permutation(|b| b[1] += 3)
            .expect_err("out-of-range write must be rejected");
        assert_eq!(
            err,
            SimError::BasisOutOfRange {
                register: 1,
                value: 3,
                dim: 3
            }
        );
        assert_eq!(t.to_table(), before, "state mutated on rejected map");
    }

    #[test]
    fn try_apply_permutation_checks_both_backends() {
        checked_roundtrip::<DenseState>();
        checked_roundtrip::<SparseState>();
    }

    #[test]
    fn sim_error_displays_offending_register() {
        let msg = SimError::BasisOutOfRange {
            register: 2,
            value: 9,
            dim: 5,
        }
        .to_string();
        assert!(msg.contains("register 2") && msg.contains('9'), "{msg}");
    }
}
