//! A small, fast, deterministic hasher for basis-state keys.
//!
//! The sparse backend hashes millions of short `[u64]` keys; SipHash (the
//! std default) is needlessly slow and randomly seeded, which would make
//! iteration order vary across runs. This is the well-known Fx multiply-mix
//! construction (as used in rustc), reimplemented here to stay within the
//! approved dependency set. It is *not* DoS-resistant — keys here are
//! program-generated basis states, never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (64-bit golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // lint: allow(panic): chunks_exact(8) yields exactly 8-byte
            // slices, so the conversion cannot fail.
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; use as the `S` parameter of `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hasher.
// lint: allow(determinism): this alias IS the sanctioned deterministic
// replacement — FxBuildHasher has no random seed, so iteration order is a
// pure function of the inserted keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        let key: Vec<u64> = vec![1, 2, 3, 42];
        assert_eq!(hash_of(&key), hash_of(&key.clone()));
    }

    #[test]
    fn distinguishes_similar_keys() {
        assert_ne!(hash_of(&vec![1u64, 2, 3]), hash_of(&vec![1u64, 2, 4]));
        assert_ne!(hash_of(&vec![0u64]), hash_of(&vec![0u64, 0]));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FxHashMap<Vec<u64>, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(vec![i, i * 3, i ^ 7], i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&vec![i, i * 3, i ^ 7]), Some(&(i as u32)));
        }
    }

    #[test]
    fn spreads_low_entropy_keys() {
        // Basis states are often small consecutive integers; make sure the
        // low bits of their hashes are not all identical.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            low_bits.insert(hash_of(&vec![i, 0, 0]) & 0xff);
        }
        assert!(low_bits.len() > 16, "hash low bits collapse: {low_bits:?}");
    }
}
