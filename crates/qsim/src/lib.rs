//! # dqs-sim
//!
//! A from-scratch state-vector quantum simulator purpose-built for the
//! *distributed quantum sampling* reproduction (SPAA 2025), but generic
//! enough to run arbitrary multi-register circuits.
//!
//! ## Why two backends
//!
//! The paper's parallel-query model (Lemma 4.4) uses `3 + 3n` quantum
//! registers whose joint dimension `N·(ν+1)·(N(ν+1)·2)^n` is astronomically
//! large, yet the algorithm's state support never exceeds `O(N·ν)` basis
//! states because ancillas stay classically correlated with the element
//! register. We therefore provide:
//!
//! * [`DenseState`] — stores every amplitude; rayon-parallel gate
//!   application; usable for small layouts and as ground truth.
//! * [`SparseState`] — a hash map over multi-register basis states; exact
//!   (not approximate) whenever the support is bounded, which is the case
//!   for every circuit in this reproduction; scales to `N ≈ 10⁵`.
//!
//! Both implement the [`QuantumState`] trait, so every algorithm in
//! `dqs-core` is generic over the backend and the test suite cross-validates
//! the two on identical circuits.
//!
//! ## Operation model
//!
//! Four primitive operation classes cover everything in the paper:
//!
//! 1. **Reversible classical maps** ([`QuantumState::apply_permutation`]) —
//!    the counting oracles `O_j`, `Ô_j`, ancilla copies, modular adders.
//! 2. **Conditioned single-register unitaries**
//!    ([`QuantumState::apply_conditioned_unitary`]) — the distributing
//!    rotation `𝒰` of Lemma 4.2, whose angle depends on the count register.
//! 3. **Diagonal phases** ([`QuantumState::apply_phase`]) — the `S_χ(φ)`
//!    oracle-free phase marker of amplitude amplification.
//! 4. **Rank-one phase reflections**
//!    ([`QuantumState::apply_rank_one_phase`]) — `I + (e^{iϕ}−1)|a⟩⟨a|`,
//!    realizing `S_π(ϕ) = (F⊗I)·S_{00}(ϕ)·(F⊗I)†` without materializing the
//!    `N × N` transform `F`. This is an *operator identity*, not an
//!    approximation: the composition `A S₀(ϕ) A†` equals the rank-one update
//!    with anchor `|a⟩ = A|0⟩`, and it contains no oracle calls, so query
//!    accounting is unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_stats;
pub mod batch;
pub mod dense;
pub mod fxhash;
pub mod gates;
pub mod measure;
pub mod program;
mod radix;
pub mod register;
pub mod sparse;
pub mod state;
pub mod table;

pub use batch::BatchedState;
pub use dense::DenseState;
pub use measure::{coherent_copy, fidelity_after_measurement, measure_register, sample_outcome};
pub use program::{Instruction, Program};
pub use register::{Layout, LayoutBuilder, Register};
pub use sparse::SparseState;
pub use state::{QuantumState, SimError};
pub use table::StateTable;
