//! [`StateTable`] — a backend-neutral, deterministic pure-state snapshot.
//!
//! A `StateTable` is a sorted list of `(basis tuple, amplitude)` pairs. It is
//! the interchange format between backends: rank-one reflection anchors,
//! fidelity targets (the sampling state `|ψ⟩` built directly from the data),
//! and cross-backend comparisons all flow through it. Sorting makes
//! iteration order — and therefore measurement sampling and printed output —
//! reproducible regardless of hash-map internals.

use crate::register::Layout;
use dqs_math::Complex64;

/// A sorted, deduplicated pure-state snapshot over a [`Layout`].
///
/// `PartialEq` is *bit-exact* (entries compare by `f64` equality, no
/// tolerance) — exactly what determinism tests want, but use
/// [`StateTable::fidelity`] for numerical closeness.
#[derive(Clone, Debug, PartialEq)]
pub struct StateTable {
    layout: Layout,
    entries: Vec<(Box<[u64]>, Complex64)>,
}

impl StateTable {
    /// Builds a table from raw entries: validates, sorts, merges duplicates,
    /// and drops exact zeros.
    pub fn new(layout: Layout, mut entries: Vec<(Box<[u64]>, Complex64)>) -> Self {
        for (b, _) in &entries {
            layout.assert_basis(b);
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(Box<[u64]>, Complex64)> = Vec::with_capacity(entries.len());
        for (b, a) in entries {
            match merged.last_mut() {
                Some((prev, acc)) if *prev == b => *acc += a,
                _ => merged.push((b, a)),
            }
        }
        merged.retain(|(_, a)| a.norm_sqr() > 0.0);
        Self {
            layout,
            entries: merged,
        }
    }

    /// A table holding the single basis state `|basis⟩` with amplitude 1.
    pub fn basis_state(layout: Layout, basis: &[u64]) -> Self {
        Self::new(layout, vec![(basis.into(), Complex64::ONE)])
    }

    /// The layout this table lives in.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Number of support states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the support is empty (the zero vector).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(basis, amplitude)` in sorted basis order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u64], Complex64)> + '_ {
        self.entries.iter().map(|(b, a)| (b.as_ref(), *a))
    }

    /// Amplitude of a basis state (zero if absent).
    pub fn amplitude(&self, basis: &[u64]) -> Complex64 {
        match self
            .entries
            .binary_search_by(|(b, _)| b.as_ref().cmp(basis))
        {
            Ok(k) => self.entries[k].1,
            Err(_) => Complex64::ZERO,
        }
    }

    /// ℓ² norm.
    pub fn norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, a)| a.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Normalizes to unit norm in place.
    ///
    /// # Panics
    ///
    /// Panics on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize zero StateTable");
        let inv = 1.0 / n;
        for (_, a) in &mut self.entries {
            *a = a.scale(inv);
        }
    }

    /// Hermitian inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics when the layouts differ.
    pub fn inner(&self, other: &StateTable) -> Complex64 {
        assert_eq!(
            self.layout, other.layout,
            "inner product across different layouts"
        );
        // Merge-join over the two sorted supports.
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = Complex64::ZERO;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1.conj() * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Fidelity `|⟨self|other⟩|²` (states assumed normalized).
    pub fn fidelity(&self, other: &StateTable) -> f64 {
        self.inner(other).norm_sqr().clamp(0.0, 1.0)
    }

    /// Squared ℓ² distance `‖self − other‖²` — the quantity inside the
    /// paper's potential function `D_t` (Eq. 11).
    pub fn distance_sqr(&self, other: &StateTable) -> f64 {
        assert_eq!(self.layout, other.layout, "distance across layouts");
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < self.entries.len() || j < other.entries.len() {
            let ord = match (self.entries.get(i), other.entries.get(j)) {
                (Some(a), Some(b)) => a.0.cmp(&b.0),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => break,
            };
            match ord {
                std::cmp::Ordering::Less => {
                    acc += self.entries[i].1.norm_sqr();
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc += other.entries[j].1.norm_sqr();
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    acc += (self.entries[i].1 - other.entries[j].1).norm_sqr();
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Fidelity `F(ρ, |τ⟩⟨τ|) = ⟨τ|ρ|τ⟩` between the **reduced** state
    /// `ρ = Tr_rest |self⟩⟨self|` on register `reg` and a pure target
    /// `|τ⟩ = Σ_v target[v] |v⟩` on that register.
    ///
    /// Grouping the support by the values of all *other* registers `η`,
    /// `⟨τ|ρ|τ⟩ = Σ_η |Σ_v conj(target[v])·amp(v, η)|²` — exactly the
    /// computation of the paper's Lemma B.1 / Appendix A fidelity.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != layout.dim(reg)`.
    pub fn fidelity_of_register_marginal(&self, reg: usize, target: &[Complex64]) -> f64 {
        assert_eq!(
            target.len(),
            self.layout.dim(reg) as usize,
            "target amplitude vector must match the register dimension"
        );
        // BTreeMap, not a hash map: the group sums below are accumulated in
        // key order, so the float rounding is identical on every run.
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<Box<[u64]>, Complex64> = BTreeMap::new();
        for (b, amp) in self.iter() {
            let coeff = target[b[reg] as usize].conj();
            if coeff.norm_sqr() == 0.0 {
                continue;
            }
            let mut rest = b.to_vec();
            rest[reg] = 0;
            *groups
                .entry(rest.into_boxed_slice())
                .or_insert(Complex64::ZERO) += coeff * amp;
        }
        groups
            .values()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// The reduced density matrix `ρ = Tr_rest |self⟩⟨self|` of one
    /// register, as a `dim × dim` Hermitian matrix.
    ///
    /// `ρ[v,w] = Σ_η amp(v,η)·conj(amp(w,η))` grouping the support by the
    /// values `η` of every other register. Feed the result to
    /// [`dqs_math::von_neumann_entropy`] / [`dqs_math::purity`] for
    /// entanglement diagnostics (register `reg` vs the rest).
    ///
    /// # Panics
    ///
    /// Panics if the register dimension exceeds 4096 (the dense matrix
    /// would be too large — this is a diagnostic for small registers).
    pub fn reduced_density_matrix(&self, reg: usize) -> dqs_math::MatC {
        let dim = self.layout.dim(reg);
        assert!(dim <= 4096, "register too large for a dense density matrix");
        // group amplitudes by the rest-tuple, in key order (see above: the
        // ρ accumulation order must not depend on hash-map internals)
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<Box<[u64]>, Vec<(u64, Complex64)>> = BTreeMap::new();
        for (b, amp) in self.iter() {
            let v = b[reg];
            let mut rest = b.to_vec();
            rest[reg] = 0;
            groups
                .entry(rest.into_boxed_slice())
                .or_default()
                .push((v, amp));
        }
        let d = dim as usize;
        let mut rho = dqs_math::MatC::zeros(d, d);
        for members in groups.values() {
            for &(v, av) in members {
                for &(w, aw) in members {
                    rho[(v as usize, w as usize)] += av * aw.conj();
                }
            }
        }
        rho
    }

    /// Marginal probability distribution of one register (traced over the
    /// rest). The result has `layout.dim(reg)` entries.
    pub fn register_probabilities(&self, reg: usize) -> Vec<f64> {
        let mut probs = vec![0.0; self.layout.dim(reg) as usize];
        for (b, a) in self.iter() {
            probs[b[reg] as usize] += a.norm_sqr();
        }
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_math::approx::{approx_eq, approx_eq_c};

    fn layout() -> Layout {
        Layout::builder().register("i", 4).register("b", 2).build()
    }

    fn amp(re: f64) -> Complex64 {
        Complex64::from_real(re)
    }

    #[test]
    fn merges_duplicates_and_sorts() {
        let t = StateTable::new(
            layout(),
            vec![
                (vec![2, 1].into(), amp(0.25)),
                (vec![0, 0].into(), amp(0.5)),
                (vec![2, 1].into(), amp(0.25)),
            ],
        );
        assert_eq!(t.len(), 2);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries[0].0, &[0, 0][..]);
        assert!(approx_eq_c(entries[1].1, amp(0.5)));
    }

    #[test]
    fn drops_cancelled_entries() {
        let t = StateTable::new(
            layout(),
            vec![
                (vec![1, 0].into(), amp(0.7)),
                (vec![1, 0].into(), amp(-0.7)),
            ],
        );
        assert!(t.is_empty());
    }

    #[test]
    fn amplitude_lookup() {
        let t = StateTable::basis_state(layout(), &[3, 1]);
        assert!(approx_eq_c(t.amplitude(&[3, 1]), Complex64::ONE));
        assert!(approx_eq_c(t.amplitude(&[0, 0]), Complex64::ZERO));
    }

    #[test]
    fn norm_and_normalize() {
        let mut t = StateTable::new(
            layout(),
            vec![(vec![0, 0].into(), amp(3.0)), (vec![1, 0].into(), amp(4.0))],
        );
        assert!(approx_eq(t.norm(), 5.0));
        t.normalize();
        assert!(approx_eq(t.norm(), 1.0));
        assert!(approx_eq(t.amplitude(&[0, 0]).re, 0.6));
    }

    #[test]
    fn inner_product_merge_join() {
        let a = StateTable::new(
            layout(),
            vec![(vec![0, 0].into(), amp(0.6)), (vec![1, 0].into(), amp(0.8))],
        );
        let b = StateTable::new(layout(), vec![(vec![1, 0].into(), amp(1.0))]);
        assert!(approx_eq_c(a.inner(&b), amp(0.8)));
        assert!(approx_eq(a.fidelity(&b), 0.64));
    }

    #[test]
    fn distance_sqr_disjoint_supports() {
        let a = StateTable::basis_state(layout(), &[0, 0]);
        let b = StateTable::basis_state(layout(), &[1, 1]);
        assert!(approx_eq(a.distance_sqr(&b), 2.0));
        assert!(approx_eq(a.distance_sqr(&a), 0.0));
    }

    #[test]
    fn register_marginals() {
        let t = StateTable::new(
            layout(),
            vec![
                (vec![0, 0].into(), amp(0.5)),
                (vec![0, 1].into(), amp(0.5)),
                (vec![2, 0].into(), amp(1.0 / 2.0f64.sqrt())),
            ],
        );
        let p_i = t.register_probabilities(0);
        assert!(approx_eq(p_i[0], 0.5));
        assert!(approx_eq(p_i[2], 0.5));
        let p_b = t.register_probabilities(1);
        assert!(approx_eq(p_b[0], 0.75));
        assert!(approx_eq(p_b[1], 0.25));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_basis() {
        let _ = StateTable::basis_state(layout(), &[4, 0]);
    }

    #[test]
    fn density_matrix_of_product_state_is_pure() {
        // (|0⟩+|1⟩)/√2 ⊗ |0⟩ — register 0 is pure.
        let r = 1.0 / 2.0f64.sqrt();
        let t = StateTable::new(
            layout(),
            vec![(vec![0, 0].into(), amp(r)), (vec![1, 0].into(), amp(r))],
        );
        let rho = t.reduced_density_matrix(0);
        assert!(dqs_math::purity(&rho) > 1.0 - 1e-9);
        assert!(dqs_math::von_neumann_entropy(&rho).abs() < 1e-9);
        // and its entries are the projector onto |+⟩ restricted to {0,1}
        assert!((rho[(0, 1)].re - 0.5).abs() < 1e-9);
    }

    #[test]
    fn density_matrix_of_entangled_state_is_mixed() {
        // (|0⟩|0⟩ + |1⟩|1⟩)/√2 — register 1 is maximally mixed.
        let r = 1.0 / 2.0f64.sqrt();
        let t = StateTable::new(
            layout(),
            vec![(vec![0, 0].into(), amp(r)), (vec![1, 1].into(), amp(r))],
        );
        let rho = t.reduced_density_matrix(1);
        assert!((dqs_math::purity(&rho) - 0.5).abs() < 1e-9);
        assert!((dqs_math::von_neumann_entropy(&rho) - 1.0).abs() < 1e-9);
        assert!(rho[(0, 1)].abs() < 1e-12, "off-diagonals vanish");
    }

    #[test]
    fn density_matrix_diagonal_matches_marginals() {
        let t = StateTable::new(
            layout(),
            vec![
                (vec![0, 0].into(), amp(0.5)),
                (vec![2, 1].into(), amp(0.5)),
                (vec![3, 0].into(), amp(1.0 / 2.0f64.sqrt())),
            ],
        );
        let rho = t.reduced_density_matrix(0);
        let probs = t.register_probabilities(0);
        for v in 0..4 {
            assert!((rho[(v, v)].re - probs[v]).abs() < 1e-12);
        }
    }
}
