//! Cheap allocation-behavior observability for the sparse backend.
//!
//! The workspace forbids `unsafe_code`, so a counting `#[global_allocator]`
//! is off the table. Instead the hot *semantic* allocation event — cloning
//! a packed sparse state, which deep-copies the whole `keys`/`re`/`im`
//! support — is counted through a process-wide relaxed atomic. The gate
//! bench asserts on deltas of this counter to pin "the batched estimate
//! path performs no per-shot state clones" as a regression-checked
//! invariant rather than a comment.
//!
//! The counter is monotonically increasing and process-global; callers
//! measure by delta (`before`/`after` around the region of interest).
//! Relaxed ordering suffices: the tests that read it only need counts from
//! work that happened-before the read on the same thread or through the
//! joins rayon already provides.

use std::sync::atomic::{AtomicU64, Ordering};

static PACKED_CLONES: AtomicU64 = AtomicU64::new(0);

/// Total packed sparse-state deep clones since process start.
pub fn packed_clone_count() -> u64 {
    PACKED_CLONES.load(Ordering::Relaxed)
}

pub(crate) fn note_packed_clone() {
    PACKED_CLONES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::Layout;
    use crate::sparse::SparseState;
    use crate::state::QuantumState;

    #[test]
    fn cloning_a_packed_state_bumps_the_counter() {
        let layout = Layout::builder().register("r", 8).build();
        let s = SparseState::from_basis(layout, &[3]);
        assert!(s.is_packed());
        let before = packed_clone_count();
        let _copy = s.clone();
        let after = packed_clone_count();
        assert!(
            after > before,
            "clone must be counted ({before} -> {after})"
        );
    }
}
