//! Batched multi-circuit execution.
//!
//! [`BatchedState`] holds `B` independent states over one shared [`Layout`]
//! and advances all of them through a common gate sequence in a single
//! pass ([`Program::run_batch`]): the outer loop is over instructions, the
//! inner loop over states, so per-instruction setup — closure construction,
//! oracle count-table reads, rank-one anchor encoding — is paid once per
//! gate instead of once per (gate, state). This is the same batched-shot
//! trick GPU state-vector simulators use, applied to the sparse backend:
//! the natural consumers are multi-seed estimation and multi-tenant
//! sampling in `dqs-core`, where many circuits share the exact gate
//! sequence and differ only in their initial state or measurement seed.
//!
//! Batching is an *execution schedule*, not an approximation: results are
//! bit-identical to running each member separately (the cross-backend
//! batch-equivalence suite pins this).

use crate::program::Program;
use crate::register::Layout;
use crate::state::QuantumState;

/// A batch of `B ≥ 1` independent states over one shared layout.
#[derive(Clone)]
pub struct BatchedState<S: QuantumState> {
    states: Vec<S>,
}

impl<S: QuantumState> BatchedState<S> {
    /// Wraps a non-empty batch of states.
    ///
    /// # Panics
    ///
    /// Panics when `states` is empty or the layouts disagree.
    pub fn new(states: Vec<S>) -> Self {
        assert!(!states.is_empty(), "batch must contain at least one state");
        let layout = states[0].layout().clone();
        for (i, s) in states.iter().enumerate() {
            assert_eq!(
                s.layout(),
                &layout,
                "batch member {i} disagrees on the layout"
            );
        }
        Self { states }
    }

    /// `B` copies of the basis state `|basis⟩`.
    pub fn from_basis(layout: Layout, basis: &[u64], b: usize) -> Self {
        assert!(b > 0, "batch must contain at least one state");
        Self::new(
            (0..b)
                .map(|_| S::from_basis(layout.clone(), basis))
                .collect(),
        )
    }

    /// Batch size `B`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always false: construction rejects empty batches.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The shared layout.
    pub fn layout(&self) -> &Layout {
        self.states[0].layout()
    }

    /// The member states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable access to the member states (e.g. to seed each member with a
    /// different initial table before a shared gate sequence).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Unwraps the batch.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    /// Advances every member through `program` in one instruction-major
    /// pass. See [`Program::run_batch`] for the exact semantics.
    pub fn run(&mut self, program: &Program) {
        program.run_batch(&mut self.states);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::sparse::SparseState;
    use crate::table::StateTable;
    use crate::Instruction;
    use dqs_math::Complex64;

    fn layout() -> Layout {
        Layout::builder()
            .register("elem", 4)
            .register("count", 3)
            .register("flag", 2)
            .build()
    }

    fn amplification_like_program() -> Program {
        let mut anchor = StateTable::new(
            layout(),
            vec![
                (vec![0, 0, 0].into(), Complex64::from_real(1.0)),
                (vec![2, 1, 0].into(), Complex64::from_real(1.0)),
            ],
        );
        anchor.normalize();
        let mut p = Program::new(layout());
        p.push(Instruction::RegisterUnitary {
            target: 0,
            matrix: gates::dft(4),
        });
        p.push(Instruction::OracleAdd {
            machine: 0,
            elem: 0,
            count: 1,
            table: std::sync::Arc::new(vec![0, 1, 2, 1]),
            modulus: 3,
            inverse: false,
        });
        p.push(Instruction::PhaseIfZero { reg: 1, phi: 0.9 });
        p.push(Instruction::RankOnePhase { anchor, phi: 1.3 });
        p.push(Instruction::GlobalPhase {
            phi: std::f64::consts::PI,
        });
        p
    }

    #[test]
    fn batch_run_matches_sequential_runs_bitwise() {
        let p = amplification_like_program();
        // Distinct members: different initial phases per seed.
        let member = |seed: u64| {
            let mut s = SparseState::from_basis(layout(), &[0, 0, 0]);
            s.apply_phase(|b| Complex64::cis(0.01 * (seed * 7 + b[0]) as f64));
            s
        };
        let mut batch = BatchedState::new((0..5).map(member).collect());
        batch.run(&p);
        for (seed, got) in batch.states().iter().enumerate() {
            let mut want = member(seed as u64);
            p.run(&mut want);
            assert_eq!(
                got.to_table().distance_sqr(&want.to_table()),
                0.0,
                "batch member {seed} diverged from its solo run"
            );
        }
    }

    #[test]
    fn uniform_basis_constructor_builds_b_members() {
        let b: BatchedState<SparseState> = BatchedState::from_basis(layout(), &[1, 0, 0], 3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        for s in b.states() {
            assert_eq!(s.amplitude(&[1, 0, 0]), Complex64::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_batch_rejected() {
        let _ = BatchedState::<SparseState>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "disagrees on the layout")]
    fn mixed_layouts_rejected() {
        let other = Layout::builder().register("x", 2).build();
        let _ = BatchedState::new(vec![
            SparseState::from_basis(layout(), &[0, 0, 0]),
            SparseState::from_basis(other, &[0]),
        ]);
    }
}
