//! Sparse state-vector backend.
//!
//! Stores only basis states with nonzero amplitude. For the paper's circuits
//! the support stays `O(N·ν)` regardless of how many ancilla registers the
//! parallel model adds, so this backend is *exact* while scaling to
//! data-universe sizes the dense backend cannot touch.
//!
//! ## Representation
//!
//! Whenever the layout's joint dimension fits in 128 bits
//! ([`Layout::packed_dim`] is `Some` — true for every layout in this
//! reproduction), the state is a **structure of arrays**: a sorted
//! `keys: Vec<u128>` of mixed-radix [`Layout::encode_u128`] packed keys plus
//! two parallel `re`/`im` `Vec<f64>` slices holding the amplitudes. The hot
//! whole-support passes (phase, scale, norm, filter, the per-bucket matvec
//! of a conditioned unitary) therefore stream over contiguous homogeneous
//! `f64`/`u128` data instead of 32-byte `(u128, Complex64)` tuples, which
//! both halves the bytes the key-only passes touch and lets the
//! autovectorizer at the amplitude arithmetic. Because the first register is
//! the most significant digit, sorted key order equals sorted basis-tuple
//! order, so snapshots and merge-joins agree with [`StateTable`] ordering.
//!
//! Passes that reorder the support (permutations, conditioned unitaries on
//! a non-final register) restore key order with the radix-partitioned merge
//! in `radix` — partition by high key bits, sort partitions
//! independently in parallel, concatenate — instead of a global
//! `par_sort_unstable_by_key`. A conditioned unitary whose target is the
//! **last** register (`stride == 1` — the flag register in every sampler
//! layout) needs no sorting at all: key order is already bucket-major and
//! the per-bucket outputs concatenate in sorted order.
//!
//! All scratch lives in a per-state arena (`Arena`) that is reused across
//! gate applications — across a whole amplitude-amplification schedule the
//! backend allocates only for genuine support growth, not per gate. The
//! arena is skipped by `Clone`: it is transient workspace, not state.
//!
//! Layouts whose joint dimension exceeds 128 bits fall back to the original
//! `FxHashMap<Box<[u64]>, Complex64>` representation
//! ([`SparseState::is_packed`] reports which path is active).
//!
//! ## Determinism
//!
//! All parallel reductions are chunked with fixed chunk boundaries and the
//! partial results are combined in chunk order, and the radix merge's
//! partition plan is a pure function of the key multiset, so every
//! operation returns bit-identical results regardless of thread count
//! (including `RAYON_NUM_THREADS=1`).
//!
//! Amplitudes whose squared modulus falls below [`PRUNE_EPS_SQR`] (1e-24,
//! i.e. |amp| < 1e-12 — pure floating-point residue, ~8 orders of magnitude
//! below any amplitude the algorithms produce) are pruned to keep the
//! support from accreting round-off junk.

use crate::fxhash::FxHashMap;
use crate::radix::{sort_soa, RadixScratch};
use crate::register::Layout;
use crate::state::{debug_check_norm, QuantumState};
use crate::table::StateTable;
use dqs_math::{slices, Complex64, MatC};
use rayon::prelude::*;

/// Squared-modulus threshold below which amplitudes are dropped.
pub const PRUNE_EPS_SQR: f64 = 1e-24;

/// Entries per rayon task in the packed scan passes. Also the chunk size of
/// the deterministic `norm`/`inner` reductions: partials are combined in
/// chunk order, so results do not depend on the worker count.
const PAR_CHUNK: usize = 4096;

/// Buckets per rayon task in the conditioned-unitary pass.
const BUCKETS_PER_TASK: usize = 256;

type BoxedKey = Box<[u64]>;

/// Reusable workspace for the packed passes. Contents are meaningless
/// between operations — the allocations are what we keep, so a long gate
/// sequence (an amplification schedule) stops allocating once the buffers
/// have grown to the working support size.
#[derive(Default)]
struct Arena {
    /// Output assembly for out-of-place passes (the other half of the
    /// double buffer); swapped wholesale into the state.
    out_keys: Vec<u128>,
    out_re: Vec<f64>,
    out_im: Vec<f64>,
    /// Bucket boundaries of the conditioned-unitary pass.
    ranges: Vec<(usize, usize)>,
    /// Staging for the radix-partitioned merge.
    radix: RadixScratch,
}

/// Packed structure-of-arrays representation: `keys[i]` holds the basis
/// state of amplitude `re[i] + i·im[i]`.
struct Packed {
    /// Sorted, unique; every stored `re² + im² > PRUNE_EPS_SQR`.
    keys: Vec<u128>,
    /// Real parts, parallel to `keys`.
    re: Vec<f64>,
    /// Imaginary parts, parallel to `keys`.
    im: Vec<f64>,
    /// Reused scratch; never cloned.
    arena: Arena,
}

impl Packed {
    fn new(keys: Vec<u128>, re: Vec<f64>, im: Vec<f64>) -> Self {
        debug_assert_eq!(keys.len(), re.len());
        debug_assert_eq!(keys.len(), im.len());
        Self {
            keys,
            re,
            im,
            arena: Arena::default(),
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn amp(&self, i: usize) -> Complex64 {
        Complex64::new(self.re[i], self.im[i])
    }

    /// Swaps the arena's assembled output buffers in as the new support.
    fn adopt_output(&mut self) {
        std::mem::swap(&mut self.keys, &mut self.arena.out_keys);
        std::mem::swap(&mut self.re, &mut self.arena.out_re);
        std::mem::swap(&mut self.im, &mut self.arena.out_im);
    }
}

impl Clone for Packed {
    fn clone(&self) -> Self {
        crate::alloc_stats::note_packed_clone();
        // The arena is transient workspace — don't copy it.
        Self {
            keys: self.keys.clone(),
            re: self.re.clone(),
            im: self.im.clone(),
            arena: Arena::default(),
        }
    }
}

#[derive(Clone)]
enum Repr {
    Packed(Packed),
    Boxed(FxHashMap<BoxedKey, Complex64>),
}

/// A sparse pure state over a multi-register [`Layout`].
#[derive(Clone)]
pub struct SparseState {
    layout: Layout,
    repr: Repr,
}

impl SparseState {
    /// True when this state uses the packed `u128`-key representation
    /// (layout joint dimension ≤ 2^128); false on the boxed-slice fallback.
    pub fn is_packed(&self) -> bool {
        matches!(self.repr, Repr::Packed(_))
    }

    /// Constructs `|basis⟩` on the boxed-slice fallback path even when the
    /// layout would support packed keys. Exists so tests can pin the two
    /// representations against each other on small layouts; algorithms
    /// should use [`QuantumState::from_basis`].
    pub fn from_basis_fallback(layout: Layout, basis: &[u64]) -> Self {
        layout.assert_basis(basis);
        let mut amps = FxHashMap::default();
        amps.insert(basis.into(), Complex64::ONE);
        Self {
            layout,
            repr: Repr::Boxed(amps),
        }
    }

    fn prune_boxed(map: &mut FxHashMap<BoxedKey, Complex64>) {
        map.retain(|_, a| a.norm_sqr() > PRUNE_EPS_SQR);
    }

    /// Adds `amp` to the basis state `key`, creating or pruning as needed
    /// (boxed fallback path).
    fn accumulate(map: &mut FxHashMap<BoxedKey, Complex64>, key: BoxedKey, amp: Complex64) {
        use std::collections::hash_map::Entry;
        match map.entry(key) {
            Entry::Occupied(mut e) => {
                let v = *e.get() + amp;
                if v.norm_sqr() > PRUNE_EPS_SQR {
                    *e.get_mut() = v;
                } else {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                if amp.norm_sqr() > PRUNE_EPS_SQR {
                    e.insert(amp);
                }
            }
        }
    }

    /// Encodes an anchor table's packed sorted `(key, amplitude)` pairs.
    ///
    /// StateTable iterates in sorted tuple order == sorted key order, so
    /// this is a sorted list and the overlap merge-join visits anchor
    /// entries in the same order the boxed path does.
    fn encode_anchor(layout: &Layout, anchor: &StateTable) -> Vec<(u128, Complex64)> {
        let akeys: Vec<(u128, Complex64)> = anchor
            .iter()
            .map(|(b, a)| (layout.encode_u128(b), a))
            .collect();
        debug_assert!(akeys.windows(2).all(|w| w[0].0 < w[1].0));
        akeys
    }

    /// The packed rank-one phase pass, shared between the single-state
    /// entry point and the batched override (which encodes the anchor keys
    /// once for the whole batch).
    fn rank_one_packed(p: &mut Packed, akeys: &[(u128, Complex64)], phi: f64) {
        let mut overlap = Complex64::ZERO;
        {
            let mut i = 0;
            for &(key, a) in akeys {
                while i < p.len() && p.keys[i] < key {
                    i += 1;
                }
                if i < p.len() && p.keys[i] == key {
                    overlap += a.conj() * p.amp(i);
                }
            }
        }
        let coef = (Complex64::cis(phi) - Complex64::ONE) * overlap;
        if coef.norm_sqr() == 0.0 {
            return;
        }
        // Merge state + coef·anchor into the arena, pruning as we go.
        p.arena.out_keys.clear();
        p.arena.out_re.clear();
        p.arena.out_im.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < p.len() || j < akeys.len() {
            let take_state = j >= akeys.len() || (i < p.len() && p.keys[i] < akeys[j].0);
            let take_anchor = i >= p.len() || (j < akeys.len() && akeys[j].0 < p.keys[i]);
            let (key, v) = if take_state {
                let e = (p.keys[i], p.amp(i));
                i += 1;
                e
            } else if take_anchor {
                let (key, a) = akeys[j];
                j += 1;
                (key, coef * a)
            } else {
                let (key, a) = akeys[j];
                let v = p.amp(i) + coef * a;
                i += 1;
                j += 1;
                (key, v)
            };
            if v.norm_sqr() > PRUNE_EPS_SQR {
                p.arena.out_keys.push(key);
                p.arena.out_re.push(v.re);
                p.arena.out_im.push(v.im);
            }
        }
        p.adopt_output();
    }
}

impl QuantumState for SparseState {
    fn from_basis(layout: Layout, basis: &[u64]) -> Self {
        layout.assert_basis(basis);
        let repr = if layout.packed_dim().is_some() {
            Repr::Packed(Packed::new(
                vec![layout.encode_u128(basis)],
                vec![1.0],
                vec![0.0],
            ))
        } else {
            let mut amps = FxHashMap::default();
            amps.insert(basis.into(), Complex64::ONE);
            Repr::Boxed(amps)
        };
        Self { layout, repr }
    }

    fn from_table(table: &StateTable) -> Self {
        let layout = table.layout().clone();
        let repr = if layout.packed_dim().is_some() {
            // StateTable iterates in sorted basis-tuple order, and the
            // first register is the most significant key digit, so the
            // packed keys come out already sorted.
            let mut keys = Vec::with_capacity(table.len());
            let mut re = Vec::with_capacity(table.len());
            let mut im = Vec::with_capacity(table.len());
            for (b, a) in table.iter() {
                if a.norm_sqr() > PRUNE_EPS_SQR {
                    keys.push(layout.encode_u128(b));
                    re.push(a.re);
                    im.push(a.im);
                }
            }
            debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
            Repr::Packed(Packed::new(keys, re, im))
        } else {
            let mut map = FxHashMap::default();
            for (b, a) in table.iter() {
                if a.norm_sqr() > PRUNE_EPS_SQR {
                    map.insert(b.into(), a);
                }
            }
            Repr::Boxed(map)
        };
        let state = Self { layout, repr };
        debug_check_norm(&state, "from_table");
        state
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }

    fn amplitude(&self, basis: &[u64]) -> Complex64 {
        self.layout.assert_basis(basis);
        match &self.repr {
            Repr::Packed(p) => {
                let key = self.layout.encode_u128(basis);
                match p.keys.binary_search(&key) {
                    Ok(i) => p.amp(i),
                    Err(_) => Complex64::ZERO,
                }
            }
            Repr::Boxed(map) => map.get(basis).copied().unwrap_or(Complex64::ZERO),
        }
    }

    fn support_len(&self) -> usize {
        match &self.repr {
            Repr::Packed(p) => p.len(),
            Repr::Boxed(map) => map.len(),
        }
    }

    fn apply_permutation(&mut self, f: impl Fn(&mut [u64]) + Sync) {
        let layout = &self.layout;
        match &mut self.repr {
            Repr::Packed(p) => {
                let n_regs = layout.num_registers();
                // Rewrite every key in place — the amplitudes ride along in
                // their own arrays, so no tuple scratch (and no write-only
                // zero-fill) is needed.
                p.keys.par_chunks_mut(PAR_CHUNK).for_each(|chunk| {
                    let mut basis = vec![0u64; n_regs];
                    for key in chunk {
                        layout.decode_u128(*key, &mut basis);
                        f(&mut basis);
                        layout.assert_basis(&basis);
                        *key = layout.encode_u128(&basis);
                    }
                });
                sort_soa(&mut p.keys, &mut p.re, &mut p.im, &mut p.arena.radix);
                // A bijection maps unique keys to unique keys; the contract
                // (see `QuantumState::apply_permutation`) is debug-checked.
                debug_assert!(
                    p.keys.windows(2).all(|w| w[0] < w[1]),
                    "permutation closure is not injective"
                );
            }
            Repr::Boxed(map) => {
                let mut out: FxHashMap<BoxedKey, Complex64> = FxHashMap::default();
                out.reserve(map.len());
                for (key, amp) in map.drain() {
                    let mut basis = key.into_vec();
                    f(&mut basis);
                    layout.assert_basis(&basis);
                    let new_key: BoxedKey = basis.into_boxed_slice();
                    debug_assert!(
                        !out.contains_key(&new_key),
                        "permutation closure is not injective (collision at {new_key:?})"
                    );
                    Self::accumulate(&mut out, new_key, amp);
                }
                *map = out;
            }
        }
        debug_check_norm(self, "apply_permutation");
    }

    fn apply_conditioned_unitary(&mut self, target: usize, u_of: impl Fn(&[u64]) -> MatC + Sync) {
        let layout = &self.layout;
        let d = layout.dim(target) as usize;
        match &mut self.repr {
            Repr::Packed(p) => {
                let n_regs = layout.num_registers();
                let stride = layout.stride_u128(target);
                let d_wide = d as u128;
                let block = stride * d_wide;
                // Bucket-major remap: with `key = hi·(stride·d) + t·stride
                // + lo` (t the target digit, lo the digits below it), map to
                // `rkey = hi·(stride·d) + lo·d + t` — a bijection of the
                // key space whose order is (masked key, target value), so
                // one sort makes buckets contiguous with ascending t. When
                // the target is the last register (`stride == 1`, the flag
                // in every sampler layout) the remap is the identity and
                // the support is **already** bucket-major: no sort at all.
                let sorted_in_place = stride == 1;
                if !sorted_in_place {
                    p.keys.par_chunks_mut(PAR_CHUNK).for_each(|chunk| {
                        for key in chunk {
                            let hi = *key / block;
                            let rem = *key % block;
                            let t = rem / stride;
                            let lo = rem % stride;
                            *key = hi * block + lo * d_wide + t;
                        }
                    });
                    sort_soa(&mut p.keys, &mut p.re, &mut p.im, &mut p.arena.radix);
                }
                // `d` is a power of two for every flag/ancilla register, and
                // `key / d` + `key % d` run once or more per *entry* below —
                // shift/mask instead of the u128 division libcall when we
                // can. The branch on `d_pow2` predicts perfectly.
                let d_pow2 = d_wide.is_power_of_two();
                let d_shift = d_wide.trailing_zeros();
                let bucket_of = |k: u128| if d_pow2 { k >> d_shift } else { k / d_wide };
                let digit_of =
                    |k: u128| (if d_pow2 { k & (d_wide - 1) } else { k % d_wide }) as usize;
                // Unmasking a bucket id back to its base key divides by the
                // stride; the stride-1 fast path (the flag register) skips
                // that division entirely.
                let masked_of = |bucket: u128| {
                    if sorted_in_place {
                        bucket * block
                    } else {
                        (bucket / stride) * block + bucket % stride
                    }
                };
                // Bucket boundaries: one bucket = one run of `rkey / d`.
                // The ranges buffer is arena-owned, so steady-state gate
                // application does not allocate here; reserving to the
                // support size keeps a cold arena (fresh clone) from paying
                // doubling-growth copies on its first pass.
                let n = p.len();
                p.arena.ranges.clear();
                p.arena.ranges.reserve(n);
                let mut start = 0;
                let mut start_bucket = if n > 0 { bucket_of(p.keys[0]) } else { 0 };
                for i in 1..=n {
                    let b = if i == n { 0 } else { bucket_of(p.keys[i]) };
                    if i == n || b != start_bucket {
                        p.arena.ranges.push((start, i));
                        start = i;
                        start_bucket = b;
                    }
                }
                let (keys, re, im) = (&p.keys, &p.re, &p.im);
                let outputs: Vec<(Vec<u128>, Vec<f64>, Vec<f64>)> = p
                    .arena
                    .ranges
                    .par_chunks(BUCKETS_PER_TASK)
                    .map(|task| {
                        let mut basis = vec![0u64; n_regs];
                        let mut col_re = vec![0.0; d];
                        let mut col_im = vec![0.0; d];
                        let mut out = (Vec::new(), Vec::new(), Vec::new());
                        for &(lo, hi) in task {
                            let masked = masked_of(bucket_of(keys[lo]));
                            layout.decode_u128(masked, &mut basis);
                            debug_assert_eq!(basis[target], 0, "masked key has target 0");
                            let u = u_of(&basis);
                            assert_eq!(
                                (u.rows(), u.cols()),
                                (d, d),
                                "conditioned unitary has wrong shape for register {target}"
                            );
                            // col[r] = Σ_t U[r,t] · amp_t over the bucket's
                            // nonzero inputs, in ascending t.
                            col_re.fill(0.0);
                            col_im.fill(0.0);
                            for j in lo..hi {
                                let t = digit_of(keys[j]);
                                let amp = Complex64::new(re[j], im[j]);
                                for r in 0..d {
                                    let m = u[(r, t)];
                                    if m.norm_sqr() != 0.0 {
                                        let v = m * amp;
                                        col_re[r] += v.re;
                                        col_im[r] += v.im;
                                    }
                                }
                            }
                            for r in 0..d {
                                let v = Complex64::new(col_re[r], col_im[r]);
                                if v.norm_sqr() > PRUNE_EPS_SQR {
                                    out.0.push(masked + r as u128 * stride);
                                    out.1.push(v.re);
                                    out.2.push(v.im);
                                }
                            }
                        }
                        out
                    })
                    .collect();
                p.arena.out_keys.clear();
                p.arena.out_re.clear();
                p.arena.out_im.clear();
                let total: usize = outputs.iter().map(|(k, _, _)| k.len()).sum();
                p.arena.out_keys.reserve(total);
                p.arena.out_re.reserve(total);
                p.arena.out_im.reserve(total);
                for (k, r, i) in outputs {
                    p.arena.out_keys.extend(k);
                    p.arena.out_re.extend(r);
                    p.arena.out_im.extend(i);
                }
                if !sorted_in_place {
                    // Bucket outputs have unique keys; restore global key
                    // order with the partitioned merge. In the stride == 1
                    // case bucket-major order *is* key order, so the
                    // concatenation above is already sorted.
                    sort_soa(
                        &mut p.arena.out_keys,
                        &mut p.arena.out_re,
                        &mut p.arena.out_im,
                        &mut p.arena.radix,
                    );
                }
                debug_assert!(p.arena.out_keys.windows(2).all(|w| w[0] < w[1]));
                p.adopt_output();
            }
            Repr::Boxed(map) => {
                // Group support by the tuple with the target register zeroed.
                let mut buckets: FxHashMap<BoxedKey, Vec<(u64, Complex64)>> = FxHashMap::default();
                for (key, amp) in map.drain() {
                    let t_val = key[target];
                    let mut masked = key.into_vec();
                    masked[target] = 0;
                    buckets
                        .entry(masked.into_boxed_slice())
                        .or_default()
                        .push((t_val, amp));
                }
                let mut out: FxHashMap<BoxedKey, Complex64> = FxHashMap::default();
                for (masked, cols) in buckets {
                    let u = u_of(&masked);
                    assert_eq!(
                        (u.rows(), u.cols()),
                        (d, d),
                        "conditioned unitary has wrong shape for register {target}"
                    );
                    // out[r] = Σ_{(k, amp)} U[r,k] · amp, touching only
                    // nonzero inputs.
                    let mut out_col = vec![Complex64::ZERO; d];
                    for (k, amp) in &cols {
                        let k = *k as usize;
                        for (r, slot) in out_col.iter_mut().enumerate() {
                            let m = u[(r, k)];
                            if m.norm_sqr() != 0.0 {
                                *slot += m * *amp;
                            }
                        }
                    }
                    for (r, amp) in out_col.into_iter().enumerate() {
                        if amp.norm_sqr() > PRUNE_EPS_SQR {
                            let mut key = masked.to_vec();
                            key[target] = r as u64;
                            Self::accumulate(&mut out, key.into_boxed_slice(), amp);
                        }
                    }
                }
                *map = out;
            }
        }
        debug_check_norm(self, "apply_conditioned_unitary");
    }

    fn apply_phase(&mut self, f: impl Fn(&[u64]) -> Complex64 + Sync) {
        let layout = &self.layout;
        match &mut self.repr {
            Repr::Packed(p) => {
                let n_regs = layout.num_registers();
                p.keys
                    .par_chunks(PAR_CHUNK)
                    .zip(p.re.par_chunks_mut(PAR_CHUNK))
                    .zip(p.im.par_chunks_mut(PAR_CHUNK))
                    .for_each(|((ck, cre), cim)| {
                        let mut basis = vec![0u64; n_regs];
                        for j in 0..ck.len() {
                            layout.decode_u128(ck[j], &mut basis);
                            let ph = f(&basis);
                            debug_assert!(
                                (ph.abs() - 1.0).abs() < 1e-9,
                                "phase factor must be unit modulus, got {ph}"
                            );
                            let v = Complex64::new(cre[j], cim[j]) * ph;
                            cre[j] = v.re;
                            cim[j] = v.im;
                        }
                    });
            }
            Repr::Boxed(map) => {
                for (key, amp) in map.iter_mut() {
                    let ph = f(key);
                    debug_assert!(
                        (ph.abs() - 1.0).abs() < 1e-9,
                        "phase factor must be unit modulus, got {ph}"
                    );
                    *amp *= ph;
                }
            }
        }
        debug_check_norm(self, "apply_phase");
    }

    fn apply_rank_one_phase(&mut self, anchor: &StateTable, phi: f64) {
        assert_eq!(
            anchor.layout(),
            &self.layout,
            "anchor layout mismatch in rank-one phase"
        );
        debug_assert!(
            (anchor.norm() - 1.0).abs() < 1e-9,
            "rank-one anchor must be normalized"
        );
        let layout = &self.layout;
        match &mut self.repr {
            Repr::Packed(p) => {
                let akeys = Self::encode_anchor(layout, anchor);
                Self::rank_one_packed(p, &akeys, phi);
            }
            Repr::Boxed(map) => {
                let mut overlap = Complex64::ZERO;
                for (b, a) in anchor.iter() {
                    if let Some(v) = map.get(b) {
                        overlap += a.conj() * *v;
                    }
                }
                let coef = (Complex64::cis(phi) - Complex64::ONE) * overlap;
                if coef.norm_sqr() == 0.0 {
                    return;
                }
                for (b, a) in anchor.iter() {
                    Self::accumulate(map, b.into(), coef * a);
                }
                Self::prune_boxed(map);
            }
        }
        debug_check_norm(self, "apply_rank_one_phase");
    }

    fn apply_rank_one_phase_batch(states: &mut [Self], anchor: &StateTable, phi: f64) {
        let layout = anchor.layout();
        if layout.packed_dim().is_none() {
            for s in states {
                s.apply_rank_one_phase(anchor, phi);
            }
            return;
        }
        debug_assert!(
            (anchor.norm() - 1.0).abs() < 1e-9,
            "rank-one anchor must be normalized"
        );
        // Encode the anchor's packed keys once for the whole batch — the
        // per-state pass is then identical to the single-state entry point.
        let akeys = Self::encode_anchor(layout, anchor);
        for s in states.iter_mut() {
            assert_eq!(
                anchor.layout(),
                &s.layout,
                "anchor layout mismatch in rank-one phase"
            );
            match &mut s.repr {
                Repr::Packed(p) => {
                    Self::rank_one_packed(p, &akeys, phi);
                    debug_check_norm(s, "apply_rank_one_phase");
                }
                Repr::Boxed(_) => s.apply_rank_one_phase(anchor, phi),
            }
        }
    }

    fn scale(&mut self, k: Complex64) {
        match &mut self.repr {
            Repr::Packed(p) => {
                p.re.par_chunks_mut(PAR_CHUNK)
                    .zip(p.im.par_chunks_mut(PAR_CHUNK))
                    .for_each(|(cre, cim)| slices::scale_in_place(cre, cim, k));
            }
            Repr::Boxed(map) => {
                for amp in map.values_mut() {
                    *amp *= k;
                }
            }
        }
    }

    fn norm(&self) -> f64 {
        match &self.repr {
            Repr::Packed(p) => {
                // Chunked parallel reduction; partials combined in chunk
                // order so the sum is thread-count independent.
                let partials: Vec<f64> =
                    p.re.par_chunks(PAR_CHUNK)
                        .zip(p.im.par_chunks(PAR_CHUNK))
                        .map(|(cre, cim)| slices::norm_sqr_sum(cre, cim))
                        .collect();
                partials.iter().sum::<f64>().sqrt()
            }
            Repr::Boxed(map) => map.values().map(|a| a.norm_sqr()).sum::<f64>().sqrt(),
        }
    }

    fn inner(&self, other: &Self) -> Complex64 {
        assert_eq!(self.layout, other.layout, "inner across layouts");
        match (&self.repr, &other.repr) {
            (Repr::Packed(a), Repr::Packed(b)) => {
                // Chunked merge-join over the two sorted supports; each chunk
                // of `self` joins against the matching key range of `other`
                // found by binary search. Partials combine in chunk order.
                let partials: Vec<Complex64> = a
                    .keys
                    .par_chunks(PAR_CHUNK)
                    .enumerate()
                    .map(|(ci, chunk)| {
                        let base = ci * PAR_CHUNK;
                        let lo = chunk[0];
                        let mut j = b.keys.partition_point(|&e| e < lo);
                        let mut acc = Complex64::ZERO;
                        let mut i = 0;
                        while i < chunk.len() && j < b.len() {
                            match chunk[i].cmp(&b.keys[j]) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    acc += a.amp(base + i).conj() * b.amp(j);
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                        acc
                    })
                    .collect();
                partials.into_iter().fold(Complex64::ZERO, |x, y| x + y)
            }
            (Repr::Boxed(a), Repr::Boxed(b)) => {
                let (small, big, conj_small) = if a.len() <= b.len() {
                    (a, b, true)
                } else {
                    (b, a, false)
                };
                let mut acc = Complex64::ZERO;
                for (k, x) in small {
                    if let Some(y) = big.get(k) {
                        // ⟨self|other⟩ = Σ conj(self)·other regardless of
                        // which map we iterate.
                        acc += if conj_small {
                            x.conj() * *y
                        } else {
                            y.conj() * *x
                        };
                    }
                }
                acc
            }
            // Mixed representations only occur via the fallback test
            // constructor; route through the deterministic snapshots.
            _ => self.to_table().inner(&other.to_table()),
        }
    }

    fn filter_amplitudes(&mut self, keep: impl Fn(&[u64]) -> bool + Sync) -> f64 {
        let layout = &self.layout;
        match &mut self.repr {
            Repr::Packed(p) => {
                let n_regs = layout.num_registers();
                // Mark dropped entries with a zero amplitude (the support
                // invariant guarantees no live entry is zero), summing the
                // survivors per chunk; combine partials in chunk order.
                let partials: Vec<f64> = p
                    .keys
                    .par_chunks(PAR_CHUNK)
                    .zip(p.re.par_chunks_mut(PAR_CHUNK))
                    .zip(p.im.par_chunks_mut(PAR_CHUNK))
                    .map(|((ck, cre), cim)| {
                        let mut basis = vec![0u64; n_regs];
                        let mut survived = 0.0;
                        for j in 0..ck.len() {
                            layout.decode_u128(ck[j], &mut basis);
                            if keep(&basis) {
                                survived += cre[j] * cre[j] + cim[j] * cim[j];
                            } else {
                                cre[j] = 0.0;
                                cim[j] = 0.0;
                            }
                        }
                        survived
                    })
                    .collect();
                // Compact the three arrays with one serial write cursor.
                let mut w = 0;
                for i in 0..p.keys.len() {
                    if p.re[i] * p.re[i] + p.im[i] * p.im[i] > 0.0 {
                        p.keys[w] = p.keys[i];
                        p.re[w] = p.re[i];
                        p.im[w] = p.im[i];
                        w += 1;
                    }
                }
                p.keys.truncate(w);
                p.re.truncate(w);
                p.im.truncate(w);
                partials.iter().sum()
            }
            Repr::Boxed(map) => {
                let mut survived = 0.0;
                map.retain(|key, amp| {
                    if keep(key) {
                        survived += amp.norm_sqr();
                        true
                    } else {
                        false
                    }
                });
                survived
            }
        }
    }

    fn to_table(&self) -> StateTable {
        match &self.repr {
            Repr::Packed(p) => {
                let layout = &self.layout;
                let n_regs = layout.num_registers();
                let entries: Vec<(BoxedKey, Complex64)> = p
                    .keys
                    .par_chunks(PAR_CHUNK)
                    .zip(p.re.par_chunks(PAR_CHUNK))
                    .zip(p.im.par_chunks(PAR_CHUNK))
                    .map(|((ck, cre), cim)| {
                        let mut basis = vec![0u64; n_regs];
                        (0..ck.len())
                            .map(|j| {
                                layout.decode_u128(ck[j], &mut basis);
                                (
                                    basis.clone().into_boxed_slice(),
                                    Complex64::new(cre[j], cim[j]),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .flatten()
                    .collect();
                StateTable::new(self.layout.clone(), entries)
            }
            Repr::Boxed(map) => StateTable::new(
                self.layout.clone(),
                map.iter().map(|(k, a)| (k.clone(), *a)).collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use dqs_math::approx::{approx_eq, approx_eq_c};

    fn small_layout() -> Layout {
        Layout::builder()
            .register("i", 4)
            .register("s", 3)
            .register("b", 2)
            .build()
    }

    #[test]
    fn basis_state_and_lookup() {
        let s = SparseState::from_basis(small_layout(), &[3, 2, 1]);
        assert!(s.is_packed());
        assert_eq!(s.support_len(), 1);
        assert!(approx_eq_c(s.amplitude(&[3, 2, 1]), Complex64::ONE));
        assert!(approx_eq(s.norm(), 1.0));
    }

    #[test]
    fn from_table_round_trips_and_matches_dft_prep() {
        // An entangled state with non-trivial phases, via the DFT route…
        let mut via_dft = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        via_dft.apply_register_unitary(0, &gates::dft(4));
        via_dft.apply_permutation(|b| b[1] = b[0] % 3);
        // …must equal the state loaded back from its own snapshot.
        let loaded = SparseState::from_table(&via_dft.to_table());
        assert!(loaded.is_packed());
        assert_eq!(loaded.support_len(), via_dft.support_len());
        assert_eq!(
            loaded.to_table().distance_sqr(&via_dft.to_table()),
            0.0,
            "from_table must be the exact inverse of to_table"
        );
    }

    #[test]
    fn permutation_is_norm_preserving() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_permutation(|b| b[1] = (b[1] + b[0].min(2)) % 3);
        assert!(approx_eq(s.norm(), 1.0));
        assert_eq!(s.support_len(), 4);
        assert!(approx_eq(s.amplitude(&[2, 2, 0]).abs(), 0.5));
    }

    #[test]
    fn conditioned_unitary_per_bucket() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        // mark count = element (mod 3), then rotate flag by count-dependent angle
        s.apply_permutation(|b| b[1] = b[0] % 3);
        s.apply_conditioned_unitary(2, |b| {
            let c = (b[1] as f64 / 2.0).min(1.0);
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        });
        assert!(approx_eq(s.norm(), 1.0));
        // element 0 → count 0 → flag flipped to 1
        assert!(approx_eq(s.amplitude(&[0, 0, 1]).abs(), 0.5));
        assert!(approx_eq(s.amplitude(&[0, 0, 0]).abs(), 0.0));
        // element 2 → count 2 → flag stays 0
        assert!(approx_eq(s.amplitude(&[2, 2, 0]).abs(), 0.5));
    }

    #[test]
    fn conditioned_unitary_on_non_final_register_sorts_back() {
        // Target register 1 has stride 2 ≠ 1, exercising the bucket-major
        // remap + radix-merge path (not the flag fast path).
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 1]);
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_register_unitary(1, &gates::dft(3));
        assert!(approx_eq(s.norm(), 1.0));
        assert_eq!(s.support_len(), 12);
        // Snapshot order must equal sorted tuple order (sorted keys).
        let t = s.to_table();
        let tuples: Vec<Vec<u64>> = t.iter().map(|(b, _)| b.to_vec()).collect();
        let mut sorted = tuples.clone();
        sorted.sort();
        assert_eq!(tuples, sorted, "support must come back key-sorted");
        assert!(approx_eq(
            s.amplitude(&[1, 2, 1]).abs(),
            1.0 / (12.0f64).sqrt()
        ));
    }

    #[test]
    fn phase_only_touches_support() {
        let mut s = SparseState::from_basis(small_layout(), &[1, 1, 1]);
        s.apply_phase(|b| Complex64::cis(b[0] as f64));
        assert!(approx_eq(s.amplitude(&[1, 1, 1]).arg(), 1.0));
    }

    #[test]
    fn rank_one_reflection_matches_algebra() {
        let layout = small_layout();
        let mut anchor = StateTable::new(
            layout.clone(),
            vec![
                (vec![0, 0, 0].into(), Complex64::from_real(1.0)),
                (vec![1, 0, 0].into(), Complex64::from_real(1.0)),
            ],
        );
        anchor.normalize();
        let mut v = SparseState::from_basis(layout, &[0, 0, 0]);
        v.apply_rank_one_phase(&anchor, std::f64::consts::PI);
        assert!(approx_eq_c(v.amplitude(&[1, 0, 0]), -Complex64::ONE));
        assert!(v.amplitude(&[0, 0, 0]).abs() < 1e-9);
    }

    #[test]
    fn rank_one_orthogonal_anchor_is_noop() {
        let layout = small_layout();
        let anchor = StateTable::basis_state(layout.clone(), &[2, 0, 0]);
        let mut v = SparseState::from_basis(layout, &[1, 0, 0]);
        v.apply_rank_one_phase(&anchor, 1.0);
        assert_eq!(v.support_len(), 1);
        assert!(approx_eq_c(v.amplitude(&[1, 0, 0]), Complex64::ONE));
    }

    #[test]
    fn batched_rank_one_matches_single_state_bitwise() {
        let layout = small_layout();
        let mut anchor = StateTable::new(
            layout.clone(),
            vec![
                (vec![0, 1, 0].into(), Complex64::from_real(1.0)),
                (vec![2, 2, 1].into(), Complex64::from_real(1.0)),
            ],
        );
        anchor.normalize();
        let mut mk = |seed: u64| {
            let mut s = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
            s.apply_register_unitary(0, &gates::dft(4));
            s.apply_phase(|b| Complex64::cis(0.1 * (seed + b[0]) as f64));
            s
        };
        let mut batch: Vec<SparseState> = (0..4).map(&mut mk).collect();
        let mut solo: Vec<SparseState> = (0..4).map(&mut mk).collect();
        SparseState::apply_rank_one_phase_batch(&mut batch, &anchor, 1.3);
        for s in solo.iter_mut() {
            s.apply_rank_one_phase(&anchor, 1.3);
        }
        for (b, s) in batch.iter().zip(&solo) {
            assert_eq!(b.to_table().distance_sqr(&s.to_table()), 0.0);
        }
    }

    #[test]
    fn pruning_removes_cancellations() {
        let layout = small_layout();
        let mut v = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        // H then Z then H on the flag register returns exactly |1⟩… no — X.
        // H·Z·H = X, so flag |0⟩ → |1⟩ and the |0⟩ component cancels.
        v.apply_register_unitary(2, &gates::hadamard());
        v.apply_register_unitary(2, &gates::pauli_z());
        v.apply_register_unitary(2, &gates::hadamard());
        assert_eq!(v.support_len(), 1, "cancelled branch must be pruned");
        assert!(approx_eq(v.amplitude(&[0, 0, 1]).abs(), 1.0));
    }

    #[test]
    fn inner_product_symmetric_conjugate() {
        let layout = small_layout();
        let mut a = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        a.apply_register_unitary(0, &gates::dft(4));
        let mut b = SparseState::from_basis(layout, &[0, 0, 0]);
        b.apply_phase(|_| Complex64::cis(0.7));
        let ab = a.inner(&b);
        let ba = b.inner(&a);
        assert!(approx_eq_c(ab, ba.conj()));
    }

    #[test]
    fn scale_changes_norm() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.scale(Complex64::from_real(2.0));
        assert!(approx_eq(s.norm(), 2.0));
    }

    #[test]
    fn sample_is_deterministic_given_seed() {
        use rand::SeedableRng;
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    /// Runs the same mixed circuit on the packed and fallback paths and
    /// demands identical snapshots (the boxed path is the seed semantics).
    fn run_circuit(mut s: SparseState) -> StateTable {
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_permutation(|b| b[1] = (b[0] * 2 + 1) % 3);
        s.apply_conditioned_unitary(2, |b| {
            let c = (b[1] as f64 / 2.0).min(1.0);
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        });
        s.apply_phase(|b| Complex64::cis(0.3 * b[0] as f64));
        let mut anchor = StateTable::new(
            s.layout().clone(),
            vec![
                (vec![0, 1, 0].into(), Complex64::from_real(1.0)),
                (vec![2, 2, 1].into(), Complex64::from_real(1.0)),
            ],
        );
        anchor.normalize();
        s.apply_rank_one_phase(&anchor, 1.1);
        s.to_table()
    }

    #[test]
    fn packed_and_fallback_agree_on_mixed_circuit() {
        let packed = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        assert!(packed.is_packed());
        let fallback = SparseState::from_basis_fallback(small_layout(), &[0, 0, 0]);
        assert!(!fallback.is_packed());
        let (tp, tf) = (run_circuit(packed), run_circuit(fallback));
        assert_eq!(tp.len(), tf.len());
        assert!(tp.distance_sqr(&tf) < 1e-18, "representations diverged");
    }

    #[test]
    fn packed_and_fallback_agree_above_the_radix_threshold() {
        // Support 2048 ≥ RADIX_MIN_LEN: the permutation and the mid-register
        // conditioned unitary both go through the partitioned merge, and the
        // fallback hash-map path is the reference.
        let layout = Layout::builder()
            .register("a", 64)
            .register("b", 32)
            .register("c", 8)
            .build();
        let run = |mut s: SparseState| -> StateTable {
            s.apply_register_unitary(0, &gates::dft(64));
            s.apply_register_unitary(1, &gates::dft(32));
            s.apply_permutation(|b| {
                b[0] = (b[0] * 37 + b[1]) % 64;
                b[2] = (b[2] + b[1]) % 8;
            });
            s.apply_conditioned_unitary(1, |b| {
                let c = (b[0] as f64 / 63.0).min(1.0);
                let mut u = gates::dft(32);
                if c > 0.5 {
                    u = u.adjoint();
                }
                u
            });
            s.to_table()
        };
        let packed = SparseState::from_basis(layout.clone(), &[0, 0, 3]);
        assert!(packed.is_packed());
        let fallback = SparseState::from_basis_fallback(layout, &[0, 0, 3]);
        let (tp, tf) = (run(packed), run(fallback));
        assert_eq!(tp.len(), tf.len());
        assert!(tp.distance_sqr(&tf) < 1e-15, "representations diverged");
    }

    #[test]
    fn over_128_bit_layout_uses_fallback() {
        // Joint dimension (2^63)^3 = 2^189 > 2^128: packed keys impossible.
        let layout = Layout::builder().register_array("huge", 1 << 63, 3).build();
        assert_eq!(layout.packed_dim(), None);
        let mut s = SparseState::from_basis(layout, &[5, (1 << 63) - 1, 0]);
        assert!(!s.is_packed(), "oversized layout must fall back");
        s.apply_permutation(|b| b[2] = (b[2] + 7) % (1 << 63));
        assert!(approx_eq_c(
            s.amplitude(&[5, (1 << 63) - 1, 7]),
            Complex64::ONE
        ));
        assert!(approx_eq(s.norm(), 1.0));
        assert_eq!(s.support_len(), 1);
    }

    #[test]
    fn filter_amplitudes_matches_between_reprs() {
        let mut packed = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        let mut fallback = SparseState::from_basis_fallback(small_layout(), &[0, 0, 0]);
        for s in [&mut packed, &mut fallback] {
            s.apply_register_unitary(0, &gates::dft(4));
        }
        let pp = packed.filter_amplitudes(|b| b[0] < 2);
        let pf = fallback.filter_amplitudes(|b| b[0] < 2);
        assert!(approx_eq(pp, pf));
        assert!(approx_eq(pp, 0.5));
        assert_eq!(packed.support_len(), 2);
    }
}
