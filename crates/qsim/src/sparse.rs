//! Sparse state-vector backend.
//!
//! Stores only basis states with nonzero amplitude. For the paper's circuits
//! the support stays `O(N·ν)` regardless of how many ancilla registers the
//! parallel model adds, so this backend is *exact* while scaling to
//! data-universe sizes the dense backend cannot touch.
//!
//! ## Representation
//!
//! Whenever the layout's joint dimension fits in 128 bits
//! ([`Layout::packed_dim`] is `Some` — true for every layout in this
//! reproduction), each amplitude is keyed by its mixed-radix
//! [`Layout::encode_u128`] packed key and the state is a flat
//! **sorted** `Vec<(u128, Complex64)>` with a double-buffered scratch
//! vector. Gate application becomes allocation-free merge/scan passes
//! (rayon-parallel over `PAR_CHUNK`-sized chunks) instead of hash-map
//! rebuilds with one boxed-slice key allocation per amplitude. Because the
//! first register is the most significant digit, sorted key order equals
//! sorted basis-tuple order, so snapshots and merge-joins agree with
//! [`StateTable`] ordering.
//!
//! Layouts whose joint dimension exceeds 128 bits fall back to the original
//! `FxHashMap<Box<[u64]>, Complex64>` representation
//! ([`SparseState::is_packed`] reports which path is active).
//!
//! ## Determinism
//!
//! All parallel reductions are chunked with fixed chunk boundaries and the
//! partial results are combined in chunk order, so every operation returns
//! bit-identical results regardless of thread count (including
//! `RAYON_NUM_THREADS=1`).
//!
//! Amplitudes whose squared modulus falls below [`PRUNE_EPS_SQR`] (1e-24,
//! i.e. |amp| < 1e-12 — pure floating-point residue, ~8 orders of magnitude
//! below any amplitude the algorithms produce) are pruned to keep the
//! support from accreting round-off junk.

use crate::fxhash::FxHashMap;
use crate::register::Layout;
use crate::state::{debug_check_norm, QuantumState};
use crate::table::StateTable;
use dqs_math::{Complex64, MatC};
use rayon::prelude::*;

/// Squared-modulus threshold below which amplitudes are dropped.
pub const PRUNE_EPS_SQR: f64 = 1e-24;

/// Entries per rayon task in the packed scan passes. Also the chunk size of
/// the deterministic `norm`/`inner` reductions: partials are combined in
/// chunk order, so results do not depend on the worker count.
const PAR_CHUNK: usize = 4096;

/// Buckets per rayon task in the conditioned-unitary pass.
const BUCKETS_PER_TASK: usize = 256;

type BoxedKey = Box<[u64]>;

/// Packed representation: sorted `(key, amplitude)` pairs plus a reusable
/// scratch buffer (the other half of the double buffer).
struct Packed {
    /// Sorted by key, keys unique, every `norm_sqr > PRUNE_EPS_SQR`.
    amps: Vec<(u128, Complex64)>,
    /// Scratch for out-of-place passes; contents are meaningless between
    /// operations, the allocation is what we keep.
    scratch: Vec<(u128, Complex64)>,
}

impl Clone for Packed {
    fn clone(&self) -> Self {
        // The scratch buffer is transient state — don't copy its contents.
        Self {
            amps: self.amps.clone(),
            scratch: Vec::new(),
        }
    }
}

#[derive(Clone)]
enum Repr {
    Packed(Packed),
    Boxed(FxHashMap<BoxedKey, Complex64>),
}

/// A sparse pure state over a multi-register [`Layout`].
#[derive(Clone)]
pub struct SparseState {
    layout: Layout,
    repr: Repr,
}

impl SparseState {
    /// True when this state uses the packed `u128`-key representation
    /// (layout joint dimension ≤ 2^128); false on the boxed-slice fallback.
    pub fn is_packed(&self) -> bool {
        matches!(self.repr, Repr::Packed(_))
    }

    /// Constructs `|basis⟩` on the boxed-slice fallback path even when the
    /// layout would support packed keys. Exists so tests can pin the two
    /// representations against each other on small layouts; algorithms
    /// should use [`QuantumState::from_basis`].
    pub fn from_basis_fallback(layout: Layout, basis: &[u64]) -> Self {
        layout.assert_basis(basis);
        let mut amps = FxHashMap::default();
        amps.insert(basis.into(), Complex64::ONE);
        Self {
            layout,
            repr: Repr::Boxed(amps),
        }
    }

    fn prune_boxed(map: &mut FxHashMap<BoxedKey, Complex64>) {
        map.retain(|_, a| a.norm_sqr() > PRUNE_EPS_SQR);
    }

    /// Adds `amp` to the basis state `key`, creating or pruning as needed
    /// (boxed fallback path).
    fn accumulate(map: &mut FxHashMap<BoxedKey, Complex64>, key: BoxedKey, amp: Complex64) {
        use std::collections::hash_map::Entry;
        match map.entry(key) {
            Entry::Occupied(mut e) => {
                let v = *e.get() + amp;
                if v.norm_sqr() > PRUNE_EPS_SQR {
                    *e.get_mut() = v;
                } else {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                if amp.norm_sqr() > PRUNE_EPS_SQR {
                    e.insert(amp);
                }
            }
        }
    }
}

impl QuantumState for SparseState {
    fn from_basis(layout: Layout, basis: &[u64]) -> Self {
        layout.assert_basis(basis);
        let repr = if layout.packed_dim().is_some() {
            Repr::Packed(Packed {
                amps: vec![(layout.encode_u128(basis), Complex64::ONE)],
                scratch: Vec::new(),
            })
        } else {
            let mut amps = FxHashMap::default();
            amps.insert(basis.into(), Complex64::ONE);
            Repr::Boxed(amps)
        };
        Self { layout, repr }
    }

    fn from_table(table: &StateTable) -> Self {
        let layout = table.layout().clone();
        let repr = if layout.packed_dim().is_some() {
            // StateTable iterates in sorted basis-tuple order, and the
            // first register is the most significant key digit, so the
            // packed keys come out already sorted.
            let amps: Vec<(u128, Complex64)> = table
                .iter()
                .filter(|(_, a)| a.norm_sqr() > PRUNE_EPS_SQR)
                .map(|(b, a)| (layout.encode_u128(b), a))
                .collect();
            debug_assert!(amps.windows(2).all(|w| w[0].0 < w[1].0));
            Repr::Packed(Packed {
                amps,
                scratch: Vec::new(),
            })
        } else {
            let mut map = FxHashMap::default();
            for (b, a) in table.iter() {
                if a.norm_sqr() > PRUNE_EPS_SQR {
                    map.insert(b.into(), a);
                }
            }
            Repr::Boxed(map)
        };
        let state = Self { layout, repr };
        debug_check_norm(&state, "from_table");
        state
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }

    fn amplitude(&self, basis: &[u64]) -> Complex64 {
        self.layout.assert_basis(basis);
        match &self.repr {
            Repr::Packed(p) => {
                let key = self.layout.encode_u128(basis);
                match p.amps.binary_search_by_key(&key, |e| e.0) {
                    Ok(i) => p.amps[i].1,
                    Err(_) => Complex64::ZERO,
                }
            }
            Repr::Boxed(map) => map.get(basis).copied().unwrap_or(Complex64::ZERO),
        }
    }

    fn support_len(&self) -> usize {
        match &self.repr {
            Repr::Packed(p) => p.amps.len(),
            Repr::Boxed(map) => map.len(),
        }
    }

    fn apply_permutation(&mut self, f: impl Fn(&mut [u64]) + Sync) {
        let layout = &self.layout;
        match &mut self.repr {
            Repr::Packed(p) => {
                let n_regs = layout.num_registers();
                p.scratch.clear();
                p.scratch.resize(p.amps.len(), (0, Complex64::ZERO));
                p.scratch
                    .par_chunks_mut(PAR_CHUNK)
                    .zip(p.amps.par_chunks(PAR_CHUNK))
                    .for_each(|(dst, src)| {
                        let mut basis = vec![0u64; n_regs];
                        for (slot, &(key, amp)) in dst.iter_mut().zip(src) {
                            layout.decode_u128(key, &mut basis);
                            f(&mut basis);
                            layout.assert_basis(&basis);
                            *slot = (layout.encode_u128(&basis), amp);
                        }
                    });
                p.scratch.par_sort_unstable_by_key(|e| e.0);
                // Merge duplicates (a bijection produces none; debug-checked).
                p.amps.clear();
                for &(key, amp) in p.scratch.iter() {
                    match p.amps.last_mut() {
                        Some((prev, acc)) if *prev == key => {
                            debug_assert!(
                                false,
                                "permutation closure is not injective (collision at key {key})"
                            );
                            *acc += amp;
                            if acc.norm_sqr() <= PRUNE_EPS_SQR {
                                p.amps.pop();
                            }
                        }
                        _ => p.amps.push((key, amp)),
                    }
                }
            }
            Repr::Boxed(map) => {
                let mut out: FxHashMap<BoxedKey, Complex64> = FxHashMap::default();
                out.reserve(map.len());
                for (key, amp) in map.drain() {
                    let mut basis = key.into_vec();
                    f(&mut basis);
                    layout.assert_basis(&basis);
                    let new_key: BoxedKey = basis.into_boxed_slice();
                    debug_assert!(
                        !out.contains_key(&new_key),
                        "permutation closure is not injective (collision at {new_key:?})"
                    );
                    Self::accumulate(&mut out, new_key, amp);
                }
                *map = out;
            }
        }
        debug_check_norm(self, "apply_permutation");
    }

    fn apply_conditioned_unitary(&mut self, target: usize, u_of: impl Fn(&[u64]) -> MatC + Sync) {
        let layout = &self.layout;
        let d = layout.dim(target) as usize;
        match &mut self.repr {
            Repr::Packed(p) => {
                let n_regs = layout.num_registers();
                let stride = layout.stride_u128(target);
                let d_wide = d as u128;
                // (key with target digit zeroed, target value)
                let split = |key: u128| {
                    let t = (key / stride) % d_wide;
                    (key - t * stride, t as usize)
                };
                // Sort the support into buckets sharing a masked key. Keys
                // are unique, so (masked, key) is a deterministic total
                // order regardless of the unstable sort.
                p.amps
                    .par_sort_unstable_by_key(|&(key, _)| (split(key).0, key));
                // Bucket boundaries (one bucket = one masked key).
                let mut ranges: Vec<(usize, usize)> = Vec::new();
                let mut start = 0;
                for i in 1..=p.amps.len() {
                    if i == p.amps.len() || split(p.amps[i].0).0 != split(p.amps[start].0).0 {
                        ranges.push((start, i));
                        start = i;
                    }
                }
                let amps = &p.amps;
                let outputs: Vec<Vec<(u128, Complex64)>> = ranges
                    .par_chunks(BUCKETS_PER_TASK)
                    .map(|task| {
                        let mut basis = vec![0u64; n_regs];
                        let mut col = vec![Complex64::ZERO; d];
                        let mut local: Vec<(u128, Complex64)> = Vec::new();
                        for &(lo, hi) in task {
                            let masked = split(amps[lo].0).0;
                            layout.decode_u128(masked, &mut basis);
                            debug_assert_eq!(basis[target], 0, "masked key has target 0");
                            let u = u_of(&basis);
                            assert_eq!(
                                (u.rows(), u.cols()),
                                (d, d),
                                "conditioned unitary has wrong shape for register {target}"
                            );
                            // col[r] = Σ_{(t, amp)} U[r,t] · amp over the
                            // bucket's nonzero inputs.
                            col.fill(Complex64::ZERO);
                            for &(key, amp) in &amps[lo..hi] {
                                let t = split(key).1;
                                for (r, slot) in col.iter_mut().enumerate() {
                                    let m = u[(r, t)];
                                    if m.norm_sqr() != 0.0 {
                                        *slot += m * amp;
                                    }
                                }
                            }
                            for (r, &amp) in col.iter().enumerate() {
                                if amp.norm_sqr() > PRUNE_EPS_SQR {
                                    local.push((masked + r as u128 * stride, amp));
                                }
                            }
                        }
                        local
                    })
                    .collect();
                p.scratch.clear();
                for chunk in outputs {
                    p.scratch.extend(chunk);
                }
                // Bucket outputs have unique keys; restore global key order.
                p.scratch.par_sort_unstable_by_key(|e| e.0);
                debug_assert!(p.scratch.windows(2).all(|w| w[0].0 < w[1].0));
                std::mem::swap(&mut p.amps, &mut p.scratch);
            }
            Repr::Boxed(map) => {
                // Group support by the tuple with the target register zeroed.
                let mut buckets: FxHashMap<BoxedKey, Vec<(u64, Complex64)>> = FxHashMap::default();
                for (key, amp) in map.drain() {
                    let t_val = key[target];
                    let mut masked = key.into_vec();
                    masked[target] = 0;
                    buckets
                        .entry(masked.into_boxed_slice())
                        .or_default()
                        .push((t_val, amp));
                }
                let mut out: FxHashMap<BoxedKey, Complex64> = FxHashMap::default();
                for (masked, cols) in buckets {
                    let u = u_of(&masked);
                    assert_eq!(
                        (u.rows(), u.cols()),
                        (d, d),
                        "conditioned unitary has wrong shape for register {target}"
                    );
                    // out[r] = Σ_{(k, amp)} U[r,k] · amp, touching only
                    // nonzero inputs.
                    let mut out_col = vec![Complex64::ZERO; d];
                    for (k, amp) in &cols {
                        let k = *k as usize;
                        for (r, slot) in out_col.iter_mut().enumerate() {
                            let m = u[(r, k)];
                            if m.norm_sqr() != 0.0 {
                                *slot += m * *amp;
                            }
                        }
                    }
                    for (r, amp) in out_col.into_iter().enumerate() {
                        if amp.norm_sqr() > PRUNE_EPS_SQR {
                            let mut key = masked.to_vec();
                            key[target] = r as u64;
                            Self::accumulate(&mut out, key.into_boxed_slice(), amp);
                        }
                    }
                }
                *map = out;
            }
        }
        debug_check_norm(self, "apply_conditioned_unitary");
    }

    fn apply_phase(&mut self, f: impl Fn(&[u64]) -> Complex64 + Sync) {
        let layout = &self.layout;
        match &mut self.repr {
            Repr::Packed(p) => {
                let n_regs = layout.num_registers();
                p.amps.par_chunks_mut(PAR_CHUNK).for_each(|chunk| {
                    let mut basis = vec![0u64; n_regs];
                    for (key, amp) in chunk {
                        layout.decode_u128(*key, &mut basis);
                        let ph = f(&basis);
                        debug_assert!(
                            (ph.abs() - 1.0).abs() < 1e-9,
                            "phase factor must be unit modulus, got {ph}"
                        );
                        *amp *= ph;
                    }
                });
            }
            Repr::Boxed(map) => {
                for (key, amp) in map.iter_mut() {
                    let ph = f(key);
                    debug_assert!(
                        (ph.abs() - 1.0).abs() < 1e-9,
                        "phase factor must be unit modulus, got {ph}"
                    );
                    *amp *= ph;
                }
            }
        }
        debug_check_norm(self, "apply_phase");
    }

    fn apply_rank_one_phase(&mut self, anchor: &StateTable, phi: f64) {
        assert_eq!(
            anchor.layout(),
            &self.layout,
            "anchor layout mismatch in rank-one phase"
        );
        debug_assert!(
            (anchor.norm() - 1.0).abs() < 1e-9,
            "rank-one anchor must be normalized"
        );
        let layout = &self.layout;
        match &mut self.repr {
            Repr::Packed(p) => {
                // StateTable iterates in sorted tuple order == sorted key
                // order, so this is a sorted list and the overlap merge-join
                // visits anchor entries in the same order the boxed path did.
                let akeys: Vec<(u128, Complex64)> = anchor
                    .iter()
                    .map(|(b, a)| (layout.encode_u128(b), a))
                    .collect();
                debug_assert!(akeys.windows(2).all(|w| w[0].0 < w[1].0));
                let mut overlap = Complex64::ZERO;
                {
                    let mut i = 0;
                    for &(key, a) in &akeys {
                        while i < p.amps.len() && p.amps[i].0 < key {
                            i += 1;
                        }
                        if i < p.amps.len() && p.amps[i].0 == key {
                            overlap += a.conj() * p.amps[i].1;
                        }
                    }
                }
                let coef = (Complex64::cis(phi) - Complex64::ONE) * overlap;
                if coef.norm_sqr() == 0.0 {
                    return;
                }
                // Merge state + coef·anchor into scratch, pruning as we go.
                p.scratch.clear();
                let (mut i, mut j) = (0usize, 0usize);
                while i < p.amps.len() || j < akeys.len() {
                    let take_state =
                        j >= akeys.len() || (i < p.amps.len() && p.amps[i].0 < akeys[j].0);
                    let take_anchor =
                        i >= p.amps.len() || (j < akeys.len() && akeys[j].0 < p.amps[i].0);
                    let (key, v) = if take_state {
                        let e = p.amps[i];
                        i += 1;
                        e
                    } else if take_anchor {
                        let (key, a) = akeys[j];
                        j += 1;
                        (key, coef * a)
                    } else {
                        let (key, a) = akeys[j];
                        let v = p.amps[i].1 + coef * a;
                        i += 1;
                        j += 1;
                        (key, v)
                    };
                    if v.norm_sqr() > PRUNE_EPS_SQR {
                        p.scratch.push((key, v));
                    }
                }
                std::mem::swap(&mut p.amps, &mut p.scratch);
            }
            Repr::Boxed(map) => {
                let mut overlap = Complex64::ZERO;
                for (b, a) in anchor.iter() {
                    if let Some(v) = map.get(b) {
                        overlap += a.conj() * *v;
                    }
                }
                let coef = (Complex64::cis(phi) - Complex64::ONE) * overlap;
                if coef.norm_sqr() == 0.0 {
                    return;
                }
                for (b, a) in anchor.iter() {
                    Self::accumulate(map, b.into(), coef * a);
                }
                Self::prune_boxed(map);
            }
        }
        debug_check_norm(self, "apply_rank_one_phase");
    }

    fn scale(&mut self, k: Complex64) {
        match &mut self.repr {
            Repr::Packed(p) => {
                p.amps
                    .par_chunks_mut(PAR_CHUNK)
                    .for_each(|chunk| chunk.iter_mut().for_each(|(_, a)| *a *= k));
            }
            Repr::Boxed(map) => {
                for amp in map.values_mut() {
                    *amp *= k;
                }
            }
        }
    }

    fn norm(&self) -> f64 {
        match &self.repr {
            Repr::Packed(p) => {
                // Chunked parallel reduction; partials combined in chunk
                // order so the sum is thread-count independent.
                let partials: Vec<f64> = p
                    .amps
                    .par_chunks(PAR_CHUNK)
                    .map(|chunk| chunk.iter().map(|(_, a)| a.norm_sqr()).sum::<f64>())
                    .collect();
                partials.iter().sum::<f64>().sqrt()
            }
            Repr::Boxed(map) => map.values().map(|a| a.norm_sqr()).sum::<f64>().sqrt(),
        }
    }

    fn inner(&self, other: &Self) -> Complex64 {
        assert_eq!(self.layout, other.layout, "inner across layouts");
        match (&self.repr, &other.repr) {
            (Repr::Packed(a), Repr::Packed(b)) => {
                // Chunked merge-join over the two sorted supports; each chunk
                // of `self` joins against the matching key range of `other`
                // found by binary search. Partials combine in chunk order.
                let partials: Vec<Complex64> = a
                    .amps
                    .par_chunks(PAR_CHUNK)
                    .map(|chunk| {
                        let lo = chunk[0].0;
                        let mut j = b.amps.partition_point(|e| e.0 < lo);
                        let mut acc = Complex64::ZERO;
                        let mut i = 0;
                        while i < chunk.len() && j < b.amps.len() {
                            match chunk[i].0.cmp(&b.amps[j].0) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    acc += chunk[i].1.conj() * b.amps[j].1;
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                        acc
                    })
                    .collect();
                partials.into_iter().fold(Complex64::ZERO, |x, y| x + y)
            }
            (Repr::Boxed(a), Repr::Boxed(b)) => {
                let (small, big, conj_small) = if a.len() <= b.len() {
                    (a, b, true)
                } else {
                    (b, a, false)
                };
                let mut acc = Complex64::ZERO;
                for (k, x) in small {
                    if let Some(y) = big.get(k) {
                        // ⟨self|other⟩ = Σ conj(self)·other regardless of
                        // which map we iterate.
                        acc += if conj_small {
                            x.conj() * *y
                        } else {
                            y.conj() * *x
                        };
                    }
                }
                acc
            }
            // Mixed representations only occur via the fallback test
            // constructor; route through the deterministic snapshots.
            _ => self.to_table().inner(&other.to_table()),
        }
    }

    fn filter_amplitudes(&mut self, keep: impl Fn(&[u64]) -> bool + Sync) -> f64 {
        let layout = &self.layout;
        match &mut self.repr {
            Repr::Packed(p) => {
                let n_regs = layout.num_registers();
                // Mark dropped entries with a zero amplitude (the support
                // invariant guarantees no live entry is zero), summing the
                // survivors per chunk; combine partials in chunk order.
                let partials: Vec<f64> = p
                    .amps
                    .par_chunks_mut(PAR_CHUNK)
                    .map(|chunk| {
                        let mut basis = vec![0u64; n_regs];
                        let mut survived = 0.0;
                        for (key, amp) in chunk {
                            layout.decode_u128(*key, &mut basis);
                            if keep(&basis) {
                                survived += amp.norm_sqr();
                            } else {
                                *amp = Complex64::ZERO;
                            }
                        }
                        survived
                    })
                    .collect();
                p.amps.retain(|(_, a)| a.norm_sqr() > 0.0);
                partials.iter().sum()
            }
            Repr::Boxed(map) => {
                let mut survived = 0.0;
                map.retain(|key, amp| {
                    if keep(key) {
                        survived += amp.norm_sqr();
                        true
                    } else {
                        false
                    }
                });
                survived
            }
        }
    }

    fn to_table(&self) -> StateTable {
        match &self.repr {
            Repr::Packed(p) => {
                let layout = &self.layout;
                let n_regs = layout.num_registers();
                let entries: Vec<(BoxedKey, Complex64)> = p
                    .amps
                    .par_chunks(PAR_CHUNK)
                    .map(|chunk| {
                        let mut basis = vec![0u64; n_regs];
                        chunk
                            .iter()
                            .map(|&(key, amp)| {
                                layout.decode_u128(key, &mut basis);
                                (basis.clone().into_boxed_slice(), amp)
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .flatten()
                    .collect();
                StateTable::new(self.layout.clone(), entries)
            }
            Repr::Boxed(map) => StateTable::new(
                self.layout.clone(),
                map.iter().map(|(k, a)| (k.clone(), *a)).collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use dqs_math::approx::{approx_eq, approx_eq_c};

    fn small_layout() -> Layout {
        Layout::builder()
            .register("i", 4)
            .register("s", 3)
            .register("b", 2)
            .build()
    }

    #[test]
    fn basis_state_and_lookup() {
        let s = SparseState::from_basis(small_layout(), &[3, 2, 1]);
        assert!(s.is_packed());
        assert_eq!(s.support_len(), 1);
        assert!(approx_eq_c(s.amplitude(&[3, 2, 1]), Complex64::ONE));
        assert!(approx_eq(s.norm(), 1.0));
    }

    #[test]
    fn from_table_round_trips_and_matches_dft_prep() {
        // An entangled state with non-trivial phases, via the DFT route…
        let mut via_dft = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        via_dft.apply_register_unitary(0, &gates::dft(4));
        via_dft.apply_permutation(|b| b[1] = b[0] % 3);
        // …must equal the state loaded back from its own snapshot.
        let loaded = SparseState::from_table(&via_dft.to_table());
        assert!(loaded.is_packed());
        assert_eq!(loaded.support_len(), via_dft.support_len());
        assert_eq!(
            loaded.to_table().distance_sqr(&via_dft.to_table()),
            0.0,
            "from_table must be the exact inverse of to_table"
        );
    }

    #[test]
    fn permutation_is_norm_preserving() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_permutation(|b| b[1] = (b[1] + b[0].min(2)) % 3);
        assert!(approx_eq(s.norm(), 1.0));
        assert_eq!(s.support_len(), 4);
        assert!(approx_eq(s.amplitude(&[2, 2, 0]).abs(), 0.5));
    }

    #[test]
    fn conditioned_unitary_per_bucket() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        // mark count = element (mod 3), then rotate flag by count-dependent angle
        s.apply_permutation(|b| b[1] = b[0] % 3);
        s.apply_conditioned_unitary(2, |b| {
            let c = (b[1] as f64 / 2.0).min(1.0);
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        });
        assert!(approx_eq(s.norm(), 1.0));
        // element 0 → count 0 → flag flipped to 1
        assert!(approx_eq(s.amplitude(&[0, 0, 1]).abs(), 0.5));
        assert!(approx_eq(s.amplitude(&[0, 0, 0]).abs(), 0.0));
        // element 2 → count 2 → flag stays 0
        assert!(approx_eq(s.amplitude(&[2, 2, 0]).abs(), 0.5));
    }

    #[test]
    fn phase_only_touches_support() {
        let mut s = SparseState::from_basis(small_layout(), &[1, 1, 1]);
        s.apply_phase(|b| Complex64::cis(b[0] as f64));
        assert!(approx_eq(s.amplitude(&[1, 1, 1]).arg(), 1.0));
    }

    #[test]
    fn rank_one_reflection_matches_algebra() {
        let layout = small_layout();
        let mut anchor = StateTable::new(
            layout.clone(),
            vec![
                (vec![0, 0, 0].into(), Complex64::from_real(1.0)),
                (vec![1, 0, 0].into(), Complex64::from_real(1.0)),
            ],
        );
        anchor.normalize();
        let mut v = SparseState::from_basis(layout, &[0, 0, 0]);
        v.apply_rank_one_phase(&anchor, std::f64::consts::PI);
        assert!(approx_eq_c(v.amplitude(&[1, 0, 0]), -Complex64::ONE));
        assert!(v.amplitude(&[0, 0, 0]).abs() < 1e-9);
    }

    #[test]
    fn rank_one_orthogonal_anchor_is_noop() {
        let layout = small_layout();
        let anchor = StateTable::basis_state(layout.clone(), &[2, 0, 0]);
        let mut v = SparseState::from_basis(layout, &[1, 0, 0]);
        v.apply_rank_one_phase(&anchor, 1.0);
        assert_eq!(v.support_len(), 1);
        assert!(approx_eq_c(v.amplitude(&[1, 0, 0]), Complex64::ONE));
    }

    #[test]
    fn pruning_removes_cancellations() {
        let layout = small_layout();
        let mut v = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        // H then Z then H on the flag register returns exactly |1⟩… no — X.
        // H·Z·H = X, so flag |0⟩ → |1⟩ and the |0⟩ component cancels.
        v.apply_register_unitary(2, &gates::hadamard());
        v.apply_register_unitary(2, &gates::pauli_z());
        v.apply_register_unitary(2, &gates::hadamard());
        assert_eq!(v.support_len(), 1, "cancelled branch must be pruned");
        assert!(approx_eq(v.amplitude(&[0, 0, 1]).abs(), 1.0));
    }

    #[test]
    fn inner_product_symmetric_conjugate() {
        let layout = small_layout();
        let mut a = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        a.apply_register_unitary(0, &gates::dft(4));
        let mut b = SparseState::from_basis(layout, &[0, 0, 0]);
        b.apply_phase(|_| Complex64::cis(0.7));
        let ab = a.inner(&b);
        let ba = b.inner(&a);
        assert!(approx_eq_c(ab, ba.conj()));
    }

    #[test]
    fn scale_changes_norm() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.scale(Complex64::from_real(2.0));
        assert!(approx_eq(s.norm(), 2.0));
    }

    #[test]
    fn sample_is_deterministic_given_seed() {
        use rand::SeedableRng;
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    /// Runs the same mixed circuit on the packed and fallback paths and
    /// demands identical snapshots (the boxed path is the seed semantics).
    fn run_circuit(mut s: SparseState) -> StateTable {
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_permutation(|b| b[1] = (b[0] * 2 + 1) % 3);
        s.apply_conditioned_unitary(2, |b| {
            let c = (b[1] as f64 / 2.0).min(1.0);
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        });
        s.apply_phase(|b| Complex64::cis(0.3 * b[0] as f64));
        let mut anchor = StateTable::new(
            s.layout().clone(),
            vec![
                (vec![0, 1, 0].into(), Complex64::from_real(1.0)),
                (vec![2, 2, 1].into(), Complex64::from_real(1.0)),
            ],
        );
        anchor.normalize();
        s.apply_rank_one_phase(&anchor, 1.1);
        s.to_table()
    }

    #[test]
    fn packed_and_fallback_agree_on_mixed_circuit() {
        let packed = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        assert!(packed.is_packed());
        let fallback = SparseState::from_basis_fallback(small_layout(), &[0, 0, 0]);
        assert!(!fallback.is_packed());
        let (tp, tf) = (run_circuit(packed), run_circuit(fallback));
        assert_eq!(tp.len(), tf.len());
        assert!(tp.distance_sqr(&tf) < 1e-18, "representations diverged");
    }

    #[test]
    fn over_128_bit_layout_uses_fallback() {
        // Joint dimension (2^63)^3 = 2^189 > 2^128: packed keys impossible.
        let layout = Layout::builder().register_array("huge", 1 << 63, 3).build();
        assert_eq!(layout.packed_dim(), None);
        let mut s = SparseState::from_basis(layout, &[5, (1 << 63) - 1, 0]);
        assert!(!s.is_packed(), "oversized layout must fall back");
        s.apply_permutation(|b| b[2] = (b[2] + 7) % (1 << 63));
        assert!(approx_eq_c(
            s.amplitude(&[5, (1 << 63) - 1, 7]),
            Complex64::ONE
        ));
        assert!(approx_eq(s.norm(), 1.0));
        assert_eq!(s.support_len(), 1);
    }

    #[test]
    fn filter_amplitudes_matches_between_reprs() {
        let mut packed = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        let mut fallback = SparseState::from_basis_fallback(small_layout(), &[0, 0, 0]);
        for s in [&mut packed, &mut fallback] {
            s.apply_register_unitary(0, &gates::dft(4));
        }
        let pp = packed.filter_amplitudes(|b| b[0] < 2);
        let pf = fallback.filter_amplitudes(|b| b[0] < 2);
        assert!(approx_eq(pp, pf));
        assert!(approx_eq(pp, 0.5));
        assert_eq!(packed.support_len(), 2);
    }
}
