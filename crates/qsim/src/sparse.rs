//! Sparse state-vector backend.
//!
//! Stores only basis states with nonzero amplitude in a hash map keyed by
//! the full basis tuple. For the paper's circuits the support stays
//! `O(N·ν)` regardless of how many ancilla registers the parallel model
//! adds, so this backend is *exact* while scaling to data-universe sizes the
//! dense backend cannot touch.
//!
//! Amplitudes whose squared modulus falls below [`PRUNE_EPS_SQR`] (1e-24,
//! i.e. |amp| < 1e-12 — pure floating-point residue, ~8 orders of magnitude
//! below any amplitude the algorithms produce) are pruned to keep the
//! support from accreting round-off junk.

use crate::fxhash::FxHashMap;
use crate::register::Layout;
use crate::state::{debug_check_norm, QuantumState};
use crate::table::StateTable;
use dqs_math::{Complex64, MatC};

/// Squared-modulus threshold below which amplitudes are dropped.
pub const PRUNE_EPS_SQR: f64 = 1e-24;

type Key = Box<[u64]>;

/// A sparse pure state: hash map from basis tuple to amplitude.
#[derive(Clone)]
pub struct SparseState {
    layout: Layout,
    amps: FxHashMap<Key, Complex64>,
}

impl SparseState {
    fn prune(&mut self) {
        self.amps.retain(|_, a| a.norm_sqr() > PRUNE_EPS_SQR);
    }

    /// Adds `amp` to the basis state `key`, creating or pruning as needed.
    fn accumulate(map: &mut FxHashMap<Key, Complex64>, key: Key, amp: Complex64) {
        use std::collections::hash_map::Entry;
        match map.entry(key) {
            Entry::Occupied(mut e) => {
                let v = *e.get() + amp;
                if v.norm_sqr() > PRUNE_EPS_SQR {
                    *e.get_mut() = v;
                } else {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                if amp.norm_sqr() > PRUNE_EPS_SQR {
                    e.insert(amp);
                }
            }
        }
    }
}

impl QuantumState for SparseState {
    fn from_basis(layout: Layout, basis: &[u64]) -> Self {
        layout.assert_basis(basis);
        let mut amps = FxHashMap::default();
        amps.insert(basis.into(), Complex64::ONE);
        Self { layout, amps }
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }

    fn amplitude(&self, basis: &[u64]) -> Complex64 {
        self.layout.assert_basis(basis);
        self.amps.get(basis).copied().unwrap_or(Complex64::ZERO)
    }

    fn support_len(&self) -> usize {
        self.amps.len()
    }

    fn apply_permutation(&mut self, f: impl Fn(&mut [u64]) + Sync) {
        let layout = self.layout.clone();
        let mut out: FxHashMap<Key, Complex64> = FxHashMap::default();
        out.reserve(self.amps.len());
        for (key, amp) in self.amps.drain() {
            let mut basis = key.into_vec();
            f(&mut basis);
            layout.assert_basis(&basis);
            let new_key: Key = basis.into_boxed_slice();
            debug_assert!(
                !out.contains_key(&new_key),
                "permutation closure is not injective (collision at {new_key:?})"
            );
            Self::accumulate(&mut out, new_key, amp);
        }
        self.amps = out;
        debug_check_norm(self, "apply_permutation");
    }

    fn apply_conditioned_unitary(&mut self, target: usize, u_of: impl Fn(&[u64]) -> MatC + Sync) {
        let d = self.layout.dim(target) as usize;
        // Group support by the tuple with the target register zeroed.
        let mut buckets: FxHashMap<Key, Vec<(u64, Complex64)>> = FxHashMap::default();
        for (key, amp) in self.amps.drain() {
            let t_val = key[target];
            let mut masked = key.into_vec();
            masked[target] = 0;
            buckets
                .entry(masked.into_boxed_slice())
                .or_default()
                .push((t_val, amp));
        }
        let mut out: FxHashMap<Key, Complex64> = FxHashMap::default();
        for (masked, cols) in buckets {
            let u = u_of(&masked);
            assert_eq!(
                (u.rows(), u.cols()),
                (d, d),
                "conditioned unitary has wrong shape for register {target}"
            );
            // out[r] = Σ_{(k, amp)} U[r,k] · amp, touching only nonzero inputs.
            let mut out_col = vec![Complex64::ZERO; d];
            for (k, amp) in &cols {
                let k = *k as usize;
                for (r, slot) in out_col.iter_mut().enumerate() {
                    let m = u[(r, k)];
                    if m.norm_sqr() != 0.0 {
                        *slot += m * *amp;
                    }
                }
            }
            for (r, amp) in out_col.into_iter().enumerate() {
                if amp.norm_sqr() > PRUNE_EPS_SQR {
                    let mut key = masked.to_vec();
                    key[target] = r as u64;
                    Self::accumulate(&mut out, key.into_boxed_slice(), amp);
                }
            }
        }
        self.amps = out;
        debug_check_norm(self, "apply_conditioned_unitary");
    }

    fn apply_phase(&mut self, f: impl Fn(&[u64]) -> Complex64 + Sync) {
        for (key, amp) in self.amps.iter_mut() {
            let ph = f(key);
            debug_assert!(
                (ph.abs() - 1.0).abs() < 1e-9,
                "phase factor must be unit modulus, got {ph}"
            );
            *amp *= ph;
        }
        debug_check_norm(self, "apply_phase");
    }

    fn apply_rank_one_phase(&mut self, anchor: &StateTable, phi: f64) {
        assert_eq!(
            anchor.layout(),
            &self.layout,
            "anchor layout mismatch in rank-one phase"
        );
        debug_assert!(
            (anchor.norm() - 1.0).abs() < 1e-9,
            "rank-one anchor must be normalized"
        );
        let mut overlap = Complex64::ZERO;
        for (b, a) in anchor.iter() {
            if let Some(v) = self.amps.get(b) {
                overlap += a.conj() * *v;
            }
        }
        let coef = (Complex64::cis(phi) - Complex64::ONE) * overlap;
        if coef.norm_sqr() == 0.0 {
            return;
        }
        for (b, a) in anchor.iter() {
            Self::accumulate(&mut self.amps, b.into(), coef * a);
        }
        self.prune();
        debug_check_norm(self, "apply_rank_one_phase");
    }

    fn scale(&mut self, k: Complex64) {
        for amp in self.amps.values_mut() {
            *amp *= k;
        }
    }

    fn norm(&self) -> f64 {
        self.amps.values().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    fn inner(&self, other: &Self) -> Complex64 {
        assert_eq!(self.layout, other.layout, "inner across layouts");
        let (small, big, conj_small) = if self.amps.len() <= other.amps.len() {
            (&self.amps, &other.amps, true)
        } else {
            (&other.amps, &self.amps, false)
        };
        let mut acc = Complex64::ZERO;
        for (k, a) in small {
            if let Some(b) = big.get(k) {
                // ⟨self|other⟩ = Σ conj(self)·other regardless of which map
                // we iterate.
                acc += if conj_small {
                    a.conj() * *b
                } else {
                    b.conj() * *a
                };
            }
        }
        acc
    }

    fn filter_amplitudes(&mut self, keep: impl Fn(&[u64]) -> bool + Sync) -> f64 {
        let mut survived = 0.0;
        self.amps.retain(|key, amp| {
            if keep(key) {
                survived += amp.norm_sqr();
                true
            } else {
                false
            }
        });
        survived
    }

    fn to_table(&self) -> StateTable {
        StateTable::new(
            self.layout.clone(),
            self.amps.iter().map(|(k, a)| (k.clone(), *a)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use dqs_math::approx::{approx_eq, approx_eq_c};

    fn small_layout() -> Layout {
        Layout::builder()
            .register("i", 4)
            .register("s", 3)
            .register("b", 2)
            .build()
    }

    #[test]
    fn basis_state_and_lookup() {
        let s = SparseState::from_basis(small_layout(), &[3, 2, 1]);
        assert_eq!(s.support_len(), 1);
        assert!(approx_eq_c(s.amplitude(&[3, 2, 1]), Complex64::ONE));
        assert!(approx_eq(s.norm(), 1.0));
    }

    #[test]
    fn permutation_is_norm_preserving() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_permutation(|b| b[1] = (b[1] + b[0].min(2)) % 3);
        assert!(approx_eq(s.norm(), 1.0));
        assert_eq!(s.support_len(), 4);
        assert!(approx_eq(s.amplitude(&[2, 2, 0]).abs(), 0.5));
    }

    #[test]
    fn conditioned_unitary_per_bucket() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        // mark count = element (mod 3), then rotate flag by count-dependent angle
        s.apply_permutation(|b| b[1] = b[0] % 3);
        s.apply_conditioned_unitary(2, |b| {
            let c = (b[1] as f64 / 2.0).min(1.0);
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        });
        assert!(approx_eq(s.norm(), 1.0));
        // element 0 → count 0 → flag flipped to 1
        assert!(approx_eq(s.amplitude(&[0, 0, 1]).abs(), 0.5));
        assert!(approx_eq(s.amplitude(&[0, 0, 0]).abs(), 0.0));
        // element 2 → count 2 → flag stays 0
        assert!(approx_eq(s.amplitude(&[2, 2, 0]).abs(), 0.5));
    }

    #[test]
    fn phase_only_touches_support() {
        let mut s = SparseState::from_basis(small_layout(), &[1, 1, 1]);
        s.apply_phase(|b| Complex64::cis(b[0] as f64));
        assert!(approx_eq(s.amplitude(&[1, 1, 1]).arg(), 1.0));
    }

    #[test]
    fn rank_one_reflection_matches_algebra() {
        let layout = small_layout();
        let mut anchor = StateTable::new(
            layout.clone(),
            vec![
                (vec![0, 0, 0].into(), Complex64::from_real(1.0)),
                (vec![1, 0, 0].into(), Complex64::from_real(1.0)),
            ],
        );
        anchor.normalize();
        let mut v = SparseState::from_basis(layout, &[0, 0, 0]);
        v.apply_rank_one_phase(&anchor, std::f64::consts::PI);
        assert!(approx_eq_c(v.amplitude(&[1, 0, 0]), -Complex64::ONE));
        assert!(v.amplitude(&[0, 0, 0]).abs() < 1e-9);
    }

    #[test]
    fn rank_one_orthogonal_anchor_is_noop() {
        let layout = small_layout();
        let anchor = StateTable::basis_state(layout.clone(), &[2, 0, 0]);
        let mut v = SparseState::from_basis(layout, &[1, 0, 0]);
        v.apply_rank_one_phase(&anchor, 1.0);
        assert_eq!(v.support_len(), 1);
        assert!(approx_eq_c(v.amplitude(&[1, 0, 0]), Complex64::ONE));
    }

    #[test]
    fn pruning_removes_cancellations() {
        let layout = small_layout();
        let mut v = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        // H then Z then H on the flag register returns exactly |1⟩… no — X.
        // H·Z·H = X, so flag |0⟩ → |1⟩ and the |0⟩ component cancels.
        v.apply_register_unitary(2, &gates::hadamard());
        v.apply_register_unitary(2, &gates::pauli_z());
        v.apply_register_unitary(2, &gates::hadamard());
        assert_eq!(v.support_len(), 1, "cancelled branch must be pruned");
        assert!(approx_eq(v.amplitude(&[0, 0, 1]).abs(), 1.0));
    }

    #[test]
    fn inner_product_symmetric_conjugate() {
        let layout = small_layout();
        let mut a = SparseState::from_basis(layout.clone(), &[0, 0, 0]);
        a.apply_register_unitary(0, &gates::dft(4));
        let mut b = SparseState::from_basis(layout, &[0, 0, 0]);
        b.apply_phase(|_| Complex64::cis(0.7));
        let ab = a.inner(&b);
        let ba = b.inner(&a);
        assert!(approx_eq_c(ab, ba.conj()));
    }

    #[test]
    fn scale_changes_norm() {
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.scale(Complex64::from_real(2.0));
        assert!(approx_eq(s.norm(), 2.0));
    }

    #[test]
    fn sample_is_deterministic_given_seed() {
        use rand::SeedableRng;
        let mut s = SparseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
