//! Radix-partitioned merge for the packed sparse backend.
//!
//! The structure-of-arrays sparse representation keeps `(keys, re, im)` as
//! three parallel arrays sorted by key. After a permutation pass (or the
//! bucket-major remap of a conditioned unitary) the triples are out of
//! order and must be restored to sorted key order. Instead of one global
//! `par_sort_unstable_by_key` over the whole support, [`sort_soa`]:
//!
//! 1. picks a power-of-two partition count and a shift so the **high bits**
//!    of `key - min` index a partition (the partition id is monotone in the
//!    key, so sorted partitions concatenate into a globally sorted array);
//! 2. histograms the keys and scatters the triples into their partitions
//!    (two cheap `O(n)` passes);
//! 3. sorts every partition **independently in parallel** — this is where
//!    the `O(n log n)` work lives — and concatenates by construction.
//!
//! ## Determinism
//!
//! The partition plan (`min`, shift, partition count) is a pure function of
//! the key multiset, the scatter preserves input order within a partition,
//! and `sort_unstable` is a deterministic algorithm, so the result is
//! bit-identical regardless of `RAYON_NUM_THREADS`. For the simulator's
//! callers keys are unique, which makes the sorted order fully determined
//! anyway.
//!
//! Supports below [`RADIX_MIN_LEN`] skip the partitioning and sort the
//! staging buffer directly — the histogram/scatter overhead only pays for
//! itself once partitions are big enough to keep several workers busy.

use rayon::prelude::*;

/// Support size below which a plain sort of the staging buffer wins over
/// partitioning. Low enough that the `--smoke` bench sizes (2^10 support)
/// still exercise the partitioned path in CI.
pub(crate) const RADIX_MIN_LEN: usize = 768;

/// Target number of triples per partition.
const TARGET_PARTITION_LEN: usize = 2048;

/// Upper bound on the partition count (bounds `counts` and per-call setup).
const MAX_PARTITIONS: usize = 256;

/// Elements per rayon task in the stage/unzip passes.
const CHUNK: usize = 4096;

/// Reusable scratch for [`sort_soa`]: the AoS staging buffer the triples
/// are scattered into, and the partition histogram. Contents are
/// meaningless between calls — the allocations are what we keep (they live
/// in the sparse state's arena and persist across amplification rounds).
#[derive(Default)]
pub(crate) struct RadixScratch {
    stage: Vec<(u128, f64, f64)>,
    counts: Vec<usize>,
}

/// Sorts the parallel arrays `(keys, re, im)` by `keys`, in place.
///
/// # Panics
///
/// Panics (debug) when the slice lengths disagree.
pub(crate) fn sort_soa(
    keys: &mut [u128],
    re: &mut [f64],
    im: &mut [f64],
    scratch: &mut RadixScratch,
) {
    let n = keys.len();
    debug_assert_eq!(n, re.len(), "keys/re length mismatch");
    debug_assert_eq!(n, im.len(), "keys/im length mismatch");
    if n <= 1 || keys.windows(2).all(|w| w[0] <= w[1]) {
        return;
    }

    // `resize` only writes elements beyond the current length, so across
    // repeated calls (amplification rounds) this is free once warm.
    if scratch.stage.len() < n {
        scratch.stage.resize(n, (0, 0.0, 0.0));
    }
    let stage = &mut scratch.stage[..n];

    if n < RADIX_MIN_LEN {
        for (slot, ((&k, &r), &i)) in stage.iter_mut().zip(keys.iter().zip(re.iter()).zip(&*im)) {
            *slot = (k, r, i);
        }
        stage.sort_unstable_by_key(|e| e.0);
        unzip(stage, keys, re, im);
        return;
    }

    // Partition plan: monotone in the key so that concatenating sorted
    // partitions yields a globally sorted array. `n ≥ RADIX_MIN_LEN ≥ 2`
    // here, so the key range is well defined.
    let (min, max) = keys
        .iter()
        .fold((u128::MAX, 0u128), |(lo, hi), &k| (lo.min(k), hi.max(k)));
    let spread = max - min;
    let parts = n
        .div_ceil(TARGET_PARTITION_LEN)
        .next_power_of_two()
        .clamp(2, MAX_PARTITIONS);
    let mut shift = 0u32;
    while (spread >> shift) >= parts as u128 {
        shift += 1;
    }
    let part_of = |k: u128| ((k - min) >> shift) as usize;

    // Histogram → exclusive prefix sum → per-partition write cursors.
    scratch.counts.clear();
    scratch.counts.resize(parts + 1, 0);
    for &k in keys.iter() {
        scratch.counts[part_of(k) + 1] += 1;
    }
    for p in 0..parts {
        scratch.counts[p + 1] += scratch.counts[p];
    }

    // Scatter the triples into their partitions (input order preserved
    // within each partition).
    {
        let cursors = &mut scratch.counts[..parts];
        for j in 0..n {
            let p = part_of(keys[j]);
            let dst = cursors[p];
            cursors[p] += 1;
            stage[dst] = (keys[j], re[j], im[j]);
        }
        // The cursor pass turned `counts[p]` into the *end* of partition
        // `p`, i.e. exactly the exclusive prefix shifted by one — so
        // `counts` now holds partition ends and `counts[parts] == n` from
        // the prefix pass still closes the last one.
    }

    // Sort every partition independently — the parallel part.
    let mut segments: Vec<&mut [(u128, f64, f64)]> = Vec::with_capacity(parts);
    let mut rest = stage;
    let mut prev = 0;
    for p in 0..parts {
        let end = scratch.counts[p];
        let (seg, tail) = rest.split_at_mut(end - prev);
        segments.push(seg);
        rest = tail;
        prev = end;
    }
    segments
        .into_par_iter()
        .for_each(|seg| seg.sort_unstable_by_key(|e| e.0));

    unzip(&scratch.stage[..n], keys, re, im);
}

/// Splits the sorted AoS staging buffer back into the three output arrays.
fn unzip(stage: &[(u128, f64, f64)], keys: &mut [u128], re: &mut [f64], im: &mut [f64]) {
    keys.par_chunks_mut(CHUNK)
        .zip(re.par_chunks_mut(CHUNK))
        .zip(im.par_chunks_mut(CHUNK))
        .zip(stage.par_chunks(CHUNK))
        .for_each(|(((ko, ro), io), src)| {
            for (j, &(k, r, i)) in src.iter().enumerate() {
                ko[j] = k;
                ro[j] = r;
                io[j] = i;
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic key mixer (splitmix64-style) — no RNG dependencies.
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn scrambled(n: usize, key_spread: u128) -> (Vec<u128>, Vec<f64>, Vec<f64>) {
        let keys: Vec<u128> = (0..n)
            .map(|j| (mix(j as u64) as u128) % key_spread)
            .collect();
        let re: Vec<f64> = (0..n).map(|j| j as f64 * 0.5).collect();
        let im: Vec<f64> = (0..n).map(|j| -(j as f64) * 0.25).collect();
        (keys, re, im)
    }

    fn check_against_reference(n: usize, key_spread: u128) {
        let (mut keys, mut re, mut im) = scrambled(n, key_spread);
        // Full-tuple ordering (payloads as bits) makes the reference unique
        // even with duplicate keys: the simulator only ever has unique keys,
        // so [`sort_soa`] does not promise stability among equals.
        let tuples = |ks: &[u128], rs: &[f64], is: &[f64]| -> Vec<(u128, u64, u64)> {
            let mut v: Vec<(u128, u64, u64)> = ks
                .iter()
                .zip(rs)
                .zip(is)
                .map(|((&k, &r), &i)| (k, r.to_bits(), i.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        let reference = tuples(&keys, &re, &im);

        let mut scratch = RadixScratch::default();
        sort_soa(&mut keys, &mut re, &mut im, &mut scratch);
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "keys not sorted (n={n})"
        );
        assert_eq!(
            tuples(&keys, &re, &im),
            reference,
            "triple multiset changed (n={n})"
        );
    }

    #[test]
    fn small_path_matches_reference_sort() {
        for n in [0, 1, 2, 5, RADIX_MIN_LEN - 1] {
            check_against_reference(n, u128::MAX - 1);
        }
    }

    #[test]
    fn partitioned_path_matches_reference_sort() {
        for n in [RADIX_MIN_LEN, 1024, 5000, 3 * TARGET_PARTITION_LEN + 17] {
            check_against_reference(n, u128::MAX - 1);
        }
    }

    #[test]
    fn narrow_key_ranges_are_handled() {
        // Spread smaller than the partition count, including all-equal keys.
        check_against_reference(4096, 3);
        check_against_reference(4096, 1);
    }

    #[test]
    fn wide_u128_keys_beyond_64_bits() {
        let n = 4096;
        let (mut keys, mut re, mut im) = scrambled(n, u128::MAX);
        for k in keys.iter_mut() {
            *k = (*k << 64) | (mix(*k as u64) as u128);
        }
        let mut reference: Vec<u128> = keys.clone();
        reference.sort_unstable();
        let mut scratch = RadixScratch::default();
        sort_soa(&mut keys, &mut re, &mut im, &mut scratch);
        assert_eq!(keys, reference);
    }

    #[test]
    fn already_sorted_input_is_untouched() {
        let n = 10_000;
        let mut keys: Vec<u128> = (0..n as u128).map(|k| k * 3).collect();
        let mut re: Vec<f64> = (0..n).map(|j| j as f64).collect();
        let mut im = vec![0.0; n];
        let before = keys.clone();
        let mut scratch = RadixScratch::default();
        sort_soa(&mut keys, &mut re, &mut im, &mut scratch);
        assert_eq!(keys, before);
        assert_eq!(scratch.stage.len(), 0, "sorted input must not stage");
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let mut scratch = RadixScratch::default();
        let (mut keys, mut re, mut im) = scrambled(8192, u128::MAX - 1);
        sort_soa(&mut keys, &mut re, &mut im, &mut scratch);
        let cap = scratch.stage.capacity();
        let (mut keys, mut re, mut im) = scrambled(8192, 977);
        sort_soa(&mut keys, &mut re, &mut im, &mut scratch);
        assert_eq!(scratch.stage.capacity(), cap, "arena must be reused");
    }
}
