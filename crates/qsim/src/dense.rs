//! Dense state-vector backend.
//!
//! Stores all `Π dim_r` amplitudes in one contiguous vector (mixed-radix
//! indexed by [`Layout::encode`]). This backend is the ground truth used to
//! cross-validate the sparse backend at small sizes, and is independently
//! useful for dense circuits.
//!
//! ## Parallelism
//!
//! Every `QuantumState` operation is rayon-parallel over the flat amplitude
//! vector:
//!
//! - `apply_conditioned_unitary` splits into `dim(target) · stride(target)`
//!   sized blocks (`par_chunks_mut`), one task per block.
//! - `apply_permutation` computes the image index of every amplitude in
//!   parallel (per-thread scratch basis via `map_init`), then scatters with
//!   a serial pass — the scatter is kept serial so the backend stays free of
//!   `unsafe` (the crate is `#![forbid(unsafe_code)]`) and so the
//!   injectivity `debug_assert!` sees a deterministic write order.
//! - `apply_phase`, `filter_amplitudes`, and `scale` are element-parallel
//!   (`par_iter_mut`).
//! - `support_len`, `norm`, and `inner` are parallel reductions.
//! - `to_table` collects surviving entries per `PAR_CHUNK`-sized chunk in
//!   parallel and concatenates chunks in index order, so the resulting
//!   [`StateTable`] order is identical to a serial scan.
//!
//! `apply_rank_one_phase` stays serial: it touches only the anchor's support
//! (`O(support)` ≪ `Π dim_r`), so a parallel scan over the full vector would
//! be slower, not faster.
//!
//! Rayon splits work adaptively, so states far below ~10⁴ amplitudes mostly
//! execute on the calling thread; the parallel speedup materializes at the
//! 2²⁰-amplitude scale used by `sim_throughput`. Note `norm`/`inner` use
//! rayon `reduce`, whose floating-point combination order depends on the
//! work split — unlike the sparse backend, dense reductions are only
//! deterministic up to f64 rounding. Set `RAYON_NUM_THREADS=1` for exactly
//! reproducible dense reductions.

use crate::register::Layout;
use crate::state::{debug_check_norm, QuantumState};
use crate::table::StateTable;
use dqs_math::{Complex64, MatC};
use rayon::prelude::*;

/// Threshold below which a dense amplitude is considered zero when counting
/// support or exporting to a [`StateTable`].
const SUPPORT_EPS_SQR: f64 = 1e-24;

/// Amplitudes per rayon task in the chunked passes (`to_table`); also the
/// granularity floor that keeps per-task scratch allocations amortized.
const PAR_CHUNK: usize = 4096;

/// Reusable workspace for the permutation pass. As with the sparse
/// backend's `Arena`, the contents are meaningless between operations —
/// only the allocations are kept, so an amplification schedule stops
/// allocating once the buffers reach the joint dimension. Skipped by
/// `Clone`: it is transient workspace, not state.
#[derive(Default)]
struct DenseScratch {
    /// Image index of every live amplitude (phase 1 of the permutation).
    targets: Vec<usize>,
    /// Scatter destination (phase 2); swapped wholesale into `amps`.
    out: Vec<Complex64>,
}

/// A dense pure state: every amplitude stored.
pub struct DenseState {
    layout: Layout,
    amps: Vec<Complex64>,
    scratch: DenseScratch,
}

impl Clone for DenseState {
    fn clone(&self) -> Self {
        // The scratch is transient workspace — don't copy it.
        Self {
            layout: self.layout.clone(),
            amps: self.amps.clone(),
            scratch: DenseScratch::default(),
        }
    }
}

impl DenseState {
    /// Creates the zero vector (all amplitudes 0) — mostly useful in tests;
    /// algorithms start from [`QuantumState::from_basis`].
    pub fn zero_vector(layout: Layout) -> Self {
        let dim = layout
            .dense_dim()
            // lint: allow(panic): documented constructor contract — callers
            // pick the sparse backend for layouts past the dense limit.
            .expect("layout too large for dense backend");
        Self {
            layout,
            amps: vec![Complex64::ZERO; dim],
            scratch: DenseScratch::default(),
        }
    }

    /// Read-only view of the flat amplitude vector.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Builds a dense state from a full amplitude vector (normalizing is the
    /// caller's responsibility).
    pub fn from_amplitudes(layout: Layout, amps: Vec<Complex64>) -> Self {
        assert_eq!(
            Some(amps.len()),
            layout.dense_dim(),
            "amplitude vector length must equal the joint dimension"
        );
        Self {
            layout,
            amps,
            scratch: DenseScratch::default(),
        }
    }
}

impl QuantumState for DenseState {
    fn from_basis(layout: Layout, basis: &[u64]) -> Self {
        layout.assert_basis(basis);
        let mut s = Self::zero_vector(layout);
        let idx = s.layout.encode(basis);
        s.amps[idx] = Complex64::ONE;
        s
    }

    fn from_table(table: &StateTable) -> Self {
        let mut s = Self::zero_vector(table.layout().clone());
        for (b, a) in table.iter() {
            let idx = s.layout.encode(b);
            s.amps[idx] = a;
        }
        debug_check_norm(&s, "from_table");
        s
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }

    fn amplitude(&self, basis: &[u64]) -> Complex64 {
        self.layout.assert_basis(basis);
        self.amps[self.layout.encode(basis)]
    }

    fn support_len(&self) -> usize {
        self.amps
            .par_iter()
            .filter(|a| a.norm_sqr() > SUPPORT_EPS_SQR)
            .count()
    }

    fn apply_permutation(&mut self, f: impl Fn(&mut [u64]) + Sync) {
        let layout = &self.layout;
        let n_regs = layout.num_registers();
        // Sentinel for amplitudes outside the support — the closure is never
        // invoked for them (matching the serial implementation's skip).
        const SKIP: usize = usize::MAX;
        // Phase 1 (parallel): image index of every live amplitude, collected
        // into the reused scratch buffer so a gate sequence stops allocating
        // after the first pass.
        let mut targets = std::mem::take(&mut self.scratch.targets);
        self.amps
            .par_iter()
            .enumerate()
            .map_init(
                || vec![0u64; n_regs],
                |basis, (idx, amp)| {
                    if amp.norm_sqr() == 0.0 {
                        return SKIP;
                    }
                    layout.decode(idx, basis);
                    f(basis);
                    layout.assert_basis(basis);
                    layout.encode(basis)
                },
            )
            .collect_into_vec(&mut targets);
        // Phase 2 (serial scatter): each target is written at most once for
        // a bijection, so this is a straight copy; kept serial to avoid
        // `unsafe` and to give the injectivity check a deterministic order.
        // The destination is the scratch double buffer, swapped in at the
        // end; the old amplitude vector becomes the next call's buffer.
        let out = &mut self.scratch.out;
        out.clear();
        out.resize(self.amps.len(), Complex64::ZERO);
        for (idx, &j) in targets.iter().enumerate() {
            if j == SKIP {
                continue;
            }
            debug_assert!(
                out[j].norm_sqr() == 0.0,
                "permutation closure is not injective (collision at index {j})"
            );
            out[j] = self.amps[idx];
        }
        std::mem::swap(&mut self.amps, &mut self.scratch.out);
        self.scratch.targets = targets;
        debug_check_norm(self, "apply_permutation");
    }

    fn apply_conditioned_unitary(&mut self, target: usize, u_of: impl Fn(&[u64]) -> MatC + Sync) {
        let layout = self.layout.clone();
        let d = layout.dim(target) as usize;
        let stride = layout.stride(target);
        let block = stride * d;
        let n_regs = layout.num_registers();
        self.amps
            .par_chunks_mut(block)
            .enumerate()
            .for_each(|(hi, chunk)| {
                let mut basis = vec![0u64; n_regs];
                let mut col = vec![Complex64::ZERO; d];
                for lo in 0..stride {
                    for (k, slot) in col.iter_mut().enumerate() {
                        *slot = chunk[k * stride + lo];
                    }
                    if col.iter().all(|z| z.norm_sqr() == 0.0) {
                        continue;
                    }
                    layout.decode(hi * block + lo, &mut basis);
                    debug_assert_eq!(basis[target], 0, "representative index has target 0");
                    let u = u_of(&basis);
                    assert_eq!(
                        (u.rows(), u.cols()),
                        (d, d),
                        "conditioned unitary has wrong shape for register {target}"
                    );
                    debug_assert!(u.is_unitary_eps(1e-8), "conditioned matrix is not unitary");
                    let out = u.mul_vec(&col);
                    for (k, val) in out.into_iter().enumerate() {
                        chunk[k * stride + lo] = val;
                    }
                }
            });
        debug_check_norm(self, "apply_conditioned_unitary");
    }

    fn apply_phase(&mut self, f: impl Fn(&[u64]) -> Complex64 + Sync) {
        let layout = self.layout.clone();
        let n_regs = layout.num_registers();
        self.amps.par_iter_mut().enumerate().for_each_init(
            || vec![0u64; n_regs],
            |basis, (idx, amp)| {
                if amp.norm_sqr() == 0.0 {
                    return;
                }
                layout.decode(idx, basis);
                let ph = f(basis);
                debug_assert!(
                    (ph.abs() - 1.0).abs() < 1e-9,
                    "phase factor must be unit modulus, got {ph}"
                );
                *amp *= ph;
            },
        );
        debug_check_norm(self, "apply_phase");
    }

    fn apply_rank_one_phase(&mut self, anchor: &StateTable, phi: f64) {
        assert_eq!(
            anchor.layout(),
            &self.layout,
            "anchor layout mismatch in rank-one phase"
        );
        debug_assert!(
            (anchor.norm() - 1.0).abs() < 1e-9,
            "rank-one anchor must be normalized"
        );
        // ⟨a|v⟩
        let mut overlap = Complex64::ZERO;
        for (b, a) in anchor.iter() {
            overlap += a.conj() * self.amps[self.layout.encode(b)];
        }
        let coef = (Complex64::cis(phi) - Complex64::ONE) * overlap;
        for (b, a) in anchor.iter() {
            let idx = self.layout.encode(b);
            self.amps[idx] += coef * a;
        }
        debug_check_norm(self, "apply_rank_one_phase");
    }

    fn scale(&mut self, k: Complex64) {
        self.amps.par_iter_mut().for_each(|a| *a *= k);
    }

    fn norm(&self) -> f64 {
        self.amps
            .par_iter()
            .map(|a| a.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    fn inner(&self, other: &Self) -> Complex64 {
        assert_eq!(self.layout, other.layout, "inner across layouts");
        self.amps
            .par_iter()
            .zip(other.amps.par_iter())
            .map(|(a, b)| a.conj() * *b)
            .reduce(|| Complex64::ZERO, |x, y| x + y)
    }

    fn filter_amplitudes(&mut self, keep: impl Fn(&[u64]) -> bool + Sync) -> f64 {
        let layout = self.layout.clone();
        let n_regs = layout.num_registers();
        let survived: f64 = self
            .amps
            .par_iter_mut()
            .enumerate()
            .map_init(
                || vec![0u64; n_regs],
                |basis, (idx, amp)| {
                    if amp.norm_sqr() == 0.0 {
                        return 0.0;
                    }
                    layout.decode(idx, basis);
                    if keep(basis) {
                        amp.norm_sqr()
                    } else {
                        *amp = Complex64::ZERO;
                        0.0
                    }
                },
            )
            .sum();
        survived
    }

    fn to_table(&self) -> StateTable {
        let layout = &self.layout;
        let n_regs = layout.num_registers();
        // Per-chunk collects concatenated in index order: identical entry
        // order to a serial scan (already sorted, since index order is
        // basis-tuple order).
        let entries: Vec<(Box<[u64]>, Complex64)> = self
            .amps
            .par_chunks(PAR_CHUNK)
            .enumerate()
            .map(|(c, chunk)| {
                let mut basis = vec![0u64; n_regs];
                let mut local = Vec::new();
                for (i, amp) in chunk.iter().enumerate() {
                    if amp.norm_sqr() > SUPPORT_EPS_SQR {
                        layout.decode(c * PAR_CHUNK + i, &mut basis);
                        local.push((basis.clone().into_boxed_slice(), *amp));
                    }
                }
                local
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();
        StateTable::new(self.layout.clone(), entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use dqs_math::approx::{approx_eq, approx_eq_c};

    fn small_layout() -> Layout {
        Layout::builder()
            .register("i", 4)
            .register("s", 3)
            .register("b", 2)
            .build()
    }

    #[test]
    fn basis_state_construction() {
        let s = DenseState::from_basis(small_layout(), &[2, 1, 0]);
        assert!(approx_eq(s.norm(), 1.0));
        assert_eq!(s.support_len(), 1);
        assert!(approx_eq_c(s.amplitude(&[2, 1, 0]), Complex64::ONE));
        assert!(approx_eq_c(s.amplitude(&[0, 0, 0]), Complex64::ZERO));
    }

    #[test]
    fn from_table_round_trips_and_matches_sparse() {
        let mut s = DenseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        s.apply_permutation(|b| b[1] = b[0] % 3);
        let loaded = DenseState::from_table(&s.to_table());
        assert_eq!(loaded.to_table().distance_sqr(&s.to_table()), 0.0);
        // Cross-backend: the same table loads identically on both paths.
        let sparse = crate::SparseState::from_table(&s.to_table());
        assert_eq!(sparse.to_table().distance_sqr(&loaded.to_table()), 0.0);
    }

    #[test]
    fn permutation_moves_amplitude() {
        let mut s = DenseState::from_basis(small_layout(), &[1, 0, 0]);
        // add 2 mod 3 into the count register, controlled on element value
        s.apply_permutation(|b| {
            if b[0] == 1 {
                b[1] = (b[1] + 2) % 3;
            }
        });
        assert!(approx_eq_c(s.amplitude(&[1, 2, 0]), Complex64::ONE));
    }

    #[test]
    fn hadamard_on_flag_register() {
        let mut s = DenseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(2, &gates::hadamard());
        let r = 1.0 / 2.0f64.sqrt();
        assert!(approx_eq(s.amplitude(&[0, 0, 0]).re, r));
        assert!(approx_eq(s.amplitude(&[0, 0, 1]).re, r));
        assert!(approx_eq(s.norm(), 1.0));
    }

    #[test]
    fn conditioned_unitary_reads_other_registers() {
        // Rotate the flag by an angle depending on the count register value.
        let mut s = DenseState::from_basis(small_layout(), &[0, 2, 0]);
        s.apply_conditioned_unitary(2, |b| {
            let c = b[1] as f64 / 2.0; // count ∈ {0,1,2} → c ∈ {0,.5,1}
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        });
        // count = 2 ⇒ c = 1 ⇒ flag stays |0⟩ with amplitude 1.
        assert!(approx_eq_c(s.amplitude(&[0, 2, 0]), Complex64::ONE));
        let mut s2 = DenseState::from_basis(small_layout(), &[0, 0, 0]);
        s2.apply_conditioned_unitary(2, |b| {
            let c = b[1] as f64 / 2.0;
            gates::ry_by_cos_sin(c, (1.0 - c * c).sqrt())
        });
        // count = 0 ⇒ c = 0 ⇒ flag flips to |1⟩.
        assert!(approx_eq(s2.amplitude(&[0, 0, 1]).abs(), 1.0));
    }

    #[test]
    fn phase_marks_flagged_states() {
        let mut s = DenseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(2, &gates::hadamard());
        s.apply_phase(|b| {
            if b[2] == 0 {
                -Complex64::ONE
            } else {
                Complex64::ONE
            }
        });
        assert!(approx_eq(s.amplitude(&[0, 0, 0]).re, -1.0 / 2.0f64.sqrt()));
        assert!(approx_eq(s.amplitude(&[0, 0, 1]).re, 1.0 / 2.0f64.sqrt()));
    }

    #[test]
    fn rank_one_pi_is_reflection() {
        let layout = small_layout();
        let mut anchor = StateTable::new(
            layout.clone(),
            vec![
                (vec![0, 0, 0].into(), Complex64::from_real(1.0)),
                (vec![1, 0, 0].into(), Complex64::from_real(1.0)),
            ],
        );
        anchor.normalize();
        // |v⟩ = |0,0,0⟩: reflection I − 2|a⟩⟨a| sends it to |0⟩ − (|0⟩+|1⟩) = −|1⟩... compute:
        let mut v = DenseState::from_basis(layout, &[0, 0, 0]);
        v.apply_rank_one_phase(&anchor, std::f64::consts::PI);
        // (I − 2|a⟩⟨a|)|000⟩ = |000⟩ − 2·(1/√2)·|a⟩ = |000⟩ − (|000⟩+|100⟩) = −|100⟩
        assert!(approx_eq_c(v.amplitude(&[1, 0, 0]), -Complex64::ONE));
        assert!(approx_eq_c(v.amplitude(&[0, 0, 0]), Complex64::ZERO));
        assert!(approx_eq(v.norm(), 1.0));
    }

    #[test]
    fn rank_one_zero_phase_is_identity() {
        let layout = small_layout();
        let anchor = StateTable::basis_state(layout.clone(), &[3, 2, 1]);
        let mut v = DenseState::from_basis(layout, &[3, 2, 1]);
        let before = v.to_table();
        v.apply_rank_one_phase(&anchor, 0.0);
        assert!(approx_eq(v.to_table().distance_sqr(&before), 0.0));
    }

    #[test]
    fn inner_product_and_scale() {
        let layout = small_layout();
        let a = DenseState::from_basis(layout.clone(), &[0, 0, 0]);
        let mut b = DenseState::from_basis(layout, &[0, 0, 0]);
        b.scale(Complex64::cis(0.5));
        let ip = a.inner(&b);
        assert!(approx_eq(ip.arg(), 0.5));
        assert!(approx_eq(ip.abs(), 1.0));
    }

    #[test]
    fn to_table_round_trip() {
        let mut s = DenseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        let t = s.to_table();
        assert_eq!(t.len(), 4);
        for (b, amp) in t.iter() {
            assert!(approx_eq_c(amp, s.amplitude(b)));
        }
    }

    #[test]
    fn dft_prepares_uniform_superposition() {
        let mut s = DenseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        for i in 0..4u64 {
            assert!(approx_eq(s.amplitude(&[i, 0, 0]).re, 0.5));
        }
    }

    #[test]
    #[cfg(debug_assertions)] // relies on a debug_assert!; compiled out in release
    #[should_panic(expected = "not injective")]
    fn non_injective_permutation_caught_in_debug() {
        let mut s = DenseState::from_basis(small_layout(), &[0, 0, 0]);
        s.apply_register_unitary(2, &gates::hadamard());
        s.apply_permutation(|b| b[2] = 0); // collapses both flag values
    }
}
