//! A data-driven circuit IR: [`Program`] is a list of [`Instruction`]s that
//! can be applied to any backend, inverted exactly, and inspected.
//!
//! The IR exists so the paper's algorithms can be *compiled* rather than
//! only executed: `dqs-core::circuit` lowers Theorem 4.3's sampler to a
//! `Program`, which makes three things checkable structurally instead of
//! behaviorally:
//!
//! 1. **Invertibility** — `p.inverse()` is exact (each instruction knows
//!    its adjoint), so `p⁻¹ ∘ p = I` is a test, mirroring the paper's
//!    heavy use of `O†`/`D†`.
//! 2. **Obliviousness** — two inputs with the same public parameters
//!    compile to programs with identical *shapes* ([`Program::shape`]),
//!    differing only in oracle lookup tables — the formal content of the
//!    oblivious model.
//! 3. **Query accounting** — oracle instructions carry their machine tag;
//!    [`Program::oracle_queries`] is the cost before running anything.

use crate::register::Layout;
use crate::state::QuantumState;
use crate::table::StateTable;
use dqs_math::{Complex64, MatC};

/// One reversible operation.
#[derive(Clone)]
pub enum Instruction {
    /// Apply a fixed unitary matrix to one register.
    RegisterUnitary {
        /// Target register.
        target: usize,
        /// The `dim × dim` unitary.
        matrix: MatC,
    },
    /// Apply to `target` a unitary selected by the value of register `by`:
    /// `matrices[value]`. (The distributing rotation `𝒰`, keyed by the
    /// count register.)
    UnitaryByRegister {
        /// Target register.
        target: usize,
        /// Conditioning register (must differ from `target`).
        by: usize,
        /// One matrix per conditioning value.
        matrices: Vec<MatC>,
    },
    /// Counting-oracle step: `count += sign · table[elem] (mod modulus)`.
    /// `machine` tags the query for accounting.
    OracleAdd {
        /// Machine charged for the query.
        machine: usize,
        /// Element register.
        elem: usize,
        /// Count register.
        count: usize,
        /// Lookup table `elem → multiplicity` (length = elem dimension).
        table: std::sync::Arc<Vec<u64>>,
        /// The modulus `ν + 1`.
        modulus: u64,
        /// `false` = add (`O_j`), `true` = subtract (`O_j†`).
        inverse: bool,
    },
    /// Phase `e^{iφ}` on every basis state whose `reg` value is zero
    /// (the `S_χ(φ)` marker).
    PhaseIfZero {
        /// Flag register.
        reg: usize,
        /// Phase angle.
        phi: f64,
    },
    /// Rank-one phase `I + (e^{iφ}−1)|a⟩⟨a|` (the `S_π(φ)` reflection).
    RankOnePhase {
        /// Normalized anchor `|a⟩`.
        anchor: StateTable,
        /// Phase angle.
        phi: f64,
    },
    /// Multiply the global state by a unit scalar (e.g. the `−1` in `Q`).
    GlobalPhase {
        /// Phase angle (scalar is `e^{iφ}`).
        phi: f64,
    },
    /// Parallel-model broadcast (Lemma 4.4 step 1): copy the element value
    /// into every ancilla element register and toggle every ancilla flag.
    /// Self-describing inverse via `undo`.
    Broadcast {
        /// Source element register.
        src: usize,
        /// Ancilla element registers (must be clean when `undo = false`).
        dsts: Vec<usize>,
        /// Ancilla flag registers (toggled).
        flags: Vec<usize>,
        /// `false` = copy in, `true` = uncopy.
        undo: bool,
    },
    /// One composite parallel oracle round (Eq. 3): for every machine `j`
    /// with its flag raised, `count_j += sign·table_j[elem_j] (mod m)`.
    /// Counts as **one** round regardless of `n`.
    ParallelOracleRound {
        /// Per-machine element registers.
        elem: Vec<usize>,
        /// Per-machine count registers.
        count: Vec<usize>,
        /// Per-machine control flags.
        flag: Vec<usize>,
        /// Per-machine lookup tables.
        tables: Vec<std::sync::Arc<Vec<u64>>>,
        /// The modulus `ν + 1`.
        modulus: u64,
        /// `false` = `O`, `true` = `O†`.
        inverse: bool,
    },
    /// Fold the ancilla counts into the main count register
    /// (Lemma 4.4 step: `s ← s ± Σ_j s_j mod m`).
    FoldCounts {
        /// Ancilla count registers.
        srcs: Vec<usize>,
        /// Main count register.
        dst: usize,
        /// The modulus `ν + 1`.
        modulus: u64,
        /// `false` = add, `true` = subtract.
        subtract: bool,
    },
}

impl Instruction {
    /// Applies the instruction to a state.
    pub fn apply<S: QuantumState>(&self, state: &mut S) {
        match self {
            Instruction::RegisterUnitary { target, matrix } => {
                state.apply_register_unitary(*target, matrix);
            }
            Instruction::UnitaryByRegister {
                target,
                by,
                matrices,
            } => {
                assert_ne!(target, by, "self-conditioning is ill-defined");
                state.apply_conditioned_unitary(*target, |b| matrices[b[*by] as usize].clone());
            }
            Instruction::OracleAdd {
                elem,
                count,
                table,
                modulus,
                inverse,
                ..
            } => {
                let m = *modulus;
                state.apply_permutation(|b| {
                    let c = table[b[*elem] as usize] % m;
                    let add = if *inverse { m - c } else { c } % m;
                    b[*count] = (b[*count] + add) % m;
                });
            }
            Instruction::PhaseIfZero { reg, phi } => {
                let ph = Complex64::cis(*phi);
                state.apply_phase(|b| if b[*reg] == 0 { ph } else { Complex64::ONE });
            }
            Instruction::RankOnePhase { anchor, phi } => {
                state.apply_rank_one_phase(anchor, *phi);
            }
            Instruction::GlobalPhase { phi } => state.scale(Complex64::cis(*phi)),
            Instruction::Broadcast {
                src,
                dsts,
                flags,
                undo,
            } => {
                state.apply_permutation(|b| {
                    let i = b[*src];
                    for (&d, &f) in dsts.iter().zip(flags.iter()) {
                        if *undo {
                            debug_assert_eq!(b[d], i, "ancilla element out of sync");
                            b[d] = 0;
                        } else {
                            debug_assert_eq!(b[d], 0, "ancilla element must be clean");
                            b[d] = i;
                        }
                        b[f] ^= 1;
                    }
                });
            }
            Instruction::ParallelOracleRound {
                elem,
                count,
                flag,
                tables,
                modulus,
                inverse,
            } => {
                let m = *modulus;
                state.apply_permutation(|b| {
                    for j in 0..elem.len() {
                        if b[flag[j]] == 1 {
                            let c = tables[j][b[elem[j]] as usize] % m;
                            let add = if *inverse { m - c } else { c } % m;
                            b[count[j]] = (b[count[j]] + add) % m;
                        }
                    }
                });
            }
            Instruction::FoldCounts {
                srcs,
                dst,
                modulus,
                subtract,
            } => {
                let m = *modulus;
                state.apply_permutation(|b| {
                    let mut total = 0u64;
                    for &s in srcs {
                        total = (total + b[s]) % m;
                    }
                    let add = if *subtract { (m - total) % m } else { total };
                    b[*dst] = (b[*dst] + add) % m;
                });
            }
        }
    }

    /// The exact inverse instruction.
    pub fn inverse(&self) -> Instruction {
        match self {
            Instruction::RegisterUnitary { target, matrix } => Instruction::RegisterUnitary {
                target: *target,
                matrix: matrix.adjoint(),
            },
            Instruction::UnitaryByRegister {
                target,
                by,
                matrices,
            } => Instruction::UnitaryByRegister {
                target: *target,
                by: *by,
                matrices: matrices.iter().map(MatC::adjoint).collect(),
            },
            Instruction::OracleAdd {
                machine,
                elem,
                count,
                table,
                modulus,
                inverse,
            } => Instruction::OracleAdd {
                machine: *machine,
                elem: *elem,
                count: *count,
                table: table.clone(),
                modulus: *modulus,
                inverse: !inverse,
            },
            Instruction::PhaseIfZero { reg, phi } => Instruction::PhaseIfZero {
                reg: *reg,
                phi: -phi,
            },
            Instruction::RankOnePhase { anchor, phi } => Instruction::RankOnePhase {
                anchor: anchor.clone(),
                phi: -phi,
            },
            Instruction::GlobalPhase { phi } => Instruction::GlobalPhase { phi: -phi },
            Instruction::Broadcast {
                src,
                dsts,
                flags,
                undo,
            } => Instruction::Broadcast {
                src: *src,
                dsts: dsts.clone(),
                flags: flags.clone(),
                undo: !undo,
            },
            Instruction::ParallelOracleRound {
                elem,
                count,
                flag,
                tables,
                modulus,
                inverse,
            } => Instruction::ParallelOracleRound {
                elem: elem.clone(),
                count: count.clone(),
                flag: flag.clone(),
                tables: tables.clone(),
                modulus: *modulus,
                inverse: !inverse,
            },
            Instruction::FoldCounts {
                srcs,
                dst,
                modulus,
                subtract,
            } => Instruction::FoldCounts {
                srcs: srcs.clone(),
                dst: *dst,
                modulus: *modulus,
                subtract: !subtract,
            },
        }
    }

    /// A shape label: the instruction kind and its registers, but *not* its
    /// data (oracle tables, matrix entries). Two oblivious circuits over
    /// inputs with equal public parameters have equal shapes.
    pub fn shape(&self) -> String {
        match self {
            Instruction::RegisterUnitary { target, matrix } => {
                format!("U[{target}]({}x{})", matrix.rows(), matrix.cols())
            }
            Instruction::UnitaryByRegister {
                target,
                by,
                matrices,
            } => {
                format!("U[{target}|{by}]x{}", matrices.len())
            }
            Instruction::OracleAdd {
                machine,
                elem,
                count,
                inverse,
                ..
            } => format!(
                "O{}[m{machine}:{elem}->{count}]",
                if *inverse { "†" } else { "" }
            ),
            Instruction::PhaseIfZero { reg, phi } => format!("Sx[{reg}]({phi:.4})"),
            Instruction::RankOnePhase { phi, .. } => format!("Spi({phi:.4})"),
            Instruction::GlobalPhase { phi } => format!("G({phi:.4})"),
            Instruction::Broadcast {
                src, dsts, undo, ..
            } => format!("B{}[{src}->x{}]", if *undo { "†" } else { "" }, dsts.len()),
            Instruction::ParallelOracleRound { elem, inverse, .. } => {
                format!("PO{}[x{}]", if *inverse { "†" } else { "" }, elem.len())
            }
            Instruction::FoldCounts {
                srcs,
                dst,
                subtract,
                ..
            } => format!(
                "F{}[x{}->{dst}]",
                if *subtract { "-" } else { "+" },
                srcs.len()
            ),
        }
    }
}

/// An ordered list of instructions over a fixed layout.
#[derive(Clone)]
pub struct Program {
    layout: Layout,
    instructions: Vec<Instruction>,
}

impl Program {
    /// An empty program over a layout.
    pub fn new(layout: Layout) -> Self {
        Self {
            layout,
            instructions: Vec::new(),
        }
    }

    /// The layout this program runs over.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.instructions.push(instr);
        self
    }

    /// The instructions in order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Runs the program on a state.
    ///
    /// # Panics
    ///
    /// Panics if the state's layout differs from the program's.
    pub fn run<S: QuantumState>(&self, state: &mut S) {
        assert_eq!(state.layout(), &self.layout, "layout mismatch");
        for instr in &self.instructions {
            instr.apply(state);
        }
    }

    /// Runs from `|basis⟩` and returns the final state.
    pub fn run_from_basis<S: QuantumState>(&self, basis: &[u64]) -> S {
        let mut s = S::from_basis(self.layout.clone(), basis);
        self.run(&mut s);
        s
    }

    /// The exact inverse program (instructions inverted, order reversed).
    pub fn inverse(&self) -> Program {
        Program {
            layout: self.layout.clone(),
            instructions: self
                .instructions
                .iter()
                .rev()
                .map(Instruction::inverse)
                .collect(),
        }
    }

    /// Concatenates two programs over the same layout.
    pub fn then(mut self, other: &Program) -> Program {
        assert_eq!(self.layout, other.layout, "layout mismatch");
        self.instructions.extend(other.instructions.iter().cloned());
        self
    }

    /// Total oracle queries, per machine (index = machine).
    pub fn oracle_queries(&self, machines: usize) -> Vec<u64> {
        let mut out = vec![0u64; machines];
        for instr in &self.instructions {
            if let Instruction::OracleAdd { machine, .. } = instr {
                out[*machine] += 1;
            }
        }
        out
    }

    /// Total composite parallel-oracle rounds in the program.
    pub fn parallel_rounds(&self) -> u64 {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::ParallelOracleRound { .. }))
            .count() as u64
    }

    /// The shape string: one label per instruction, newline-separated.
    /// Equal shapes ⇔ structurally identical circuits (oblivious check).
    pub fn shape(&self) -> String {
        self.instructions
            .iter()
            .map(Instruction::shape)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Program[{} instructions over {:?}]",
            self.instructions.len(),
            self.layout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::sparse::SparseState;
    use std::sync::Arc;

    fn layout() -> Layout {
        Layout::builder()
            .register("elem", 4)
            .register("count", 3)
            .register("flag", 2)
            .build()
    }

    fn demo_program() -> Program {
        let mut p = Program::new(layout());
        p.push(Instruction::RegisterUnitary {
            target: 0,
            matrix: gates::dft(4),
        });
        p.push(Instruction::OracleAdd {
            machine: 0,
            elem: 0,
            count: 1,
            table: Arc::new(vec![0, 1, 2, 1]),
            modulus: 3,
            inverse: false,
        });
        p.push(Instruction::UnitaryByRegister {
            target: 2,
            by: 1,
            matrices: (0..3)
                .map(|c| {
                    let x = c as f64 / 2.0;
                    gates::ry_by_cos_sin(x, (1.0 - x * x).sqrt())
                })
                .collect(),
        });
        p.push(Instruction::PhaseIfZero { reg: 2, phi: 0.7 });
        p.push(Instruction::RankOnePhase {
            anchor: StateTable::basis_state(layout(), &[0, 0, 0]),
            phi: 1.1,
        });
        p.push(Instruction::GlobalPhase { phi: -0.3 });
        p
    }

    #[test]
    fn run_preserves_norm() {
        let p = demo_program();
        let s: SparseState = p.run_from_basis(&[0, 0, 0]);
        assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_undoes_program() {
        let p = demo_program();
        let mut s: SparseState = p.run_from_basis(&[0, 0, 0]);
        p.inverse().run(&mut s);
        let back = s.to_table();
        let start = StateTable::basis_state(layout(), &[0, 0, 0]);
        assert!(back.distance_sqr(&start) < 1e-15, "p⁻¹∘p != I");
    }

    #[test]
    fn double_inverse_has_same_effect() {
        let p = demo_program();
        let a: SparseState = p.run_from_basis(&[1, 0, 0]);
        let b: SparseState = p.inverse().inverse().run_from_basis(&[1, 0, 0]);
        assert!(a.to_table().distance_sqr(&b.to_table()) < 1e-15);
    }

    #[test]
    fn program_matches_manual_application() {
        let p = demo_program();
        let via_program: SparseState = p.run_from_basis(&[0, 0, 0]);
        let mut manual = SparseState::from_basis(layout(), &[0, 0, 0]);
        manual.apply_register_unitary(0, &gates::dft(4));
        manual.apply_permutation(|b| {
            let t = [0u64, 1, 2, 1];
            b[1] = (b[1] + t[b[0] as usize]) % 3;
        });
        manual.apply_conditioned_unitary(2, |b| {
            let x = b[1] as f64 / 2.0;
            gates::ry_by_cos_sin(x, (1.0 - x * x).sqrt())
        });
        manual.apply_phase(|b| {
            if b[2] == 0 {
                Complex64::cis(0.7)
            } else {
                Complex64::ONE
            }
        });
        manual.apply_rank_one_phase(&StateTable::basis_state(layout(), &[0, 0, 0]), 1.1);
        manual.scale(Complex64::cis(-0.3));
        assert!(via_program.to_table().distance_sqr(&manual.to_table()) < 1e-15);
    }

    #[test]
    fn oracle_queries_counted_statically() {
        let p = demo_program().then(&demo_program());
        assert_eq!(p.oracle_queries(2), vec![2, 0]);
    }

    #[test]
    fn shape_hides_data_but_shows_structure() {
        let mut a = demo_program();
        // same structure, different oracle table
        let mut b = Program::new(layout());
        b.push(Instruction::RegisterUnitary {
            target: 0,
            matrix: gates::dft(4),
        });
        b.push(Instruction::OracleAdd {
            machine: 0,
            elem: 0,
            count: 1,
            table: Arc::new(vec![2, 0, 1, 0]), // different data
            modulus: 3,
            inverse: false,
        });
        let shape_a: String = a.shape().lines().take(2).collect::<Vec<_>>().join("\n");
        assert_eq!(shape_a, b.shape());
        // shape differs when the structure differs
        a.push(Instruction::GlobalPhase { phi: 0.1 });
        let c = demo_program();
        assert_ne!(a.shape(), c.shape());
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn layout_mismatch_rejected() {
        let p = demo_program();
        let other = Layout::builder().register("x", 2).build();
        let mut s = SparseState::from_basis(other, &[0]);
        p.run(&mut s);
    }
}
