//! A data-driven circuit IR: [`Program`] is a list of [`Instruction`]s that
//! can be applied to any backend, inverted exactly, and inspected.
//!
//! The IR exists so the paper's algorithms can be *compiled* rather than
//! only executed: `dqs-core::circuit` lowers Theorem 4.3's sampler to a
//! `Program`, which makes three things checkable structurally instead of
//! behaviorally:
//!
//! 1. **Invertibility** — `p.inverse()` is exact (each instruction knows
//!    its adjoint), so `p⁻¹ ∘ p = I` is a test, mirroring the paper's
//!    heavy use of `O†`/`D†`.
//! 2. **Obliviousness** — two inputs with the same public parameters
//!    compile to programs with identical *shapes* ([`Program::shape`]),
//!    differing only in oracle lookup tables — the formal content of the
//!    oblivious model.
//! 3. **Query accounting** — oracle instructions carry their machine tag;
//!    [`Program::oracle_queries`] is the cost before running anything.

use crate::register::Layout;
use crate::state::QuantumState;
use crate::table::StateTable;
use dqs_math::{Complex64, MatC};

/// One reversible operation.
#[derive(Clone)]
pub enum Instruction {
    /// Apply a fixed unitary matrix to one register.
    RegisterUnitary {
        /// Target register.
        target: usize,
        /// The `dim × dim` unitary.
        matrix: MatC,
    },
    /// Apply to `target` a unitary selected by the value of register `by`:
    /// `matrices[value]`. (The distributing rotation `𝒰`, keyed by the
    /// count register.)
    UnitaryByRegister {
        /// Target register.
        target: usize,
        /// Conditioning register (must differ from `target`).
        by: usize,
        /// One matrix per conditioning value.
        matrices: Vec<MatC>,
    },
    /// Counting-oracle step: `count += sign · table[elem] (mod modulus)`.
    /// `machine` tags the query for accounting.
    OracleAdd {
        /// Machine charged for the query.
        machine: usize,
        /// Element register.
        elem: usize,
        /// Count register.
        count: usize,
        /// Lookup table `elem → multiplicity` (length = elem dimension).
        table: std::sync::Arc<Vec<u64>>,
        /// The modulus `ν + 1`.
        modulus: u64,
        /// `false` = add (`O_j`), `true` = subtract (`O_j†`).
        inverse: bool,
    },
    /// Phase `e^{iφ}` on every basis state whose `reg` value is zero
    /// (the `S_χ(φ)` marker).
    PhaseIfZero {
        /// Flag register.
        reg: usize,
        /// Phase angle.
        phi: f64,
    },
    /// Rank-one phase `I + (e^{iφ}−1)|a⟩⟨a|` (the `S_π(φ)` reflection).
    RankOnePhase {
        /// Normalized anchor `|a⟩`.
        anchor: StateTable,
        /// Phase angle.
        phi: f64,
    },
    /// Multiply the global state by a unit scalar (e.g. the `−1` in `Q`).
    GlobalPhase {
        /// Phase angle (scalar is `e^{iφ}`).
        phi: f64,
    },
    /// Parallel-model broadcast (Lemma 4.4 step 1): copy the element value
    /// into every ancilla element register and toggle every ancilla flag.
    /// Self-describing inverse via `undo`.
    Broadcast {
        /// Source element register.
        src: usize,
        /// Ancilla element registers (must be clean when `undo = false`).
        dsts: Vec<usize>,
        /// Ancilla flag registers (toggled).
        flags: Vec<usize>,
        /// `false` = copy in, `true` = uncopy.
        undo: bool,
    },
    /// One composite parallel oracle round (Eq. 3): for every machine `j`
    /// with its flag raised, `count_j += sign·table_j[elem_j] (mod m)`.
    /// Counts as **one** round regardless of `n`.
    ParallelOracleRound {
        /// Per-machine element registers.
        elem: Vec<usize>,
        /// Per-machine count registers.
        count: Vec<usize>,
        /// Per-machine control flags.
        flag: Vec<usize>,
        /// Per-machine lookup tables.
        tables: Vec<std::sync::Arc<Vec<u64>>>,
        /// The modulus `ν + 1`.
        modulus: u64,
        /// `false` = `O`, `true` = `O†`.
        inverse: bool,
    },
    /// Fold the ancilla counts into the main count register
    /// (Lemma 4.4 step: `s ← s ± Σ_j s_j mod m`).
    FoldCounts {
        /// Ancilla count registers.
        srcs: Vec<usize>,
        /// Main count register.
        dst: usize,
        /// The modulus `ν + 1`.
        modulus: u64,
        /// `false` = add, `true` = subtract.
        subtract: bool,
    },
    /// A fused run of counting-oracle steps on the same `(elem, count)`
    /// pair: **one** permutation pass applying the net addition
    /// `count += table[elem] (mod modulus)`, while still representing — and
    /// statically charging — one query per entry in `machines`. Produced by
    /// [`Program::optimize`] composing adjacent [`Instruction::OracleAdd`]s;
    /// the optimizer never drops it, so `oracle_queries` is invariant under
    /// optimization.
    FusedOracleAdd {
        /// Machines charged, one query each (duplicates allowed: an
        /// `O_j·O_j†` pair fuses to a net-zero table but still costs 2).
        machines: Vec<usize>,
        /// Element register.
        elem: usize,
        /// Count register.
        count: usize,
        /// Net lookup table with all signs already folded in (entries
        /// reduced mod `modulus`).
        table: std::sync::Arc<Vec<u64>>,
        /// The modulus `ν + 1`.
        modulus: u64,
    },
}

impl Instruction {
    /// Applies the instruction to a state.
    pub fn apply<S: QuantumState>(&self, state: &mut S) {
        match self {
            Instruction::RegisterUnitary { target, matrix } => {
                state.apply_register_unitary(*target, matrix);
            }
            Instruction::UnitaryByRegister {
                target,
                by,
                matrices,
            } => {
                assert_ne!(target, by, "self-conditioning is ill-defined");
                state.apply_conditioned_unitary(*target, |b| matrices[b[*by] as usize].clone());
            }
            Instruction::OracleAdd {
                elem,
                count,
                table,
                modulus,
                inverse,
                ..
            } => {
                let m = *modulus;
                state.apply_permutation(|b| {
                    let c = table[b[*elem] as usize] % m;
                    let add = if *inverse { m - c } else { c } % m;
                    b[*count] = (b[*count] + add) % m;
                });
            }
            Instruction::PhaseIfZero { reg, phi } => {
                let ph = Complex64::cis(*phi);
                state.apply_phase(|b| if b[*reg] == 0 { ph } else { Complex64::ONE });
            }
            Instruction::RankOnePhase { anchor, phi } => {
                state.apply_rank_one_phase(anchor, *phi);
            }
            Instruction::GlobalPhase { phi } => state.scale(Complex64::cis(*phi)),
            Instruction::Broadcast {
                src,
                dsts,
                flags,
                undo,
            } => {
                state.apply_permutation(|b| {
                    let i = b[*src];
                    for (&d, &f) in dsts.iter().zip(flags.iter()) {
                        if *undo {
                            debug_assert_eq!(b[d], i, "ancilla element out of sync");
                            b[d] = 0;
                        } else {
                            debug_assert_eq!(b[d], 0, "ancilla element must be clean");
                            b[d] = i;
                        }
                        b[f] ^= 1;
                    }
                });
            }
            Instruction::ParallelOracleRound {
                elem,
                count,
                flag,
                tables,
                modulus,
                inverse,
            } => {
                let m = *modulus;
                state.apply_permutation(|b| {
                    for j in 0..elem.len() {
                        if b[flag[j]] == 1 {
                            let c = tables[j][b[elem[j]] as usize] % m;
                            let add = if *inverse { m - c } else { c } % m;
                            b[count[j]] = (b[count[j]] + add) % m;
                        }
                    }
                });
            }
            Instruction::FoldCounts {
                srcs,
                dst,
                modulus,
                subtract,
            } => {
                let m = *modulus;
                state.apply_permutation(|b| {
                    let mut total = 0u64;
                    for &s in srcs {
                        total = (total + b[s]) % m;
                    }
                    let add = if *subtract { (m - total) % m } else { total };
                    b[*dst] = (b[*dst] + add) % m;
                });
            }
            Instruction::FusedOracleAdd {
                elem,
                count,
                table,
                modulus,
                ..
            } => {
                let m = *modulus;
                state.apply_permutation(|b| {
                    b[*count] = (b[*count] + table[b[*elem] as usize]) % m;
                });
            }
        }
    }

    /// Applies the instruction to every state in a batch.
    ///
    /// Bit-identical to looping [`Instruction::apply`] over the states —
    /// which is the fallback for most variants — but instructions with
    /// per-application preprocessing route through the backend's batched
    /// hooks so the preprocessing is paid once per instruction rather than
    /// once per (instruction, state). Today that is
    /// [`Instruction::RankOnePhase`], whose anchor encoding dominates the
    /// per-gate overhead of the amplification loop.
    pub fn apply_batch<S: QuantumState>(&self, states: &mut [S]) {
        match self {
            Instruction::RankOnePhase { anchor, phi } => {
                S::apply_rank_one_phase_batch(states, anchor, *phi);
            }
            _ => {
                for state in states {
                    self.apply(state);
                }
            }
        }
    }

    /// The exact inverse instruction.
    pub fn inverse(&self) -> Instruction {
        match self {
            Instruction::RegisterUnitary { target, matrix } => Instruction::RegisterUnitary {
                target: *target,
                matrix: matrix.adjoint(),
            },
            Instruction::UnitaryByRegister {
                target,
                by,
                matrices,
            } => Instruction::UnitaryByRegister {
                target: *target,
                by: *by,
                matrices: matrices.iter().map(MatC::adjoint).collect(),
            },
            Instruction::OracleAdd {
                machine,
                elem,
                count,
                table,
                modulus,
                inverse,
            } => Instruction::OracleAdd {
                machine: *machine,
                elem: *elem,
                count: *count,
                table: table.clone(),
                modulus: *modulus,
                inverse: !inverse,
            },
            Instruction::PhaseIfZero { reg, phi } => Instruction::PhaseIfZero {
                reg: *reg,
                phi: -phi,
            },
            Instruction::RankOnePhase { anchor, phi } => Instruction::RankOnePhase {
                anchor: anchor.clone(),
                phi: -phi,
            },
            Instruction::GlobalPhase { phi } => Instruction::GlobalPhase { phi: -phi },
            Instruction::Broadcast {
                src,
                dsts,
                flags,
                undo,
            } => Instruction::Broadcast {
                src: *src,
                dsts: dsts.clone(),
                flags: flags.clone(),
                undo: !undo,
            },
            Instruction::ParallelOracleRound {
                elem,
                count,
                flag,
                tables,
                modulus,
                inverse,
            } => Instruction::ParallelOracleRound {
                elem: elem.clone(),
                count: count.clone(),
                flag: flag.clone(),
                tables: tables.clone(),
                modulus: *modulus,
                inverse: !inverse,
            },
            Instruction::FoldCounts {
                srcs,
                dst,
                modulus,
                subtract,
            } => Instruction::FoldCounts {
                srcs: srcs.clone(),
                dst: *dst,
                modulus: *modulus,
                subtract: !subtract,
            },
            Instruction::FusedOracleAdd {
                machines,
                elem,
                count,
                table,
                modulus,
            } => Instruction::FusedOracleAdd {
                machines: machines.iter().rev().copied().collect(),
                elem: *elem,
                count: *count,
                table: std::sync::Arc::new(
                    table
                        .iter()
                        .map(|&t| (modulus - t % modulus) % modulus)
                        .collect(),
                ),
                modulus: *modulus,
            },
        }
    }

    /// A shape label: the instruction kind and its registers, but *not* its
    /// data (oracle tables, matrix entries). Two oblivious circuits over
    /// inputs with equal public parameters have equal shapes.
    pub fn shape(&self) -> String {
        match self {
            Instruction::RegisterUnitary { target, matrix } => {
                format!("U[{target}]({}x{})", matrix.rows(), matrix.cols())
            }
            Instruction::UnitaryByRegister {
                target,
                by,
                matrices,
            } => {
                format!("U[{target}|{by}]x{}", matrices.len())
            }
            Instruction::OracleAdd {
                machine,
                elem,
                count,
                inverse,
                ..
            } => format!(
                "O{}[m{machine}:{elem}->{count}]",
                if *inverse { "†" } else { "" }
            ),
            Instruction::PhaseIfZero { reg, phi } => format!("Sx[{reg}]({phi:.4})"),
            Instruction::RankOnePhase { phi, .. } => format!("Spi({phi:.4})"),
            Instruction::GlobalPhase { phi } => format!("G({phi:.4})"),
            Instruction::Broadcast {
                src, dsts, undo, ..
            } => format!("B{}[{src}->x{}]", if *undo { "†" } else { "" }, dsts.len()),
            Instruction::ParallelOracleRound { elem, inverse, .. } => {
                format!("PO{}[x{}]", if *inverse { "†" } else { "" }, elem.len())
            }
            Instruction::FoldCounts {
                srcs,
                dst,
                subtract,
                ..
            } => format!(
                "F{}[x{}->{dst}]",
                if *subtract { "-" } else { "+" },
                srcs.len()
            ),
            Instruction::FusedOracleAdd {
                machines,
                elem,
                count,
                ..
            } => {
                let ms = machines
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                format!("FO[m{ms}:{elem}->{count}]")
            }
        }
    }
}

/// An ordered list of instructions over a fixed layout.
#[derive(Clone)]
pub struct Program {
    layout: Layout,
    instructions: Vec<Instruction>,
}

impl Program {
    /// An empty program over a layout.
    pub fn new(layout: Layout) -> Self {
        Self {
            layout,
            instructions: Vec::new(),
        }
    }

    /// The layout this program runs over.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.instructions.push(instr);
        self
    }

    /// The instructions in order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Runs the program on a state.
    ///
    /// # Panics
    ///
    /// Panics if the state's layout differs from the program's.
    pub fn run<S: QuantumState>(&self, state: &mut S) {
        assert_eq!(state.layout(), &self.layout, "layout mismatch");
        for instr in &self.instructions {
            instr.apply(state);
        }
    }

    /// Runs the program on a batch of independent states in **one pass over
    /// the gate sequence**: the outer loop is over instructions, the inner
    /// loop over states, so per-instruction work (closure setup, oracle
    /// table reads, anchor encoding via the backend's batched hooks) is
    /// amortized across the whole batch.
    ///
    /// Bit-identical to calling [`Program::run`] on each state separately.
    /// An empty batch is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if any state's layout differs from the program's.
    pub fn run_batch<S: QuantumState>(&self, states: &mut [S]) {
        for state in states.iter() {
            assert_eq!(state.layout(), &self.layout, "layout mismatch");
        }
        for instr in &self.instructions {
            instr.apply_batch(states);
        }
    }

    /// Runs from `|basis⟩` and returns the final state.
    pub fn run_from_basis<S: QuantumState>(&self, basis: &[u64]) -> S {
        let mut s = S::from_basis(self.layout.clone(), basis);
        self.run(&mut s);
        s
    }

    /// The exact inverse program (instructions inverted, order reversed).
    pub fn inverse(&self) -> Program {
        Program {
            layout: self.layout.clone(),
            instructions: self
                .instructions
                .iter()
                .rev()
                .map(Instruction::inverse)
                .collect(),
        }
    }

    /// Concatenates two programs over the same layout.
    pub fn then(mut self, other: &Program) -> Program {
        assert_eq!(self.layout, other.layout, "layout mismatch");
        self.instructions.extend(other.instructions.iter().cloned());
        self
    }

    /// Total oracle queries, per machine (index = machine). Fused oracle
    /// instructions contribute one query per carried machine tag, so this
    /// count is invariant under [`Program::optimize`].
    pub fn oracle_queries(&self, machines: usize) -> Vec<u64> {
        let mut out = vec![0u64; machines];
        for instr in &self.instructions {
            match instr {
                Instruction::OracleAdd { machine, .. } => out[*machine] += 1,
                Instruction::FusedOracleAdd { machines, .. } => {
                    for &m in machines {
                        out[m] += 1;
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Total composite parallel-oracle rounds in the program.
    pub fn parallel_rounds(&self) -> u64 {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::ParallelOracleRound { .. }))
            .count() as u64
    }

    /// The shape string: one label per instruction, newline-separated.
    /// Equal shapes ⇔ structurally identical circuits (oblivious check).
    pub fn shape(&self) -> String {
        self.instructions
            .iter()
            .map(Instruction::shape)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Peephole optimizer: returns a program with the same action (exactly —
    /// no approximations are taken) and the same static query accounting,
    /// but fewer support passes at run time. Three rewrites run to fixpoint:
    ///
    /// 1. **Oracle fusion** — a maximal run of adjacent [`Instruction::OracleAdd`]s
    ///    over the same `(elem, count, modulus)` composes into one
    ///    [`Instruction::FusedOracleAdd`] carrying every machine tag (so an
    ///    `O_j·O_j†` pair fuses to a net-zero table that still charges 2
    ///    queries — query-carrying instructions are never dropped).
    /// 2. **Permutation-pair cancellation** — adjacent inverse
    ///    [`Instruction::Broadcast`]/[`Instruction::FoldCounts`] pairs vanish,
    ///    including around a sandwiched instruction that provably commutes
    ///    with them (the `B†·𝒰·B` window in the parallel sampler).
    /// 3. **Diagonal/unitary merging** — adjacent [`Instruction::GlobalPhase`]s
    ///    and same-register [`Instruction::PhaseIfZero`]s sum their angles
    ///    (exact zeros are dropped); adjacent [`Instruction::RegisterUnitary`]s
    ///    and [`Instruction::UnitaryByRegister`]s on the same registers
    ///    compose by matrix product.
    pub fn optimize(&self) -> Program {
        let mut instrs = self.instructions.clone();
        loop {
            let mut changed = fuse_oracle_adds(&mut instrs);
            changed |= cancel_permutation_pairs(&mut instrs);
            changed |= merge_adjacent(&mut instrs);
            if !changed {
                break;
            }
        }
        Program {
            layout: self.layout.clone(),
            instructions: instrs,
        }
    }
}

/// Rewrite 1: compose maximal runs of adjacent oracle additions on the same
/// `(elem, count, modulus)` into single [`Instruction::FusedOracleAdd`]s.
/// Runs of length 1 are left verbatim.
fn fuse_oracle_adds(instrs: &mut Vec<Instruction>) -> bool {
    fn fuse_key(i: &Instruction) -> Option<(usize, usize, u64)> {
        match i {
            Instruction::OracleAdd {
                elem,
                count,
                modulus,
                ..
            }
            | Instruction::FusedOracleAdd {
                elem,
                count,
                modulus,
                ..
            } => Some((*elem, *count, *modulus)),
            _ => None,
        }
    }

    let mut out = Vec::with_capacity(instrs.len());
    let mut changed = false;
    let mut i = 0;
    while i < instrs.len() {
        let Some((elem, count, modulus)) = fuse_key(&instrs[i]) else {
            out.push(instrs[i].clone());
            i += 1;
            continue;
        };
        let mut j = i + 1;
        while j < instrs.len() && fuse_key(&instrs[j]) == Some((elem, count, modulus)) {
            j += 1;
        }
        if j == i + 1 {
            out.push(instrs[i].clone());
        } else {
            let dim = match &instrs[i] {
                Instruction::OracleAdd { table, .. }
                | Instruction::FusedOracleAdd { table, .. } => table.len(),
                _ => unreachable!(),
            };
            let mut net = vec![0u64; dim];
            let mut machines = Vec::new();
            for instr in &instrs[i..j] {
                match instr {
                    Instruction::OracleAdd {
                        machine,
                        table,
                        inverse,
                        ..
                    } => {
                        machines.push(*machine);
                        for (slot, &t) in net.iter_mut().zip(table.iter()) {
                            let add = if *inverse {
                                (modulus - t % modulus) % modulus
                            } else {
                                t % modulus
                            };
                            *slot = (*slot + add) % modulus;
                        }
                    }
                    Instruction::FusedOracleAdd {
                        machines: ms,
                        table,
                        ..
                    } => {
                        machines.extend_from_slice(ms);
                        for (slot, &t) in net.iter_mut().zip(table.iter()) {
                            *slot = (*slot + t) % modulus;
                        }
                    }
                    _ => unreachable!(),
                }
            }
            out.push(Instruction::FusedOracleAdd {
                machines,
                elem,
                count,
                table: std::sync::Arc::new(net),
                modulus,
            });
            changed = true;
        }
        i = j;
    }
    *instrs = out;
    changed
}

/// Rewrite 2: cancel adjacent inverse permutation pairs — `B·B†` and
/// `F₊·F₋` — including around one sandwiched instruction that provably
/// commutes with the pair. Query-carrying instructions are never touched.
fn cancel_permutation_pairs(instrs: &mut Vec<Instruction>) -> bool {
    fn is_inverse_pair(a: &Instruction, b: &Instruction) -> bool {
        match (a, b) {
            (
                Instruction::Broadcast {
                    src: s1,
                    dsts: d1,
                    flags: f1,
                    undo: u1,
                },
                Instruction::Broadcast {
                    src: s2,
                    dsts: d2,
                    flags: f2,
                    undo: u2,
                },
            ) => s1 == s2 && d1 == d2 && f1 == f2 && u1 != u2,
            (
                Instruction::FoldCounts {
                    srcs: s1,
                    dst: d1,
                    modulus: m1,
                    subtract: u1,
                },
                Instruction::FoldCounts {
                    srcs: s2,
                    dst: d2,
                    modulus: m2,
                    subtract: u2,
                },
            ) => s1 == s2 && d1 == d2 && m1 == m2 && u1 != u2,
            _ => false,
        }
    }

    /// Registers the permutation writes / reads: a sandwiched instruction
    /// commutes with the pair when it touches none of the written registers
    /// and writes none of the read ones.
    fn commutes_with(mid: &Instruction, pair: &Instruction) -> bool {
        let (written, read): (Vec<usize>, Vec<usize>) = match pair {
            Instruction::Broadcast {
                src, dsts, flags, ..
            } => (
                dsts.iter().chain(flags.iter()).copied().collect(),
                vec![*src],
            ),
            Instruction::FoldCounts { srcs, dst, .. } => (vec![*dst], srcs.clone()),
            _ => return false,
        };
        let disjoint = |r: usize| !written.contains(&r);
        match mid {
            Instruction::GlobalPhase { .. } => true,
            Instruction::PhaseIfZero { reg, .. } => disjoint(*reg),
            Instruction::RegisterUnitary { target, .. } => {
                disjoint(*target) && !read.contains(target)
            }
            Instruction::UnitaryByRegister { target, by, .. } => {
                disjoint(*target) && disjoint(*by) && !read.contains(target)
            }
            _ => false,
        }
    }

    let mut changed = false;
    let mut i = 0;
    while i < instrs.len() {
        if i + 1 < instrs.len() && is_inverse_pair(&instrs[i], &instrs[i + 1]) {
            instrs.drain(i..i + 2);
            changed = true;
            i = i.saturating_sub(1);
            continue;
        }
        if i + 2 < instrs.len()
            && is_inverse_pair(&instrs[i], &instrs[i + 2])
            && commutes_with(&instrs[i + 1], &instrs[i])
        {
            instrs.remove(i + 2);
            instrs.remove(i);
            changed = true;
            i = i.saturating_sub(1);
            continue;
        }
        i += 1;
    }
    changed
}

/// Rewrite 3: merge adjacent diagonal/phase instructions and compose
/// adjacent unitaries on identical registers; exact-zero phases vanish.
fn merge_adjacent(instrs: &mut Vec<Instruction>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < instrs.len() {
        // Drop exact-zero phases outright.
        match &instrs[i] {
            Instruction::GlobalPhase { phi } | Instruction::PhaseIfZero { phi, .. }
                if *phi == 0.0 =>
            {
                instrs.remove(i);
                changed = true;
                i = i.saturating_sub(1);
                continue;
            }
            _ => {}
        }
        if i + 1 >= instrs.len() {
            break;
        }
        let merged: Option<Instruction> = match (&instrs[i], &instrs[i + 1]) {
            (Instruction::GlobalPhase { phi: a }, Instruction::GlobalPhase { phi: b }) => {
                Some(Instruction::GlobalPhase { phi: a + b })
            }
            (
                Instruction::PhaseIfZero { reg: r1, phi: a },
                Instruction::PhaseIfZero { reg: r2, phi: b },
            ) if r1 == r2 => Some(Instruction::PhaseIfZero {
                reg: *r1,
                phi: a + b,
            }),
            (
                Instruction::RegisterUnitary {
                    target: t1,
                    matrix: m1,
                },
                Instruction::RegisterUnitary {
                    target: t2,
                    matrix: m2,
                },
            ) if t1 == t2 => Some(Instruction::RegisterUnitary {
                target: *t1,
                // Second instruction acts after the first: M₂·M₁.
                matrix: m2.clone() * m1.clone(),
            }),
            (
                Instruction::UnitaryByRegister {
                    target: t1,
                    by: b1,
                    matrices: m1,
                },
                Instruction::UnitaryByRegister {
                    target: t2,
                    by: b2,
                    matrices: m2,
                },
            ) if t1 == t2 && b1 == b2 => Some(Instruction::UnitaryByRegister {
                target: *t1,
                by: *b1,
                matrices: m1
                    .iter()
                    .zip(m2.iter())
                    .map(|(a, b)| b.clone() * a.clone())
                    .collect(),
            }),
            _ => None,
        };
        if let Some(instr) = merged {
            instrs[i] = instr;
            instrs.remove(i + 1);
            changed = true;
            // Re-examine position i: the merge may chain or cancel to zero.
            continue;
        }
        i += 1;
    }
    changed
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Program[{} instructions over {:?}]",
            self.instructions.len(),
            self.layout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::sparse::SparseState;
    use std::sync::Arc;

    fn layout() -> Layout {
        Layout::builder()
            .register("elem", 4)
            .register("count", 3)
            .register("flag", 2)
            .build()
    }

    fn demo_program() -> Program {
        let mut p = Program::new(layout());
        p.push(Instruction::RegisterUnitary {
            target: 0,
            matrix: gates::dft(4),
        });
        p.push(Instruction::OracleAdd {
            machine: 0,
            elem: 0,
            count: 1,
            table: Arc::new(vec![0, 1, 2, 1]),
            modulus: 3,
            inverse: false,
        });
        p.push(Instruction::UnitaryByRegister {
            target: 2,
            by: 1,
            matrices: (0..3)
                .map(|c| {
                    let x = c as f64 / 2.0;
                    gates::ry_by_cos_sin(x, (1.0 - x * x).sqrt())
                })
                .collect(),
        });
        p.push(Instruction::PhaseIfZero { reg: 2, phi: 0.7 });
        p.push(Instruction::RankOnePhase {
            anchor: StateTable::basis_state(layout(), &[0, 0, 0]),
            phi: 1.1,
        });
        p.push(Instruction::GlobalPhase { phi: -0.3 });
        p
    }

    #[test]
    fn run_preserves_norm() {
        let p = demo_program();
        let s: SparseState = p.run_from_basis(&[0, 0, 0]);
        assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_undoes_program() {
        let p = demo_program();
        let mut s: SparseState = p.run_from_basis(&[0, 0, 0]);
        p.inverse().run(&mut s);
        let back = s.to_table();
        let start = StateTable::basis_state(layout(), &[0, 0, 0]);
        assert!(back.distance_sqr(&start) < 1e-15, "p⁻¹∘p != I");
    }

    #[test]
    fn double_inverse_has_same_effect() {
        let p = demo_program();
        let a: SparseState = p.run_from_basis(&[1, 0, 0]);
        let b: SparseState = p.inverse().inverse().run_from_basis(&[1, 0, 0]);
        assert!(a.to_table().distance_sqr(&b.to_table()) < 1e-15);
    }

    #[test]
    fn program_matches_manual_application() {
        let p = demo_program();
        let via_program: SparseState = p.run_from_basis(&[0, 0, 0]);
        let mut manual = SparseState::from_basis(layout(), &[0, 0, 0]);
        manual.apply_register_unitary(0, &gates::dft(4));
        manual.apply_permutation(|b| {
            let t = [0u64, 1, 2, 1];
            b[1] = (b[1] + t[b[0] as usize]) % 3;
        });
        manual.apply_conditioned_unitary(2, |b| {
            let x = b[1] as f64 / 2.0;
            gates::ry_by_cos_sin(x, (1.0 - x * x).sqrt())
        });
        manual.apply_phase(|b| {
            if b[2] == 0 {
                Complex64::cis(0.7)
            } else {
                Complex64::ONE
            }
        });
        manual.apply_rank_one_phase(&StateTable::basis_state(layout(), &[0, 0, 0]), 1.1);
        manual.scale(Complex64::cis(-0.3));
        assert!(via_program.to_table().distance_sqr(&manual.to_table()) < 1e-15);
    }

    #[test]
    fn oracle_queries_counted_statically() {
        let p = demo_program().then(&demo_program());
        assert_eq!(p.oracle_queries(2), vec![2, 0]);
    }

    #[test]
    fn shape_hides_data_but_shows_structure() {
        let mut a = demo_program();
        // same structure, different oracle table
        let mut b = Program::new(layout());
        b.push(Instruction::RegisterUnitary {
            target: 0,
            matrix: gates::dft(4),
        });
        b.push(Instruction::OracleAdd {
            machine: 0,
            elem: 0,
            count: 1,
            table: Arc::new(vec![2, 0, 1, 0]), // different data
            modulus: 3,
            inverse: false,
        });
        let shape_a: String = a.shape().lines().take(2).collect::<Vec<_>>().join("\n");
        assert_eq!(shape_a, b.shape());
        // shape differs when the structure differs
        a.push(Instruction::GlobalPhase { phi: 0.1 });
        let c = demo_program();
        assert_ne!(a.shape(), c.shape());
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn layout_mismatch_rejected() {
        let p = demo_program();
        let other = Layout::builder().register("x", 2).build();
        let mut s = SparseState::from_basis(other, &[0]);
        p.run(&mut s);
    }

    fn oracle_add(machine: usize, table: Vec<u64>, inverse: bool) -> Instruction {
        Instruction::OracleAdd {
            machine,
            elem: 0,
            count: 1,
            table: Arc::new(table),
            modulus: 3,
            inverse,
        }
    }

    #[test]
    fn optimize_fuses_adjacent_oracle_cascade() {
        let mut p = Program::new(layout());
        p.push(oracle_add(0, vec![0, 1, 2, 1], false));
        p.push(oracle_add(1, vec![1, 0, 2, 2], false));
        p.push(oracle_add(1, vec![1, 0, 2, 2], true));
        let opt = p.optimize();
        assert_eq!(opt.len(), 1, "cascade must fuse to one pass");
        // All three query tags survive fusion.
        assert_eq!(opt.oracle_queries(2), vec![1, 2]);
        assert_eq!(p.oracle_queries(2), opt.oracle_queries(2));
        // Net table is the signed sum: the machine-1 pair cancels.
        match &opt.instructions()[0] {
            Instruction::FusedOracleAdd { table, .. } => {
                assert_eq!(table.as_slice(), &[0, 1, 2, 1]);
            }
            other => panic!("expected FusedOracleAdd, got {}", other.shape()),
        }
        // And the action is unchanged on a generic state.
        let mut a: SparseState = SparseState::from_basis(layout(), &[0, 0, 0]);
        a.apply_register_unitary(0, &gates::dft(4));
        let mut b = a.clone();
        p.run(&mut a);
        opt.run(&mut b);
        assert_eq!(a.to_table().distance_sqr(&b.to_table()), 0.0);
    }

    #[test]
    fn optimize_preserves_action_of_demo_program() {
        let p = demo_program().then(&demo_program().inverse());
        let opt = p.optimize();
        let mut a: SparseState = SparseState::from_basis(layout(), &[1, 0, 0]);
        a.apply_register_unitary(0, &gates::dft(4));
        let mut b = a.clone();
        p.run(&mut a);
        opt.run(&mut b);
        assert!(a.to_table().distance_sqr(&b.to_table()) < 1e-24);
        assert_eq!(p.oracle_queries(1), opt.oracle_queries(1));
        assert!(opt.len() < p.len());
    }

    #[test]
    fn optimize_cancels_broadcast_sandwich() {
        // B† · U · B = U when U acts off the broadcast registers — the
        // window the parallel sampler produces between its two count loads.
        let wide = Layout::builder()
            .register("elem", 4)
            .register("count", 3)
            .register("flag", 2)
            .register("anc_elem", 4)
            .register("anc_flag", 2)
            .build();
        let bcast = |undo: bool| Instruction::Broadcast {
            src: 0,
            dsts: vec![3],
            flags: vec![4],
            undo,
        };
        let u = Instruction::UnitaryByRegister {
            target: 2,
            by: 1,
            matrices: (0..3).map(|_| gates::dft(2)).collect(),
        };
        let mut p = Program::new(wide.clone());
        p.push(bcast(false));
        p.push(u.clone());
        p.push(bcast(true));
        let opt = p.optimize();
        assert_eq!(opt.len(), 1);
        assert!(matches!(
            opt.instructions()[0],
            Instruction::UnitaryByRegister { .. }
        ));
        let mut a: SparseState = SparseState::from_basis(wide.clone(), &[0, 0, 0, 0, 0]);
        a.apply_register_unitary(0, &gates::dft(4));
        let mut b = a.clone();
        p.run(&mut a);
        opt.run(&mut b);
        assert_eq!(a.to_table().distance_sqr(&b.to_table()), 0.0);
    }

    #[test]
    fn optimize_keeps_blocking_broadcast_sandwich() {
        // A unitary *on* a broadcast register must block the cancellation.
        let wide = Layout::builder()
            .register("elem", 4)
            .register("count", 3)
            .register("flag", 2)
            .register("anc_elem", 4)
            .register("anc_flag", 2)
            .build();
        let mut p = Program::new(wide);
        p.push(Instruction::Broadcast {
            src: 0,
            dsts: vec![3],
            flags: vec![4],
            undo: false,
        });
        p.push(Instruction::PhaseIfZero { reg: 4, phi: 0.3 });
        p.push(Instruction::Broadcast {
            src: 0,
            dsts: vec![3],
            flags: vec![4],
            undo: true,
        });
        assert_eq!(p.optimize().len(), 3);
    }

    #[test]
    fn optimize_merges_phases_and_drops_zeros() {
        let mut p = Program::new(layout());
        p.push(Instruction::GlobalPhase { phi: 0.25 });
        p.push(Instruction::GlobalPhase { phi: -0.25 });
        p.push(Instruction::PhaseIfZero { reg: 2, phi: 0.5 });
        p.push(Instruction::PhaseIfZero { reg: 2, phi: 0.25 });
        let opt = p.optimize();
        assert_eq!(opt.len(), 1);
        match &opt.instructions()[0] {
            Instruction::PhaseIfZero { reg: 2, phi } => assert!((phi - 0.75).abs() < 1e-15),
            other => panic!("unexpected {}", other.shape()),
        }
    }

    #[test]
    fn fused_oracle_add_inverse_round_trips() {
        let p = {
            let mut p = Program::new(layout());
            p.push(oracle_add(0, vec![0, 1, 2, 1], false));
            p.push(oracle_add(1, vec![1, 0, 2, 2], false));
            p
        };
        let opt = p.optimize();
        let mut s: SparseState = SparseState::from_basis(layout(), &[0, 0, 0]);
        s.apply_register_unitary(0, &gates::dft(4));
        let before = s.to_table();
        opt.run(&mut s);
        opt.inverse().run(&mut s);
        assert_eq!(s.to_table().distance_sqr(&before), 0.0);
        // Inverse keeps the machine tags too.
        assert_eq!(opt.inverse().oracle_queries(2), vec![1, 1]);
    }
}
