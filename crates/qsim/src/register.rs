//! Quantum registers and multi-register layouts.
//!
//! A [`Register`] is a named qudit of arbitrary dimension (the paper's
//! element register has dimension `N`, the count register `ν+1`, flags `2`).
//! A [`Layout`] is an ordered collection of registers defining the joint
//! Hilbert space; it supplies mixed-radix encoding between basis-value
//! tuples (`&[u64]`, one value per register) and flat dense indices.

use std::fmt;

/// A single qudit register: a name (for diagnostics) and a dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Register {
    /// Human-readable name used in error messages and debug output.
    pub name: String,
    /// Dimension (number of computational basis values, `0..dim`).
    pub dim: u64,
}

impl Register {
    /// Creates a register.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` (a zero-dimensional register is meaningless).
    pub fn new(name: impl Into<String>, dim: u64) -> Self {
        let name = name.into();
        assert!(dim > 0, "register `{name}` must have dimension >= 1");
        Self { name, dim }
    }
}

/// An ordered list of registers defining a joint Hilbert space.
#[derive(Clone, PartialEq, Eq)]
pub struct Layout {
    regs: Vec<Register>,
}

impl Layout {
    /// Creates a layout from registers.
    pub fn new(regs: Vec<Register>) -> Self {
        assert!(!regs.is_empty(), "layout needs at least one register");
        Self { regs }
    }

    /// Starts a fluent builder.
    pub fn builder() -> LayoutBuilder {
        LayoutBuilder { regs: Vec::new() }
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.regs.len()
    }

    /// The registers in order.
    pub fn registers(&self) -> &[Register] {
        &self.regs
    }

    /// Dimension of register `r`.
    pub fn dim(&self, r: usize) -> u64 {
        self.regs[r].dim
    }

    /// Joint dimension `Π dim_r` if it fits in `usize`, else `None`.
    ///
    /// The dense backend requires this to be `Some` and small enough to
    /// allocate; the sparse backend never calls it.
    pub fn dense_dim(&self) -> Option<usize> {
        let mut acc: usize = 1;
        for r in &self.regs {
            acc = acc.checked_mul(usize::try_from(r.dim).ok()?)?;
        }
        Some(acc)
    }

    /// Returns the index of the register named `name`, if any.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.regs.iter().position(|r| r.name == name)
    }

    /// Checks that `basis` has one in-range value per register.
    pub fn validate_basis(&self, basis: &[u64]) -> bool {
        basis.len() == self.regs.len()
            && basis.iter().zip(self.regs.iter()).all(|(v, r)| *v < r.dim)
    }

    /// Asserts [`Self::validate_basis`], with a useful message.
    #[track_caller]
    pub fn assert_basis(&self, basis: &[u64]) {
        assert_eq!(
            basis.len(),
            self.regs.len(),
            "basis tuple length {} != register count {}",
            basis.len(),
            self.regs.len()
        );
        for (k, (v, r)) in basis.iter().zip(self.regs.iter()).enumerate() {
            assert!(
                *v < r.dim,
                "register {k} (`{}`): value {v} out of range 0..{}",
                r.name,
                r.dim
            );
        }
    }

    /// Mixed-radix encoding of a basis tuple to a flat index.
    ///
    /// The **first** register is the most significant digit, so lexicographic
    /// order on tuples matches numeric order on indices.
    pub fn encode(&self, basis: &[u64]) -> usize {
        debug_assert!(self.validate_basis(basis));
        let mut idx: usize = 0;
        for (v, r) in basis.iter().zip(self.regs.iter()) {
            idx = idx * (r.dim as usize) + (*v as usize);
        }
        idx
    }

    /// Inverse of [`Self::encode`]; writes into `out` (one slot per register).
    pub fn decode(&self, mut idx: usize, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.regs.len());
        for (slot, r) in out.iter_mut().zip(self.regs.iter()).rev() {
            let d = r.dim as usize;
            *slot = (idx % d) as u64;
            idx /= d;
        }
        debug_assert_eq!(idx, 0, "index out of range for layout");
    }

    /// Allocates and returns the decoded tuple.
    pub fn decode_vec(&self, idx: usize) -> Vec<u64> {
        let mut out = vec![0u64; self.regs.len()];
        self.decode(idx, &mut out);
        out
    }

    /// The all-zeros basis tuple.
    pub fn zero_basis(&self) -> Vec<u64> {
        vec![0u64; self.regs.len()]
    }

    /// Dense stride of register `r`: how far apart two states differing by 1
    /// in this register sit in the flat index space.
    pub fn stride(&self, r: usize) -> usize {
        self.regs[r + 1..]
            .iter()
            .fold(1usize, |acc, reg| acc * reg.dim as usize)
    }

    /// Joint dimension `Π dim_r` if it fits in `u128`, else `None`.
    ///
    /// This is the ceiling for the sparse backend's packed-key
    /// representation, which keys amplitudes by [`Self::encode_u128`]; it
    /// covers layouts far past [`Self::dense_dim`]'s `usize` limit (e.g. the
    /// parallel model's `3 + 3n` registers). Layouts whose joint dimension
    /// exceeds 128 bits fall back to boxed-slice keys.
    pub fn packed_dim(&self) -> Option<u128> {
        let mut acc: u128 = 1;
        for r in &self.regs {
            acc = acc.checked_mul(u128::from(r.dim))?;
        }
        Some(acc)
    }

    /// Mixed-radix encoding of a basis tuple to a `u128` key.
    ///
    /// Same digit order as [`Self::encode`] — the **first** register is the
    /// most significant — so lexicographic order on tuples matches numeric
    /// order on keys and a sorted key list agrees with [`StateTable`]'s
    /// sorted tuple order. Callers must ensure the joint dimension fits
    /// ([`Self::packed_dim`] is `Some`); overflow is debug-checked only.
    ///
    /// [`StateTable`]: crate::table::StateTable
    pub fn encode_u128(&self, basis: &[u64]) -> u128 {
        debug_assert!(self.validate_basis(basis));
        let mut idx: u128 = 0;
        for (v, r) in basis.iter().zip(self.regs.iter()) {
            idx = idx * u128::from(r.dim) + u128::from(*v);
        }
        idx
    }

    /// Inverse of [`Self::encode_u128`]; writes into `out` (one slot per
    /// register).
    pub fn decode_u128(&self, idx: u128, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.regs.len());
        // Keys that fit in 64 bits — every layout short of the parallel
        // model's widest — decode with native divisions instead of the
        // libcall-per-digit u128 path. This sits on the conditioned-unitary
        // kernel's per-bucket path, so the narrow case must stay cheap.
        if let Ok(mut small) = u64::try_from(idx) {
            for (slot, r) in out.iter_mut().zip(self.regs.iter()).rev() {
                *slot = small % r.dim;
                small /= r.dim;
            }
            debug_assert_eq!(small, 0, "index out of range for layout");
        } else {
            let mut idx = idx;
            for (slot, r) in out.iter_mut().zip(self.regs.iter()).rev() {
                let d = u128::from(r.dim);
                *slot = (idx % d) as u64;
                idx /= d;
            }
            debug_assert_eq!(idx, 0, "index out of range for layout");
        }
    }

    /// Packed-key stride of register `r` (see [`Self::stride`]): adding
    /// `stride_u128(r)` to a key increments register `r` by 1.
    pub fn stride_u128(&self, r: usize) -> u128 {
        self.regs[r + 1..]
            .iter()
            .fold(1u128, |acc, reg| acc * u128::from(reg.dim))
    }
}

impl fmt::Debug for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Layout[")?;
        for (k, r) in self.regs.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", r.name, r.dim)?;
        }
        write!(f, "]")
    }
}

/// Fluent builder for [`Layout`].
pub struct LayoutBuilder {
    regs: Vec<Register>,
}

impl LayoutBuilder {
    /// Appends a register.
    pub fn register(mut self, name: impl Into<String>, dim: u64) -> Self {
        self.regs.push(Register::new(name, dim));
        self
    }

    /// Appends `n` registers named `name0, name1, …`, all of dimension `dim`.
    pub fn register_array(mut self, name: &str, dim: u64, n: usize) -> Self {
        for k in 0..n {
            self.regs.push(Register::new(format!("{name}{k}"), dim));
        }
        self
    }

    /// Finalizes the layout.
    pub fn build(self) -> Layout {
        Layout::new(self.regs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_3() -> Layout {
        Layout::builder()
            .register("elem", 5)
            .register("count", 3)
            .register("flag", 2)
            .build()
    }

    #[test]
    fn builder_and_accessors() {
        let l = layout_3();
        assert_eq!(l.num_registers(), 3);
        assert_eq!(l.dim(0), 5);
        assert_eq!(l.dim(2), 2);
        assert_eq!(l.find("count"), Some(1));
        assert_eq!(l.find("missing"), None);
        assert_eq!(l.dense_dim(), Some(30));
    }

    #[test]
    fn encode_decode_round_trip_exhaustive() {
        let l = layout_3();
        let mut seen = std::collections::HashSet::new();
        for idx in 0..30usize {
            let t = l.decode_vec(idx);
            assert!(l.validate_basis(&t));
            assert_eq!(l.encode(&t), idx);
            seen.insert(t);
        }
        assert_eq!(seen.len(), 30, "decode must be injective");
    }

    #[test]
    fn encoding_is_lexicographic() {
        let l = layout_3();
        assert!(l.encode(&[0, 0, 1]) < l.encode(&[0, 1, 0]));
        assert!(l.encode(&[0, 2, 1]) < l.encode(&[1, 0, 0]));
    }

    #[test]
    fn strides_match_encoding() {
        let l = layout_3();
        assert_eq!(l.stride(0), 6);
        assert_eq!(l.stride(1), 2);
        assert_eq!(l.stride(2), 1);
        // moving register 1 by +1 shifts index by stride(1)
        let a = l.encode(&[2, 0, 1]);
        let b = l.encode(&[2, 1, 1]);
        assert_eq!(b - a, l.stride(1));
    }

    #[test]
    fn register_array_builder() {
        let l = Layout::builder()
            .register("i", 4)
            .register_array("s", 3, 2)
            .build();
        assert_eq!(l.num_registers(), 3);
        assert_eq!(l.registers()[1].name, "s0");
        assert_eq!(l.registers()[2].name, "s1");
    }

    #[test]
    fn dense_dim_overflow_is_none() {
        let l = Layout::builder()
            .register("a", u64::MAX / 2)
            .register("b", u64::MAX / 2)
            .build();
        assert_eq!(l.dense_dim(), None);
    }

    #[test]
    fn validate_rejects_bad_tuples() {
        let l = layout_3();
        assert!(!l.validate_basis(&[5, 0, 0])); // out of range
        assert!(!l.validate_basis(&[0, 0])); // wrong arity
        assert!(l.validate_basis(&[4, 2, 1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assert_basis_panics_with_message() {
        layout_3().assert_basis(&[0, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "dimension >= 1")]
    fn zero_dim_register_rejected() {
        let _ = Register::new("bad", 0);
    }

    #[test]
    fn encode_u128_round_trip_exhaustive() {
        let l = layout_3();
        let mut seen = std::collections::HashSet::new();
        let mut out = vec![0u64; 3];
        for idx in 0..30u128 {
            l.decode_u128(idx, &mut out);
            assert!(l.validate_basis(&out));
            assert_eq!(l.encode_u128(&out), idx);
            seen.insert(out.clone());
        }
        assert_eq!(seen.len(), 30, "decode_u128 must be injective");
    }

    #[test]
    fn encode_u128_agrees_with_encode() {
        let l = layout_3();
        for idx in 0..30usize {
            let t = l.decode_vec(idx);
            assert_eq!(l.encode_u128(&t), idx as u128);
        }
    }

    #[test]
    fn encode_u128_is_lexicographic() {
        let l = layout_3();
        assert!(l.encode_u128(&[0, 0, 1]) < l.encode_u128(&[0, 1, 0]));
        assert!(l.encode_u128(&[0, 2, 1]) < l.encode_u128(&[1, 0, 0]));
        // Sorted keys therefore agree with sorted boxed tuples.
        let mut tuples: Vec<Vec<u64>> = (0..30).map(|i| l.decode_vec(i)).collect();
        let mut keys: Vec<u128> = tuples.iter().map(|t| l.encode_u128(t)).collect();
        tuples.sort();
        keys.sort_unstable();
        for (t, k) in tuples.iter().zip(&keys) {
            assert_eq!(l.encode_u128(t), *k);
        }
    }

    #[test]
    fn strides_u128_match_encoding() {
        let l = layout_3();
        assert_eq!(l.stride_u128(0), 6);
        assert_eq!(l.stride_u128(1), 2);
        assert_eq!(l.stride_u128(2), 1);
        let a = l.encode_u128(&[2, 0, 1]);
        let b = l.encode_u128(&[2, 1, 1]);
        assert_eq!(b - a, l.stride_u128(1));
    }

    #[test]
    fn packed_dim_past_usize_round_trips() {
        // Joint dimension 2^40·2^40·2^40 = 2^120: overflows usize (even on
        // 64-bit) but fits u128 — exactly the regime packed keys unlock.
        let l = Layout::builder()
            .register("a", 1 << 40)
            .register("b", 1 << 40)
            .register("c", 1 << 40)
            .build();
        assert_eq!(l.dense_dim(), None);
        assert_eq!(l.packed_dim(), Some(1u128 << 120));
        let basis = [(1 << 40) - 1, 12345, 1 << 39];
        let key = l.encode_u128(&basis);
        let mut out = [0u64; 3];
        l.decode_u128(key, &mut out);
        assert_eq!(out, basis);
        // max tuple maps to packed_dim − 1
        let max = [(1 << 40) - 1; 3];
        assert_eq!(l.encode_u128(&max), (1u128 << 120) - 1);
    }

    #[test]
    fn packed_dim_overflow_is_none() {
        // (2^63)^3 = 2^189 exceeds u128 → packed keys unavailable.
        let l = Layout::builder().register_array("huge", 1 << 63, 3).build();
        assert_eq!(l.packed_dim(), None);
        assert_eq!(l.dense_dim(), None);
    }
}
