//! Gate library: constructors for the small unitaries the reproduction uses.
//!
//! All gates are returned as [`MatC`] matrices to be applied through
//! [`crate::QuantumState::apply_register_unitary`] (or its conditioned
//! variant). Constructors assert unitarity in debug builds.

use dqs_math::{Complex64, MatC};

/// 2×2 Hadamard.
pub fn hadamard() -> MatC {
    let s = Complex64::from_real(1.0 / 2.0f64.sqrt());
    MatC::mat2(s, s, s, -s)
}

/// 2×2 Pauli-X (NOT).
pub fn pauli_x() -> MatC {
    MatC::mat2(
        Complex64::ZERO,
        Complex64::ONE,
        Complex64::ONE,
        Complex64::ZERO,
    )
}

/// 2×2 Pauli-Z.
pub fn pauli_z() -> MatC {
    MatC::mat2(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        -Complex64::ONE,
    )
}

/// 2×2 phase gate `diag(1, e^{iφ})`.
pub fn phase(phi: f64) -> MatC {
    MatC::mat2(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::cis(phi),
    )
}

/// 2×2 real rotation `R_y(2θ) = [[cosθ, −sinθ], [sinθ, cosθ]]`.
///
/// `ry_by_cos_sin(c, s)` builds the rotation sending `|0⟩ ↦ c|0⟩ + s|1⟩`.
/// This is the shape of the distributing step `𝒰` of Lemma 4.2 with
/// `c = √(count/ν)` and `s = √((ν−count)/ν)`.
pub fn ry_by_cos_sin(c: f64, s: f64) -> MatC {
    debug_assert!(
        (c * c + s * s - 1.0).abs() < 1e-9,
        "ry_by_cos_sin needs c² + s² = 1, got c={c}, s={s}"
    );
    MatC::mat2(
        Complex64::from_real(c),
        Complex64::from_real(-s),
        Complex64::from_real(s),
        Complex64::from_real(c),
    )
}

/// `dim × dim` discrete Fourier transform, `F[r,c] = ω^{rc}/√dim` with
/// `ω = e^{2πi/dim}`.
///
/// Its first column is the uniform superposition, so `F|0⟩ = |π⟩` — this is
/// the state-preparation transform the paper calls `F` in Theorem 4.3.
pub fn dft(dim: u64) -> MatC {
    let n = dim as usize;
    let norm = 1.0 / (dim as f64).sqrt();
    let w = 2.0 * std::f64::consts::PI / dim as f64;
    MatC::from_fn(n, n, |r, c| {
        Complex64::cis(w * (r as f64) * (c as f64)).scale(norm)
    })
}

/// `dim × dim` cyclic increment (adds 1 mod dim): `X_d|s⟩ = |s+1 mod d⟩`.
///
/// This is the paper's dynamic-update operator `U` (§3): incrementing one
/// multiplicity composes `U` onto the oracle.
pub fn cyclic_increment(dim: u64) -> MatC {
    let n = dim as usize;
    MatC::from_fn(n, n, |r, c| {
        if r == (c + 1) % n {
            Complex64::ONE
        } else {
            Complex64::ZERO
        }
    })
}

/// `dim × dim` diagonal phase `diag(e^{iφ_0}, …)` from a phase function.
pub fn diagonal(dim: u64, mut phase_of: impl FnMut(u64) -> f64) -> MatC {
    let n = dim as usize;
    let mut m = MatC::zeros(n, n);
    for k in 0..n {
        m[(k, k)] = Complex64::cis(phase_of(k as u64));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_math::approx::{approx_eq, approx_eq_c};

    #[test]
    fn standard_gates_are_unitary() {
        assert!(hadamard().is_unitary());
        assert!(pauli_x().is_unitary());
        assert!(pauli_z().is_unitary());
        assert!(phase(1.2345).is_unitary());
        assert!(ry_by_cos_sin(0.6, 0.8).is_unitary());
    }

    #[test]
    fn dft_is_unitary_various_dims() {
        for d in [1u64, 2, 3, 5, 8, 16, 31] {
            assert!(dft(d).is_unitary(), "DFT dim {d}");
        }
    }

    #[test]
    fn dft_first_column_is_uniform() {
        let f = dft(9);
        for r in 0..9 {
            assert!(approx_eq_c(f[(r, 0)], Complex64::from_real(1.0 / 3.0)));
        }
    }

    #[test]
    fn cyclic_increment_permutes() {
        let u = cyclic_increment(4);
        assert!(u.is_unitary());
        // U|3⟩ = |0⟩: column 3, row 0.
        assert!(approx_eq_c(u[(0, 3)], Complex64::ONE));
        assert!(approx_eq_c(u[(1, 0)], Complex64::ONE));
    }

    #[test]
    fn increment_fourth_power_is_identity() {
        let u = cyclic_increment(4);
        let u4 = u.clone() * u.clone() * u.clone() * u;
        for r in 0..4 {
            for c in 0..4 {
                let want = if r == c {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(approx_eq_c(u4[(r, c)], want));
            }
        }
    }

    #[test]
    fn ry_sends_zero_to_cos_sin() {
        let u = ry_by_cos_sin(0.28, (1.0f64 - 0.28 * 0.28).sqrt());
        let v = u.mul_vec(&[Complex64::ONE, Complex64::ZERO]);
        assert!(approx_eq(v[0].re, 0.28));
        assert!(approx_eq(v[1].norm_sqr(), 1.0 - 0.28 * 0.28));
    }

    #[test]
    fn diagonal_phases() {
        let d = diagonal(3, |k| k as f64 * 0.5);
        assert!(d.is_unitary());
        assert!(approx_eq_c(d[(2, 2)], Complex64::cis(1.0)));
        assert!(approx_eq_c(d[(0, 1)], Complex64::ZERO));
    }

    #[test]
    fn hadamard_equals_dft_2() {
        let h = hadamard();
        let f = dft(2);
        for r in 0..2 {
            for c in 0..2 {
                assert!(approx_eq_c(h[(r, c)], f[(r, c)]), "({r},{c})");
            }
        }
    }
}
