//@ path: crates/serve/src/deadline.rs
//@ expect: R1:determinism
// A degraded-serving deadline denominated in wall-clock time: dqs-serve is
// a deterministic crate, so R1 must fire on the import and the call sites.
// Wall clocks make the deadline decision depend on scheduler jitter — two
// runs of the same fault plan could trip at different restart boundaries.
use std::time::Instant;

pub struct WallClockDeadline {
    started: Instant,
    budget_secs: u64,
}

impl WallClockDeadline {
    pub fn start(budget_secs: u64) -> Self {
        Self {
            started: Instant::now(),
            budget_secs,
        }
    }

    pub fn exceeded(&self) -> bool {
        self.started.elapsed().as_secs() >= self.budget_secs
    }
}
