//@ expect: R6:determinism-taint
// dqs-obs may touch the wall clock (it is not a deterministic crate, so R1
// stays quiet) — but the taint still propagates across the crate boundary
// into dqs-core's public API, where exact replay forbids it.
//@ file: crates/obs/src/timing.rs
pub fn helper_time() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
//@ file: crates/core/src/api.rs
pub fn sample_all() -> u64 {
    helper_time()
}
