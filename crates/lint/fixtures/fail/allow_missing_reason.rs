//@ path: crates/core/src/lookup.rs
//@ expect: R0:allow-directive
//@ expect: R3:panic
// A reasonless allow grants nothing: it is reported itself (R0) and the
// unwrap it tried to cover still fires (R3).
pub fn first_element(xs: &[u64]) -> u64 {
    // lint: allow(panic)
    *xs.first().unwrap()
}
