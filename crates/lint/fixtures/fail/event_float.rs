//@ path: crates/obs/src/event.rs
//@ expect: R5:event-purity
// A float payload and float formatting in the event stream: last-ulp
// differences across backends would break stream bit-identity.
pub enum Event {
    Fidelity { name: &'static str, value: f64 },
}

impl Event {
    pub fn to_json(&self) -> String {
        match self {
            Event::Fidelity { name, value } => {
                format!("{{\"name\":\"{name}\",\"value\":{:.12}}}", value)
            }
        }
    }
}
