//@ path: crates/core/src/tidy.rs
//@ expect: R0:unused-allow
// A well-formed directive that suppresses nothing is itself stale: escape
// hatches must stay pinned to a live violation or be deleted. (The used
// twin is pass/allow_with_reason.rs, where the same directive covers a
// real unwrap and both stay silent.)
pub fn add(a: u64, b: u64) -> u64 {
    // lint: allow(panic): legacy — the unwrap this once covered is gone.
    a + b
}
