//@ expect: R7:charge-conservation
// Consuming per-machine oracle answers with no `QueryLedger` charge
// reachable anywhere below the consumer: the read is unbilled.
//@ file: crates/distdb/src/reads.rs
impl OracleSet {
    pub fn total_table(&self) -> Vec<u64> {
        self.totals.clone()
    }
}
//@ file: crates/core/src/fold.rs
fn fold_totals(oracles: &OracleSet) -> u64 {
    oracles.total_table().iter().sum()
}
