//@ path: crates/core/src/timing.rs
//@ expect: R1:determinism
// A deterministic crate reading the wall clock: R1 must fire on the import
// and on the call site.
use std::time::Instant;

pub fn elapsed_ns() -> u64 {
    let start = Instant::now();
    start.elapsed().as_nanos() as u64
}
