//@ path: crates/qsim/src/simd.rs
//@ expect: R4:unsafe
// An unsafe block with no SAFETY justification.
pub fn sum_amps(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..xs.len() {
        acc += unsafe { *xs.get_unchecked(i) };
    }
    acc
}
