//@ expect: R6:determinism-taint
// Mutual recursion: propagation must terminate on the cycle and the taint
// must still surface through it to the public entry point.
//@ file: crates/obs/src/clock.rs
pub fn now_ns() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
//@ file: crates/core/src/walk.rs
pub fn walk(n: u64) -> u64 {
    if n == 0 {
        now_ns()
    } else {
        step(n)
    }
}

fn step(n: u64) -> u64 {
    walk(n - 1)
}
