//@ expect: R7:charge-conservation
// A public sampling entry point that reaches oracle answers but is billed
// on no path: Theorem 4.3 exactness is an accounting claim, every query
// must land in the ledger.
//@ file: crates/distdb/src/reads.rs
impl FaultyOracleSet {
    pub fn answered_count(&self, machine: usize) -> u64 {
        self.counts[machine]
    }
}
//@ file: crates/core/src/entry.rs
pub fn sequential_count(oracles: &FaultyOracleSet) -> u64 {
    oracles.answered_count(0)
}
