//@ expect: R8:error-discard
// Dropping a foreign crate's Result on the floor — with `.ok()` or
// `let _ =` — hides the failure from every caller above.
//@ file: crates/workloads/src/manifest.rs
pub fn load_manifest(text: &str) -> Result<u64, ManifestError> {
    text.trim().parse().map_err(|_| ManifestError::Bad)
}
//@ file: crates/serve/src/warm.rs
pub fn warm_cache(text: &str) {
    load_manifest(text).ok();
}

pub fn warm_quietly(text: &str) {
    let _ = load_manifest(text);
}
