//@ path: crates/core/src/refresh.rs
//@ expect: R9:snapshot-discipline
// A snapshot reader that also advances the version mid-read: sample
// bit-identity is pinned to the snapshot version, so a reader's call chain
// must never reach the version-advancing APIs.
impl DatasetSnapshot {
    pub fn try_with_updates(&self, log: &UpdateLog) -> Result<DatasetSnapshot, UpdateError> {
        rebuild(self, log)
    }
}

pub fn refresh_and_sum(snap: &DatasetSnapshot, log: &UpdateLog) -> u64 {
    match snap.try_with_updates(log) {
        Ok(_) => 1,
        Err(_) => 0,
    }
}
