//@ path: crates/qmath/src/lib.rs
//@ expect: R4:unsafe
// A crate root without #![forbid(unsafe_code)].
#![warn(missing_docs)]

pub mod complex;
