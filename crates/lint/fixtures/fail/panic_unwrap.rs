//@ path: crates/core/src/lookup.rs
//@ expect: R3:panic
// unwrap()/expect() in library code: all-paths exactness means no panic
// may hide on an unexecuted branch.
pub fn first_element(xs: &[u64]) -> u64 {
    let head = xs.first().unwrap();
    let checked = xs.get(0).expect("slice is non-empty");
    *head + *checked
}
