//@ path: crates/distdb/src/charging.rs
//@ expect: R2:ledger-pairing
// A ledger charge with no obs counter in the same function: the two
// accountings can drift and reconciliation would only catch it at runtime.
impl Oracles {
    pub fn apply_oj(&self, machine: usize) {
        self.ledger.record_sequential(machine);
        self.do_apply(machine);
    }

    pub fn apply_round(&self) {
        self.ledger.record_parallel_round();
        self.do_round();
    }
}
