//@ path: crates/distdb/src/charging.rs
//@ expect: R7:charge-conservation
// A ledger charge with no obs counter anywhere below it in the call graph:
// the two accountings can drift and reconciliation would only catch it at
// runtime. (Pairing used to be R2's same-function check; it is now R7's
// interprocedural walk, so charging here and emitting in a callee is fine —
// emitting nowhere is not.)
impl Oracles {
    pub fn apply_oj(&self, machine: usize) {
        self.ledger.record_sequential(machine);
        self.do_apply(machine);
    }

    pub fn apply_round(&self) {
        self.ledger.record_parallel_round();
        self.do_round();
    }
}
