//@ expect: R6:determinism-taint
// Method-call dispatch is resolved by name to every impl: the wall-clock
// impl taints the deterministic caller even though the call goes through a
// trait object.
//@ file: crates/obs/src/wall.rs
impl TimeSource for WallClock {
    fn tick(&self) -> u64 {
        Instant::now().elapsed().as_nanos() as u64
    }
}
//@ file: crates/core/src/poll.rs
pub fn poll(src: &dyn TimeSource) -> u64 {
    src.tick()
}
