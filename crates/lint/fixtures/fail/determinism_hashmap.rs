//@ path: crates/distdb/src/cache.rs
//@ expect: R1:determinism
// Randomly-seeded hash iteration in a deterministic crate.
use std::collections::HashMap;

pub fn histogram(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
