//@ path: crates/core/src/shortcut.rs
//@ expect: R2:ledger-pairing
// Charging the ledger from outside dqs-db bypasses the charging wrappers
// (and their obs pairing) entirely.
pub fn bill_directly(ledger: &QueryLedger) {
    ledger.record_sequential(0);
}
