//@ path: crates/core/src/shortcut.rs
//@ expect: R2:ledger-pairing
//@ expect: R7:charge-conservation
// Charging the ledger from outside dqs-db bypasses the charging wrappers
// (and their obs pairing) entirely: R2 flags the out-of-crate charge, R7
// the missing counter emission below it.
pub fn bill_directly(ledger: &QueryLedger) {
    ledger.record_sequential(0);
}
