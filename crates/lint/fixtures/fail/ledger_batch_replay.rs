//@ path: crates/core/src/sequential.rs
//@ expect: R2:ledger-pairing
//@ expect: R7:charge-conservation
// A batch replay that bills tenants by poking the ledger directly instead
// of going through the dqs-db charging wrappers loses the obs pairing —
// the replayed event stream would no longer match B solo runs. R2 flags
// the out-of-crate charge; R7 additionally sees no counter emission
// anywhere below it.
pub fn replay_charges(ledger: &QueryLedger, batch: usize, per_member: u64) {
    for _ in 0..batch {
        ledger.record_sequential(per_member);
    }
}
