//@ path: crates/serve/src/admit.rs
//@ expect: R8:error-discard
// A stringly-typed error on a public API: callers cannot match on it, so
// every failure path collapses into "log the message".
pub fn admit(tenant_len: usize, budget: u64) -> Result<u64, String> {
    if budget == 0 {
        return Err(format!("tenant of len {tenant_len}: zero budget"));
    }
    Ok(budget)
}
