//@ path: crates/qsim/src/radix.rs
//@ expect: R1:determinism
// Wall-clock-driven partition sizing inside the radix merge: the kernel
// crates are deterministic, so R1 must fire on the import and the call.
use std::time::Instant;

pub fn partition_budget(scratch: &mut RadixScratch, len: usize) -> usize {
    let t0 = Instant::now();
    scratch.histogram.clear();
    let spent = t0.elapsed().as_nanos() as usize;
    len / (1 + spent % 8)
}
