// The same cross-crate chain as the fail twin, but the clock sits behind a
// declared barrier: the boundary fn vouches that the nondeterminism never
// escapes into its results, so the taint stops there. The directive is
// *used* (taint reaches it), so no R0:unused-allow either.
//@ file: crates/obs/src/timing.rs
// lint: allow(determinism-taint): the duration feeds the span side-table
// only; the returned handle carries no timing data.
pub fn helper_time() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
//@ file: crates/core/src/api.rs
pub fn sample_all() -> u64 {
    helper_time()
}
