//@ path: crates/distdb/src/cache.rs
// Deterministic alternatives stay quiet: BTreeMap in production code, a
// std HashMap inside #[cfg(test)], and an allow-annotated sanctioned use.
use std::collections::BTreeMap;

pub fn histogram(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

// lint: allow(determinism): keys are only probed, never iterated, so the
// random seed cannot influence any output.
pub type ProbeSet = std::collections::HashSet<u64>;

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m[&1], 2);
    }
}
