//@ path: crates/obs/src/event.rs
// Static names and integers only — the real event vocabulary's shape.
pub enum Event {
    Counter { name: &'static str, delta: u64 },
    Gauge { name: &'static str, value: i64 },
}

impl Event {
    pub fn to_json(&self) -> String {
        match self {
            Event::Counter { name, delta } => {
                format!("{{\"name\":\"{name}\",\"delta\":{delta}}}")
            }
            Event::Gauge { name, value } => {
                format!("{{\"name\":\"{name}\",\"value\":{value}}}")
            }
        }
    }
}
