//@ path: crates/core/src/sequential.rs
// The batched replay charges every member through the dqs-db wrappers, so
// each replayed charge carries the same obs pairing as the solo run it
// mirrors; reading totals afterwards is unrestricted.
pub fn replay_charges<S>(oracles: &OracleSet, batch: usize) -> u64 {
    for _ in 0..batch {
        oracles.charge_all_sequential();
        oracles.charge_all_sequential();
    }
    oracles.ledger().total_sequential()
}
