// Handled foreign Results stay clean, and discarding a *same-crate*
// Result is local policy, not a cross-crate hygiene violation.
//@ file: crates/workloads/src/manifest.rs
pub fn load_manifest(text: &str) -> Result<u64, ManifestError> {
    text.trim().parse().map_err(|_| ManifestError::Bad)
}
//@ file: crates/serve/src/warm.rs
pub fn warm_cache(text: &str) -> u64 {
    match load_manifest(text) {
        Ok(v) => v,
        Err(_) => 0,
    }
}

fn local_helper() -> Result<(), ServeError> {
    Ok(())
}

pub fn tidy() {
    let _ = local_helper();
}
