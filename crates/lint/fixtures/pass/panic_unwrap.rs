//@ path: crates/core/src/lookup.rs
// The three sanctioned shapes: typed errors, non-panicking combinators
// (unwrap_or_else is a different identifier and must not fire), a justified
// allow-comment, and test-only unwraps.
pub fn first_element(xs: &[u64]) -> Result<u64, SampleError> {
    xs.first().copied().ok_or(SampleError::InvalidShotBudget)
}

pub fn first_or_zero(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or_else(|| 0)
}

pub fn anchor(xs: &[u64]) -> u64 {
    // lint: allow(panic): callers pass the amplification schedule, which is
    // non-empty by construction (plan_iterations >= 1).
    *xs.first().expect("non-empty schedule")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let xs = vec![1u64];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
