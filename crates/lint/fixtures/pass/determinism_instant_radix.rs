//@ path: crates/qsim/src/radix.rs
// The deterministic replacement: partition counts derived from the input
// length alone, scratch buffers reused across calls. Banned names inside
// comments (Instant::now) must not fire.
pub fn partition_budget(scratch: &mut RadixScratch, len: usize) -> usize {
    // Never Instant::now here — the partition count is a pure function of
    // the input length, so every thread count sees the same split.
    scratch.histogram.clear();
    scratch.histogram.resize(len.min(256), 0);
    scratch.histogram.len()
}
