// The same consumer, but a dqs-db charging wrapper is on the path: the
// read is billed (and the wrapper itself pairs its charge with the obs
// counter, satisfying R7's emission walk).
//@ file: crates/distdb/src/reads.rs
impl OracleSet {
    pub fn total_table(&self) -> Vec<u64> {
        self.totals.clone()
    }

    pub fn charge_and_total(&self, machine: usize) -> Vec<u64> {
        self.ledger.record_sequential(machine);
        dqs_obs::machine_counter(dqs_obs::names::ORACLE_QUERY, machine, 1);
        self.total_table()
    }
}
//@ file: crates/core/src/fold.rs
fn fold_totals(oracles: &OracleSet) -> u64 {
    let billed: u64 = oracles.charge_and_total(0).iter().sum();
    let raw: u64 = oracles.total_table().iter().sum();
    billed + raw
}
