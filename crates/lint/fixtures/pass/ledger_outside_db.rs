//@ path: crates/core/src/shortcut.rs
// Consumers go through the dqs-db charging wrappers; reading ledger totals
// is fine, only charging is restricted.
pub fn run_phase(oracles: &OracleSet, state: &mut S, regs: OracleRegisters) -> u64 {
    oracles.apply_all_fused(state, regs, false);
    oracles.ledger().total_sequential()
}
