//@ path: crates/serve/src/admit.rs
// Typed errors pass; so does the `io::Result` alias, whose `String` is the
// Ok payload, not the error arm.
pub fn admit(tenant_len: usize, budget: u64) -> Result<u64, AdmitError> {
    if budget == 0 {
        return Err(AdmitError::ZeroBudget { tenant_len });
    }
    Ok(budget)
}

pub fn read_names(dir: &Path) -> io::Result<Vec<String>> {
    list_dir(dir)
}
