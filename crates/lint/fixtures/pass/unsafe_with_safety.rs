//@ path: crates/qsim/src/simd.rs
// The justified form: a SAFETY comment immediately above the unsafe block.
pub fn sum_amps(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..xs.len() {
        // SAFETY: i < xs.len() by the loop bound, so the unchecked index
        // is always in range.
        acc += unsafe { *xs.get_unchecked(i) };
    }
    acc
}
