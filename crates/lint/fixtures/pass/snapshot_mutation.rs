//@ path: crates/core/src/refresh.rs
// Readers read; the version advance lives on the mutator-only apply path,
// which is not itself pinned to a snapshot and is therefore free to call
// the advancing API.
impl DatasetSnapshot {
    pub fn try_with_updates(&self, log: &UpdateLog) -> Result<DatasetSnapshot, UpdateError> {
        rebuild(self, log)
    }
}

pub fn sum_support(snap: &DatasetSnapshot) -> u64 {
    snap.support_len() as u64
}

pub fn advance(service: &SamplingService, log: &UpdateLog) -> u64 {
    match service.current().try_with_updates(log) {
        Ok(_) => 1,
        Err(_) => 0,
    }
}
