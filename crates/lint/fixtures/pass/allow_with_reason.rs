//@ path: crates/core/src/lookup.rs
// A directive with a reason covers its code line, even across a multi-line
// comment.
pub fn first_element(xs: &[u64]) -> u64 {
    // lint: allow(panic): the caller guarantees xs is the non-empty support
    // of a normalized state.
    *xs.first().unwrap()
}
