//@ path: crates/distdb/src/charging.rs
// Every charge emits its matching counter in the same function — the shape
// of the 7 real charge sites in oracle.rs / faults.rs.
impl Oracles {
    pub fn apply_oj(&self, machine: usize) {
        self.ledger.record_sequential(machine);
        dqs_obs::machine_counter(dqs_obs::names::ORACLE_QUERY, machine, 1);
        self.do_apply(machine);
    }

    pub fn apply_round(&self) {
        self.ledger.record_parallel_round();
        dqs_obs::counter(dqs_obs::names::ORACLE_ROUND, 1);
        self.do_round();
    }
}
