//@ path: crates/core/src/bench_hook.rs
// cfg(test)-only code is outside the production call graph: the clock in
// the test helper cannot taint the public API, and its Instant is not an
// R1 hit either (test code is exempt).
pub fn sample_all() -> u64 {
    7
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn timed() -> u64 {
        let t = Instant::now();
        let v = sample_all();
        let _elapsed = t.elapsed();
        v
    }

    #[test]
    fn sample_is_fast() {
        assert_eq!(timed(), 7);
    }
}
