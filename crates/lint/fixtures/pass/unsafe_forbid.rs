//@ path: crates/qmath/src/lib.rs
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
