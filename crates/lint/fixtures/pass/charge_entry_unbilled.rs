// The entry point goes through the probing wrapper, which charges the
// ledger and emits the paired counter before handing out the answer.
//@ file: crates/distdb/src/reads.rs
impl FaultyOracleSet {
    pub fn answered_count(&self, machine: usize) -> u64 {
        self.counts[machine]
    }

    pub fn probe_count(&self, machine: usize) -> u64 {
        self.ledger.record_sequential(machine);
        dqs_obs::machine_counter(dqs_obs::names::ORACLE_QUERY, machine, 1);
        self.answered_count(machine)
    }
}
//@ file: crates/core/src/entry.rs
pub fn sequential_count(oracles: &FaultyOracleSet) -> u64 {
    oracles.probe_count(0)
}
