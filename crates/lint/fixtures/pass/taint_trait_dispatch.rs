// The deterministic impl of the same trait: dispatch resolves to it, finds
// no nondeterminism, and the caller stays clean.
//@ file: crates/core/src/logical.rs
impl TimeSource for LogicalClock {
    fn tick(&self) -> u64 {
        self.ticks + 1
    }
}
//@ file: crates/core/src/poll.rs
pub fn poll(src: &dyn TimeSource) -> u64 {
    src.tick()
}
