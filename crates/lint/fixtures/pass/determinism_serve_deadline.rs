//@ path: crates/serve/src/deadline.rs
// The deterministic replacement the serving layer actually uses: deadlines
// are budgets on *charged oracle attempts*, checked at restart boundaries,
// so the trip point is a pure function of the fault plan and retry policy.
// Mentions of the banned names in comments (Instant::now) must not fire.
pub struct AttemptDeadline {
    charged: u64,
    budget: Option<u64>,
}

impl AttemptDeadline {
    pub fn new(budget: Option<u64>) -> Self {
        Self { charged: 0, budget }
    }

    /// Charges `attempts` and reports whether the budget is exhausted —
    /// never consults a wall clock (no Instant::now here).
    pub fn charge(&mut self, attempts: u64) -> bool {
        self.charged += attempts;
        self.budget.is_some_and(|b| self.charged > b)
    }
}
