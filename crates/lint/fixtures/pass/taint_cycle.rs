//@ path: crates/core/src/walk.rs
// The same mutual recursion with no nondeterminism source anywhere in the
// cycle: propagation terminates and nothing is tainted.
pub fn walk(n: u64) -> u64 {
    if n == 0 {
        1
    } else {
        step(n)
    }
}

fn step(n: u64) -> u64 {
    walk(n - 1)
}
