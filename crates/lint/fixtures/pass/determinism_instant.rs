//@ path: crates/core/src/timing.rs
// The deterministic replacement: a logical tick counter. Mentions of the
// banned names in comments (Instant::now) and strings must not fire.
pub struct TickClock {
    ticks: u64,
}

impl TickClock {
    pub fn tick(&mut self) -> u64 {
        self.ticks += 1;
        let _why = "we never call Instant::now here";
        self.ticks
    }
}
