//! Fixture corpus tests: every rule must fire on its `fail/` fixture and
//! stay quiet on its `pass/` twin.
//!
//! Fixture headers:
//! * `//@ path: <workspace-relative path>` — the path the file pretends to
//!   live at (drives crate classification).
//! * `//@ expect: <rule id>` — (fail fixtures only) a rule that must fire.
//!   Any rule firing that is *not* listed is an error too.

use dqs_lint::{lint_source, FileCtx};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_dir(kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

struct Fixture {
    name: String,
    ctx: FileCtx,
    text: String,
    expects: BTreeSet<String>,
}

fn load(kind: &str) -> Vec<Fixture> {
    let dir = fixtures_dir(kind);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().map_or(true, |e| e != "rs") {
            continue;
        }
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let mut virtual_path = None;
        let mut expects = BTreeSet::new();
        for line in text.lines() {
            if let Some(p) = line.strip_prefix("//@ path:") {
                virtual_path = Some(p.trim().to_string());
            } else if let Some(r) = line.strip_prefix("//@ expect:") {
                expects.insert(r.trim().to_string());
            }
        }
        let virtual_path =
            virtual_path.unwrap_or_else(|| panic!("{name}: missing `//@ path:` header"));
        out.push(Fixture {
            name,
            ctx: FileCtx::from_rel_path(&virtual_path),
            text,
            expects,
        });
    }
    assert!(!out.is_empty(), "no fixtures found under {}", dir.display());
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

#[test]
fn every_fail_fixture_fires_exactly_its_expected_rules() {
    for f in load("fail") {
        assert!(
            !f.expects.is_empty(),
            "{}: fail fixture needs `//@ expect:` headers",
            f.name
        );
        let diags = lint_source(&f.ctx, &f.text);
        let fired: BTreeSet<String> = diags.iter().map(|d| d.rule.to_string()).collect();
        for want in &f.expects {
            assert!(
                fired.contains(want),
                "{}: expected {} to fire, got {:?}",
                f.name,
                want,
                diags
            );
        }
        for got in &fired {
            assert!(
                f.expects.contains(got),
                "{}: unexpected rule {} fired: {:?}",
                f.name,
                got,
                diags
            );
        }
    }
}

#[test]
fn every_pass_fixture_is_clean() {
    for f in load("pass") {
        let diags = lint_source(&f.ctx, &f.text);
        assert!(
            diags.is_empty(),
            "{}: pass fixture must be clean, got {:?}",
            f.name,
            diags
        );
    }
}

#[test]
fn corpus_covers_every_rule() {
    let covered: BTreeSet<String> = load("fail")
        .iter()
        .flat_map(|f| f.expects.clone())
        .collect();
    for rule in [
        "R0:allow-directive",
        "R1:determinism",
        "R2:ledger-pairing",
        "R3:panic",
        "R4:unsafe",
        "R5:event-purity",
    ] {
        assert!(
            covered.contains(rule),
            "no fail fixture exercises {rule}; add one under crates/lint/fixtures/fail/"
        );
    }
}

#[test]
fn diagnostics_point_at_the_virtual_path() {
    let fixtures = load("fail");
    let f = &fixtures[0];
    let diags = lint_source(&f.ctx, &f.text);
    assert!(diags.iter().all(|d| d.path == f.ctx.path));
}
