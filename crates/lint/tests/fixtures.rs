//! Fixture corpus tests: every rule must fire on its `fail/` fixture and
//! stay quiet on its `pass/` twin.
//!
//! Fixture headers:
//! * `//@ path: <workspace-relative path>` — (single-file fixtures) the
//!   path the file pretends to live at (drives crate classification).
//! * `//@ file: <workspace-relative path>` — starts a new virtual file in
//!   a multi-file fixture; everything until the next marker belongs to it.
//!   The interprocedural rules (R6–R9) see all files as one workspace.
//! * `//@ expect: <rule id>` — (fail fixtures only) a rule that must fire.
//!   Any rule firing that is *not* listed is an error too.

use dqs_lint::{lint_files, FileCtx};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_dir(kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

struct Fixture {
    name: String,
    files: Vec<(FileCtx, String)>,
    expects: BTreeSet<String>,
}

impl Fixture {
    fn lint(&self) -> Vec<dqs_lint::Diagnostic> {
        lint_files(self.files.clone())
    }
}

/// Splits fixture text into its virtual files: one `//@ path:` file, or a
/// sequence of `//@ file:` sections.
fn split_files(name: &str, text: &str) -> Vec<(FileCtx, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    let mut single_path = None;
    for line in text.lines() {
        if let Some(p) = line.strip_prefix("//@ file:") {
            out.push((p.trim().to_string(), String::new()));
        } else if let Some(p) = line.strip_prefix("//@ path:") {
            single_path = Some(p.trim().to_string());
        } else if let Some((_, body)) = out.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    if out.is_empty() {
        let path =
            single_path.unwrap_or_else(|| panic!("{name}: missing `//@ path:`/`//@ file:` header"));
        return vec![(FileCtx::from_rel_path(&path), text.to_string())];
    }
    assert!(
        single_path.is_none(),
        "{name}: `//@ path:` and `//@ file:` cannot be mixed"
    );
    out.into_iter()
        .map(|(p, body)| (FileCtx::from_rel_path(&p), body))
        .collect()
}

fn load(kind: &str) -> Vec<Fixture> {
    let dir = fixtures_dir(kind);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().map_or(true, |e| e != "rs") {
            continue;
        }
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let expects = text
            .lines()
            .filter_map(|l| l.strip_prefix("//@ expect:"))
            .map(|r| r.trim().to_string())
            .collect();
        out.push(Fixture {
            files: split_files(&name, &text),
            name,
            expects,
        });
    }
    assert!(!out.is_empty(), "no fixtures found under {}", dir.display());
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

#[test]
fn every_fail_fixture_fires_exactly_its_expected_rules() {
    for f in load("fail") {
        assert!(
            !f.expects.is_empty(),
            "{}: fail fixture needs `//@ expect:` headers",
            f.name
        );
        let diags = f.lint();
        let fired: BTreeSet<String> = diags.iter().map(|d| d.rule.to_string()).collect();
        for want in &f.expects {
            assert!(
                fired.contains(want),
                "{}: expected {} to fire, got {:?}",
                f.name,
                want,
                diags
            );
        }
        for got in &fired {
            assert!(
                f.expects.contains(got),
                "{}: unexpected rule {} fired: {:?}",
                f.name,
                got,
                diags
            );
        }
    }
}

#[test]
fn every_pass_fixture_is_clean() {
    for f in load("pass") {
        let diags = f.lint();
        assert!(
            diags.is_empty(),
            "{}: pass fixture must be clean, got {:?}",
            f.name,
            diags
        );
    }
}

#[test]
fn corpus_covers_every_rule() {
    let covered: BTreeSet<String> = load("fail")
        .iter()
        .flat_map(|f| f.expects.clone())
        .collect();
    for rule in [
        "R0:allow-directive",
        "R0:unused-allow",
        "R1:determinism",
        "R2:ledger-pairing",
        "R3:panic",
        "R4:unsafe",
        "R5:event-purity",
        "R6:determinism-taint",
        "R7:charge-conservation",
        "R8:error-discard",
        "R9:snapshot-discipline",
    ] {
        assert!(
            covered.contains(rule),
            "no fail fixture exercises {rule}; add one under crates/lint/fixtures/fail/"
        );
    }
}

#[test]
fn diagnostics_point_at_the_virtual_paths() {
    for f in load("fail") {
        let paths: BTreeSet<&str> = f.files.iter().map(|(c, _)| c.path.as_str()).collect();
        for d in f.lint() {
            assert!(
                paths.contains(d.path.as_str()),
                "{}: diagnostic points outside the fixture: {d:?}",
                f.name
            );
        }
    }
}
