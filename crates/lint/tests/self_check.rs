//! The linter must run clean on its own workspace — the executable form of
//! "the invariants hold today" — and must still *fail* on a seeded
//! violation (the negative test CI re-runs by injecting a canary file).

use dqs_lint::{find_root, lint_workspace, report_json};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_root(manifest.parent().expect("crates/").parent().expect("root")).expect("workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let diags = lint_workspace(&repo_root()).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "dqs-lint violations in the workspace:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violation_fails_a_workspace_scan() {
    // Build a minimal throwaway workspace with one bad file and check the
    // walker + rules reject it end to end.
    let dir = std::env::temp_dir().join(format!("dqs-lint-canary-{}", std::process::id()));
    let src = dir.join("crates").join("core").join("src");
    std::fs::create_dir_all(&src).expect("temp workspace");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("canary source");

    let diags = lint_workspace(&dir).expect("canary scan");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(diags.len(), 1, "exactly the canary should fire: {diags:?}");
    assert_eq!(diags[0].rule, "R3:panic");
    assert_eq!(diags[0].path, "crates/core/src/lib.rs");
    // The machine-readable report carries the same content.
    let json = report_json(&diags);
    assert!(json.contains("\"count\": 1"));
    assert!(json.contains("R3:panic"));
}
