//! # dqs-lint
//!
//! The workspace invariant linter: a dependency-free, token-level static
//! scanner that enforces the repo's correctness contracts over **all**
//! paths, not just the ones the test suite happens to execute.
//!
//! The exactness story of this reproduction — fidelity exactly 1
//! (BHMT zero-error amplitude amplification, Theorem 4.3), every oracle
//! query billed to the `QueryLedger`, and bit-for-bit reproducible runs
//! for the Theorem 5.1/5.2 lower-bound experiments — previously lived in
//! debug-asserts and proptests that only fire on executed paths. `dqs-lint`
//! checks the same invariants at the source level:
//!
//! The linter runs in two phases. Phase 1 ([`parser`], [`callgraph`])
//! builds a workspace model: every production `fn` across every crate,
//! with a name-resolved, dependency-filtered call graph between them.
//! Phase 2 runs per-file token rules (R1–R5) and interprocedural rules
//! (R6–R9) over that model:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `R0:allow-directive` / `R0:unused-allow` / `R0:stale-baseline` | escape-hatch hygiene: directives name a real rule, carry a reason, and suppress something |
//! | `R1:determinism`    | deterministic crates never touch wall clocks, OS-seeded RNGs, or randomly-seeded hash collections |
//! | `R2:ledger-pairing` | no crate outside dqs-db charges the `QueryLedger` directly |
//! | `R3:panic`          | no `unwrap()`/`expect()` in non-test library code |
//! | `R4:unsafe`         | `#![forbid(unsafe_code)]` in every crate root; any `unsafe` carries a `// SAFETY:` comment |
//! | `R5:event-purity`   | no `f64`/`f32` payloads or float formatting in the dqs-obs event stream |
//! | `R6:determinism-taint` | nondeterminism sources cannot reach a deterministic crate's public API through any call chain |
//! | `R7:charge-conservation` | every charge reaches its obs counter; every oracle-answer consumer and public sampling entry point reaches a ledger charge |
//! | `R8:error-discard`  | no `let _ =`/`.ok()` discards of cross-crate `Result`s; public APIs return typed errors |
//! | `R9:snapshot-discipline` | snapshot-pinned readers never reach version-advancing APIs in the same call chain |
//!
//! Run it with `cargo run --release -p dqs-lint` (add `--format json` for
//! machine-readable output). Escape hatch:
//! `// lint: allow(<rule>): <reason>` on the offending line or the line
//! above — the reason is mandatory, and a directive that suppresses
//! nothing is itself an error. Workspace-wide waivers live in the
//! suppression baseline (`crates/lint/lint.baseline`, regenerated with
//! `--write-baseline`); stale entries are errors too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod callgraph;
pub mod diagnostics;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod taint;
pub mod workspace;

pub use diagnostics::{report_json, Diagnostic};
pub use rules::{lint_files, lint_source, FileCtx};
pub use workspace::{find_root, lint_workspace, production_sources};
