//! # dqs-lint
//!
//! The workspace invariant linter: a dependency-free, token-level static
//! scanner that enforces the repo's correctness contracts over **all**
//! paths, not just the ones the test suite happens to execute.
//!
//! The exactness story of this reproduction — fidelity exactly 1
//! (BHMT zero-error amplitude amplification, Theorem 4.3), every oracle
//! query billed to the `QueryLedger`, and bit-for-bit reproducible runs
//! for the Theorem 5.1/5.2 lower-bound experiments — previously lived in
//! debug-asserts and proptests that only fire on executed paths. `dqs-lint`
//! checks the same invariants at the source level:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `R1:determinism`    | deterministic crates never touch wall clocks, OS-seeded RNGs, or randomly-seeded hash collections |
//! | `R2:ledger-pairing` | every ledger charge in dqs-db emits its obs counter in the same function; no charges outside dqs-db |
//! | `R3:panic`          | no `unwrap()`/`expect()` in non-test library code |
//! | `R4:unsafe`         | `#![forbid(unsafe_code)]` in every crate root; any `unsafe` carries a `// SAFETY:` comment |
//! | `R5:event-purity`   | no `f64`/`f32` payloads or float formatting in the dqs-obs event stream |
//!
//! Run it with `cargo run --release -p dqs-lint` (add `--format json` for
//! machine-readable output). Escape hatch:
//! `// lint: allow(<rule>): <reason>` on the offending line or the line
//! above — the reason is mandatory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use diagnostics::{report_json, Diagnostic};
pub use rules::{lint_source, FileCtx};
pub use workspace::{find_root, lint_workspace, production_sources};
