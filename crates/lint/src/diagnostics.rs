//! Lint diagnostics and their text / JSON renderings.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `R3:panic`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Minimal JSON string escaping (the subset `jsonv` reads back).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// Renders the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape(self.rule),
            escape(&self.path),
            self.line,
            escape(&self.message)
        )
    }
}

/// Renders a full report: `{"count": N, "violations": [...]}`.
pub fn report_json(diags: &[Diagnostic]) -> String {
    let body: Vec<String> = diags.iter().map(|d| format!("  {}", d.to_json())).collect();
    format!(
        "{{\n\"count\": {},\n\"violations\": [\n{}\n]\n}}",
        diags.len(),
        body.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let d = Diagnostic {
            rule: "R3:panic",
            path: "crates/core/src/a.rs".to_string(),
            line: 7,
            message: "say \"no\"".to_string(),
        };
        assert_eq!(
            d.to_json(),
            "{\"rule\":\"R3:panic\",\"path\":\"crates/core/src/a.rs\",\"line\":7,\"message\":\"say \\\"no\\\"\"}"
        );
        assert!(report_json(&[d]).starts_with("{\n\"count\": 1,"));
    }
}
