//! Phase-1 item parsing: `fn` items and their call sites, extracted from
//! the lexed token stream.
//!
//! This sits between the lexer and the call graph. It is *not* a Rust
//! parser — it recognizes exactly the item structure the interprocedural
//! rules (R6–R9) need: function definitions with their visibility, the
//! enclosing `impl`/`trait` type, parameter and return signatures, and
//! body spans; plus every call site inside a body, classified as a free
//! call, a `Type::assoc(..)` call, or a `.method(..)` call. Macro
//! invocations (`name!(..)`) are skipped — they expand to code the linter
//! cannot see, and treating the macro name as a callee would fabricate
//! edges. Test-masked items are parsed but flagged, so the graph builder
//! can keep `#[cfg(test)]`-only functions out of the production model.

use crate::analysis::{innermost_body, match_brace, test_mask};
use crate::lexer::{Kind, Lexed, Tok};

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `pub fn` — restricted forms (`pub(crate)`, `pub(super)`) count as
    /// private: they are not part of the crate's public API surface.
    pub is_pub: bool,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// The enclosing `impl Type` / `impl Trait for Type` / `trait Type`
    /// block's type name, if any (last path segment).
    pub self_type: Option<String>,
    /// Token texts of the parameter list (between the signature parens).
    pub params: Vec<String>,
    /// Token texts of the return type (between `->` and the body/`;`,
    /// stopping at a `where` clause).
    pub ret: Vec<String>,
    /// Token index of the `fn` keyword in the file's stream.
    pub fn_tok: usize,
    /// Body token span `(open_brace, close_brace)`; `None` for bodyless
    /// trait-method declarations.
    pub body: Option<(usize, usize)>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallItem {
    /// Index (into the file's [`FnItem`] list) of the innermost enclosing
    /// function.
    pub caller: usize,
    /// Callee name (the identifier directly before the argument parens).
    pub name: String,
    /// `Type` in a `Type::name(..)` call (with `Self` already resolved to
    /// the enclosing impl type, when known).
    pub qualifier: Option<String>,
    /// True for `.name(..)` method-call syntax.
    pub is_method: bool,
    /// 1-based line of the callee identifier.
    pub line: u32,
}

/// Everything phase 1 extracts from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Call sites, attributed to their innermost enclosing function.
    pub calls: Vec<CallItem>,
}

/// Keywords that can directly precede `(` without being a call head.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "let", "mut", "ref", "move", "in",
    "as", "where", "use", "pub", "crate", "mod", "struct", "enum", "trait", "impl", "type",
    "const", "static", "fn", "unsafe", "extern", "dyn", "break", "continue", "async", "await",
    "yield", "box", "self", "super",
];

/// `impl`/`trait` scope: the type name and the body's token span.
struct TypeScope {
    name: String,
    open: usize,
    close: usize,
}

/// Skips a balanced `<...>` group starting at `open` (which must be `<`);
/// returns the index just past the matching `>`. `->` inside is impossible
/// in the positions we scan (generic parameter lists), and `>>` arrives as
/// two single-char tokens, so plain depth counting is exact.
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Index of the `)` matching the `(` at `open` (last token if unbalanced).
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Collects every `impl`/`trait` block with the type name it implements
/// (for `impl Trait for Type`, the `Type`).
fn type_scopes(toks: &[Tok]) -> Vec<TypeScope> {
    let n = toks.len();
    let mut out = Vec::new();
    for i in 0..n {
        if toks[i].kind != Kind::Ident || (toks[i].text != "impl" && toks[i].text != "trait") {
            continue;
        }
        // `impl` may also appear in `impl Trait` return/argument position;
        // those never reach a `{` before a `;`/`)` at depth 0 — the scan
        // below simply finds no body and moves on.
        let mut j = i + 1;
        if j < n && toks[j].text == "<" {
            j = skip_angles(toks, j);
        }
        // Walk the header, remembering the last path segment seen at angle
        // depth 0; `for` resets it (the implementing type follows).
        let mut last_seg: Option<String> = None;
        let mut found_body = None;
        while j < n {
            let t = &toks[j];
            match t.text.as_str() {
                "{" => {
                    found_body = Some(j);
                    break;
                }
                ";" | ")" | "=" => break,
                "for" => last_seg = None,
                "where" => {
                    // Type position is over; scan on for the body brace.
                    while j < n && toks[j].text != "{" && toks[j].text != ";" {
                        j += 1;
                    }
                    continue;
                }
                "<" => {
                    j = skip_angles(toks, j);
                    continue;
                }
                _ => {
                    if t.kind == Kind::Ident && t.text != "dyn" && t.text != "mut" {
                        last_seg = Some(t.text.clone());
                    }
                }
            }
            j += 1;
        }
        if let (Some(open), Some(name)) = (found_body, last_seg) {
            let close = match_brace(toks, open);
            out.push(TypeScope { name, open, close });
        }
    }
    out
}

/// The innermost type scope containing token `idx`.
fn scope_at(scopes: &[TypeScope], idx: usize) -> Option<&TypeScope> {
    scopes
        .iter()
        .filter(|s| s.open < idx && idx < s.close)
        .min_by_key(|s| s.close - s.open)
}

/// True when the token before `fn_idx` (skipping fn-qualifier keywords)
/// is a bare `pub`.
fn is_pub_fn(toks: &[Tok], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        match toks[k].text.as_str() {
            "const" | "async" | "unsafe" | "extern" => continue,
            _ => {}
        }
        if toks[k].kind == Kind::Str {
            // `extern "C"` ABI string.
            continue;
        }
        // `pub(crate) fn` ends with `)` here — restricted, not public API.
        return toks[k].text == "pub" && toks[k].kind == Kind::Ident;
    }
    false
}

/// Parses one lexed file into its functions and call sites.
pub fn parse_file(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.toks;
    let n = toks.len();
    let mask = test_mask(toks);
    let scopes = type_scopes(toks);
    let mut out = ParsedFile::default();

    // Pass 1: function items.
    let mut def_name_idx = Vec::new(); // token indices that are def names
    for i in 0..n {
        if toks[i].kind != Kind::Ident || toks[i].text != "fn" {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            // `fn(` — a function-pointer type, not an item.
            continue;
        }
        def_name_idx.push(i + 1);
        // Optional generics after the name.
        let mut j = i + 2;
        if j < n && toks[j].text == "<" {
            j = skip_angles(toks, j);
        }
        let (params, mut k) = if j < n && toks[j].text == "(" {
            let close = match_paren(toks, j);
            (
                toks[j + 1..close.min(n)]
                    .iter()
                    .map(|t| t.text.clone())
                    .collect(),
                close + 1,
            )
        } else {
            (Vec::new(), j)
        };
        // Return type: `-> ...` until body `{`, `;`, or `where`.
        let mut ret = Vec::new();
        let mut body = None;
        let mut in_ret = false;
        while k < n {
            let t = &toks[k];
            match t.text.as_str() {
                "{" => {
                    body = Some((k, match_brace(toks, k)));
                    break;
                }
                ";" => break,
                "where" => {
                    in_ret = false;
                    k += 1;
                    continue;
                }
                "-" if matches!(toks.get(k + 1), Some(u) if u.text == ">") => {
                    in_ret = true;
                    k += 2;
                    continue;
                }
                _ => {
                    if in_ret {
                        ret.push(t.text.clone());
                    }
                }
            }
            k += 1;
        }
        out.fns.push(FnItem {
            name: name_tok.text.clone(),
            line: toks[i].line,
            is_pub: is_pub_fn(toks, i),
            is_test: mask[i],
            self_type: scope_at(&scopes, i).map(|s| s.name.clone()),
            params,
            ret,
            fn_tok: i,
            body,
        });
    }

    // Pass 2: call sites, attributed to the innermost enclosing fn body.
    let bodies: Vec<(usize, usize)> = out.fns.iter().filter_map(|f| f.body).collect();
    let body_to_fn = |span: (usize, usize)| -> Option<usize> {
        out.fns.iter().position(|f| f.body == Some(span))
    };
    for j in 0..n {
        let t = &toks[j];
        if t.kind != Kind::Ident || mask[j] {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if def_name_idx.binary_search(&j).is_ok() {
            continue;
        }
        // A call head is an ident followed by `(` or by turbofish
        // `::<..>(`. Macro invocations (`name!(..)`) fail both arms — the
        // `!` sits where the paren would be — and are thereby skipped.
        match toks.get(j + 1) {
            Some(u) if u.text == "(" => {}
            Some(u)
                if u.text == ":"
                    && matches!(toks.get(j + 2), Some(v) if v.text == ":")
                    && matches!(toks.get(j + 3), Some(v) if v.text == "<") =>
            {
                let past = skip_angles(toks, j + 3);
                if !matches!(toks.get(past), Some(v) if v.text == "(") {
                    continue;
                }
            }
            _ => continue,
        }
        let Some(span) = innermost_body(&bodies, j) else {
            continue; // call outside any fn body (const initializer, ...)
        };
        let Some(caller) = body_to_fn(span) else {
            continue;
        };
        // Classify: `.name(` method call, `Qual::name(` associated call,
        // or a free call.
        let is_method = j >= 1 && toks[j - 1].text == "." && toks[j - 1].kind == Kind::Punct;
        let qualifier = if !is_method
            && j >= 3
            && toks[j - 1].text == ":"
            && toks[j - 2].text == ":"
            && toks[j - 3].kind == Kind::Ident
        {
            let q = toks[j - 3].text.clone();
            if q == "Self" {
                out.fns[caller].self_type.clone()
            } else {
                Some(q)
            }
        } else {
            None
        };
        out.calls.push(CallItem {
            caller,
            name: t.text.clone(),
            qualifier,
            is_method,
            line: t.line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    #[test]
    fn fn_items_with_visibility_and_signatures() {
        let src = "pub fn a(x: u32) -> Result<u32, E> { b(x) }\n\
                   fn b(x: u32) -> u32 { x }\n\
                   pub(crate) fn c() {}\n\
                   pub const fn d() -> usize { 1 }";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        assert!(p.fns[0].is_pub);
        assert!(!p.fns[1].is_pub);
        assert!(!p.fns[2].is_pub, "pub(crate) is not public API");
        assert!(p.fns[3].is_pub, "pub const fn");
        assert_eq!(p.fns[0].ret, ["Result", "<", "u32", ",", "E", ">"]);
        assert_eq!(p.fns[0].params, ["x", ":", "u32"]);
    }

    #[test]
    fn impl_and_trait_scopes_set_self_type() {
        let src = "impl<'a> Widget<'a> { pub fn go(&self) {} }\n\
                   impl Drop for Guard { fn drop(&mut self) {} }\n\
                   trait Runs { fn decl(&self); fn dflt(&self) { self.decl() } }\n\
                   fn free() {}";
        let p = parse(src);
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("go").self_type.as_deref(), Some("Widget"));
        assert_eq!(by_name("drop").self_type.as_deref(), Some("Guard"));
        assert_eq!(by_name("decl").self_type.as_deref(), Some("Runs"));
        assert!(by_name("decl").body.is_none(), "bodyless declaration");
        assert_eq!(by_name("dflt").self_type.as_deref(), Some("Runs"));
        assert_eq!(by_name("free").self_type, None);
    }

    #[test]
    fn call_classification() {
        let src = "fn f() { g(); x.m(); Widget::assoc(); Self::own(); h!(boom); v.collect::<Vec<_>>(); }\n\
                   impl W { fn i(&self) { Self::j() } fn j() {} }";
        let p = parse(src);
        let f_calls: Vec<&CallItem> = p.calls.iter().filter(|c| c.caller == 0).collect();
        let names: Vec<&str> = f_calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"g"));
        assert!(names.contains(&"m"));
        assert!(names.contains(&"assoc"));
        assert!(names.contains(&"collect"), "turbofish call recognized");
        assert!(!names.contains(&"h"), "macro invocations are skipped");
        let m = f_calls.iter().find(|c| c.name == "m").unwrap();
        assert!(m.is_method);
        let a = f_calls.iter().find(|c| c.name == "assoc").unwrap();
        assert_eq!(a.qualifier.as_deref(), Some("Widget"));
        // `Self::j()` inside impl W resolves the qualifier to W.
        let j = p.calls.iter().find(|c| c.name == "j").unwrap();
        assert_eq!(j.qualifier.as_deref(), Some("W"));
    }

    #[test]
    fn test_masked_fns_and_calls_are_flagged() {
        let src = "fn prod() { helper(); }\n#[cfg(test)]\nmod tests { fn t() { prod(); } }";
        let p = parse(src);
        let t = p.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        assert!(!p.fns.iter().find(|f| f.name == "prod").unwrap().is_test);
        // The call from the test fn is masked out entirely.
        assert!(p.calls.iter().all(|c| c.name != "prod"));
    }

    #[test]
    fn nested_fn_attribution() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let p = parse(src);
        let deep = p.calls.iter().find(|c| c.name == "deep").unwrap();
        let inner_idx = p.fns.iter().position(|f| f.name == "inner").unwrap();
        assert_eq!(deep.caller, inner_idx);
        let shallow = p.calls.iter().find(|c| c.name == "shallow").unwrap();
        let outer_idx = p.fns.iter().position(|f| f.name == "outer").unwrap();
        assert_eq!(shallow.caller, outer_idx);
    }
}
