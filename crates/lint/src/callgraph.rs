//! Phase-1 workspace model: every production function across every crate,
//! with a name-resolved call graph between them.
//!
//! Resolution is deliberately *name-based* — good enough for
//! intra-workspace calls without a type checker:
//!
//! * `Qual::name(..)` resolves to functions named `name` inside an
//!   `impl Qual`/`trait Qual` block when any exist (`Self::` is rewritten
//!   to the enclosing impl type by the parser). When no such item exists
//!   and the qualifier starts uppercase, it names a type the workspace
//!   does not define the item on (std/stub types like `Mutex::new`) and
//!   resolves to nothing; a lowercase qualifier is a module path and
//!   falls back to free functions named `name`.
//! * `.name(..)` method calls resolve to every *method* (function with a
//!   self type) named `name` — the receiver's type is unknown, so this
//!   over-approximates. Over-approximation is the safe direction for the
//!   taint and reachability rules: extra edges can only add scrutiny.
//! * Free `name(..)` calls resolve to free functions named `name`.
//! * `#[cfg(test)]`-only functions are excluded from the graph entirely:
//!   they neither contribute edges nor receive them, so test-only helpers
//!   never create (or mask) production findings.
//! * When a crate-dependency map is supplied
//!   ([`WorkspaceModel::build_with_deps`]), cross-crate edges whose caller
//!   package does not depend on the callee package are dropped — a name
//!   collision with a crate the caller cannot even link against is not a
//!   call.
//!
//! Functions the workspace does not define (std, core, the offline stubs)
//! resolve to nothing and simply contribute no edges.

use crate::lexer::{lex, Lexed};
use crate::parser::{parse_file, FnItem};
use crate::rules::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

/// One function in the workspace model.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Cargo package name of the defining crate.
    pub crate_name: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Index of the defining file in [`WorkspaceModel::files`].
    pub file: usize,
    /// The parsed item (name, line, visibility, signatures, body span).
    pub item: FnItem,
}

impl FnNode {
    /// `Type::name` when the function is associated, else just `name`.
    pub fn qualified_name(&self) -> String {
        match &self.item.self_type {
            Some(t) => format!("{t}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

/// One analyzed file: its context and lexed token stream (kept so rule
/// passes can scan bodies without re-lexing).
pub struct FileModel {
    /// Path/crate classification.
    pub ctx: FileCtx,
    /// The lexed stream.
    pub lexed: Lexed,
}

/// The whole-workspace model rules run against.
pub struct WorkspaceModel {
    /// All analyzed files.
    pub files: Vec<FileModel>,
    /// All production (non-test) functions.
    pub fns: Vec<FnNode>,
    /// Adjacency: `edges[f]` = functions `f` calls (deduped, sorted).
    pub edges: Vec<Vec<usize>>,
    /// Representative source line for each `(caller, callee)` edge.
    edge_lines: BTreeMap<(usize, usize), u32>,
    /// Crate-dependency map the edges were filtered with.
    deps: BTreeMap<String, BTreeSet<String>>,
}

impl WorkspaceModel {
    /// Builds the model from `(ctx, source)` pairs with no dependency
    /// information (every cross-crate edge is kept).
    pub fn build(files: Vec<(FileCtx, String)>) -> WorkspaceModel {
        Self::build_with_deps(files, &BTreeMap::new())
    }

    /// Builds the model from `(ctx, source)` pairs, dropping cross-crate
    /// edges that `deps` (package name → packages it depends on) rules
    /// out. Packages absent from the map keep all their edges — fixture
    /// corpora don't carry manifests.
    pub fn build_with_deps(
        files: Vec<(FileCtx, String)>,
        deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> WorkspaceModel {
        let mut model = WorkspaceModel {
            files: Vec::new(),
            fns: Vec::new(),
            edges: Vec::new(),
            edge_lines: BTreeMap::new(),
            deps: deps.clone(),
        };
        // Parse every file; collect production fns with global ids.
        let mut parsed = Vec::new();
        for (ctx, text) in files {
            let lexed = lex(&text);
            let p = parse_file(&lexed);
            model.files.push(FileModel { ctx, lexed });
            parsed.push(p);
        }
        // Map (file, local fn index) -> global id; test fns get None.
        let mut local_to_global = Vec::new();
        for (fi, p) in parsed.iter().enumerate() {
            let mut map = Vec::with_capacity(p.fns.len());
            for item in &p.fns {
                if item.is_test {
                    map.push(None);
                    continue;
                }
                map.push(Some(model.fns.len()));
                model.fns.push(FnNode {
                    crate_name: model.files[fi].ctx.crate_name.clone(),
                    path: model.files[fi].ctx.path.clone(),
                    file: fi,
                    item: item.clone(),
                });
            }
            local_to_global.push(map);
        }
        // Name indexes over production fns.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut qualified: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in model.fns.iter().enumerate() {
            match &f.item.self_type {
                Some(t) => {
                    methods.entry(&f.item.name).or_default().push(id);
                    qualified
                        .entry((t.as_str(), f.item.name.as_str()))
                        .or_default()
                        .push(id);
                }
                None => free.entry(&f.item.name).or_default().push(id),
            }
        }
        // Resolve calls into edges.
        const EMPTY: &[usize] = &[];
        let dep_ok = |caller: usize, callee: usize| {
            let a = &model.fns[caller].crate_name;
            let b = &model.fns[callee].crate_name;
            a == b
                || match deps.get(a.as_str()) {
                    None => true,
                    Some(d) => d.contains(b.as_str()),
                }
        };
        let mut edge_set: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        for (fi, p) in parsed.iter().enumerate() {
            for call in &p.calls {
                let Some(Some(caller)) = local_to_global[fi].get(call.caller).copied() else {
                    continue; // call inside a test-only fn
                };
                let targets: &[usize] = if let Some(q) = &call.qualifier {
                    match qualified.get(&(q.as_str(), call.name.as_str())) {
                        Some(v) => v,
                        // An uppercase qualifier the workspace defines no
                        // such item on is an external type (`Mutex::new`):
                        // no target. Lowercase is a module path: fall back
                        // to free functions with that name.
                        None if q.chars().next().is_some_and(char::is_uppercase) => EMPTY,
                        None => free.get(call.name.as_str()).map_or(EMPTY, |v| &v[..]),
                    }
                } else if call.is_method {
                    methods.get(call.name.as_str()).map_or(EMPTY, |v| &v[..])
                } else {
                    free.get(call.name.as_str()).map_or(EMPTY, |v| &v[..])
                };
                for &callee in targets {
                    if !dep_ok(caller, callee) {
                        continue;
                    }
                    edge_set.entry((caller, callee)).or_insert(call.line);
                }
            }
        }
        model.edges = vec![Vec::new(); model.fns.len()];
        for (&(a, b), &line) in &edge_set {
            model.edges[a].push(b);
            model.edge_lines.insert((a, b), line);
        }
        model
    }

    /// The call-site line recorded for edge `(caller, callee)`.
    pub fn edge_line(&self, caller: usize, callee: usize) -> Option<u32> {
        self.edge_lines.get(&(caller, callee)).copied()
    }

    /// Whether code in crate `from` could call into crate `to` at all,
    /// under the dependency map the model was built with.
    pub fn dep_allowed(&self, from: &str, to: &str) -> bool {
        from == to
            || match self.deps.get(from) {
                None => true,
                Some(d) => d.contains(to),
            }
    }

    /// Functions whose bodies contain the identifier `ident`.
    pub fn fns_with_body_ident(&self, ident: &str) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&id| self.body_contains_ident(id, ident))
            .collect()
    }

    /// True when fn `id`'s body contains `ident` as a code token.
    pub fn body_contains_ident(&self, id: usize, ident: &str) -> bool {
        let f = &self.fns[id];
        let Some((s, e)) = f.item.body else {
            return false;
        };
        self.files[f.file].lexed.toks[s..=e]
            .iter()
            .any(|t| t.kind == crate::lexer::Kind::Ident && t.text == ident)
    }

    /// Line of the first occurrence of `ident` in fn `id`'s body.
    pub fn body_ident_line(&self, id: usize, ident: &str) -> Option<u32> {
        let f = &self.fns[id];
        let (s, e) = f.item.body?;
        self.files[f.file].lexed.toks[s..=e]
            .iter()
            .find(|t| t.kind == crate::lexer::Kind::Ident && t.text == ident)
            .map(|t| t.line)
    }

    /// BFS from `start` over the call graph, skipping nodes for which
    /// `blocked` returns true (the start itself is never blocked). Returns
    /// the predecessor map for path reconstruction: `pred[n]` is the node
    /// we reached `n` from.
    pub fn bfs(&self, start: usize, blocked: impl Fn(usize) -> bool) -> BTreeMap<usize, usize> {
        let mut pred = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; self.fns.len()];
        seen[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if seen[v] || blocked(v) {
                    continue;
                }
                seen[v] = true;
                pred.insert(v, u);
                queue.push_back(v);
            }
        }
        pred
    }

    /// The call chain `start -> .. -> target` implied by a [`Self::bfs`]
    /// predecessor map, rendered as qualified names with call-site lines.
    pub fn chain(&self, pred: &BTreeMap<usize, usize>, start: usize, target: usize) -> String {
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != start {
            let Some(&p) = pred.get(&cur) else {
                break;
            };
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        self.render_chain(&nodes)
    }

    /// Renders a node sequence as `a -> [path:line] b -> ..`, where
    /// `path:line` is the call site of the edge into that node (in the
    /// *caller's* file).
    pub fn render_chain(&self, nodes: &[usize]) -> String {
        let mut out = String::new();
        for (k, &id) in nodes.iter().enumerate() {
            if k > 0 {
                let caller = nodes[k - 1];
                let line = self.edge_line(caller, id).unwrap_or(0);
                out.push_str(&format!(" -> [{}:{}] ", self.fns[caller].path, line));
            }
            out.push_str(&self.fns[id].qualified_name());
        }
        out
    }

    /// Fixpoint propagation *against* the call direction: starting from
    /// `seeds`, marks every function that can reach a marked function,
    /// unless `barrier` holds for it (barriers never become marked, and so
    /// cut every chain through them). Returns the marked set and, for each
    /// marked non-seed, the callee it was marked through (for chains).
    pub fn propagate_up(
        &self,
        seeds: &[usize],
        barrier: impl Fn(usize) -> bool,
    ) -> (Vec<bool>, BTreeMap<usize, usize>) {
        let n = self.fns.len();
        // Reverse adjacency.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.edges.iter().enumerate() {
            for &v in outs {
                rev[v].push(u);
            }
        }
        let mut marked = vec![false; n];
        let mut via = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        for &s in seeds {
            if !barrier(s) && !marked[s] {
                marked[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &u in &rev[v] {
                if marked[u] || barrier(u) {
                    continue;
                }
                marked[u] = true;
                via.insert(u, v);
                queue.push_back(u);
            }
        }
        (marked, via)
    }

    /// The downward chain `id -> via -> .. -> seed` implied by a
    /// [`Self::propagate_up`] `via` map.
    pub fn taint_chain(&self, via: &BTreeMap<usize, usize>, id: usize) -> Vec<usize> {
        let mut nodes = vec![id];
        let mut cur = id;
        while let Some(&next) = via.get(&cur) {
            nodes.push(next);
            cur = next;
        }
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(files: &[(&str, &str)]) -> WorkspaceModel {
        WorkspaceModel::build(
            files
                .iter()
                .map(|(p, s)| (FileCtx::from_rel_path(p), s.to_string()))
                .collect(),
        )
    }

    fn id(m: &WorkspaceModel, name: &str) -> usize {
        m.fns.iter().position(|f| f.item.name == name).unwrap()
    }

    #[test]
    fn cross_crate_edges_resolve_by_name() {
        let m = model(&[
            ("crates/core/src/a.rs", "pub fn caller() { helper(); }"),
            ("crates/obs/src/b.rs", "pub fn helper() {}"),
        ]);
        let (c, h) = (id(&m, "caller"), id(&m, "helper"));
        assert_eq!(m.edges[c], vec![h]);
        assert!(m.edges[h].is_empty());
    }

    #[test]
    fn qualified_calls_prefer_the_impl_type() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "struct A; struct B;\n\
             impl A { pub fn go() {} }\n\
             impl B { pub fn go() {} }\n\
             fn f() { A::go(); }",
        )]);
        let f = id(&m, "f");
        let a_go = m
            .fns
            .iter()
            .position(|x| x.item.name == "go" && x.item.self_type.as_deref() == Some("A"))
            .unwrap();
        assert_eq!(m.edges[f], vec![a_go]);
    }

    #[test]
    fn method_calls_over_approximate_across_impls() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "impl A { fn tick(&self) {} }\n\
             impl B { fn tick(&self) {} }\n\
             fn f(x: &A) { x.tick(); }",
        )]);
        let f = id(&m, "f");
        assert_eq!(m.edges[f].len(), 2, "both `tick` methods are candidates");
    }

    #[test]
    fn test_only_fns_are_outside_the_graph() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "pub fn prod() {}\n\
             #[cfg(test)]\nmod tests { fn t() { prod(); } pub fn fake_helper() {} }\n\
             fn caller() { fake_helper(); }",
        )]);
        assert!(
            m.fns
                .iter()
                .all(|f| f.item.name != "t" && f.item.name != "fake_helper"),
            "cfg(test) fns must not enter the model"
        );
        let c = id(&m, "caller");
        assert!(
            m.edges[c].is_empty(),
            "a call resolving only to a test-only fn contributes no edge"
        );
    }

    #[test]
    fn cycles_terminate_and_propagate() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "fn a() { b(); } fn b() { c(); } fn c() { a(); sink(); } fn sink() {}",
        )]);
        let (a, sink) = (id(&m, "a"), id(&m, "sink"));
        let (marked, _) = m.propagate_up(&[sink], |_| false);
        assert!(marked[a], "taint flows backward through the cycle");
        let pred = m.bfs(a, |_| false);
        assert!(pred.contains_key(&sink), "reachability crosses the cycle");
    }

    #[test]
    fn barriers_cut_propagation() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "fn top() { mid(); } fn mid() { bottom(); } fn bottom() {}",
        )]);
        let (top, mid, bottom) = (id(&m, "top"), id(&m, "mid"), id(&m, "bottom"));
        let (marked, _) = m.propagate_up(&[bottom], |n| n == mid);
        assert!(marked[bottom]);
        assert!(!marked[mid]);
        assert!(!marked[top], "the barrier cut the only chain");
        let pred = m.bfs(top, |n| n == mid);
        assert!(!pred.contains_key(&bottom));
    }

    #[test]
    fn unknown_uppercase_qualifier_is_external() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "pub fn new() {}\n\
             impl W { pub fn new() {} }\n\
             fn f() { let m = Mutex::new(0); }",
        )]);
        let f = id(&m, "f");
        assert!(
            m.edges[f].is_empty(),
            "`Mutex::new` must not resolve to workspace constructors"
        );
    }

    #[test]
    fn lowercase_qualifier_is_a_module_path() {
        let m = model(&[
            ("crates/core/src/a.rs", "fn f() { util::helper(); }"),
            ("crates/obs/src/b.rs", "pub fn helper() {}"),
        ]);
        let (f, h) = (id(&m, "f"), id(&m, "helper"));
        assert_eq!(m.edges[f], vec![h]);
    }

    #[test]
    fn dependency_map_filters_cross_crate_edges() {
        use std::collections::BTreeSet;
        let files = vec![
            (
                FileCtx::from_rel_path("crates/qsim/src/a.rs"),
                "pub fn caller() { helper(); }".to_string(),
            ),
            (
                FileCtx::from_rel_path("crates/obs/src/b.rs"),
                "pub fn helper() {}".to_string(),
            ),
        ];
        // dqs-sim depends only on dqs-math, so the name match is not a call.
        let mut deps = BTreeMap::new();
        deps.insert(
            "dqs-sim".to_string(),
            BTreeSet::from(["dqs-math".to_string()]),
        );
        let m = WorkspaceModel::build_with_deps(files, &deps);
        let c = id(&m, "caller");
        assert!(
            m.edges[c].is_empty(),
            "edge to an undeclared dep is dropped"
        );
    }

    #[test]
    fn trait_method_dispatch_resolves_to_impls() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "trait Run { fn run(&self); }\n\
             impl Run for X { fn run(&self) { leaf(); } }\n\
             fn leaf() {}\n\
             fn driver(r: &dyn Run) { r.run(); }",
        )]);
        let d = id(&m, "driver");
        let leaf = id(&m, "leaf");
        // driver -> X::run -> leaf
        let pred = m.bfs(d, |_| false);
        assert!(pred.contains_key(&leaf));
    }
}
