//! `dqs-lint` CLI: walk the workspace and report invariant violations.
//!
//! ```text
//! cargo run --release -p dqs-lint                 # human-readable report
//! cargo run --release -p dqs-lint -- --format json
//! cargo run --release -p dqs-lint -- --root /path/to/repo
//! cargo run --release -p dqs-lint -- --write-baseline
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use dqs_lint::baseline::Baseline;
use dqs_lint::workspace::{lint_workspace_unbaselined, BASELINE_PATH};
use dqs_lint::{find_root, lint_workspace, report_json};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format expects json|text, got {other:?}")),
            },
            "--root" => match it.next() {
                Some(p) => args.root = Some(PathBuf::from(p)),
                None => return Err("--root expects a path".to_string()),
            },
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => {
                return Err(
                    "usage: dqs-lint [--root PATH] [--format text|json] [--write-baseline]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let start = args
        .root
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = find_root(&start) else {
        eprintln!(
            "dqs-lint: no workspace root (Cargo.toml + crates/) at or above {}",
            start.display()
        );
        return ExitCode::from(2);
    };
    if args.write_baseline {
        let found = match lint_workspace_unbaselined(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("dqs-lint: I/O error while scanning {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let text = Baseline::render(&found);
        if let Err(e) = std::fs::write(root.join(BASELINE_PATH), &text) {
            eprintln!("dqs-lint: cannot write {BASELINE_PATH}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "dqs-lint: wrote {BASELINE_PATH} covering {} finding(s)",
            found.len()
        );
        return ExitCode::SUCCESS;
    }
    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dqs-lint: I/O error while scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if args.json {
        println!("{}", report_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!(
                "dqs-lint: workspace clean (R1-R9 hold on every production source file, \
                 interprocedural rules included)"
            );
        } else {
            println!("dqs-lint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
