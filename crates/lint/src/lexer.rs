//! A token-level lexer for Rust source, in the spirit of the workspace's
//! `jsonv` reader: small, dependency-free, and specialized to exactly what
//! the rule passes need.
//!
//! The lexer strips comments, string/char literals, and lifetimes so that
//! rule passes match real code tokens only — a banned name inside a doc
//! comment, a doctest, or a string literal never fires. While stripping it
//! *keeps* two kinds of information the rules do need:
//!
//! * **Directives** found in comments: `// lint: allow(<rule>): <reason>`
//!   escape hatches and `// SAFETY:` justifications, recorded with their
//!   line numbers.
//! * **String literal contents**, as [`Kind::Str`] tokens, so the
//!   event-purity rule can spot float formatting like `{:.3}` inside
//!   `format!` strings.
//!
//! It is intentionally not a full Rust lexer: it only needs to be exact
//! about the boundaries of comments and literals (so no token is invented
//! or lost) and about line numbers (so diagnostics and allow-comments line
//! up). Everything else — numeric suffixes, operator gluing — is
//! deliberately loose.

use std::collections::BTreeSet;

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// A numeric literal (`0xFF`, `1u64`, `5f64` as one token).
    Num,
    /// A string literal; `text` holds the raw contents (escapes unresolved).
    Str,
    /// A single punctuation character (`.`, `#`, `{`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token text: the identifier/number itself, the raw string contents,
    /// or the single punctuation character.
    pub text: String,
    /// Token class.
    pub kind: Kind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One `lint: allow(<rule>)` directive found in a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule key inside the parentheses, e.g. `panic`.
    pub rule: String,
    /// 1-based line the directive sits on.
    pub line: u32,
    /// Whether a non-empty reason follows the `allow(...)`.
    pub has_reason: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub toks: Vec<Tok>,
    /// Every allow directive found in comments.
    pub allows: Vec<Allow>,
    /// Lines covered by a `SAFETY:` comment.
    pub safety: BTreeSet<u32>,
    /// Lines on which at least one code token starts.
    pub code_lines: BTreeSet<u32>,
}

impl Lexed {
    /// True when a comment on `from` reaches code on `line`: either the
    /// same line (trailing comment), or `line` is the *first* line with any
    /// code after `from` — so a directive or SAFETY comment may span
    /// several comment lines before the code it covers.
    pub fn reaches(&self, from: u32, line: u32) -> bool {
        line == from || (line > from && self.code_lines.range(from + 1..line).next().is_none())
    }

    /// True when `line` is covered by a well-formed `allow(rule)`
    /// directive. Directives without a reason never grant an exemption —
    /// they are reported separately (R0).
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allow_covering(line, rule).is_some()
    }

    /// Index (into [`Self::allows`]) of the well-formed directive covering
    /// `line` for `rule`, if any — the handle the central allow filter uses
    /// to track which directives actually suppressed something.
    pub fn allow_covering(&self, line: u32, rule: &str) -> Option<usize> {
        self.allows
            .iter()
            .position(|a| a.rule == rule && a.has_reason && self.reaches(a.line, line))
    }

    /// True when `line` is covered by a `SAFETY:` comment (same line, or a
    /// comment block immediately above).
    pub fn safety_near(&self, line: u32) -> bool {
        if self.safety.contains(&line) {
            return true;
        }
        self.safety
            .range(..line)
            .next_back()
            .is_some_and(|&s| self.reaches(s, line))
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans one comment's text for directives and records them.
fn scan_comment(text: &str, line: u32, out: &mut Lexed) {
    if text.contains("SAFETY:") {
        out.safety.insert(line);
    }
    if let Some(p) = text.find("lint: allow(") {
        let rest = &text[p + "lint: allow(".len()..];
        if let Some(q) = rest.find(')') {
            let rule = rest[..q].trim().to_string();
            let tail = rest[q + 1..]
                .trim_start()
                .trim_start_matches([':', '-', '—'])
                .trim();
            out.allows.push(Allow {
                rule,
                line,
                has_reason: !tail.is_empty(),
            });
        }
    }
}

/// Lexes `src` into tokens plus comment directives.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($range:expr) => {
            for &c in &b[$range] {
                if c == b'\n' {
                    line += 1;
                }
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (plain, doc `///`, or inner-doc `//!`). Directives
        // are only honored in *plain* comments: doc comments are prose (and
        // routinely quote the directive syntax when documenting it).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            let is_doc = matches!(b.get(start + 2), Some(b'/' | b'!'));
            if !is_doc {
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                scan_comment(&text, line, &mut out);
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let is_doc = matches!(b.get(start + 2), Some(b'*' | b'!'));
            if !is_doc {
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                // A multi-line SAFETY block comment covers every line spanned.
                if text.contains("SAFETY:") {
                    for l in start_line..=line {
                        out.safety.insert(l);
                    }
                }
                scan_comment(&text, start_line, &mut out);
            }
            continue;
        }
        // Raw strings and raw identifiers: r"...", r#"..."#, r#ident, plus
        // the raw byte-string variant br#"..."#. (Plain `b"..."` keeps its
        // escapes and is handled by the ordinary string branch below.)
        if c == b'r' || c == b'b' {
            // Peek past an optional `b` prefix on `br`.
            let mut j = i + 1;
            let saw_r = if c == b'b' {
                if j < n && b[j] == b'r' {
                    j += 1;
                    true
                } else {
                    false
                }
            } else {
                true
            };
            let mut hashes = 0usize;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if saw_r && j < n && b[j] == b'"' {
                // Raw (byte) string: scan to `"` followed by `hashes` hashes.
                let tok_line = line;
                let content_start = j + 1;
                let mut k = content_start;
                'raw: while k < n {
                    if b[k] == b'"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && b[k + 1 + h] == b'#' {
                            h += 1;
                        }
                        if h == hashes {
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                bump_lines!(i..k.min(n));
                out.toks.push(Tok {
                    text: String::from_utf8_lossy(&b[content_start..k.min(n)]).into_owned(),
                    kind: Kind::Str,
                    line: tok_line,
                });
                i = (k + 1 + hashes).min(n);
                continue;
            }
            if c == b'r' && hashes == 1 && j < n && is_ident_start(b[j]) {
                // Raw identifier r#ident.
                let start = j;
                let mut k = j;
                while k < n && is_ident_cont(b[k]) {
                    k += 1;
                }
                out.toks.push(Tok {
                    text: String::from_utf8_lossy(&b[start..k]).into_owned(),
                    kind: Kind::Ident,
                    line,
                });
                i = k;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Plain string literal (or byte string handled above falls here via
        // the `b"` prefix not matching the raw branch).
        if c == b'"' || (c == b'b' && i + 1 < n && b[i + 1] == b'"') {
            let tok_line = line;
            let mut k = if c == b'"' { i + 1 } else { i + 2 };
            let content_start = k;
            while k < n {
                match b[k] {
                    b'\\' => k += 2,
                    b'"' => break,
                    b'\n' => {
                        line += 1;
                        k += 1;
                    }
                    _ => k += 1,
                }
            }
            out.toks.push(Tok {
                text: String::from_utf8_lossy(&b[content_start..k.min(n)]).into_owned(),
                kind: Kind::Str,
                line: tok_line,
            });
            i = (k + 1).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                let mut k = i + 2;
                if k < n {
                    k += 1; // the escaped char (or 'u')
                }
                while k < n && b[k] != b'\'' {
                    k += 1;
                }
                i = (k + 1).min(n);
                continue;
            }
            if i + 2 < n && is_ident_start(b[i + 1]) && b[i + 2] != b'\'' {
                // Lifetime: consume the tick and identifier, emit nothing.
                let mut k = i + 1;
                while k < n && is_ident_cont(b[k]) {
                    k += 1;
                }
                i = k;
                continue;
            }
            // Simple char literal: 'a', '(', ' '.
            let mut k = i + 1;
            while k < n && b[k] != b'\'' {
                if b[k] == b'\n' {
                    line += 1;
                }
                k += 1;
            }
            i = (k + 1).min(n);
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                kind: Kind::Ident,
                line,
            });
            continue;
        }
        // Number (suffixes glued on: `1u64`, `5f64`, `0xFF`).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                kind: Kind::Num,
                line,
            });
            continue;
        }
        // Single punctuation character.
        out.toks.push(Tok {
            text: (c as char).to_string(),
            kind: Kind::Punct,
            line,
        });
        i += 1;
    }
    for t in &out.toks {
        out.code_lines.insert(t.line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r#"
            // HashMap in a comment
            /* Instant::now in a block /* nested */ */
            let x = "thread_rng inside a string";
            let y = foo.unwrap();
        "#;
        let t = texts(src);
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(!t.contains(&"Instant".to_string()));
        assert!(t.contains(&"unwrap".to_string()));
        // The string contents survive as a Str token, not an Ident.
        let lexed = lex(src);
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == Kind::Str && t.text.contains("thread_rng")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(t.iter().filter(|s| *s == "str").count(), 2);
        assert!(t.contains(&"x".to_string()));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let lexed = lex(r###"let a = r#"quote " inside"#; let r#type = 1;"###);
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == Kind::Str && t.text.contains("quote")));
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == Kind::Ident && t.text == "type"));
    }

    #[test]
    fn directives_are_recorded() {
        let src = "\n// lint: allow(panic): index is bounds-checked above\nx.unwrap();\n// SAFETY: pointer is valid\nunsafe {}\n// lint: allow(determinism)\n";
        let lexed = lex(src);
        assert!(lexed.allowed(2, "panic"));
        assert!(lexed.allowed(3, "panic"), "directive covers the next line");
        assert!(!lexed.allowed(4, "panic"));
        assert!(lexed.safety_near(4));
        assert!(lexed.safety_near(5));
        // The reasonless directive is recorded but grants nothing.
        assert!(!lexed.allowed(6, "determinism"));
        assert_eq!(lexed.allows.len(), 2);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "/* a\nb\nc */\nfoo();\n\"s1\ns2\"\nbar();";
        let lexed = lex(src);
        let foo = lexed.toks.iter().find(|t| t.text == "foo").expect("foo");
        assert_eq!(foo.line, 4);
        let bar = lexed.toks.iter().find(|t| t.text == "bar").expect("bar");
        assert_eq!(bar.line, 7);
    }
}
