//! The suppression baseline: a checked-in list of findings the workspace
//! has accepted wholesale, so the linter can gate CI at zero *new*
//! diagnostics while a cleanup is in flight.
//!
//! Format (`crates/lint/lint.baseline`): one `<rule-id> <path>` pair per
//! line; `#` comments and blank lines are ignored. An entry waives every
//! finding of that rule in that file — coarser than a `// lint: allow`
//! (which pins one line and carries a reason), which is why the baseline
//! is meant to shrink: an entry that no longer suppresses anything is
//! itself reported (`R0:stale-baseline`), exactly like an unused allow.
//!
//! Regenerate with `cargo run -p dqs-lint -- --write-baseline`.

use crate::diagnostics::Diagnostic;

/// One baseline entry: waive `rule` findings in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Full rule id, e.g. `R3:panic`.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line in the baseline file (for stale-entry diagnostics).
    pub line: u32,
}

/// A parsed suppression baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses baseline text. Unparseable lines are kept as entries that
    /// can never match, so they surface as stale rather than vanish.
    pub fn parse(text: &str) -> Baseline {
        let mut entries = Vec::new();
        for (k, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (rule, path) = line.split_once(' ').unwrap_or((line, ""));
            entries.push(Entry {
                rule: rule.to_string(),
                path: path.trim().to_string(),
                line: (k + 1) as u32,
            });
        }
        Baseline { entries }
    }

    /// Renders a baseline covering `diags`, deduped and sorted.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut pairs: Vec<(&str, &str)> =
            diags.iter().map(|d| (d.rule, d.path.as_str())).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut out = String::from(
            "# dqs-lint suppression baseline: `<rule-id> <path>` per line.\n\
             # Entries that stop suppressing anything become R0:stale-baseline errors.\n\
             # Regenerate with `cargo run -p dqs-lint -- --write-baseline`.\n",
        );
        for (rule, path) in pairs {
            out.push_str(&format!("{rule} {path}\n"));
        }
        out
    }

    /// Filters `diags` through the baseline: matching findings are
    /// dropped; entries that matched nothing come back as
    /// `R0:stale-baseline` findings at their line in `baseline_path`.
    pub fn apply(&self, diags: Vec<Diagnostic>, baseline_path: &str) -> Vec<Diagnostic> {
        let mut used = vec![false; self.entries.len()];
        let mut out = Vec::new();
        'diag: for d in diags {
            for (k, e) in self.entries.iter().enumerate() {
                if e.rule == d.rule && e.path == d.path {
                    used[k] = true;
                    continue 'diag;
                }
            }
            out.push(d);
        }
        for (k, e) in self.entries.iter().enumerate() {
            if used[k] {
                continue;
            }
            out.push(Diagnostic {
                rule: "R0:stale-baseline",
                path: baseline_path.to_string(),
                line: e.line,
                message: format!(
                    "baseline entry `{} {}` suppresses nothing — the findings it waived are \
                     gone; remove the entry (or regenerate with `--write-baseline`)",
                    e.rule, e.path
                ),
            });
        }
        out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_suppresses_exactly_the_rendered_findings() {
        let found = vec![
            diag("R3:panic", "crates/core/src/x.rs", 10),
            diag("R3:panic", "crates/core/src/x.rs", 20),
            diag("R8:error-discard", "crates/serve/src/y.rs", 5),
        ];
        let text = Baseline::render(&found);
        let b = Baseline::parse(&text);
        assert_eq!(b.entries.len(), 2, "per-(rule, path) dedup");
        assert!(b.apply(found, "lint.baseline").is_empty());
    }

    #[test]
    fn stale_entries_are_reported_with_their_line() {
        let b = Baseline::parse("# header\nR3:panic crates/core/src/gone.rs\n");
        let out = b.apply(
            vec![diag("R3:panic", "crates/core/src/x.rs", 1)],
            "lint.baseline",
        );
        let stale: Vec<&Diagnostic> = out
            .iter()
            .filter(|d| d.rule == "R0:stale-baseline")
            .collect();
        assert_eq!(stale.len(), 1, "{out:?}");
        assert_eq!(stale[0].line, 2);
        // The unmatched real finding passes through.
        assert!(out.iter().any(|d| d.rule == "R3:panic"));
    }
}
