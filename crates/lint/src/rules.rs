//! The per-file rule passes (R0–R5), the shared rule vocabulary, and the
//! central lint driver that combines them with the interprocedural passes
//! (R6–R9, in [`crate::taint`]).
//!
//! Rules push *unfiltered* [`RawDiag`]s tagged with their allow key; the
//! driver applies `// lint: allow(<key>): <reason>` directives in one
//! place, tracking which directives actually suppressed something. A
//! well-formed directive that suppresses nothing is itself reported
//! (`R0:unused-allow`) — stale escape hatches rot into blanket waivers
//! otherwise.

use crate::analysis::test_mask;
use crate::callgraph::{FileModel, WorkspaceModel};
use crate::diagnostics::Diagnostic;
use crate::lexer::Kind;
use crate::taint;

/// Crates whose runs must be bit-for-bit reproducible (Theorems 5.1/5.2
/// only validate against deterministic executions). `dqs-obs` and
/// `dqs-bench` keep wall-clock timing in side-tables and are exempt.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "dqs-core",
    "dqs-db",
    "dqs-sim",
    "dqs-math",
    "dqs-adversary",
    "dqs-serve",
];

/// Crates exempt from the panic-hygiene rule: the experiment harness is
/// top-level binary code where aborting on a broken invariant is the
/// correct behavior.
pub const PANIC_EXEMPT_CRATES: &[&str] = &["dqs-bench"];

/// The allow-comment keys, one per rule.
pub const RULE_KEYS: &[&str] = &[
    "determinism",
    "ledger-pairing",
    "panic",
    "unsafe",
    "event-purity",
    "determinism-taint",
    "charge-conservation",
    "error-discard",
    "snapshot-discipline",
];

/// Identifiers banned in deterministic crates, with the suggested
/// replacement shown in the diagnostic.
pub(crate) const NONDETERMINISTIC_IDENTS: &[(&str, &str)] = &[
    (
        "Instant",
        "integer tick counters, or a dqs-obs span side-table",
    ),
    (
        "SystemTime",
        "integer tick counters, or a dqs-obs span side-table",
    ),
    ("thread_rng", "a seeded StdRng (`StdRng::seed_from_u64`)"),
    (
        "HashMap",
        "crate-deterministic `fxhash::FxHashMap` (fixed iteration order) or `BTreeMap`",
    ),
    (
        "HashSet",
        "a sorted `Vec`, `BTreeSet`, or an `fxhash`-keyed map",
    ),
];

/// What the linter knows about a file before reading it.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Cargo package name (`dqs-core`, ...); the root crate is
    /// `distributed-quantum-sampling`.
    pub crate_name: String,
    /// True for `src/lib.rs` crate roots (where `#![forbid(unsafe_code)]`
    /// must live).
    pub is_crate_root: bool,
}

impl FileCtx {
    /// Derives the context from a workspace-relative path like
    /// `crates/core/src/sequential.rs` or `src/lib.rs`.
    pub fn from_rel_path(rel: &str) -> FileCtx {
        let rel = rel.replace('\\', "/");
        let crate_name = match rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
        {
            Some(dir) => crate_dir_to_name(dir).to_string(),
            None => "distributed-quantum-sampling".to_string(),
        };
        let is_crate_root = rel.ends_with("src/lib.rs");
        FileCtx {
            path: rel,
            crate_name,
            is_crate_root,
        }
    }
}

/// Maps a `crates/<dir>` directory to its package name.
pub fn crate_dir_to_name(dir: &str) -> &str {
    match dir {
        "core" => "dqs-core",
        "distdb" => "dqs-db",
        "qsim" => "dqs-sim",
        "qmath" => "dqs-math",
        "obs" => "dqs-obs",
        "bench" => "dqs-bench",
        "adversary" => "dqs-adversary",
        "baselines" => "dqs-baselines",
        "workloads" => "dqs-workloads",
        "lint" => "dqs-lint",
        "serve" => "dqs-serve",
        other => other,
    }
}

/// One unfiltered finding: the file it belongs to, the allow key that may
/// suppress it (`None` for findings no directive can waive), and the
/// diagnostic itself.
pub(crate) struct RawDiag {
    /// Index into [`WorkspaceModel::files`].
    pub file: usize,
    /// Allow key, or `None` when the finding is not suppressible.
    pub key: Option<&'static str>,
    /// The rendered diagnostic.
    pub diag: Diagnostic,
}

/// Lints a set of files as one workspace: per-file passes, the
/// interprocedural passes over the shared call graph, then central allow
/// filtering with unused-directive detection.
pub fn lint_files(inputs: Vec<(FileCtx, String)>) -> Vec<Diagnostic> {
    lint_model(&WorkspaceModel::build(inputs))
}

/// [`lint_files`] over an already-built model (the workspace walker
/// builds one with dependency information).
pub(crate) fn lint_model(model: &WorkspaceModel) -> Vec<Diagnostic> {
    let mut raw: Vec<RawDiag> = Vec::new();
    for (fi, fm) in model.files.iter().enumerate() {
        let mask = test_mask(&fm.lexed.toks);
        check_allow_directives(fi, fm, &mut raw);
        rule_determinism(fi, fm, &mask, &mut raw);
        rule_ledger_scope(fi, fm, &mask, &mut raw);
        rule_panic(fi, fm, &mask, &mut raw);
        rule_unsafe(fi, fm, &mask, &mut raw);
        rule_event_purity(fi, fm, &mask, &mut raw);
    }
    let mut allow_used: Vec<Vec<bool>> = model
        .files
        .iter()
        .map(|f| vec![false; f.lexed.allows.len()])
        .collect();
    taint::rule_determinism_taint(model, &mut raw, &mut allow_used);
    taint::rule_charge_conservation(model, &mut raw);
    taint::rule_error_discard(model, &mut raw);
    taint::rule_snapshot_discipline(model, &mut raw);

    // Central allow filter.
    let mut out = Vec::new();
    for r in raw {
        if let Some(key) = r.key {
            if let Some(ai) = model.files[r.file].lexed.allow_covering(r.diag.line, key) {
                allow_used[r.file][ai] = true;
                continue;
            }
        }
        out.push(r.diag);
    }
    // Unused-allow detection: a well-formed directive that suppressed
    // nothing (malformed ones were already reported by R0 above).
    for (fi, fm) in model.files.iter().enumerate() {
        for (ai, a) in fm.lexed.allows.iter().enumerate() {
            if a.has_reason && RULE_KEYS.contains(&a.rule.as_str()) && !allow_used[fi][ai] {
                out.push(Diagnostic {
                    rule: "R0:unused-allow",
                    path: fm.ctx.path.clone(),
                    line: a.line,
                    message: format!(
                        "`lint: allow({})` suppresses nothing — remove the stale directive, \
                         or move it onto the line it was meant to cover",
                        a.rule
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Lints one source file in isolation; used by the fixture tests and the
/// CI canary. Interprocedural rules see only this file's call graph.
pub fn lint_source(ctx: &FileCtx, text: &str) -> Vec<Diagnostic> {
    lint_files(vec![(ctx.clone(), text.to_string())])
}

/// R0: every allow directive must name a known rule and carry a reason.
fn check_allow_directives(fi: usize, fm: &FileModel, raw: &mut Vec<RawDiag>) {
    for a in &fm.lexed.allows {
        if !RULE_KEYS.contains(&a.rule.as_str()) {
            raw.push(RawDiag {
                file: fi,
                key: None,
                diag: Diagnostic {
                    rule: "R0:allow-directive",
                    path: fm.ctx.path.clone(),
                    line: a.line,
                    message: format!(
                        "unknown lint rule `{}` in allow directive (known: {})",
                        a.rule,
                        RULE_KEYS.join(", ")
                    ),
                },
            });
        } else if !a.has_reason {
            raw.push(RawDiag {
                file: fi,
                key: None,
                diag: Diagnostic {
                    rule: "R0:allow-directive",
                    path: fm.ctx.path.clone(),
                    line: a.line,
                    message: format!(
                        "`lint: allow({})` needs a reason: `// lint: allow({}): <why this is sound>`",
                        a.rule, a.rule
                    ),
                },
            });
        }
    }
}

/// R1: deterministic crates must not touch wall clocks, OS-seeded RNGs, or
/// randomly-seeded hash collections.
fn rule_determinism(fi: usize, fm: &FileModel, mask: &[bool], raw: &mut Vec<RawDiag>) {
    if !DETERMINISTIC_CRATES.contains(&fm.ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in fm.lexed.toks.iter().enumerate() {
        if t.kind != Kind::Ident || mask[i] {
            continue;
        }
        if let Some((_, fix)) = NONDETERMINISTIC_IDENTS
            .iter()
            .find(|(name, _)| *name == t.text)
        {
            raw.push(RawDiag {
                file: fi,
                key: Some("determinism"),
                diag: Diagnostic {
                    rule: "R1:determinism",
                    path: fm.ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` is nondeterministic and `{}` is a deterministic crate \
                         (exact replay underpins the Theorem 5.1/5.2 experiments); use {}",
                        t.text, fm.ctx.crate_name, fix
                    ),
                },
            });
        }
    }
}

/// R2: no crate other than dqs-db may charge the `QueryLedger` directly —
/// oracle applications go through the charging wrappers. (Charge/counter
/// *pairing* is R7's interprocedural walk.)
fn rule_ledger_scope(fi: usize, fm: &FileModel, mask: &[bool], raw: &mut Vec<RawDiag>) {
    const CHARGES: &[&str] = &["record_sequential", "record_parallel_round"];
    if fm.ctx.crate_name == "dqs-db" {
        return;
    }
    for (i, t) in fm.lexed.toks.iter().enumerate() {
        if t.kind != Kind::Ident || mask[i] || !CHARGES.contains(&t.text.as_str()) {
            continue;
        }
        // Skip method *definitions* (`fn record_...`) — fixture corpora
        // may declare them anywhere.
        if i > 0 && fm.lexed.toks[i - 1].text == "fn" {
            continue;
        }
        raw.push(RawDiag {
            file: fi,
            key: Some("ledger-pairing"),
            diag: Diagnostic {
                rule: "R2:ledger-pairing",
                path: fm.ctx.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` charged outside dqs-db: oracle queries must be billed through the \
                     dqs-db charging wrappers (OracleSet::apply_*/charge_* or \
                     FaultyOracleSet::probe_*), which pair every charge with its obs counter",
                    t.text
                ),
            },
        });
    }
}

/// R3: no `unwrap()`/`expect()` in non-test library code.
fn rule_panic(fi: usize, fm: &FileModel, mask: &[bool], raw: &mut Vec<RawDiag>) {
    if PANIC_EXEMPT_CRATES.contains(&fm.ctx.crate_name.as_str()) {
        return;
    }
    let toks = &fm.lexed.toks;
    for i in 0..toks.len() {
        if toks[i].text != "." || toks[i].kind != Kind::Punct {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != Kind::Ident || (name.text != "unwrap" && name.text != "expect") {
            continue;
        }
        if !matches!(toks.get(i + 2), Some(p) if p.text == "(") {
            continue;
        }
        if mask[i + 1] {
            continue;
        }
        raw.push(RawDiag {
            file: fi,
            key: Some("panic"),
            diag: Diagnostic {
                rule: "R3:panic",
                path: fm.ctx.path.clone(),
                line: name.line,
                message: format!(
                    "`.{}()` in library code: propagate a typed error (`SampleError`/`OracleError`) \
                     or, if the panic is provably unreachable, annotate \
                     `// lint: allow(panic): <why it cannot fire>`",
                    name.text
                ),
            },
        });
    }
}

/// R4: crate roots must carry `#![forbid(unsafe_code)]`, and any `unsafe`
/// token needs a `// SAFETY:` justification.
fn rule_unsafe(fi: usize, fm: &FileModel, mask: &[bool], raw: &mut Vec<RawDiag>) {
    if fm.ctx.is_crate_root {
        let toks = &fm.lexed.toks;
        let attr = &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
        let has_forbid = (0..toks.len().saturating_sub(attr.len() - 1))
            .any(|i| attr.iter().enumerate().all(|(k, w)| toks[i + k].text == *w));
        if !has_forbid {
            raw.push(RawDiag {
                file: fi,
                key: Some("unsafe"),
                diag: Diagnostic {
                    rule: "R4:unsafe",
                    path: fm.ctx.path.clone(),
                    line: 1,
                    message: "crate root is missing `#![forbid(unsafe_code)]` (this workspace is \
                              unsafe-free; the attribute keeps it that way)"
                        .to_string(),
                },
            });
        }
    }
    for (i, t) in fm.lexed.toks.iter().enumerate() {
        if t.kind != Kind::Ident || t.text != "unsafe" || mask[i] {
            continue;
        }
        // `forbid(unsafe_code)` mentions are handled above; `unsafe_code`
        // is a different ident, so any `unsafe` here is a real block/fn/impl.
        if fm.lexed.safety_near(t.line) {
            continue;
        }
        raw.push(RawDiag {
            file: fi,
            key: Some("unsafe"),
            diag: Diagnostic {
                rule: "R4:unsafe",
                path: fm.ctx.path.clone(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment on it (or the line above) \
                          explaining why the invariants hold"
                    .to_string(),
            },
        });
    }
}

/// Files making up the dqs-obs event-stream emission path: the event
/// vocabulary and its JSONL rendering. Floats stay in recorder side-tables.
const EVENT_STREAM_FILES: &[&str] = &["crates/obs/src/event.rs"];

/// R5: the event stream carries only static names and integers — no float
/// payloads, no float formatting.
fn rule_event_purity(fi: usize, fm: &FileModel, mask: &[bool], raw: &mut Vec<RawDiag>) {
    if fm.ctx.crate_name != "dqs-obs" || !EVENT_STREAM_FILES.contains(&fm.ctx.path.as_str()) {
        return;
    }
    for (i, t) in fm.lexed.toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if t.kind == Kind::Ident && (t.text == "f64" || t.text == "f32") {
            raw.push(RawDiag {
                file: fi,
                key: Some("event-purity"),
                diag: Diagnostic {
                    rule: "R5:event-purity",
                    path: fm.ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` in the event-stream emission path: floats differ in the last ulp \
                         across backends and would break stream bit-identity; aggregate them in \
                         the recorder's float side-table instead",
                        t.text
                    ),
                },
            });
        }
        if t.kind == Kind::Str && (t.text.contains("{:.") || t.text.contains(":e}")) {
            raw.push(RawDiag {
                file: fi,
                key: Some("event-purity"),
                diag: Diagnostic {
                    rule: "R5:event-purity",
                    path: fm.ctx.path.clone(),
                    line: t.line,
                    message: "float formatting in an event-stream string: the JSONL stream must \
                              render integers and static names only"
                        .to_string(),
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(&FileCtx::from_rel_path(path), src)
    }

    #[test]
    fn ctx_classification() {
        let c = FileCtx::from_rel_path("crates/distdb/src/oracle.rs");
        assert_eq!(c.crate_name, "dqs-db");
        assert!(!c.is_crate_root);
        let r = FileCtx::from_rel_path("src/lib.rs");
        assert_eq!(r.crate_name, "distributed-quantum-sampling");
        assert!(r.is_crate_root);
    }

    #[test]
    fn clean_file_is_clean() {
        let diags = lint(
            "crates/core/src/x.rs",
            "fn f() -> Result<u32, ()> { Ok(1) }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn banned_ident_in_nondeterministic_crate_is_fine() {
        let diags = lint(
            "crates/obs/src/lib.rs",
            "#![forbid(unsafe_code)]\nuse std::time::Instant;\nfn f() { let _ = Instant::now(); }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn used_allow_is_silent_unused_allow_reports() {
        // The directive suppresses a real R3 hit: no diagnostics at all.
        let used = lint(
            "crates/core/src/x.rs",
            "fn f(v: Option<u32>) -> u32 {\n\
             // lint: allow(panic): checked by the caller\n\
             v.unwrap()\n}",
        );
        assert!(used.is_empty(), "{used:?}");
        // The same directive over clean code is itself a finding.
        let unused = lint(
            "crates/core/src/x.rs",
            "fn f(v: u32) -> u32 {\n\
             // lint: allow(panic): checked by the caller\n\
             v + 1\n}",
        );
        assert_eq!(unused.len(), 1, "{unused:?}");
        assert_eq!(unused[0].rule, "R0:unused-allow");
        assert_eq!(unused[0].line, 2);
    }

    #[test]
    fn cross_file_taint_is_found_by_lint_files() {
        let diags = lint_files(vec![
            (
                FileCtx::from_rel_path("crates/core/src/a.rs"),
                "pub fn sample() { helper(); }".to_string(),
            ),
            (
                FileCtx::from_rel_path("crates/obs/src/b.rs"),
                "pub fn helper() { let t = Instant::now(); }".to_string(),
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "R6:determinism-taint");
        assert_eq!(diags[0].path, "crates/core/src/a.rs");
        assert!(diags[0].message.contains("helper"), "{}", diags[0].message);
    }
}
